//! # TYR — unordered dataflow with local tag spaces
//!
//! A from-scratch Rust reproduction of *"The TYR Dataflow Architecture:
//! Improving Locality by Taming Parallelism"* (MICRO 2024).
//!
//! TYR is a general-purpose unordered (tagged) dataflow architecture that
//! bounds live state without artificially constraining parallelism. Instead
//! of one *global* tag space, TYR gives every *concurrent block* (loop body
//! or function body) its own tiny *local tag space*; new token-management
//! instructions (`allocate`, `free`, `changeTag`, `extractTag`, `join`)
//! guarantee forward progress with as few as **two tags per block**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ir`] — the structured dataflow IR and builder DSL (the paper's UDIR
//!   analogue), plus the sequential reference interpreter.
//! * [`dfg`] — elaborated dataflow graphs and per-architecture lowering
//!   (TYR concurrent-block linkage, naïve unordered tagging, ordered FIFO
//!   dataflow).
//! * [`sim`] — cycle-level idealized engines for all five architectures of
//!   the paper's evaluation, with live-token and IPC instrumentation.
//! * [`workloads`] — the seven Table II kernels, input generators, and
//!   plain-Rust oracles.
//! * [`stats`] — traces, CDFs, geometric means, chart rendering.
//! * [`verify`] — static analysis (free-barrier coverage, tag demand,
//!   memory races, lifecycle lints) and translation validation over
//!   lowered graphs, with stable diagnostic codes (`repro verify`).
//!
//! # Quickstart
//!
//! ```
//! use tyr::prelude::*;
//!
//! // Build dense matrix-vector multiplication (the paper's running example),
//! // lower it for TYR, and simulate with 64 tags per concurrent block.
//! let size = 16;
//! let wl = tyr::workloads::dmv::build(size, size, 1);
//! let dfg = tyr::dfg::lower::lower_tagged(&wl.program, TaggingDiscipline::Tyr).unwrap();
//! let config = TaggedConfig {
//!     issue_width: 128,
//!     tag_policy: TagPolicy::local(64),
//!     ..TaggedConfig::default()
//! };
//! let result = TaggedEngine::new(&dfg, wl.memory.clone(), config).run().unwrap();
//! assert!(result.is_complete());
//! wl.check(result.memory()).unwrap();
//! ```

#![warn(missing_docs)]

pub use tyr_dfg as dfg;
pub use tyr_ir as ir;
pub use tyr_lang as lang;
pub use tyr_sim as sim;
pub use tyr_stats as stats;
pub use tyr_verify as verify;
pub use tyr_workloads as workloads;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
    pub use tyr_dfg::Dfg;
    pub use tyr_ir::build::ProgramBuilder;
    pub use tyr_ir::{MemoryImage, Program};
    pub use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
    pub use tyr_sim::seqdf::{SeqDataflowConfig, SeqDataflowEngine};
    pub use tyr_sim::seqvn::{SeqVnConfig, SeqVnEngine};
    pub use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
    pub use tyr_sim::{Outcome, RunResult};
    pub use tyr_stats::{gmean, Cdf, IpcHistogram, Trace};
    pub use tyr_verify::{validate_translations, verify, verify_with, Code, Report, Severity};
}
