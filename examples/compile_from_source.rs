//! Compiling a kernel from `tyr-lang` source text and running it on every
//! architecture — the closest analogue of the paper's "unmodified C"
//! pipeline (Sec. IV-C): source → structured IR → per-architecture DFG →
//! simulation.
//!
//! ```sh
//! cargo run --release --example compile_from_source
//! ```

use tyr::lang::compile;
use tyr::prelude::*;

/// Sparse matrix-vector multiplication over CSR, as source text.
const SMV_SRC: &str = "
    fn main() {
        let i = 0;
        while (i < ROWS) {
            let k = load(PTR + i);
            let hi = load(PTR + i + 1);
            let acc = 0;
            while (k < hi) {
                acc = acc + load(VALS + k) * load(X + load(IDX + k));
                k = k + 1;
            }
            store(Y + i, acc);
            i = i + 1;
        }
        return 0;
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Inputs: a small seeded CSR matrix, via the workload generators.
    let m = tyr::workloads::gen::banded_csr(3, 48, 5, 0.6);
    let x: Vec<i64> = (0..48).map(|i| (i % 7) - 3).collect();
    let mut mem = MemoryImage::new();
    let ptr = mem.alloc_init("ptr", &m.ptr);
    let idx = mem.alloc_init("idx", &m.idx);
    let vals = mem.alloc_init("vals", &m.vals);
    let xr = mem.alloc_init("x", &x);
    let y = mem.alloc("y", m.rows);

    // "Link" the program: array bases and sizes become named constants.
    let program = compile(
        SMV_SRC,
        &[
            ("ROWS", m.rows as i64),
            ("PTR", ptr.base_const()),
            ("IDX", idx.base_const()),
            ("VALS", vals.base_const()),
            ("X", xr.base_const()),
            ("Y", y.base_const()),
        ],
    )?;
    println!("compiled smv from source: {} functions", program.funcs.len());

    let expected = tyr::workloads::oracle::smv(&m, &x);
    println!("\n{:<12} {:>10} {:>12} {:>10}", "system", "cycles", "peak tokens", "mean IPC");
    // TYR and naive unordered.
    for (name, disc, policy) in [
        ("TYR", TaggingDiscipline::Tyr, TagPolicy::local(64)),
        ("unordered", TaggingDiscipline::UnorderedUnbounded, TagPolicy::GlobalUnbounded),
    ] {
        let dfg = lower_tagged(&program, disc)?;
        let cfg = TaggedConfig { tag_policy: policy, ..TaggedConfig::default() };
        let r = TaggedEngine::new(&dfg, mem.clone(), cfg).run()?;
        assert_eq!(r.memory().slice(y), &expected[..], "{name}");
        println!("{:<12} {:>10} {:>12} {:>10.1}", name, r.cycles(), r.peak_live(), r.ipc.mean());
    }
    // Ordered + sequential engines.
    let dfg = lower_ordered(&program)?;
    let r = OrderedEngine::new(&dfg, mem.clone(), OrderedConfig::default()).run()?;
    assert_eq!(r.memory().slice(y), &expected[..]);
    println!("{:<12} {:>10} {:>12} {:>10.1}", "ordered", r.cycles(), r.peak_live(), r.ipc.mean());
    let r = SeqVnEngine::new(&program, mem.clone(), SeqVnConfig::default()).run()?;
    assert_eq!(r.memory().slice(y), &expected[..]);
    println!("{:<12} {:>10} {:>12} {:>10.1}", "seq-vN", r.cycles(), r.peak_live(), r.ipc.mean());

    println!("\nsmv-from-source verified against the oracle on all engines.");
    Ok(())
}
