//! Quickstart: simulate the paper's running example (dense matrix-vector
//! multiplication, Fig. 3) on TYR and on the naïve unordered baseline, and
//! compare parallelism and live state.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tyr::prelude::*;
use tyr::workloads::dmv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the workload: program + memory + oracle (64x64, seeded).
    let workload = dmv::build(64, 64, 42);
    println!("workload: {} ({})", workload.name, workload.params);

    // 2. Lower to TYR's concurrent-block linkage (Fig. 10) and simulate
    //    with the paper's defaults: 128-wide issue, 64 tags per block.
    let tyr_dfg = lower_tagged(&workload.program, TaggingDiscipline::Tyr)?;
    println!(
        "TYR graph: {} instructions across {} concurrent blocks",
        tyr_dfg.len(),
        tyr_dfg.blocks.len()
    );
    let cfg = TaggedConfig {
        issue_width: 128,
        tag_policy: TagPolicy::local(64),
        args: workload.args.clone(),
        ..TaggedConfig::default()
    };
    let tyr_run = TaggedEngine::new(&tyr_dfg, workload.memory.clone(), cfg).run()?;
    workload.check(tyr_run.memory())?; // oracle-verified output

    // 3. Same program under naïve unordered dataflow (global, unlimited
    //    tags) for comparison.
    let un_dfg = lower_tagged(&workload.program, TaggingDiscipline::UnorderedUnbounded)?;
    let cfg = TaggedConfig {
        issue_width: 128,
        tag_policy: TagPolicy::GlobalUnbounded,
        args: workload.args.clone(),
        ..TaggedConfig::default()
    };
    let un_run = TaggedEngine::new(&un_dfg, workload.memory.clone(), cfg).run()?;
    workload.check(un_run.memory())?;

    // 4. And the sequential von Neumann baseline.
    let vn_run = SeqVnEngine::new(
        &workload.program,
        workload.memory.clone(),
        SeqVnConfig { args: workload.args.clone(), ..SeqVnConfig::default() },
    )
    .run()?;
    workload.check(vn_run.memory())?;

    println!(
        "\n{:<12} {:>10} {:>12} {:>12} {:>10}",
        "system", "cycles", "peak tokens", "mean tokens", "mean IPC"
    );
    for (name, r) in [("seq-vN", &vn_run), ("unordered", &un_run), ("TYR", &tyr_run)] {
        println!(
            "{:<12} {:>10} {:>12} {:>12.1} {:>10.1}",
            name,
            r.cycles(),
            r.peak_live(),
            r.mean_live(),
            r.ipc.mean()
        );
    }
    println!(
        "\nTYR speedup over vN: {:.1}x; state kept within {} tokens (tags bound it).",
        vn_run.cycles() as f64 / tyr_run.cycles() as f64,
        tyr_run.peak_live()
    );
    Ok(())
}
