//! Writing your own kernel against the builder DSL and running it on every
//! architecture.
//!
//! The kernel: a histogram — for each input element, increment a bucket
//! (a data-dependent scatter with atomic adds). This is *not* one of the
//! paper's seven apps; it shows the IR is general-purpose.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use tyr::ir::NO_OPERANDS;
use tyr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: i64 = 500;
    const BUCKETS: i64 = 16;

    // Inputs: pseudo-random values (a simple LCG evaluated host-side).
    let mut mem = MemoryImage::new();
    let data: Vec<i64> = (0..N)
        .scan(12345u64, |s, _| {
            *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Some(((*s >> 33) % (BUCKETS as u64 * 3)) as i64)
        })
        .collect();
    let data_ref = mem.alloc_init("data", &data);
    let hist_ref = mem.alloc("hist", BUCKETS as usize);

    // The program, in the builder DSL. Loop bodies may only reference their
    // carried values (the transfer-point discipline of Fig. 10); constants
    // like array bases are instruction immediates.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);

    let [i] = f.begin_loop("scatter", [0]);
    let c = f.lt(i, N);
    f.begin_body(c);
    let addr = f.add(i, data_ref.base_const());
    let v = f.load(addr);
    let bucket = f.rem(v, BUCKETS); // data-dependent target
    let haddr = f.add(bucket, hist_ref.base_const());
    f.store_add(haddr, 1);
    let i2 = f.add(i, 1);
    f.end_loop([i2], NO_OPERANDS);

    let p = pb.finish(f, [tyr::ir::Operand::Const(0)]);
    tyr::ir::validate::validate(&p)?;

    // Run on all five architectures and verify against a host oracle.
    let mut expected = vec![0i64; BUCKETS as usize];
    for &v in &data {
        expected[(v % BUCKETS) as usize] += 1;
    }

    println!("{:<12} {:>10} {:>12} {:>10}", "system", "cycles", "peak tokens", "mean IPC");

    // Tagged engines.
    for (name, disc, policy) in [
        ("TYR", TaggingDiscipline::Tyr, TagPolicy::local(64)),
        ("unordered", TaggingDiscipline::UnorderedUnbounded, TagPolicy::GlobalUnbounded),
    ] {
        let dfg = lower_tagged(&p, disc)?;
        let cfg = TaggedConfig { tag_policy: policy, ..TaggedConfig::default() };
        let r = TaggedEngine::new(&dfg, mem.clone(), cfg).run()?;
        assert_eq!(r.memory().slice(hist_ref), &expected[..], "{name} histogram");
        println!("{:<12} {:>10} {:>12} {:>10.1}", name, r.cycles(), r.peak_live(), r.ipc.mean());
    }
    // Ordered.
    {
        let dfg = lower_ordered(&p)?;
        let r = OrderedEngine::new(&dfg, mem.clone(), OrderedConfig::default()).run()?;
        assert_eq!(r.memory().slice(hist_ref), &expected[..]);
        println!(
            "{:<12} {:>10} {:>12} {:>10.1}",
            "ordered",
            r.cycles(),
            r.peak_live(),
            r.ipc.mean()
        );
    }
    // Sequential engines.
    {
        let r = SeqVnEngine::new(&p, mem.clone(), SeqVnConfig::default()).run()?;
        assert_eq!(r.memory().slice(hist_ref), &expected[..]);
        println!(
            "{:<12} {:>10} {:>12} {:>10.1}",
            "seq-vN",
            r.cycles(),
            r.peak_live(),
            r.ipc.mean()
        );
        let r = SeqDataflowEngine::new(&p, mem.clone(), SeqDataflowConfig::default()).run()?;
        assert_eq!(r.memory().slice(hist_ref), &expected[..]);
        println!(
            "{:<12} {:>10} {:>12} {:>10.1}",
            "seq-df",
            r.cycles(),
            r.peak_live(),
            r.ipc.mean()
        );
    }

    let max = expected.iter().max().unwrap();
    println!("\nhistogram verified on all engines; fullest bucket holds {max} items.");
    Ok(())
}
