//! The paper's title, demonstrated: *taming parallelism to improve
//! locality*. Sweeps TYR's tag-space size on spmspm (Figs. 9/16), shows the
//! Fig. 11 deadlock of a bounded *global* tag space, and the per-region tag
//! tuning of Sec. VII-E / Fig. 18.
//!
//! ```sh
//! cargo run --release --example taming_parallelism
//! ```

use tyr::prelude::*;
use tyr::sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr::workloads::{dmm, spmspm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The tag knob (Fig. 16): more tags => more parallelism, more state.
    let w = spmspm::build(48, 0.08, 7);
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr)?;
    println!("spmspm ({}):", w.params);
    println!("  {:>6} {:>10} {:>12} {:>10}", "tags", "cycles", "peak tokens", "mean IPC");
    for tags in [2usize, 4, 8, 16, 32, 64, 128] {
        let cfg = TaggedConfig { tag_policy: TagPolicy::local(tags), ..TaggedConfig::default() };
        let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run()?;
        w.check(r.memory())?;
        println!("  {:>6} {:>10} {:>12} {:>10.1}", tags, r.cycles(), r.peak_live(), r.ipc.mean());
    }
    println!("  => even 2 tags per block completes (Theorem 1); performance saturates near issue width.\n");

    // --- Why locality needs *local* tag spaces (Fig. 11): the same graph
    // under a bounded GLOBAL pool deadlocks.
    let cfg = TaggedConfig {
        tag_policy: TagPolicy::GlobalBounded { tags: 4 },
        ..TaggedConfig::default()
    };
    let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run()?;
    match r.outcome {
        Outcome::Deadlock { cycle, live_tokens, ref pending_allocates } => {
            println!("global pool of 4 tags: DEADLOCK at cycle {cycle} with {live_tokens} stranded tokens");
            for p in pending_allocates.iter().take(3) {
                println!("  stalled: {p}");
            }
        }
        ref other => println!("(unexpected outcome: {other} — enlarge the program)"),
    }
    println!();

    // --- Per-region tuning (Fig. 18): starve the outer loop, keep the
    // inner loops wide.
    let w = dmm::build(28, 7);
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr)?;
    let run = |policy: TagPolicy| -> Result<_, Box<dyn std::error::Error>> {
        let cfg = TaggedConfig { tag_policy: policy, ..TaggedConfig::default() };
        let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run()?;
        w.check(r.memory())?;
        Ok(r)
    };
    let base = run(TagPolicy::local(64))?;
    let tuned = run(TagPolicy::local_with(64, vec![("dmm_i".into(), 8)]))?;
    println!("dmm ({}): per-region tag tuning", w.params);
    println!("  64 tags everywhere: cycles={} peak={}", base.cycles(), base.peak_live());
    println!("  outer loop at 8:    cycles={} peak={}", tuned.cycles(), tuned.peak_live());
    println!(
        "  => {:.1}% less peak state for {:+.1}% time",
        100.0 * (1.0 - tuned.peak_live() as f64 / base.peak_live() as f64),
        100.0 * (tuned.cycles() as f64 / base.cycles() as f64 - 1.0)
    );
    Ok(())
}
