//! Inspecting the compiler's output: pretty-print a structured program and
//! export its TYR and unordered elaborations as Graphviz DOT (compare with
//! the paper's Figs. 7a/7b).
//!
//! ```sh
//! cargo run --release --example inspect_graph > /tmp/dmv.dot
//! dot -Tpdf /tmp/dmv.dot -o /tmp/dmv.pdf   # if graphviz is installed
//! ```

use tyr::ir::pretty::print_program;
use tyr::prelude::*;
use tyr::workloads::dmv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = dmv::build(4, 4, 1);

    eprintln!("--- structured IR (the UDIR analogue) ---");
    eprintln!("{}", print_program(&w.program));

    let tyr = lower_tagged(&w.program, TaggingDiscipline::Tyr)?;
    let unordered = lower_tagged(&w.program, TaggingDiscipline::UnorderedUnbounded)?;
    eprintln!("--- elaboration sizes ---");
    eprintln!(
        "TYR (Fig. 7b style):       {:>3} nodes, {} concurrent blocks",
        tyr.len(),
        tyr.blocks.len()
    );
    eprintln!("unordered (Fig. 7a style): {:>3} nodes (no barriers, global tags)", unordered.len());
    for (i, b) in tyr.blocks.iter().enumerate() {
        let members = tyr.nodes.iter().filter(|n| n.block.0 as usize == i).count();
        eprintln!(
            "  block {i}: '{}' ({} instructions{})",
            b.name,
            members,
            if b.is_loop { ", loop" } else { "" }
        );
    }

    // DOT of the TYR graph to stdout.
    println!("{}", tyr.to_dot());
    Ok(())
}
