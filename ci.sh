#!/bin/sh
# Offline-safe CI gate: formatting, lints, build, tests, and the static
# verifier. Everything runs with --offline — the workspace has no external
# dependencies by design (DESIGN.md §7).
set -eux

# --workspace everywhere: the root facade does not depend on tyr-bench, so
# without it `cargo build` would skip the `repro` binary the gate drives
# (and `cargo test` would run only the facade's suites).
cargo fmt --all --check
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --offline --workspace --release
cargo test --offline --workspace -q
# The full static-analysis + translation-validation battery over the suite
# (tiny scale keeps the gate fast), including the Fig. 11 and ordered-FIFO
# static-vs-dynamic cross-validations; exits nonzero on any diagnostic
# error or cross-validation disagreement.
target/release/repro --scale tiny verify
# Probe-layer gate: run `repro trace` on one kernel per engine family and
# validate the emitted Chrome-trace JSON — the subcommand itself exits
# nonzero unless the file parses and contains at least one event of every
# taxonomy kind that engine is specified to emit (DESIGN.md §6).
trace_dir=$(mktemp -d)
for engine in tyr tagged-global-bounded ordered seqdf seqvn ooo; do
  target/release/repro --scale tiny --out "$trace_dir/dmv_$engine.json" \
    trace dmv "$engine"
done
rm -rf "$trace_dir"
# Perf-baseline gate: generate a quick (tiny-scale) suite baseline on the
# 2-thread sweep pool and validate the emitted JSON against the
# tyr-bench-suite/v1 schema, then validate the committed baseline too —
# both `bench` (which self-checks before writing) and `bench-check` exit
# nonzero on a malformed or incomplete file (DESIGN.md §8.5).
bench_dir=$(mktemp -d)
target/release/repro bench --quick --jobs 2 --out "$bench_dir/BENCH_quick.json"
target/release/repro bench-check "$bench_dir/BENCH_quick.json"
rm -rf "$bench_dir"
target/release/repro bench-check BENCH_suite.json
