#!/bin/sh
# Offline-safe CI gate: formatting, lints, docs, build, tests, the static
# verifier, the probe/trace and perf-baseline gates, and the differential
# fuzzer smoke sweep. Everything runs with --offline — the workspace has no
# external dependencies by design (DESIGN.md §8).
set -eux

# --workspace everywhere: the root facade does not depend on tyr-bench, so
# without it `cargo build` would skip the `repro` binary the gate drives
# (and `cargo test` would run only the facade's suites).
cargo fmt --all --check
cargo clippy --offline --workspace --all-targets -- -D warnings
# Rustdoc is part of the product: every public item is documented
# (`#![warn(missing_docs)]` on every crate) and broken intra-doc links or
# missing docs fail the build here.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps
cargo build --offline --workspace --release
cargo test --offline --workspace -q
# The full static-analysis + translation-validation battery over the suite
# (tiny scale keeps the gate fast), including the Fig. 11 and ordered-FIFO
# static-vs-dynamic cross-validations; exits nonzero on any diagnostic
# error or cross-validation disagreement.
target/release/repro --scale tiny verify
# Probe-layer gate: run `repro trace` on one kernel per engine family and
# validate the emitted Chrome-trace JSON — the subcommand itself exits
# nonzero unless the file parses and contains at least one event of every
# taxonomy kind that engine is specified to emit (DESIGN.md §6).
trace_dir=$(mktemp -d)
for engine in tyr tagged-global-bounded ordered seqdf seqvn ooo; do
  target/release/repro --scale tiny --out "$trace_dir/dmv_$engine.json" \
    trace dmv "$engine"
done
rm -rf "$trace_dir"
# Timeline gate (DESIGN.md §6): run `repro timeline` on one kernel per
# engine family — each run attaches the cycle-windowed sink plus the JSONL
# stream probe, re-parses the emitted tyr-events/v1 document, and exits
# nonzero unless its record count matches the independent counting probe
# riding the same run. The tagged-global-bounded row is the Fig. 11 wedge:
# it must exit 0 with the tail attributed to open tag-starved stalls.
timeline_dir=$(mktemp -d)
for engine in tyr tagged-global-bounded ordered seqdf seqvn ooo; do
  target/release/repro --scale tiny --out "$timeline_dir/tl_dmv_$engine.csv" \
    timeline dmv "$engine" --events "$timeline_dir/ev_dmv_$engine.jsonl"
done
rm -rf "$timeline_dir"
# Working-set gate (DESIGN.md §5.1): run `repro locality` on one kernel
# per engine family — each run attaches the MemAccess-fed reuse tracker,
# checks probe parity against the engine's load/store counters, and exits
# nonzero if any static W-pass bound falls below the dynamic observation.
# (The suite-wide static-vs-dynamic working-set matrix runs inside
# `repro verify` above; the fuzz sweep below adds the generated-program
# soundness leg.)
for engine in tyr ordered seqdf seqvn ooo; do
  target/release/repro --scale tiny locality dmv "$engine"
done
# Cache-model gate (DESIGN.md §7.8): one cached-memory smoke run per engine
# family. Each must complete, match its oracle, and report cache stats
# (`run_system` panics otherwise); the tight geometry guarantees real
# misses so the hierarchy, MSHR table, and event-queue miss path are all
# exercised. The same `locality` run cross-checks the static W002 line
# bound against the distinct lines the reuse tracker observed *under the
# cached model* — a static bound below the observation exits nonzero.
for engine in tyr ordered seqdf seqvn ooo; do
  target/release/repro --scale tiny --mem cached:l1=512,l2=4k,mshr=4 \
    locality dmv "$engine"
done
# Shard gate (DESIGN.md §5.2): run `repro shard` on one kernel per engine
# family that has a graph to cut — each run certifies a 4-shard plan
# (P001-P004), attaches the crossing tracker, and exits nonzero on a
# P-error, an observed boundary peak above its static bound, or a runtime
# cross-shard conflict contradicting a proven-disjoint claim. (The
# suite-wide matrix runs inside `repro verify`; the fuzz sweep adds the
# generated-program certificate leg.)
for engine in tyr tagged-global-bounded unordered ordered; do
  target/release/repro --scale tiny shard dmv "$engine" --shards 4
done
# Perf-baseline gate: generate a quick (tiny-scale) suite baseline on the
# 2-thread sweep pool and validate the emitted JSON against the
# tyr-bench-suite/v1 schema, then validate the committed baseline too —
# both `bench` (which self-checks before writing) and `bench-check` exit
# nonzero on a malformed or incomplete file (DESIGN.md §7.5).
bench_dir=$(mktemp -d)
target/release/repro bench --quick --jobs 2 --out "$bench_dir/BENCH_quick.json"
target/release/repro bench-check "$bench_dir/BENCH_quick.json"
rm -rf "$bench_dir"
target/release/repro bench-check BENCH_suite.json
# Robustness gate (DESIGN.md §9): 25-seed differential + chaos smoke sweep.
# Exits nonzero on any cross-engine disagreement (shrunk witness printed),
# any never-injected or never-detected fault class, or a mem-delay that
# was not absorbed; output is byte-identical for any --jobs. (The sweep
# itself runs inside the event-core gate below, which diffs its report
# between execution modes — a failed sweep fails the gate the same way.)
# Event-core identity gate (DESIGN.md §7.7): the event-driven core must be
# observationally identical to ticked execution. fig12's rendered table
# (cycles/dyn_instrs/speedups) and the fuzz report (all verdicts across a
# 25-seed differential + chaos campaign) are diffed byte-for-byte between
# the two modes; stderr carries the only wall-clock content, so stdout
# must not differ by a single byte.
event_dir=$(mktemp -d)
target/release/repro --scale tiny --jobs 2 fig12 > "$event_dir/fig12_event.txt"
target/release/repro --scale tiny --jobs 2 --ticked fig12 > "$event_dir/fig12_ticked.txt"
diff "$event_dir/fig12_event.txt" "$event_dir/fig12_ticked.txt"
target/release/repro fuzz --quick --jobs 2 > "$event_dir/fuzz_event.txt"
target/release/repro --ticked fuzz --quick --jobs 2 > "$event_dir/fuzz_ticked.txt"
diff "$event_dir/fuzz_event.txt" "$event_dir/fuzz_ticked.txt"
rm -rf "$event_dir"
# Cached-memory fuzz sweep (DESIGN.md §7.8): 10 generated programs run on
# all five engines under the two-level cache model. The differential oracle
# compares memory images and returns, so this is the machine-checked form
# of the invariance claim — the cache shapes timing, never values.
target/release/repro --mem cached:l1=512,l2=4k,mshr=4 fuzz --seeds 10 --jobs 2
