#!/bin/sh
# Offline-safe CI gate: formatting, lints, build, tests, and the static
# verifier. Everything runs with --offline — the workspace has no external
# dependencies by design (DESIGN.md §6).
set -eux

cargo fmt --all --check
cargo clippy --offline --all-targets -- -D warnings
cargo build --offline --release
cargo test --offline -q
# The full static-analysis + translation-validation battery over the suite
# (tiny scale keeps the gate fast), including the Fig. 11 and ordered-FIFO
# static-vs-dynamic cross-validations; exits nonzero on any diagnostic
# error or cross-validation disagreement.
target/release/repro --scale tiny verify
