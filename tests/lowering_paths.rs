//! End-to-end coverage of lowering corner cases that the seven kernels do
//! not exercise: conditional side effects (stores inside `if` branches and
//! the balanced free-barrier they require), constant merge sides, nested
//! conditionals, constant-address memory ops, void functions, and
//! zero-argument functions.

use tyr::ir::build::ProgramBuilder;
use tyr::ir::{interp, validate::validate, Operand, Program, NO_OPERANDS};
use tyr::prelude::*;

/// Runs a program on every engine and checks returns + named memory against
/// the reference interpreter.
fn assert_all_engines_agree(p: &Program, mem: &MemoryImage, args: &[i64]) {
    validate(p).unwrap();
    let mut oracle_mem = mem.clone();
    let oracle = interp::run(p, &mut oracle_mem, args).unwrap();

    let compare = |r: &tyr::sim::RunResult, label: &str| {
        assert!(r.is_complete(), "{label}: {:?}", r.outcome);
        assert_eq!(r.returns, oracle.returns, "{label}: returns differ");
        for (name, aref) in oracle_mem.arrays() {
            assert_eq!(r.memory().slice(aref), oracle_mem.slice(aref), "{label}: '{name}'");
        }
    };

    for tags in [2usize, 64] {
        let dfg = lower_tagged(p, TaggingDiscipline::Tyr).unwrap();
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(tags),
            args: args.to_vec(),
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, mem.clone(), cfg).run().unwrap();
        compare(&r, &format!("tyr t={tags}"));
    }
    {
        let dfg = lower_tagged(p, TaggingDiscipline::UnorderedUnbounded).unwrap();
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::GlobalUnbounded,
            args: args.to_vec(),
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, mem.clone(), cfg).run().unwrap();
        compare(&r, "unordered");
    }
    {
        let dfg = lower_ordered(p).unwrap();
        let cfg = OrderedConfig { args: args.to_vec(), ..OrderedConfig::default() };
        let r = OrderedEngine::new(&dfg, mem.clone(), cfg).run().unwrap();
        compare(&r, "ordered");
    }
    {
        let cfg = SeqDataflowConfig { args: args.to_vec(), ..SeqDataflowConfig::default() };
        let r = SeqDataflowEngine::new(p, mem.clone(), cfg).run().unwrap();
        compare(&r, "seqdf");
    }
}

#[test]
fn stores_inside_conditional_branches() {
    // Each iteration stores into out[i] from the then OR else side — the
    // free barrier must balance the two conditional control paths.
    let mut mem = MemoryImage::new();
    let out = mem.alloc("out", 16);
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [i] = f.begin_loop("l", [0]);
    let c = f.lt(i, 16);
    f.begin_body(c);
    let odd = f.and_(i, 1);
    let addr = f.add(i, out.base_const());
    f.begin_if(odd);
    let trip = f.mul(i, 3);
    f.store(addr, trip);
    f.begin_else();
    let neg = f.neg(i);
    f.store(addr, neg);
    let [written] = f.end_if([(trip, neg)]);
    f.store_add(addr, written); // out[i] = 2 * (odd ? 3i : -i)
    let i2 = f.add(i, 1);
    f.end_loop([i2], NO_OPERANDS);
    let p = pb.finish(f, [Operand::Const(0)]);
    assert_all_engines_agree(&p, &mem, &[]);
}

#[test]
fn constant_merge_sides_materialize() {
    // One side of the merge is a literal: the lowering must materialize it
    // as a token via a Const node triggered on that side only.
    let mut mem = MemoryImage::new();
    let out = mem.alloc("out", 8);
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [i] = f.begin_loop("l", [0]);
    let c = f.lt(i, 8);
    f.begin_body(c);
    let big = f.gt(i, 4);
    f.begin_if(big);
    f.begin_else();
    let doubled = f.mul(i, 2);
    let [v] = f.end_if([(Operand::Const(999), doubled)]);
    let addr = f.add(i, out.base_const());
    f.store(addr, v);
    let i2 = f.add(i, 1);
    f.end_loop([i2], NO_OPERANDS);
    let p = pb.finish(f, [Operand::Const(0)]);
    assert_all_engines_agree(&p, &mem, &[]);
}

#[test]
fn nested_conditionals() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 1);
    let x = f.param(0);
    let pos = f.gt(x, 0);
    f.begin_if(pos);
    let big = f.gt(x, 10);
    f.begin_if(big);
    let a = f.mul(x, 100);
    f.begin_else();
    let b = f.mul(x, 10);
    let [inner] = f.end_if([(a, b)]);
    f.begin_else();
    let neg = f.neg(x);
    let [y] = f.end_if([(inner, neg)]);
    let p = pb.finish(f, [y]);
    let mem = MemoryImage::new();
    for arg in [-5i64, 0, 5, 50] {
        assert_all_engines_agree(&p, &mem, &[arg]);
    }
}

#[test]
fn constant_address_memory_ops() {
    // Loads/stores whose address is an instruction immediate need a
    // per-context trigger token in the dataflow lowerings.
    let mut mem = MemoryImage::new();
    let cell = mem.alloc_init("cell", &[41]);
    let out = mem.alloc("out", 1);
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let v = f.load(cell.base_const());
    let v2 = f.add(v, 1);
    f.store(out.base_const(), v2);
    let p = pb.finish(f, [v2]);
    assert_all_engines_agree(&p, &mem, &[]);
}

#[test]
fn constant_address_memory_in_loop_body() {
    // The trigger inside a loop body is the steered parent-tag token: the
    // constant-address accumulate must fire once per iteration.
    let mut mem = MemoryImage::new();
    let acc = mem.alloc("acc", 1);
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [i] = f.begin_loop("l", [0]);
    let c = f.lt(i, 10);
    f.begin_body(c);
    f.store_add(acc.base_const(), 5);
    let i2 = f.add(i, 1);
    f.end_loop([i2], NO_OPERANDS);
    let p = pb.finish(f, [Operand::Const(0)]);
    assert_all_engines_agree(&p, &mem, &[]);
    // Sanity: the oracle value is 50.
    let mut m = mem.clone();
    interp::run(&p, &mut m, &[]).unwrap();
    assert_eq!(m.slice(acc), &[50]);
}

#[test]
fn void_function_and_zero_arg_function() {
    let mut mem = MemoryImage::new();
    let sink_arr = mem.alloc("sink", 2);

    let mut pb = ProgramBuilder::new();
    // A function with no returns (side effect only).
    let mut logger = pb.func("logger", 1);
    let v = logger.param(0);
    logger.store(sink_arr.base as i64, v);
    let logger_id = logger.id();
    pb.define(logger, NO_OPERANDS);

    // A function with no parameters.
    let mut answer = pb.func("answer", 0);
    let a = answer.load(sink_arr.base as i64);
    let b = answer.add(a, 2);
    let answer_id = answer.id();
    pb.define(answer, [b]);

    let mut f = pb.func("main", 1);
    let x = f.param(0);
    f.call(logger_id, &[x], 0);
    let c = f.mul(x, 1);
    let r = f.call(answer_id, &[], 1);
    let s = f.add(r[0], c);
    let p = pb.finish(f, [s]);

    validate(&p).unwrap();
    // `answer`'s load of sink[0] races with `logger`'s store (the calls are
    // not memory-ordered), so engines may legitimately return different
    // values; this test only checks that void and zero-argument call
    // linkage completes and frees its tags.
    let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    for tags in [2usize, 8] {
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(tags),
            args: vec![7],
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, mem.clone(), cfg).run().unwrap();
        assert!(r.is_complete(), "tags {tags}: {:?}", r.outcome);
    }
    let dfg = lower_ordered(&p).unwrap();
    let cfg = OrderedConfig { args: vec![7], ..OrderedConfig::default() };
    let r = OrderedEngine::new(&dfg, mem.clone(), cfg).run().unwrap();
    assert!(r.is_complete());
}

#[test]
fn deep_loop_nest_with_two_tags() {
    // Four levels of nesting, 2 tags per block: the strictest Theorem 1
    // configuration.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [a, t0] = f.begin_loop("d0", [0, 0]);
    let ca = f.lt(a, 3);
    f.begin_body(ca);
    let [b, t1] = f.begin_loop("d1", [0.into(), t0]);
    let cb = f.lt(b, 3);
    f.begin_body(cb);
    let [c, t2] = f.begin_loop("d2", [0.into(), t1]);
    let cc = f.lt(c, 3);
    f.begin_body(cc);
    let [d, t3] = f.begin_loop("d3", [0.into(), t2]);
    let cd = f.lt(d, 3);
    f.begin_body(cd);
    let t4 = f.add(t3, 1);
    let d2 = f.add(d, 1);
    let [o3] = f.end_loop([d2, t4], [t3]);
    let c2 = f.add(c, 1);
    let [o2] = f.end_loop([c2, o3], [t2]);
    let b2 = f.add(b, 1);
    let [o1] = f.end_loop([b2, o2], [t1]);
    let a2 = f.add(a, 1);
    let [o0] = f.end_loop([a2, o1], [t0]);
    let p = pb.finish(f, [o0]);

    let mem = MemoryImage::new();
    let mut m = mem.clone();
    let oracle = interp::run(&p, &mut m, &[]).unwrap();
    assert_eq!(oracle.returns, vec![81]); // 3^4

    let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    let cfg = TaggedConfig { tag_policy: TagPolicy::local(2), ..TaggedConfig::default() };
    let r = TaggedEngine::new(&dfg, mem.clone(), cfg).run().unwrap();
    assert!(r.is_complete(), "{:?}", r.outcome);
    assert_eq!(r.returns, vec![81]);
}

#[test]
fn straight_line_main_on_all_engines() {
    // No loops at all: the root context is the only context; the program
    // must still complete and drain on every engine.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 2);
    let a = f.param(0);
    let b = f.param(1);
    let s = f.add(a, b);
    let d = f.mul(s, s);
    let p = pb.finish(f, [d]);
    let mem = MemoryImage::new();
    assert_all_engines_agree(&p, &mem, &[3, 4]);
}

#[test]
fn select_heavy_intersection_style_loop() {
    // A two-pointer style loop driven entirely by selects (the tc pattern)
    // with compound conditions in the pre region.
    let mut mem = MemoryImage::new();
    let xs = mem.alloc_init("xs", &[1, 3, 5, 7, 9, 11]);
    let ys = mem.alloc_init("ys", &[2, 3, 5, 8, 9]);
    let hits = mem.alloc("hits", 1);
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [pa, pb_] = f.begin_loop("twoptr", [0, 0]);
    let ca = f.lt(pa, xs.len as i64);
    let cb = f.lt(pb_, ys.len as i64);
    let both = f.and_(ca, cb);
    f.begin_body(both);
    let a = {
        let addr = f.add(pa, xs.base_const());
        f.load(addr)
    };
    let b = {
        let addr = f.add(pb_, ys.base_const());
        f.load(addr)
    };
    let eq = f.eq(a, b);
    f.store_add(hits.base_const(), eq);
    let adv_a = f.le(a, b);
    let adv_b = f.ge(a, b);
    let pa2 = f.add(pa, adv_a);
    let pb2 = f.add(pb_, adv_b);
    f.end_loop([pa2, pb2], NO_OPERANDS);
    let p = pb.finish(f, [Operand::Const(0)]);
    assert_all_engines_agree(&p, &mem, &[]);
    let mut m = mem.clone();
    interp::run(&p, &mut m, &[]).unwrap();
    assert_eq!(m.slice(hits), &[3]); // {3, 5, 9}
}
