//! Integration: the static verifier and the dynamic sanitizer agree that
//! the shipped kernels and lowerings are clean.
//!
//! This is the facade-level contract behind `repro verify`: every Table II
//! kernel, under every tagged elaboration, passes every static pass with
//! zero findings; translation validation agrees; and a real TYR run with
//! the use-after-free sanitizer enabled completes without tripping it.

use tyr::prelude::*;
use tyr::verify::{analyze_tag_demand, check_tag_policy, predict_global, GlobalPrediction};
use tyr::workloads::{suite, Scale};

const SEED: u64 = 7;

#[test]
fn all_kernels_verify_clean_under_every_tagged_lowering() {
    for w in &suite(Scale::Tiny, SEED) {
        for (discipline, label, policy) in [
            (TaggingDiscipline::Tyr, "tyr", Some(TagPolicy::local(64))),
            (TaggingDiscipline::UnorderedBounded, "unordered-bounded", None),
            (
                TaggingDiscipline::UnorderedUnbounded,
                "unordered-unbounded",
                Some(TagPolicy::GlobalUnbounded),
            ),
        ] {
            let dfg = lower_tagged(&w.program, discipline).expect("lowering");
            let report = tyr::verify::verify_with(
                &format!("{}/{label}", w.name),
                &dfg,
                policy.as_ref(),
                Some((&w.memory, &w.args)),
            );
            // The W-pass always contributes informational working-set notes;
            // "clean" means no errors and no warnings.
            assert_eq!(
                report.errors() + report.warnings(),
                0,
                "expected a spotless report:\n{}",
                report.render()
            );
        }
    }
}

#[test]
fn translation_validation_of_the_suite() {
    for w in &suite(Scale::Tiny, SEED) {
        let report = tyr::verify::validate_translations(&w.name, &w.program, &w.memory, &w.args);
        assert!(report.diags.is_empty(), "{}", report.render());
    }
}

#[test]
fn static_tag_demand_matches_the_dynamic_detector_on_dmv() {
    // The Fig. 11 shape: dmv's nested loops allocate inner contexts while an
    // outer context holds tags, so any bounded global pool is unsafe — the
    // static pass says so, and a real run under that policy deadlocks.
    let w = tyr::workloads::dmv::build(6, 6, SEED);
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("lowering");
    let demand = analyze_tag_demand(&dfg);
    assert_eq!(predict_global(&demand, 8), GlobalPrediction::DeadlockNested);
    assert!(check_tag_policy(&dfg, &TagPolicy::GlobalBounded { tags: 8 })
        .iter()
        .any(|d| d.code == tyr::verify::Code::NestedGlobalAlloc));

    let cfg = TaggedConfig {
        tag_policy: TagPolicy::GlobalBounded { tags: 8 },
        args: w.args.clone(),
        ..TaggedConfig::default()
    };
    let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run().expect("no fault");
    assert!(!r.is_complete(), "dynamic detector must confirm the predicted deadlock");

    // The safe configuration agrees in both worlds.
    assert!(check_tag_policy(&dfg, &TagPolicy::local(2)).is_empty());
    let cfg = TaggedConfig {
        tag_policy: TagPolicy::local(2),
        args: w.args.clone(),
        ..TaggedConfig::default()
    };
    let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run().expect("no fault");
    assert!(r.is_complete());
    w.check(r.memory()).expect("oracle");
}

#[test]
fn sanitizer_enabled_runs_stay_clean_on_the_suite() {
    // The dynamic counterpart of the B001 barrier pass: with the
    // use-after-free sanitizer on, every kernel still completes — no free
    // ever recycles a tag out from under a live token.
    for w in &suite(Scale::Tiny, SEED) {
        let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("lowering");
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(2),
            args: w.args.clone(),
            check_token_leaks: true,
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg)
            .run()
            .unwrap_or_else(|e| panic!("{} with sanitizer: {e}", w.name));
        assert!(r.is_complete(), "{}", w.name);
        w.check(r.memory()).expect("oracle");
    }
}
