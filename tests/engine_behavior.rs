//! Cross-crate behavioral tests: determinism, monotonicity in the machine
//! knobs, instruction-count accounting, and error paths.

use tyr::prelude::*;
use tyr::sim::ooo::{OooConfig, OooEngine};
use tyr::workloads::{by_name, suite, Scale};

#[test]
fn simulations_are_deterministic() {
    // Identical configuration => bit-identical measurements, twice.
    let w = by_name("spmspm", Scale::Tiny, 3).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
    let run = || {
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(8),
            args: w.args.clone(),
            ..TaggedConfig::default()
        };
        TaggedEngine::new(&dfg, w.memory.clone(), cfg).run().unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.dyn_instrs(), b.dyn_instrs());
    assert_eq!(a.peak_live(), b.peak_live());
    assert_eq!(a.returns, b.returns);
}

#[test]
fn tyr_issue_width_is_monotone() {
    let w = by_name("dmv", Scale::Tiny, 4).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
    let mut prev = u64::MAX;
    for width in [1usize, 4, 16, 64, 256] {
        let cfg = TaggedConfig {
            issue_width: width,
            tag_policy: TagPolicy::local(16),
            args: w.args.clone(),
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run().unwrap();
        assert!(r.is_complete(), "width {width}");
        assert!(r.cycles() <= prev, "width {width} slower than narrower machine");
        // IPC can never exceed the machine width.
        assert!(r.ipc.max_value() <= width as u64);
        prev = r.cycles();
    }
}

#[test]
fn tyr_tag_count_is_monotone_in_time_and_state() {
    let w = by_name("smv", Scale::Tiny, 4).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
    let mut prev_cycles = u64::MAX;
    let mut prev_peak = 0u64;
    for tags in [2usize, 4, 16, 64] {
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(tags),
            args: w.args.clone(),
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run().unwrap();
        assert!(r.cycles() <= prev_cycles, "tags {tags}");
        // Live state grows with the tag budget until the parallelism in the
        // input saturates (Fig. 16); past saturation the peak plateaus and may
        // wobble a few percent, so allow a 10% dip but never a collapse.
        assert!(r.peak_live() >= prev_peak - prev_peak / 10, "tags {tags}");
        prev_cycles = r.cycles();
        prev_peak = r.peak_live();
    }
}

#[test]
fn ordered_queue_depth_never_slows_down() {
    let w = by_name("dmm", Scale::Tiny, 4).unwrap();
    let dfg = lower_ordered(&w.program).unwrap();
    let mut prev = u64::MAX;
    for depth in [1usize, 2, 4, 16] {
        let cfg =
            OrderedConfig { queue_depth: depth, args: w.args.clone(), ..OrderedConfig::default() };
        let r = OrderedEngine::new(&dfg, w.memory.clone(), cfg).run().unwrap();
        assert!(r.is_complete(), "depth {depth}: {:?}", r.outcome);
        w.check(r.memory()).unwrap();
        assert!(r.cycles() <= prev, "depth {depth}");
        prev = r.cycles();
    }
}

#[test]
fn seqdf_retires_same_instructions_as_vn() {
    // Sequential dataflow reorders *within* block instances but retires the
    // same dynamic instruction stream.
    for w in suite(Scale::Tiny, 11) {
        let vn = SeqVnEngine::new(
            &w.program,
            w.memory.clone(),
            SeqVnConfig { args: w.args.clone(), ..SeqVnConfig::default() },
        )
        .run()
        .unwrap();
        let df = SeqDataflowEngine::new(
            &w.program,
            w.memory.clone(),
            SeqDataflowConfig { args: w.args.clone(), ..SeqDataflowConfig::default() },
        )
        .run()
        .unwrap();
        assert_eq!(vn.dyn_instrs(), df.dyn_instrs(), "{}", w.name);
        assert!(df.cycles() <= vn.cycles(), "{}", w.name);
    }
}

#[test]
fn ooo_matches_oracle_and_sits_between_vn_and_dataflow() {
    for w in suite(Scale::Tiny, 11) {
        let cfg =
            OooConfig { window: 64, issue_width: 8, args: w.args.clone(), ..OooConfig::default() };
        let r = OooEngine::new(&w.program, w.memory.clone(), cfg).run().unwrap();
        w.check(r.memory()).unwrap_or_else(|e| panic!("{e}"));
        let vn = SeqVnEngine::new(
            &w.program,
            w.memory.clone(),
            SeqVnConfig { args: w.args.clone(), ..SeqVnConfig::default() },
        )
        .run()
        .unwrap();
        assert!(r.cycles() <= vn.cycles(), "{}: OoO slower than vN", w.name);
        assert_eq!(r.dyn_instrs(), vn.dyn_instrs(), "{}", w.name);
    }
}

#[test]
fn mismatched_policy_and_graph_is_a_loud_error() {
    // An unbounded-elaboration graph generates fresh (large) tags; running
    // it under a dense Local policy must fail with TagOverflow, not corrupt
    // state.
    let w = by_name("dmv", Scale::Tiny, 4).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::UnorderedUnbounded).unwrap();
    let cfg = TaggedConfig {
        tag_policy: TagPolicy::local(4),
        args: w.args.clone(),
        ..TaggedConfig::default()
    };
    let err = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run().unwrap_err();
    assert!(matches!(err, tyr::sim::SimError::TagOverflow { .. }), "{err}");
}

#[test]
fn ipc_histogram_covers_every_cycle() {
    // The IPC histogram must have exactly one sample per cycle (Fig. 13's
    // CDFs depend on it).
    let w = by_name("tc", Scale::Tiny, 4).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
    let cfg = TaggedConfig {
        tag_policy: TagPolicy::local(16),
        args: w.args.clone(),
        ..TaggedConfig::default()
    };
    let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run().unwrap();
    assert_eq!(r.ipc.total(), r.cycles());
    assert_eq!(r.live.cycles(), r.cycles());
    // Total fired instructions = sum of the histogram.
    let fired: u64 = r.ipc.counts().iter().enumerate().map(|(v, &c)| v as u64 * c).sum();
    assert_eq!(fired, r.dyn_instrs());
}

#[test]
fn bounded_global_pool_large_enough_completes() {
    // With a generous pool the FCFS global policy completes and matches the
    // oracle — the deadlock is about *pressure*, not about bounded pools per
    // se.
    let w = by_name("dmv", Scale::Tiny, 4).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::UnorderedBounded).unwrap();
    let cfg = TaggedConfig {
        tag_policy: TagPolicy::GlobalBounded { tags: 4096 },
        args: w.args.clone(),
        ..TaggedConfig::default()
    };
    let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run().unwrap();
    assert!(r.is_complete(), "{:?}", r.outcome);
    w.check(r.memory()).unwrap();
}

#[test]
fn per_region_tuning_never_changes_results() {
    let w = by_name("dmm", Scale::Tiny, 4).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
    for overrides in [
        vec![("dmm_i".to_string(), 2usize)],
        vec![("dmm_j".to_string(), 2)],
        vec![("dmm_k".to_string(), 2)],
        vec![("dmm_i".to_string(), 2), ("dmm_k".to_string(), 128)],
    ] {
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local_with(32, overrides.clone()),
            args: w.args.clone(),
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg).run().unwrap();
        assert!(r.is_complete(), "{overrides:?}");
        w.check(r.memory()).unwrap_or_else(|e| panic!("{overrides:?}: {e}"));
    }
}
