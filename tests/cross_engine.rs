//! Cross-engine correctness: every Table II kernel, on every architecture,
//! must produce oracle-identical output memory.

use tyr::prelude::*;
use tyr::workloads::{suite, Scale, Workload};

fn check_tagged(w: &Workload, discipline: TaggingDiscipline, policy: TagPolicy) {
    let dfg = lower_tagged(&w.program, discipline).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let cfg = TaggedConfig {
        tag_policy: policy.clone(),
        args: w.args.clone(),
        ..TaggedConfig::default()
    };
    let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg)
        .run()
        .unwrap_or_else(|e| panic!("{} ({policy:?}): {e}", w.name));
    assert!(r.is_complete(), "{} ({policy:?}): {:?}", w.name, r.outcome);
    w.check(r.memory()).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn tyr_matches_oracle_on_all_apps() {
    for w in suite(Scale::Tiny, 99) {
        for tags in [2, 4, 64] {
            check_tagged(&w, TaggingDiscipline::Tyr, TagPolicy::local(tags));
        }
    }
}

#[test]
fn unordered_unbounded_matches_oracle_on_all_apps() {
    for w in suite(Scale::Tiny, 99) {
        check_tagged(&w, TaggingDiscipline::UnorderedUnbounded, TagPolicy::GlobalUnbounded);
    }
}

#[test]
fn tyr_graph_with_unlimited_tags_matches_oracle() {
    // Fig. 9d: TYR with unlimited tags behaves like naïve unordered; it must
    // still be correct.
    for w in suite(Scale::Tiny, 99) {
        check_tagged(&w, TaggingDiscipline::Tyr, TagPolicy::GlobalUnbounded);
    }
}

#[test]
fn ordered_matches_oracle_on_all_apps() {
    for w in suite(Scale::Tiny, 99) {
        let dfg = lower_ordered(&w.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for depth in [2, 4] {
            let cfg = OrderedConfig {
                queue_depth: depth,
                args: w.args.clone(),
                ..OrderedConfig::default()
            };
            let r = OrderedEngine::new(&dfg, w.memory.clone(), cfg)
                .run()
                .unwrap_or_else(|e| panic!("{} (q={depth}): {e}", w.name));
            assert!(r.is_complete(), "{} (q={depth}): {:?}", w.name, r.outcome);
            w.check(r.memory()).unwrap_or_else(|e| panic!("q={depth}: {e}"));
        }
    }
}

#[test]
fn seqvn_matches_oracle_on_all_apps() {
    for w in suite(Scale::Tiny, 99) {
        let cfg = SeqVnConfig { args: w.args.clone(), ..SeqVnConfig::default() };
        let r = SeqVnEngine::new(&w.program, w.memory.clone(), cfg)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(r.is_complete());
        w.check(r.memory()).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn seqdf_matches_oracle_on_all_apps() {
    for w in suite(Scale::Tiny, 99) {
        let cfg = SeqDataflowConfig { args: w.args.clone(), ..SeqDataflowConfig::default() };
        let r = SeqDataflowEngine::new(&w.program, w.memory.clone(), cfg)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(r.is_complete());
        w.check(r.memory()).unwrap_or_else(|e| panic!("{e}"));
    }
}
