//! The Table II kernels, written as `tyr-lang` source text and checked
//! against the DSL-built workloads' oracles on the TYR engine — exercising
//! the full source → IR → DFG → simulation pipeline end to end.

use tyr::lang::compile;
use tyr::prelude::*;
use tyr::workloads::{gen, oracle};

fn run_tyr(program: &tyr::ir::Program, mem: &MemoryImage) -> tyr::sim::RunResult {
    let dfg = lower_tagged(program, TaggingDiscipline::Tyr).unwrap();
    let cfg = TaggedConfig { tag_policy: TagPolicy::local(16), ..TaggedConfig::default() };
    let r = TaggedEngine::new(&dfg, mem.clone(), cfg).run().unwrap();
    assert!(r.is_complete(), "{:?}", r.outcome);
    r
}

#[test]
fn dmm_from_source() {
    let n = 10usize;
    let a = gen::dense_matrix(1, n, n);
    let b = gen::dense_matrix(2, n, n);
    let mut mem = MemoryImage::new();
    let ar = mem.alloc_init("A", &a);
    let br = mem.alloc_init("B", &b);
    let cr = mem.alloc("C", n * n);
    let src = "
        fn main() {
            let i = 0;
            while (i < N) {
                let j = 0;
                while (j < N) {
                    let acc = 0;
                    let k = 0;
                    while (k < N) {
                        acc = acc + load(A + i * N + k) * load(B + k * N + j);
                        k = k + 1;
                    }
                    store(C + i * N + j, acc);
                    j = j + 1;
                }
                i = i + 1;
            }
            return 0;
        }";
    let p = compile(
        src,
        &[("N", n as i64), ("A", ar.base_const()), ("B", br.base_const()), ("C", cr.base_const())],
    )
    .unwrap();
    let r = run_tyr(&p, &mem);
    assert_eq!(r.memory().slice(cr), &oracle::dmm(&a, &b, n)[..]);
}

#[test]
fn spmspm_from_source() {
    let n = 12usize;
    let a = gen::random_csr(3, n, n, 20);
    let b = gen::random_csr(4, n, n, 20);
    let mut mem = MemoryImage::new();
    let pa = mem.alloc_init("ptrA", &a.ptr);
    let ia = mem.alloc_init("idxA", &a.idx);
    let va = mem.alloc_init("valA", &a.vals);
    let pb = mem.alloc_init("ptrB", &b.ptr);
    let ib = mem.alloc_init("idxB", &b.idx);
    let vb = mem.alloc_init("valB", &b.vals);
    let cr = mem.alloc("C", n * n);
    let src = "
        fn main() {
            let i = 0;
            while (i < N) {
                let k = load(PA + i);
                let ha = load(PA + i + 1);
                while (k < ha) {
                    let j = load(IA + k);
                    let av = load(VA + k);
                    let l = load(PB + j);
                    let hb = load(PB + j + 1);
                    while (l < hb) {
                        fetch_add(C + i * N + load(IB + l), av * load(VB + l));
                        l = l + 1;
                    }
                    k = k + 1;
                }
                i = i + 1;
            }
            return 0;
        }";
    let p = compile(
        src,
        &[
            ("N", n as i64),
            ("PA", pa.base_const()),
            ("IA", ia.base_const()),
            ("VA", va.base_const()),
            ("PB", pb.base_const()),
            ("IB", ib.base_const()),
            ("VB", vb.base_const()),
            ("C", cr.base_const()),
        ],
    )
    .unwrap();
    let r = run_tyr(&p, &mem);
    assert_eq!(r.memory().slice(cr), &oracle::spmspm(&a, &b)[..]);
}

#[test]
fn tc_from_source() {
    let g = gen::watts_strogatz_forward(5, 64, 6, 0.1);
    let mut mem = MemoryImage::new();
    let pr = mem.alloc_init("ptr", &g.ptr);
    let adj = mem.alloc_init("adj", &g.idx);
    let cnt = mem.alloc("count", 1);
    let src = "
        fn main() {
            let u = 0;
            while (u < N) {
                let e = load(PTR + u);
                let ee = load(PTR + u + 1);
                let lo = e;
                while (e < ee) {
                    let v = load(ADJ + e);
                    let pa = lo;
                    let pb = load(PTR + v);
                    let eb = load(PTR + v + 1);
                    while (pa < ee && pb < eb) {
                        let a = load(ADJ + pa);
                        let b = load(ADJ + pb);
                        fetch_add(CNT, a == b);
                        pa = pa + (a <= b);
                        pb = pb + (a >= b);
                    }
                    e = e + 1;
                }
                u = u + 1;
            }
            return 0;
        }";
    let p = compile(
        src,
        &[
            ("N", g.rows as i64),
            ("PTR", pr.base_const()),
            ("ADJ", adj.base_const()),
            ("CNT", cnt.base_const()),
        ],
    )
    .unwrap();
    let r = run_tyr(&p, &mem);
    assert_eq!(r.memory().slice(cnt), &[oracle::count_triangles(&g)]);
}

#[test]
fn source_and_dsl_kernels_agree_cycle_for_cycle_on_vn() {
    // The source-compiled dmv and the DSL-built dmv execute the same number
    // of loads/stores; dynamic instruction counts may differ slightly
    // (address-expression shape), but results must be identical.
    let (m, n, seed) = (8usize, 6usize, 9u64);
    let dsl = tyr::workloads::dmv::build(m, n, seed);
    let mut dsl_mem = dsl.memory.clone();
    tyr::ir::interp::run(&dsl.program, &mut dsl_mem, &dsl.args).unwrap();

    let a = gen::dense_matrix(seed, m, n);
    let x = gen::dense_vector(seed.wrapping_add(1), n);
    let mut mem = MemoryImage::new();
    let ar = mem.alloc_init("A", &a);
    let xr = mem.alloc_init("x", &x);
    let yr = mem.alloc("y", m);
    let src = "
        fn main() {
            let i = 0;
            while (i < M) {
                let w = 0;
                let j = 0;
                while (j < N) {
                    w = w + load(A + i * N + j) * load(X + j);
                    j = j + 1;
                }
                store(Y + i, w);
                i = i + 1;
            }
            return 0;
        }";
    let p = compile(
        src,
        &[
            ("M", m as i64),
            ("N", n as i64),
            ("A", ar.base_const()),
            ("X", xr.base_const()),
            ("Y", yr.base_const()),
        ],
    )
    .unwrap();
    let r = run_tyr(&p, &mem);
    // Same seeds => same inputs => same output vector as the DSL workload.
    assert_eq!(r.memory().slice(yr), dsl_mem.slice(dsl_mem.array("y").unwrap()));
}
