//! Property tests for the paper's theorems.
//!
//! A seeded generator produces random *valid* structured programs —
//! arbitrary loop nests (including zero-trip loops), forward branches,
//! memory traffic into a scratch array, and acyclic calls — and every
//! engine must agree with the reference interpreter. In particular:
//!
//! * **Theorem 1 (deadlock freedom):** TYR completes every generated
//!   program with any tag count ≥ 2 per block.
//! * **Theorem 2 (bounded state):** TYR's peak live tokens never exceed
//!   `T · N · M`.

use tyr::ir::build::{FuncBuilder, ProgramBuilder};
use tyr::ir::validate::validate;
use tyr::ir::{interp, Operand, Program};
use tyr::prelude::*;
use tyr::workloads::gen::SplitMix64;

const SCRATCH_WORDS: i64 = 64; // power of two: addresses are masked into range

/// Random straight-line/branching/looping region. `avail` is the in-scope
/// value list; returns values defined at this level.
fn gen_region(
    f: &mut FuncBuilder,
    rng: &mut SplitMix64,
    avail: &mut Vec<Operand>,
    depth: u32,
    scratch_base: i64,
    budget: &mut u32,
) {
    let n_stmts = rng.gen_range(1, 5);
    for _ in 0..n_stmts {
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        match rng.gen_range(0, 10) {
            // Pure ops (safe subset: no div/rem, shifts masked by eval).
            0..=3 => {
                let a = avail[rng.gen_index(avail.len())];
                let b = avail[rng.gen_index(avail.len())];
                let v = match rng.gen_range(0, 6) {
                    0 => f.add(a, b),
                    1 => f.sub(a, b),
                    2 => f.xor_(a, b),
                    3 => f.min(a, b),
                    4 => f.lt(a, b),
                    _ => f.mul(a, b),
                };
                avail.push(v);
            }
            // Memory. Dataflow executes memory operations in data-dependence
            // order only, so the generator must be race-free by construction
            // (exactly like the real kernels): loads read a read-only half of
            // the scratch array; writes are commutative atomic adds into the
            // other half. Plain `store` is exercised by the kernel suite,
            // where disjointness is guaranteed.
            4 | 5 => {
                let a = avail[rng.gen_index(avail.len())];
                let masked = f.and_(a, SCRATCH_WORDS / 2 - 1);
                if rng.gen_bool(0.5) {
                    let addr = f.add(masked, scratch_base);
                    let v = f.load(addr);
                    avail.push(v);
                } else {
                    let addr = f.add(masked, scratch_base + SCRATCH_WORDS / 2);
                    let v = avail[rng.gen_index(avail.len())];
                    f.store_add(addr, v);
                }
            }
            // Select.
            6 => {
                let c = avail[rng.gen_index(avail.len())];
                let a = avail[rng.gen_index(avail.len())];
                let b = avail[rng.gen_index(avail.len())];
                let v = f.select(c, a, b);
                avail.push(v);
            }
            // If/else with a merge.
            7 => {
                let c = avail[rng.gen_index(avail.len())];
                f.begin_if(c);
                let t = {
                    let a = avail[rng.gen_index(avail.len())];
                    f.add(a, 1)
                };
                f.begin_else();
                let e = {
                    let a = avail[rng.gen_index(avail.len())];
                    f.sub(a, 1)
                };
                let [m] = f.end_if([(t, e)]);
                avail.push(m);
            }
            // Loop (bounded depth and trip count; may be zero-trip).
            _ if depth < 3 => {
                let trip = rng.gen_range(0, 5);
                let extra = avail[rng.gen_index(avail.len())];
                let label = format!("l{}_{}", depth, rng.next_u64() as u32);
                let [i, acc, x] = f.begin_loop(&label, [0.into(), 0.into(), extra]);
                let c = f.lt(i, trip);
                f.begin_body(c);
                let mut inner: Vec<Operand> = vec![i, acc, x];
                gen_region(f, rng, &mut inner, depth + 1, scratch_base, budget);
                let bump = inner[inner.len() - 1];
                let folded = f.xor_(acc, bump);
                let acc2 = f.and_(folded, 0xFFFF); // keep values small-ish
                let i2 = f.add(i, 1);
                let [out] = f.end_loop([i2, acc2, x], [acc]);
                avail.push(out);
            }
            _ => {
                let a = avail[rng.gen_index(avail.len())];
                let v = f.neg(a);
                avail.push(v);
            }
        }
    }
}

/// Generates a whole random program (possibly with a helper function) and
/// its scratch memory.
fn gen_program(seed: u64) -> (Program, MemoryImage) {
    let mut rng = SplitMix64::new(seed);
    let mut mem = MemoryImage::new();
    // First half: read-only inputs; second half: zeroed accumulation cells.
    let scratch: Vec<i64> = (0..SCRATCH_WORDS)
        .map(|i| if i < SCRATCH_WORDS / 2 { (i * 7 - 31) % 23 } else { 0 })
        .collect();
    let scratch_ref = mem.alloc_init("scratch", &scratch);

    let mut pb = ProgramBuilder::new();

    // Optionally a helper function, called from main (tests call linkage).
    let helper = if rng.gen_bool(0.5) {
        let mut h = pb.func("helper", 2);
        let mut avail = vec![h.param(0), h.param(1)];
        let mut budget = 8u32;
        gen_region(&mut h, &mut rng, &mut avail, 1, scratch_ref.base_const(), &mut budget);
        let ret = avail[avail.len() - 1];
        let id = h.id();
        pb.define(h, [ret]);
        Some(id)
    } else {
        None
    };

    let mut f = pb.func("main", 1);
    let mut avail = vec![f.param(0), Operand::Const(3)];
    let mut budget = 24u32;
    gen_region(&mut f, &mut rng, &mut avail, 0, scratch_ref.base_const(), &mut budget);
    if let Some(h) = helper {
        let a = avail[rng.gen_index(avail.len())];
        let b = avail[rng.gen_index(avail.len())];
        let r = f.call(h, &[a, b], 1);
        avail.push(r[0]);
        // Call it twice: the callee's tag space is shared across call sites.
        let r2 = f.call(h, &[r[0], a], 1);
        avail.push(r2[0]);
    }
    let ret = avail[avail.len() - 1];
    let program = pb.finish(f, [ret]);
    (program, mem)
}

fn run_all_engines_and_compare(seed: u64) {
    let (program, mem) = gen_program(seed);
    validate(&program).unwrap_or_else(|e| panic!("seed {seed}: generated invalid program: {e}"));

    let args = vec![seed as i64 % 17];
    let mut oracle_mem = mem.clone();
    let oracle = match interp::run(&program, &mut oracle_mem, &args) {
        Ok(o) => o,
        // Generated arithmetic cannot fault (no div), so any error is a bug.
        Err(e) => panic!("seed {seed}: oracle fault: {e}"),
    };

    // TYR with tiny tag spaces: Theorems 1 and 2.
    let dfg = lower_tagged(&program, TaggingDiscipline::Tyr)
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    for tags in [2usize, 3, 8] {
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(tags),
            args: args.clone(),
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, mem.clone(), cfg)
            .run()
            .unwrap_or_else(|e| panic!("seed {seed} tags {tags}: {e}"));
        assert!(
            r.is_complete(),
            "seed {seed}: TYR deadlocked with {tags} tags (Theorem 1 violated): {:?}",
            r.outcome
        );
        assert_eq!(r.returns, oracle.returns, "seed {seed} tags {tags}: wrong result");
        let bound = (tags * dfg.len() * dfg.max_wired_inputs()) as u64;
        assert!(
            r.peak_live() <= bound,
            "seed {seed} tags {tags}: peak {} > T*N*M = {bound} (Theorem 2 violated)",
            r.peak_live()
        );
        for (name, aref) in oracle_mem.arrays() {
            assert_eq!(
                r.memory().slice(aref),
                oracle_mem.slice(aref),
                "seed {seed} tags {tags}: memory '{name}' differs"
            );
        }
    }

    // Naïve unordered must agree too.
    let un = lower_tagged(&program, TaggingDiscipline::UnorderedUnbounded).unwrap();
    let cfg = TaggedConfig {
        tag_policy: TagPolicy::GlobalUnbounded,
        args: args.clone(),
        ..TaggedConfig::default()
    };
    let r = TaggedEngine::new(&un, mem.clone(), cfg).run().unwrap();
    assert!(r.is_complete(), "seed {seed}: unordered did not complete");
    assert_eq!(r.returns, oracle.returns, "seed {seed}: unordered wrong result");

    // Ordered dataflow (inlines calls internally).
    let ord = lower_ordered(&program).unwrap();
    let cfg = OrderedConfig { args: args.clone(), ..OrderedConfig::default() };
    let r = OrderedEngine::new(&ord, mem.clone(), cfg).run().unwrap();
    assert!(r.is_complete(), "seed {seed}: ordered stalled: {:?}", r.outcome);
    assert_eq!(r.returns, oracle.returns, "seed {seed}: ordered wrong result");

    // Sequential dataflow.
    let cfg = SeqDataflowConfig { args, ..SeqDataflowConfig::default() };
    let r = SeqDataflowEngine::new(&program, mem, cfg).run().unwrap();
    assert_eq!(r.returns, oracle.returns, "seed {seed}: seq-df wrong result");
}

/// Number of randomized cases: a quick budget by default, the full fuzzing
/// budget under the default-off `slow-tests` feature.
const CASES: u64 = if cfg!(feature = "slow-tests") { 96 } else { 24 };

#[test]
fn random_programs_agree_across_all_engines() {
    // Seeds are themselves drawn from a seeded stream so every CI run
    // exercises identical programs while still covering the full u64 range.
    let mut seeds = SplitMix64::new(0x7152_5f64_6667);
    for _ in 0..CASES {
        run_all_engines_and_compare(seeds.next_u64());
    }
}

#[test]
fn fixed_regression_seeds() {
    // A few pinned seeds so CI always exercises identical programs.
    for seed in [0u64, 1, 2, 42, 1234567, u64::MAX] {
        run_all_engines_and_compare(seed);
    }
}
