//! Deterministic, seeded shard partitioner over a lowered DFG's blocks.
//!
//! The TYR premise — many small, bounded local tag spaces — makes the
//! concurrent block the natural unit of sharding: a block's token store and
//! tag space are private, so a shard boundary only ever crosses *token
//! edges*, never shared matching state. This module computes such a cut: a
//! multi-level greedy assignment followed by Kernighan–Lin-style
//! refinement, minimizing the number of inter-block token edges that cross
//! shards while keeping shard weights (wired input ports, the token-store
//! capacity currency of the W-pass) roughly balanced.
//!
//! The partitioner is **deterministic and seeded**: given the same graph,
//! the same shard count, the same seed, and the same co-location
//! constraints, it produces a byte-identical [`ShardPlan`] — snapshot tests
//! and the `--jobs` determinism test rely on this. All tie-breaks go
//! through a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-style hash
//! of `(seed, cluster, shard)`; no map iteration order leaks into the
//! result.
//!
//! Safety is *not* this module's job: the P-pass
//! ([`crate::passes::verify_shards`]) derives co-location constraints from
//! undecided memory pairs, hands them in via `colocate`, and then proves
//! the resulting plan safe (P001–P004).

use tyr_dfg::{BlockId, Dfg, InKind, NodeId, NodeKind};

use crate::passes::dyn_targets;

/// Hard cap on the shard count: dynamic conflict tracking keys shard sets
/// as 64-bit masks.
pub const MAX_SHARDS: usize = 64;

/// A partition of a graph's concurrent blocks into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shard count that was asked for.
    pub requested: usize,
    /// The effective shard count (≤ requested: clamped by the number of
    /// block clusters after co-location merging; empty shards are dropped).
    pub shards: usize,
    /// The seed the tie-breaks were derived from.
    pub seed: u64,
    /// Per-block shard assignment, indexed by `BlockId`. Shards are
    /// canonically renumbered in order of their lowest block id.
    pub assign: Vec<u32>,
    /// Inter-block token edges (node-level, `changeTag.dyn` routing
    /// included) that cross the cut.
    pub cut_edges: u64,
    /// All inter-block token edges, for context.
    pub inter_edges: u64,
    /// The co-location constraints the plan honored (block pairs forced
    /// into one shard), in sorted order.
    pub colocated: Vec<(BlockId, BlockId)>,
}

impl ShardPlan {
    /// The shard holding `block`.
    pub fn shard_of(&self, block: BlockId) -> u32 {
        self.assign.get(block.0 as usize).copied().unwrap_or(0)
    }

    /// Renders the plan deterministically: one line per shard listing its
    /// blocks and weight, then the cut summary. Byte-identical across runs
    /// for the same inputs (the determinism snapshot relies on it).
    pub fn render(&self, dfg: &Dfg) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== shard plan: {} shard(s) (requested {}, seed {}) ==",
            self.shards, self.requested, self.seed
        );
        for s in 0..self.shards {
            let mut ports = 0u64;
            for (bi, &a) in self.assign.iter().enumerate() {
                if a == s as u32 {
                    ports += block_ports(dfg, bi);
                }
            }
            let blocks: Vec<String> = self
                .assign
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == s as u32)
                .map(|(bi, _)| {
                    let name = dfg.blocks.get(bi).map(|b| b.name.as_str()).unwrap_or("<invalid>");
                    format!("cb{bi} '{name}'")
                })
                .collect();
            let _ = writeln!(out, "shard {s}: {} ({ports} wired port(s))", blocks.join(", "));
        }
        for &(a, b) in &self.colocated {
            let _ = writeln!(out, "colocated: {a}+{b} (undecided memory pair)");
        }
        let _ = writeln!(
            out,
            "cut: {} of {} inter-block token edge(s) cross shards",
            self.cut_edges, self.inter_edges
        );
        out
    }
}

/// Wired-input-port count of block `bi` — the vertex weight.
fn block_ports(dfg: &Dfg, bi: usize) -> u64 {
    dfg.nodes
        .iter()
        .filter(|n| n.block.0 as usize == bi)
        .map(|n| n.ins.iter().filter(|i| matches!(i, InKind::Wire)).count() as u64)
        .sum()
}

/// SplitMix64 finalizer — the deterministic tie-break hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// All inter-block node-level token edges of `dfg` as `(from_block,
/// to_block)` pairs with multiplicity, `changeTag.dyn` routing included.
fn inter_block_edges(dfg: &Dfg) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let block_of = |n: NodeId| dfg.nodes[n.0 as usize].block.0;
    for e in dfg.edges() {
        let (a, b) = (block_of(e.from), block_of(e.to));
        if a != b {
            out.push((a, b));
        }
    }
    for (ni, node) in dfg.nodes.iter().enumerate() {
        if matches!(node.kind, NodeKind::ChangeTagDyn) {
            for t in dyn_targets(dfg, NodeId(ni as u32)) {
                let (a, b) = (node.block.0, block_of(t.node));
                if a != b {
                    out.push((a, b));
                }
            }
        }
    }
    out
}

/// Partitions `dfg`'s blocks into (at most) `k` shards.
///
/// `colocate` lists block pairs that must land in the same shard (the
/// P-pass feeds undecided memory pairs here). The result is deterministic
/// in `(dfg, k, seed, colocate)`.
pub fn partition(dfg: &Dfg, k: usize, seed: u64, colocate: &[(BlockId, BlockId)]) -> ShardPlan {
    let nb = dfg.blocks.len();
    let requested = k.clamp(1, MAX_SHARDS);
    if nb == 0 {
        return ShardPlan {
            requested,
            shards: 0,
            seed,
            assign: Vec::new(),
            cut_edges: 0,
            inter_edges: 0,
            colocated: Vec::new(),
        };
    }

    // Union-find over co-location constraints → clusters, each represented
    // by its lowest block id.
    let mut parent: Vec<usize> = (0..nb).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut colocated: Vec<(BlockId, BlockId)> = Vec::new();
    for &(a, b) in colocate {
        let (ai, bi) = (a.0 as usize, b.0 as usize);
        if ai >= nb || bi >= nb || ai == bi {
            continue;
        }
        colocated.push((BlockId(a.0.min(b.0)), BlockId(a.0.max(b.0))));
        let (ra, rb) = (find(&mut parent, ai), find(&mut parent, bi));
        if ra != rb {
            // Lower id becomes the representative: keeps cluster ids stable.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi] = lo;
        }
    }
    colocated.sort();
    colocated.dedup();
    let cluster_of: Vec<usize> = (0..nb).map(|b| find(&mut parent, b)).collect();
    let mut clusters: Vec<usize> = cluster_of.clone();
    clusters.sort_unstable();
    clusters.dedup();
    let cluster_idx = |c: usize| clusters.binary_search(&c).unwrap();

    // Cluster-level weighted graph.
    let nc = clusters.len();
    let inter = inter_block_edges(dfg);
    let inter_edges = inter.len() as u64;
    let mut cweight = vec![0u64; nc]; // wired ports per cluster
    for b in 0..nb {
        cweight[cluster_idx(cluster_of[b])] += block_ports(dfg, b);
    }
    // Symmetric cluster-pair edge weights, as a sorted dense-ish list.
    let mut wedges: Vec<((usize, usize), u64)> = Vec::new();
    for &(a, b) in &inter {
        let (ca, cb) = (cluster_idx(cluster_of[a as usize]), cluster_idx(cluster_of[b as usize]));
        if ca == cb {
            continue;
        }
        let key = (ca.min(cb), ca.max(cb));
        match wedges.iter_mut().find(|(k2, _)| *k2 == key) {
            Some((_, w)) => *w += 1,
            None => wedges.push((key, 1)),
        }
    }
    wedges.sort();
    let neighbors = |c: usize| {
        wedges.iter().filter_map(move |&((a, b), w)| {
            if a == c {
                Some((b, w))
            } else if b == c {
                Some((a, w))
            } else {
                None
            }
        })
    };

    let k_eff = requested.min(nc).max(1);
    let total_weight: u64 = cweight.iter().sum();
    // Soft balance cap: a shard may exceed the even split by 25% (plus the
    // incoming cluster) before greedy assignment starts avoiding it.
    let cap = (total_weight / k_eff as u64).max(1) * 5 / 4 + 1;

    // Greedy seeded assignment: clusters in order of descending incident
    // edge weight (then ascending id) each go to the shard maximizing
    // connectivity, preferring under-cap shards; ties resolved by load,
    // then by the seeded hash.
    let mut order: Vec<usize> = (0..nc).collect();
    let incident: Vec<u64> = (0..nc).map(|c| neighbors(c).map(|(_, w)| w).sum()).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(incident[c]), c));

    let mut shard_of_cluster = vec![usize::MAX; nc];
    let mut load = vec![0u64; k_eff];
    for &c in &order {
        let mut gain = vec![0u64; k_eff];
        for (n, w) in neighbors(c) {
            if shard_of_cluster[n] != usize::MAX {
                gain[shard_of_cluster[n]] += w;
            }
        }
        let score = |s: usize| {
            let over = load[s] + cweight[c] > cap;
            // Lexicographic: respect the cap, maximize gain, minimize load,
            // break ties with the seeded hash.
            (
                over,
                std::cmp::Reverse(gain[s]),
                load[s],
                mix64(seed ^ (c as u64).wrapping_mul(0x9e3779b1) ^ s as u64),
            )
        };
        let best = (0..k_eff).min_by_key(|&s| score(s)).unwrap_or(0);
        shard_of_cluster[c] = best;
        load[best] += cweight[c];
    }

    // KL-style refinement: hill-climb single-cluster moves that strictly
    // reduce the cut weight (or keep it equal while improving balance),
    // bounded passes, deterministic scan order. Moves must respect the
    // balance cap — otherwise any connected graph collapses into one shard
    // (cut 0 is always the hill-climb optimum), undoing the greedy spread.
    for _pass in 0..8 {
        let mut moved = false;
        for c in 0..nc {
            let s = shard_of_cluster[c];
            let mut gain = vec![0u64; k_eff];
            for (n, w) in neighbors(c) {
                gain[shard_of_cluster[n]] += w;
            }
            let mut best: Option<(usize, u64)> = None; // (target, gain)
            for t in 0..k_eff {
                if t == s || load[t] + cweight[c] > cap {
                    continue;
                }
                let better_cut = gain[t] > gain[s];
                let same_cut_better_balance = gain[t] == gain[s] && load[s] > load[t] + cweight[c];
                if (better_cut || same_cut_better_balance)
                    && best.map(|(_, g)| gain[t] > g).unwrap_or(true)
                {
                    best = Some((t, gain[t]));
                }
            }
            if let Some((t, _)) = best {
                shard_of_cluster[c] = t;
                load[s] -= cweight[c];
                load[t] += cweight[c];
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    // Canonical renumbering: shards ordered by their lowest block id;
    // empty shards dropped.
    let mut remap = vec![u32::MAX; k_eff];
    let mut next = 0u32;
    for b in 0..nb {
        let s = shard_of_cluster[cluster_idx(cluster_of[b])];
        if remap[s] == u32::MAX {
            remap[s] = next;
            next += 1;
        }
    }
    let assign: Vec<u32> =
        (0..nb).map(|b| remap[shard_of_cluster[cluster_idx(cluster_of[b])]]).collect();
    let cut_edges =
        inter.iter().filter(|&&(a, b)| assign[a as usize] != assign[b as usize]).count() as u64;

    ShardPlan { requested, shards: next as usize, seed, assign, cut_edges, inter_edges, colocated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::{Operand, Program};

    fn nested_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("outer", [0, 0]);
        let c = f.lt(i, 4);
        f.begin_body(c);
        let [j, a, ii] = f.begin_loop("inner", [Operand::Const(0), acc, i]);
        let cj = f.lt(j, ii);
        f.begin_body(cj);
        let a2 = f.add(a, j);
        let j2 = f.add(j, 1);
        let [a3] = f.end_loop([j2, a2, ii], [a]);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, a3], [acc]);
        pb.finish(f, [out])
    }

    #[test]
    fn partition_is_total_and_respects_k() {
        let dfg = lower_tagged(&nested_loop(), TaggingDiscipline::Tyr).unwrap();
        let plan = partition(&dfg, 2, 5, &[]);
        assert_eq!(plan.assign.len(), dfg.blocks.len());
        assert!(plan.shards <= 2);
        assert!(plan.shards >= 1);
        assert!(plan.cut_edges <= plan.inter_edges);
    }

    #[test]
    fn partition_is_deterministic() {
        let dfg = lower_tagged(&nested_loop(), TaggingDiscipline::Tyr).unwrap();
        let a = partition(&dfg, 3, 42, &[]);
        let b = partition(&dfg, 3, 42, &[]);
        assert_eq!(a, b);
        assert_eq!(a.render(&dfg), b.render(&dfg));
    }

    #[test]
    fn colocation_constraints_are_honored() {
        let dfg = lower_tagged(&nested_loop(), TaggingDiscipline::Tyr).unwrap();
        let nb = dfg.blocks.len();
        assert!(nb >= 3, "expected root + two loop blocks, got {nb}");
        let pair = (BlockId(1), BlockId(2));
        let plan = partition(&dfg, nb, 7, &[pair]);
        assert_eq!(plan.shard_of(pair.0), plan.shard_of(pair.1));
        assert_eq!(plan.colocated, vec![pair]);
    }

    #[test]
    fn k_one_means_no_cut() {
        let dfg = lower_tagged(&nested_loop(), TaggingDiscipline::Tyr).unwrap();
        let plan = partition(&dfg, 1, 0, &[]);
        assert_eq!(plan.shards, 1);
        assert_eq!(plan.cut_edges, 0);
    }
}
