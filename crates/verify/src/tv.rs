//! Translation validation: every lowering, checked against the reference
//! interpreter on concrete inputs.
//!
//! The static passes argue about graph *shape*; translation validation
//! closes the loop on *meaning* (WaveCert-style, per PAPERS.md): run the
//! structured-IR interpreter as the oracle, then run each lowered graph on
//! its engine and demand identical returns — and, for the barriered TYR
//! lowering, identical final memory in every named segment. A divergence,
//! fault, or deadlock is reported as an `X`-series diagnostic naming the
//! lowering and configuration, not a panic, so one bad lowering does not
//! mask another.
//!
//! Configurations exercised per program:
//!
//! | lowering            | engine         | tag policy            |
//! |---------------------|----------------|-----------------------|
//! | tyr                 | tagged         | `Local(2)` (Theorem 1 minimum) |
//! | tyr                 | tagged         | `Local(64)` (the paper's default) |
//! | unordered-unbounded | tagged         | `GlobalUnbounded`     |
//! | ordered             | ordered        | —                     |

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_ir::{interp, MemoryImage, Program, Value};
use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_sim::RunResult;

use crate::diag::{Code, Diagnostic, Report};

/// Validates all lowerings of `program` against the interpreter, on
/// `mem`/`args` as the concrete input. The report title is
/// `"{title} (tv)"`.
pub fn validate_translations(
    title: &str,
    program: &Program,
    mem: &MemoryImage,
    args: &[Value],
) -> Report {
    let mut report = Report::new(format!("{title} (tv)"));

    let mut oracle_mem = mem.clone();
    let oracle = match interp::run(program, &mut oracle_mem, args) {
        Ok(o) => o,
        Err(e) => {
            report.push(Diagnostic::global(
                Code::TvFault,
                format!("reference interpreter faulted, nothing to validate against: {e}"),
            ));
            return report;
        }
    };

    // TYR lowering under the Theorem-1 minimum and the paper's default.
    match lower_tagged(program, TaggingDiscipline::Tyr) {
        Ok(dfg) => {
            for tags in [2usize, 64] {
                let what = format!("tyr/local({tags})");
                let cfg = TaggedConfig {
                    tag_policy: TagPolicy::local(tags),
                    args: args.to_vec(),
                    ..TaggedConfig::default()
                };
                match TaggedEngine::new(&dfg, mem.clone(), cfg).run() {
                    Ok(r) => {
                        check_result(&mut report, &what, &r, &oracle.returns, Some(&oracle_mem))
                    }
                    Err(e) => push_fault(&mut report, &what, &e.to_string()),
                }
            }
        }
        Err(e) => push_fault(&mut report, "tyr lowering", &e.to_string()),
    }

    // Naïve unordered elaboration with unlimited tags.
    match lower_tagged(program, TaggingDiscipline::UnorderedUnbounded) {
        Ok(dfg) => {
            let cfg = TaggedConfig {
                tag_policy: TagPolicy::GlobalUnbounded,
                args: args.to_vec(),
                ..TaggedConfig::default()
            };
            match TaggedEngine::new(&dfg, mem.clone(), cfg).run() {
                Ok(r) => {
                    check_result(&mut report, "unordered/unbounded", &r, &oracle.returns, None)
                }
                Err(e) => push_fault(&mut report, "unordered/unbounded", &e.to_string()),
            }
        }
        Err(e) => push_fault(&mut report, "unordered lowering", &e.to_string()),
    }

    // Ordered dataflow (inlines calls internally).
    match lower_ordered(program) {
        Ok(dfg) => {
            let cfg = OrderedConfig { args: args.to_vec(), ..OrderedConfig::default() };
            match OrderedEngine::new(&dfg, mem.clone(), cfg).run() {
                Ok(r) => check_result(&mut report, "ordered", &r, &oracle.returns, None),
                Err(e) => push_fault(&mut report, "ordered", &e.to_string()),
            }
        }
        Err(e) => push_fault(&mut report, "ordered lowering", &e.to_string()),
    }

    report
}

fn push_fault(report: &mut Report, what: &str, err: &str) {
    report.push(Diagnostic::global(
        Code::TvFault,
        format!("{what}: faulted where the interpreter succeeded: {err}"),
    ));
}

fn check_result(
    report: &mut Report,
    what: &str,
    r: &RunResult,
    want_returns: &[Value],
    want_mem: Option<&MemoryImage>,
) {
    if !r.is_complete() {
        report.push(Diagnostic::global(
            Code::TvDeadlock,
            format!("{what}: did not complete: {:?}", r.outcome),
        ));
        return;
    }
    if r.returns != want_returns {
        report.push(Diagnostic::global(
            Code::TvDivergence,
            format!("{what}: returns {:?}, interpreter returned {:?}", r.returns, want_returns),
        ));
    }
    if let Some(want) = want_mem {
        for (name, aref) in want.arrays() {
            if r.memory().slice(aref) != want.slice(aref) {
                report.push(Diagnostic::global(
                    Code::TvDivergence,
                    format!(
                        "{what}: final contents of segment '{name}' differ from the interpreter"
                    ),
                ));
            }
        }
    }
}
