//! The working-set pass (`W…`): static peak-live-state and footprint
//! bounds — the compile-time half of the paper's locality claim.
//!
//! The paper's Fig. 14 measures live state *dynamically*; this pass proves
//! the same shape statically:
//!
//! * **W001** ([`check_live_state`]) — per concurrent block, peak token-
//!   store occupancy is bounded by the block's wired-input port count (each
//!   `(node, port)` cell holds at most one token per tag) times its
//!   concurrent-instance bound under the tag policy (the space's tag count;
//!   Theorem 1's pool is also a live-state cap). The root context is unique,
//!   so the root bound is just its port count.
//! * **W002** ([`check_footprint`]) — per block instance, the memory
//!   footprint from the strided-interval index sets widened into per-segment
//!   address intervals ([`crate::absint::footprint`]); an access with no
//!   segment provenance makes the block input-scaled and is reported as the
//!   witness at warning severity.
//! * **W003** ([`compare_elaborations`]) — the headline verdict: the total
//!   W001 bound under local tag spaces versus a bounded global pool versus
//!   the ordered elaboration's FIFO capacity, with the shrink ratio. Local
//!   spaces provably shrink the bound whenever any non-root space's tag
//!   count is below the shared pool size.
//! * **W004** ([`check_edge_residency`]) — per-edge token residency for
//!   ordered lowerings, summarized from the O-pass's recommended
//!   occupancies with the most imbalanced port as witness.
//!
//! Every bound here is cross-validated against the dynamic reuse tracker
//! (`tyr_stats::locality`) by `repro verify`: the static number must
//! dominate what the matching engine actually observes.

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_dfg::{BlockId, Dfg, InKind, NodeKind, ROOT_BLOCK};
use tyr_ir::{MemoryImage, Program, Value};
use tyr_sim::ordered::ChannelCapacity;
use tyr_sim::tagged::TagPolicy;

use crate::absint::footprint::{analyze_footprint, FootprintAnalysis};
use crate::absint::occupancy::analyze_channel_depths;
use crate::absint::EdgeMaps;
use crate::diag::{Code, Diagnostic, Severity};
use crate::passes::analyze_tag_demand;

/// Concurrent-instance bound of one block under a tag policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instances {
    /// A finite bound (1 for the root context, the tag count otherwise).
    Bounded(u64),
    /// No bound (unbounded tag generation).
    Unbounded,
}

/// The static live-state bound of one concurrent block.
#[derive(Debug, Clone)]
pub struct BlockLiveBound {
    /// The block.
    pub block: BlockId,
    /// Its name.
    pub name: String,
    /// Token-store capacity of one context: the number of wired input
    /// ports across the block's nodes.
    pub ports: u64,
    /// Concurrent-instance bound under the policy.
    pub instances: Instances,
    /// `ports × instances`, `None` when unbounded.
    pub bound: Option<u64>,
}

/// The whole-graph live-state bound: one entry per block, in block order.
#[derive(Debug, Clone, Default)]
pub struct LiveStateBound {
    /// Per-block bounds.
    pub per_block: Vec<BlockLiveBound>,
}

impl LiveStateBound {
    /// Total peak-live-state bound; `None` if any block is unbounded.
    pub fn total(&self) -> Option<u64> {
        self.per_block.iter().map(|b| b.bound).sum()
    }

    /// The bound for the block named `name`, if finite.
    pub fn for_block(&self, name: &str) -> Option<u64> {
        self.per_block.iter().find(|b| b.name == name).and_then(|b| b.bound)
    }
}

/// Computes per-block peak live-state bounds for `dfg` under `policy`.
pub fn analyze_live_state(dfg: &Dfg, policy: &TagPolicy) -> LiveStateBound {
    let demand = analyze_tag_demand(dfg);
    let allocated = |b: BlockId| demand.for_space(b).is_some();
    let uses_newtag = dfg.nodes.iter().any(|n| matches!(n.kind, NodeKind::NewTag));

    let mut ports = vec![0u64; dfg.blocks.len()];
    for n in &dfg.nodes {
        if let Some(p) = ports.get_mut(n.block.0 as usize) {
            *p += n.ins.iter().filter(|i| matches!(i, InKind::Wire)).count() as u64;
        }
    }

    let per_block = dfg
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, info)| {
            let block = BlockId(bi as u32);
            let instances = if block == ROOT_BLOCK {
                Instances::Bounded(1)
            } else if uses_newtag {
                // Unbounded tag generation: fresh contexts at will.
                Instances::Unbounded
            } else if allocated(block) {
                match policy {
                    TagPolicy::Local { default_tags, overrides } => {
                        let tags = overrides
                            .iter()
                            .find(|(n, _)| n == &info.name)
                            .map(|&(_, t)| t)
                            .unwrap_or(*default_tags)
                            .max(1);
                        Instances::Bounded(tags as u64)
                    }
                    TagPolicy::GlobalBounded { tags } => Instances::Bounded(*tags as u64),
                    TagPolicy::GlobalUnbounded => Instances::Unbounded,
                }
            } else {
                // Never an allocation target: only the root context's tag
                // ever reaches it.
                Instances::Bounded(1)
            };
            let bound = match instances {
                Instances::Bounded(i) => Some(ports[bi] * i),
                Instances::Unbounded => None,
            };
            BlockLiveBound { block, name: info.name.clone(), ports: ports[bi], instances, bound }
        })
        .collect();
    LiveStateBound { per_block }
}

/// W001: one note per block stating its peak live-state bound, plus a
/// graph total.
pub fn check_live_state(dfg: &Dfg, policy: &TagPolicy) -> Vec<Diagnostic> {
    let bounds = analyze_live_state(dfg, policy);
    let mut out = Vec::new();
    for b in &bounds.per_block {
        let msg = match (b.instances, b.bound) {
            (Instances::Bounded(i), Some(bound)) => format!(
                "peak live state <= {bound} token(s) ({} wired port(s) x {i} concurrent \
                 instance(s))",
                b.ports
            ),
            _ => format!(
                "peak live state unbounded: {} wired port(s) x unbounded concurrent instances",
                b.ports
            ),
        };
        out.push(Diagnostic::at_block(Code::BlockLiveState, dfg, b.block, msg));
    }
    let total = match bounds.total() {
        Some(t) => format!("graph peak live state <= {t} token(s) under this tag policy"),
        None => "graph peak live state is unbounded under this tag policy".to_string(),
    };
    out.push(Diagnostic::global(Code::BlockLiveState, total));
    out
}

/// W002: per-block footprint bounds (notes), with provenance-free accesses
/// raised to warnings carrying the offending load/store as witness.
pub fn check_footprint(dfg: &Dfg, mem: &MemoryImage, args: &[Value]) -> Vec<Diagnostic> {
    let fp = analyze_footprint(dfg, mem, args);
    footprint_diags(dfg, &fp)
}

/// Renders an already-computed [`FootprintAnalysis`] into W002 diagnostics
/// (split out so callers that need the raw bounds don't run the analysis
/// twice).
pub fn footprint_diags(dfg: &Dfg, fp: &FootprintAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for b in &fp.per_block {
        for u in &b.unbounded {
            let mut d = Diagnostic::at_node(
                Code::FootprintBound,
                dfg,
                u.node,
                format!(
                    "{} address has no segment provenance: the block's working set \
                     scales with the input",
                    if u.write { "store" } else { "load" }
                ),
            );
            d.severity = Severity::Warning;
            out.push(d);
        }
        let segs: Vec<String> = b.segments.iter().map(|(n, w)| format!("{n}:{w}w")).collect();
        out.push(Diagnostic::at_block(
            Code::FootprintBound,
            dfg,
            b.block,
            format!(
                "memory footprint per instance <= {} word(s) / {} line(s){}{}",
                b.words,
                b.lines,
                if segs.is_empty() { String::new() } else { format!(" [{}]", segs.join(", ")) },
                if b.unbounded.is_empty() { "" } else { " (bounded accesses only)" },
            ),
        ));
    }
    out
}

/// W004: per-edge token residency of an ordered lowering, from the O-pass.
pub fn check_edge_residency(dfg: &Dfg) -> Vec<Diagnostic> {
    let maps = EdgeMaps::new(dfg);
    let depths = analyze_channel_depths(dfg, &maps);
    let mut fed = 0u64;
    let mut total = 0u64;
    let mut worst: Option<(usize, usize, usize)> = None; // (node, port, recommended)
    for (ni, node) in dfg.nodes.iter().enumerate() {
        for p in 0..node.ins.len() {
            let r = depths.recommended[ni][p];
            if depths.min[ni][p] == 0 {
                continue;
            }
            fed += 1;
            total += r as u64;
            if worst.map(|(_, _, w)| r > w).unwrap_or(true) {
                worst = Some((ni, p, r));
            }
        }
    }
    let mut out = Vec::new();
    match worst {
        Some((ni, p, r)) => out.push(Diagnostic::global(
            Code::EdgeResidency,
            format!(
                "edge token residency: {fed} fed port(s), total recommended occupancy \
                 {total} token(s); deepest residency at '{}' in{p} ({r} token(s))",
                dfg.nodes[ni].label
            ),
        )),
        None => out.push(Diagnostic::global(
            Code::EdgeResidency,
            "edge token residency: no fed ports (empty or dead graph)".to_string(),
        )),
    }
    out
}

/// The statically predicted peak-live-state bounds of one program's three
/// bounded elaborations (the W003 comparison).
#[derive(Debug, Clone)]
pub struct ElaborationBounds {
    /// Tagged elaboration under the given *local* tag policy.
    pub local: Option<u64>,
    /// The same graph under a bounded global pool of `pool` tags.
    pub global: Option<u64>,
    /// The pool size used for the global bound.
    pub pool: usize,
    /// Ordered elaboration: total FIFO capacity over live fed ports.
    pub ordered: u64,
}

impl ElaborationBounds {
    /// The headline verdict: local tag spaces yield a strictly smaller
    /// bound than the shared global pool.
    pub fn local_shrinks(&self) -> bool {
        match (self.local, self.global) {
            (Some(l), Some(g)) => l < g,
            (Some(_), None) => true,
            _ => false,
        }
    }
}

/// W003: lowers `program` to its tagged and ordered elaborations and
/// compares the statically predicted peak live state of local tag spaces,
/// a bounded global pool of `pool` tags, and the ordered FIFO machine.
///
/// # Errors
///
/// Returns the lowering error message if either elaboration fails.
pub fn compare_elaborations(
    program: &Program,
    local: &TagPolicy,
    pool: usize,
    caps: &ChannelCapacity,
) -> Result<(ElaborationBounds, Vec<Diagnostic>), String> {
    let tagged = lower_tagged(program, TaggingDiscipline::Tyr).map_err(|e| e.to_string())?;
    let ordered = lower_ordered(program).map_err(|e| e.to_string())?;

    let local_bound = analyze_live_state(&tagged, local).total();
    let global_bound =
        analyze_live_state(&tagged, &TagPolicy::GlobalBounded { tags: pool }).total();
    let ordered_bound = ordered_live_bound(&ordered, caps);

    let bounds = ElaborationBounds {
        local: local_bound,
        global: global_bound,
        pool,
        ordered: ordered_bound,
    };
    let fmt = |b: Option<u64>| match b {
        Some(v) => v.to_string(),
        None => "unbounded".to_string(),
    };
    let verdict = if bounds.local_shrinks() {
        let ratio = match (bounds.local, bounds.global) {
            (Some(l), Some(g)) if l > 0 => format!("{:.2}x", g as f64 / l as f64),
            _ => "inf".to_string(),
        };
        format!("local tag spaces provably shrink the bound ({ratio} smaller)")
    } else {
        "local tag spaces do not shrink the bound on this graph".to_string()
    };
    let diag = Diagnostic::global(
        Code::ElaborationComparison,
        format!(
            "predicted peak live state: tagged-local <= {}, tagged-global(pool={}) <= {}, \
             ordered <= {} token(s); {verdict}",
            fmt(bounds.local),
            pool,
            fmt(bounds.global),
            bounds.ordered,
        ),
    );
    Ok((bounds, vec![diag]))
}

/// Peak live-token bound of an ordered elaboration under `caps`: every
/// token sits in some input FIFO, so the sum of capacities over live fed
/// ports bounds occupancy (sound for unit memory latency, where load
/// results are forwarded in the firing cycle).
pub fn ordered_live_bound(dfg: &Dfg, caps: &ChannelCapacity) -> u64 {
    let maps = EdgeMaps::new(dfg);
    let depths = analyze_channel_depths(dfg, &maps);
    let mut total = 0u64;
    for (ni, node) in dfg.nodes.iter().enumerate() {
        for p in 0..node.ins.len() {
            if depths.min[ni][p] > 0 {
                total += caps.of(ni as u32, p as u16) as u64;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::Operand;

    fn nested_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("outer", [0, 0]);
        let c = f.lt(i, 4);
        f.begin_body(c);
        let [j, a, ii] = f.begin_loop("inner", [Operand::Const(0), acc, i]);
        let cj = f.lt(j, ii);
        f.begin_body(cj);
        let a2 = f.add(a, j);
        let j2 = f.add(j, 1);
        let [a3] = f.end_loop([j2, a2, ii], [a]);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, a3], [acc]);
        pb.finish(f, [out])
    }

    #[test]
    fn local_bound_scales_with_tags_and_root_is_unique() {
        let dfg = lower_tagged(&nested_loop(), TaggingDiscipline::Tyr).unwrap();
        let two = analyze_live_state(&dfg, &TagPolicy::local(2));
        let four = analyze_live_state(&dfg, &TagPolicy::local(4));
        let (t2, t4) = (two.total().unwrap(), four.total().unwrap());
        assert!(t2 < t4, "{t2} vs {t4}");
        // Root context is unique: its bound equals its port count.
        let root = &two.per_block[0];
        assert_eq!(root.instances, Instances::Bounded(1));
        assert_eq!(root.bound, Some(root.ports));
    }

    #[test]
    fn global_pool_bound_dominates_local() {
        let dfg = lower_tagged(&nested_loop(), TaggingDiscipline::Tyr).unwrap();
        let local = analyze_live_state(&dfg, &TagPolicy::local(2)).total().unwrap();
        let global =
            analyze_live_state(&dfg, &TagPolicy::GlobalBounded { tags: 8 }).total().unwrap();
        assert!(local < global, "{local} vs {global}");
    }

    #[test]
    fn unbounded_policy_has_no_total() {
        let dfg = lower_tagged(&nested_loop(), TaggingDiscipline::Tyr).unwrap();
        let b = analyze_live_state(&dfg, &TagPolicy::GlobalUnbounded);
        assert!(b.total().is_none());
        // Per-block entries still carry the port counts.
        assert!(b.per_block.iter().any(|bl| bl.ports > 0));
    }

    #[test]
    fn comparison_verdict_matches_the_paper() {
        let caps = ChannelCapacity::uniform(4);
        let (bounds, diags) =
            compare_elaborations(&nested_loop(), &TagPolicy::local(2), 8, &caps).unwrap();
        assert!(bounds.local_shrinks(), "{bounds:?}");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("provably shrink"), "{}", diags[0].message);
    }

    #[test]
    fn residency_reports_a_witness() {
        let dfg = lower_ordered(&nested_loop()).unwrap();
        let diags = check_edge_residency(&dfg);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("fed port(s)"), "{}", diags[0].message);
    }
}
