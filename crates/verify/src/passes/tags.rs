//! Static tag-demand analysis (Theorem 1 and Fig. 11, decided without
//! simulating).
//!
//! **Local spaces.** An `allocate` with reservation `r` needs `free > r`
//! tags in its space before it may pop, so a space's static minimum is
//! `1 + max r` over the allocates targeting it — 2 for loop spaces (the
//! external-edge allocate reserves one for the backedge), 1 for call-only
//! spaces. Configuring fewer tags than that is a guaranteed deadlock;
//! Theorem 1 says meeting it is also sufficient.
//!
//! **Bounded global pool.** The FCFS pool has no per-edge reservations, so
//! the flat analogue is the *sum* of space demands: below that, whether the
//! program completes depends on allocation interleaving. Worse, if an
//! allocate targeting space `c` itself *resides in* an allocated block
//! (allocation nesting: inner loops, calls from loops), concurrent demand
//! scales with trip counts — every outer context holds a tag while its
//! inner contexts request more, and a large enough input exhausts any fixed
//! pool with all holders waiting on each other. That is exactly the Fig. 11
//! deadlock, and it is decidable from the graph shape alone: report
//! [`GlobalPrediction::DeadlockNested`]. Self-allocation (a loop's tail
//! allocate lives in the block it allocates, replacing its own tag) is not
//! nesting and is excluded.

use tyr_dfg::{BlockId, Dfg, NodeKind, ROOT_BLOCK};
use tyr_sim::tagged::TagPolicy;

use crate::diag::{Code, Diagnostic};

/// Per-graph static tag requirements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagDemand {
    /// `(space, minimum tags)` for every space that is allocated from,
    /// in block order. The minimum is `1 + max reserve` over the space's
    /// allocates.
    pub per_space: Vec<(BlockId, usize)>,
    /// Whether any allocate resides in a block that is itself an allocation
    /// target (inner loops, calls from loops) — the shape that makes
    /// bounded global pools deadlock on large inputs.
    pub nested: bool,
}

impl TagDemand {
    /// The flat concurrent demand: sum of per-space minimums. A bounded
    /// global pool below this may deadlock even without nesting.
    pub fn flat_demand(&self) -> usize {
        self.per_space.iter().map(|&(_, d)| d).sum()
    }

    /// Minimum tags for `space`, if it is allocated from.
    pub fn for_space(&self, space: BlockId) -> Option<usize> {
        self.per_space.iter().find(|&&(s, _)| s == space).map(|&(_, d)| d)
    }
}

/// Computes the static tag demand of a lowered graph.
pub fn analyze_tag_demand(dfg: &Dfg) -> TagDemand {
    let mut per_space: Vec<(BlockId, usize)> = Vec::new();
    for n in &dfg.nodes {
        if let NodeKind::Allocate { space, kind } = &n.kind {
            let need = 1 + kind.reserve();
            match per_space.iter_mut().find(|(s, _)| s == space) {
                Some((_, d)) => *d = (*d).max(need),
                None => per_space.push((*space, need)),
            }
        }
    }
    per_space.sort_by_key(|&(s, _)| s.0);

    let is_target = |b: BlockId| per_space.iter().any(|&(s, _)| s == b);
    let nested = dfg.nodes.iter().any(|n| match &n.kind {
        NodeKind::Allocate { space, .. } => {
            n.block != *space && n.block != ROOT_BLOCK && is_target(n.block)
        }
        _ => false,
    });
    TagDemand { per_space, nested }
}

/// What the analysis predicts for a bounded global pool of a given size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalPrediction {
    /// Pool covers the flat demand and there is no allocation nesting.
    Safe,
    /// Pool is below the flat demand: completion depends on FCFS
    /// interleaving.
    MayDeadlock,
    /// Allocation nesting: concurrent demand grows with trip counts, so the
    /// pool deadlocks once the input is large enough (Fig. 11).
    DeadlockNested,
}

/// Predicts the fate of running this graph's allocations against a bounded
/// global FCFS pool of `pool` tags.
pub fn predict_global(demand: &TagDemand, pool: usize) -> GlobalPrediction {
    if demand.nested {
        GlobalPrediction::DeadlockNested
    } else if pool < demand.flat_demand() {
        GlobalPrediction::MayDeadlock
    } else {
        GlobalPrediction::Safe
    }
}

/// Checks a concrete [`TagPolicy`] against the graph's static demand.
pub fn check_tag_policy(dfg: &Dfg, policy: &TagPolicy) -> Vec<Diagnostic> {
    let demand = analyze_tag_demand(dfg);
    let mut out = Vec::new();
    match policy {
        TagPolicy::Local { default_tags, overrides } => {
            for &(space, need) in &demand.per_space {
                let name = dfg.blocks.get(space.0 as usize).map(|b| b.name.as_str());
                let tags = name
                    .and_then(|nm| overrides.iter().find(|(o, _)| o == nm))
                    .map(|&(_, t)| t)
                    .unwrap_or(*default_tags)
                    .max(1);
                if tags < need {
                    out.push(Diagnostic::at_block(
                        Code::InsufficientTags,
                        dfg,
                        space,
                        format!(
                            "tag space has {tags} tag(s) but statically needs {need} \
                             (1 + max allocate reservation); the engine will deadlock"
                        ),
                    ));
                }
            }
        }
        TagPolicy::GlobalBounded { tags } => match predict_global(&demand, *tags) {
            GlobalPrediction::Safe => {}
            GlobalPrediction::MayDeadlock => out.push(Diagnostic::global(
                Code::GlobalPoolTooSmall,
                format!(
                    "global pool of {tags} tag(s) is below the flat demand of {} \
                     ({} allocated space(s)); completion depends on FCFS interleaving",
                    demand.flat_demand(),
                    demand.per_space.len()
                ),
            )),
            GlobalPrediction::DeadlockNested => out.push(Diagnostic::global(
                Code::NestedGlobalAlloc,
                format!(
                    "allocation nesting under a bounded global pool of {tags} tag(s): \
                     concurrent demand scales with trip counts, so a large enough input \
                     deadlocks (Fig. 11)"
                ),
            )),
        },
        TagPolicy::GlobalUnbounded => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::Program;

    /// `predict_global` is exact at the flat-demand boundary: a pool equal
    /// to the flat demand is safe, one below it is not.
    #[test]
    fn predict_global_is_tight_at_the_flat_demand_boundary() {
        let demand = TagDemand { per_space: vec![(BlockId(1), 2), (BlockId(2), 1)], nested: false };
        let flat = demand.flat_demand();
        assert_eq!(flat, 3);
        assert_eq!(predict_global(&demand, flat), GlobalPrediction::Safe);
        assert_eq!(predict_global(&demand, flat - 1), GlobalPrediction::MayDeadlock);
        // Nesting dominates: even a generous pool is doomed (Fig. 11).
        let nested = TagDemand { nested: true, ..demand };
        assert_eq!(predict_global(&nested, flat * 100), GlobalPrediction::DeadlockNested);
    }

    fn flat_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("l", [0]);
        let c = f.lt(i, 10);
        f.begin_body(c);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2], [i]);
        pb.finish(f, [out])
    }

    fn nested_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("outer", [0, 0]);
        let c = f.lt(i, 4);
        f.begin_body(c);
        let [j, a, ii] = f.begin_loop("inner", [0.into(), acc, i]);
        let cj = f.lt(j, ii);
        f.begin_body(cj);
        let a2 = f.add(a, j);
        let j2 = f.add(j, 1);
        let [a3] = f.end_loop([j2, a2, ii], [a]);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, a3], [acc]);
        pb.finish(f, [out])
    }

    /// A single flat loop has a *tail* allocate living in the very block it
    /// allocates (it replaces its own tag). That self-allocation is not
    /// nesting — only an allocate residing in a *different* allocated block
    /// scales demand with trip counts.
    #[test]
    fn self_allocation_is_not_nesting() {
        let dfg = lower_tagged(&flat_loop(), TaggingDiscipline::Tyr).unwrap();
        let demand = analyze_tag_demand(&dfg);
        // The loop's space is allocated from (external edge reserves one
        // for the backedge → minimum 2)...
        assert_eq!(demand.per_space.len(), 1);
        assert_eq!(demand.per_space[0].1, 2);
        // ...and the tail allocate sits in that same block:
        assert!(dfg.nodes.iter().any(|n| matches!(
            &n.kind,
            NodeKind::Allocate { space, .. } if n.block == *space
        )));
        // yet the graph is not "nested" — a pool covering the flat demand
        // is predicted safe.
        assert!(!demand.nested);
        assert_eq!(predict_global(&demand, demand.flat_demand()), GlobalPrediction::Safe);
    }

    /// A genuinely nested loop trips the Fig. 11 predictor regardless of
    /// pool size.
    #[test]
    fn inner_loops_are_nesting() {
        let dfg = lower_tagged(&nested_loop(), TaggingDiscipline::Tyr).unwrap();
        let demand = analyze_tag_demand(&dfg);
        assert!(demand.nested);
        assert_eq!(predict_global(&demand, 1_000_000), GlobalPrediction::DeadlockNested);
    }
}
