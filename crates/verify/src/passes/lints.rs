//! Token-lifecycle lints: dead graph regions and unrecyclable tags.
//!
//! * [`Code::DanglingOutput`] (note) — a value-producing node whose result
//!   is never consumed. Harmless (the token still dies with its context in
//!   barriered lowerings) but wasteful: it occupies an issue slot and
//!   waiting-matching space every firing.
//! * [`Code::UnreachableNode`] (warning) — a node no token from the source
//!   can ever reach; it will never fire, and anything strict on its output
//!   (the sink included) can never complete. Reachability includes the
//!   synthesized `changeTag.dyn` routing edges — call-return landing pads
//!   are fed dynamically, not by static wires.
//! * [`Code::AllocNoFree`] (error) — an `allocate` from which no `free` of
//!   the same space is forward-reachable: the context's tag can never be
//!   recycled, so the space's pool drains monotonically and a long enough
//!   run deadlocks. Vacuous in barrierless (unordered-unbounded) graphs.

use tyr_dfg::{Dfg, NodeId, NodeKind};

use crate::absint::EdgeMaps;
use crate::diag::{Code, Diagnostic};
use crate::passes::reach;

/// Runs the lifecycle lints.
pub fn check_lints(dfg: &Dfg) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let maps = EdgeMaps::new(dfg);

    // L001: dangling data outputs.
    for (ni, n) in dfg.nodes.iter().enumerate() {
        let value_producing = matches!(
            n.kind,
            NodeKind::Alu(_)
                | NodeKind::Load
                | NodeKind::Select
                | NodeKind::Merge
                | NodeKind::Join
                | NodeKind::ExtractTag
                | NodeKind::NewTag
                | NodeKind::Const(_)
                | NodeKind::CMerge { .. }
        );
        if value_producing && n.outs.first().is_some_and(|t| t.is_empty()) {
            out.push(Diagnostic::at_node(
                Code::DanglingOutput,
                dfg,
                NodeId(ni as u32),
                "node produces a value nothing consumes",
            ));
        }
    }

    // L002: unreachable from the source.
    let live = reach(&maps.succs, [dfg.source]);
    for (ni, n) in dfg.nodes.iter().enumerate() {
        if !live[ni] && !matches!(n.kind, NodeKind::Source) {
            out.push(Diagnostic::at_node(
                Code::UnreachableNode,
                dfg,
                NodeId(ni as u32),
                "no token from the source can reach this node; it will never fire",
            ));
        }
    }

    // L003: allocate with no reachable free of its space.
    let any_free = dfg.nodes.iter().any(|n| matches!(n.kind, NodeKind::Free { .. }));
    if any_free {
        for (ni, n) in dfg.nodes.iter().enumerate() {
            let NodeKind::Allocate { space, .. } = n.kind else { continue };
            let cone = reach(&maps.succs, [NodeId(ni as u32)]);
            let freed = dfg.nodes.iter().enumerate().any(|(mi, m)| {
                cone[mi] && matches!(m.kind, NodeKind::Free { space: s } if s == space)
            });
            if !freed {
                out.push(Diagnostic::at_node(
                    Code::AllocNoFree,
                    dfg,
                    NodeId(ni as u32),
                    format!(
                        "no free of space {space} is reachable from this allocate; \
                         its tags can never be recycled"
                    ),
                ));
            }
        }
    }
    out
}
