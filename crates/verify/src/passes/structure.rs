//! Structural well-formedness: [`Dfg::check`]'s obligations, but reported
//! *exhaustively* with one located diagnostic per violation instead of
//! failing on the first.
//!
//! The lowering promotes these same obligations into
//! `LowerError::Malformed`, so a graph that came out of `lower_tagged` /
//! `lower_ordered` is already clean here; this pass exists for hand-built
//! graphs and as the first gate of `verify` (deeper passes are skipped when
//! structure is broken, since they would chase dangling edges).

use tyr_dfg::{BlockId, Dfg, InKind, NodeId, NodeKind};

use crate::diag::{Code, Diagnostic};

/// Runs the structure pass.
pub fn check_structure(dfg: &Dfg) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let any_free = dfg.nodes.iter().any(|n| matches!(n.kind, NodeKind::Free { .. }));
    let mut alloc_spaces: Vec<(BlockId, NodeId)> = Vec::new();
    let mut free_spaces: Vec<BlockId> = Vec::new();

    for (ni, n) in dfg.nodes.iter().enumerate() {
        let nid = NodeId(ni as u32);
        if n.block.0 as usize >= dfg.blocks.len() {
            out.push(Diagnostic::at_node(
                Code::BadBlock,
                dfg,
                nid,
                format!("node's block {} is out of range ({} blocks)", n.block, dfg.blocks.len()),
            ));
        }
        if !matches!(n.kind, NodeKind::Source) && !n.ins.iter().any(|i| matches!(i, InKind::Wire)) {
            out.push(Diagnostic::at_node(
                Code::NoWiredInputs,
                dfg,
                nid,
                "node has no wired inputs, so it can never fire",
            ));
        }
        match &n.kind {
            NodeKind::Allocate { space, .. } | NodeKind::Free { space } => {
                if space.0 as usize >= dfg.blocks.len() {
                    out.push(Diagnostic::at_node(
                        Code::BadSpace,
                        dfg,
                        nid,
                        format!("references nonexistent tag space {space}"),
                    ));
                } else if matches!(n.kind, NodeKind::Free { .. }) {
                    free_spaces.push(*space);
                } else {
                    alloc_spaces.push((*space, nid));
                }
            }
            _ => {}
        }
        for (pi, targets) in n.outs.iter().enumerate() {
            for t in targets {
                let Some(dst) = dfg.nodes.get(t.node.0 as usize) else {
                    out.push(Diagnostic::at_node(
                        Code::MissingNode,
                        dfg,
                        nid,
                        format!("output o{pi} targets missing node {}", t.node),
                    ));
                    continue;
                };
                match dst.ins.get(t.port as usize) {
                    Some(InKind::Wire) => {}
                    Some(InKind::Imm(_)) => out.push(Diagnostic::at_node(
                        Code::EdgeIntoImm,
                        dfg,
                        nid,
                        format!(
                            "output o{pi} targets immediate input {}.i{}, which can never accept tokens",
                            t.node, t.port
                        ),
                    )),
                    None => out.push(Diagnostic::at_node(
                        Code::MissingPort,
                        dfg,
                        nid,
                        format!("output o{pi} targets missing port {}.i{}", t.node, t.port),
                    )),
                }
            }
        }
    }

    if any_free {
        for (space, nid) in alloc_spaces {
            if !free_spaces.contains(&space) {
                out.push(Diagnostic::at_node(
                    Code::UnfreedSpace,
                    dfg,
                    nid,
                    format!(
                        "tag space {space} is allocated from but never freed into; its tags cannot recycle"
                    ),
                ));
            }
        }
    }
    out
}
