//! Static analysis passes over lowered dataflow graphs.
//!
//! Each pass is a pure function `&Dfg → Vec<Diagnostic>`; the conveniences
//! in the crate root compose them into a [`Report`](crate::Report). Passes
//! share the [`EdgeMaps`](crate::absint::EdgeMaps) view, which augments the
//! graph's static edges with the *dynamically routed* edges of
//! `changeTag.dyn` nodes (function returns): without them, call-return
//! landing pads look unreachable and callee bodies look disconnected from
//! the caller's barrier.

mod barrier;
mod lints;
mod races;
mod shard;
mod structure;
mod tags;
mod workingset;

pub use barrier::check_barrier_coverage;
pub use lints::check_lints;
pub use races::check_races;
pub use shard::{
    analyze_shards, check_shards, verify_shards, BoundaryFlow, MemClaims, ShardBudget,
    ShardCertificate, ShardCollision, ShardTagCheck,
};
pub use structure::check_structure;
pub use tags::{analyze_tag_demand, check_tag_policy, predict_global, GlobalPrediction, TagDemand};
pub use workingset::{
    analyze_live_state, check_edge_residency, check_footprint, check_live_state,
    compare_elaborations, footprint_diags, ordered_live_bound, BlockLiveBound, ElaborationBounds,
    Instances, LiveStateBound,
};

use tyr_dfg::{Dfg, InKind, NodeId, NodeKind, PortRef};

/// Resolves the possible routing targets of a `changeTag.dyn` node.
///
/// The lowering delivers a function's return value to a port encoded as a
/// [`PortRef`] integer that *flows through the graph as data* into the
/// node's `in1`. Statically we trace `in1` backwards through
/// value-preserving instructions (`changeTag`, `mov`, `merge`, `join`,
/// `steer`, `select`) until we reach immediates or constants, and decode
/// every one we find. Paths through value-transforming instructions are
/// abandoned (no target claimed): that loses completeness, not soundness —
/// the real lowering only ever routes immediate-encoded targets.
pub(crate) fn dyn_targets(dfg: &Dfg, node: NodeId) -> Vec<PortRef> {
    let mut out = Vec::new();
    let mut seen = vec![false; dfg.nodes.len()];
    // Work item: an input port whose incoming value we want to enumerate.
    let mut work: Vec<(NodeId, u16)> = vec![(node, 1)];
    let collect = |out: &mut Vec<PortRef>, v: i64| {
        let p = PortRef::decode(v);
        let valid = dfg
            .nodes
            .get(p.node.0 as usize)
            .and_then(|n| n.ins.get(p.port as usize))
            .is_some_and(|i| matches!(i, InKind::Wire));
        if valid && !out.contains(&p) {
            out.push(p);
        }
    };
    while let Some((nid, port)) = work.pop() {
        let Some(n) = dfg.nodes.get(nid.0 as usize) else { continue };
        if let Some(InKind::Imm(v)) = n.ins.get(port as usize) {
            collect(&mut out, *v);
            continue;
        }
        // Find every producer wired into (nid, port) and recurse through its
        // value path.
        for (pi, p) in dfg.nodes.iter().enumerate() {
            let feeds = p.outs.iter().flatten().any(|t| t.node == nid && t.port == port);
            if !feeds || seen[pi] {
                continue;
            }
            seen[pi] = true;
            let pid = NodeId(pi as u32);
            match &p.kind {
                NodeKind::Const(v) => collect(&mut out, *v),
                NodeKind::ChangeTag => work.push((pid, 1)),
                NodeKind::ChangeTagDyn => work.push((pid, 2)),
                NodeKind::Alu(tyr_ir::AluOp::Mov) => work.push((pid, 0)),
                NodeKind::Join => work.push((pid, 0)),
                NodeKind::Steer => work.push((pid, 1)),
                NodeKind::Select => {
                    work.push((pid, 1));
                    work.push((pid, 2));
                }
                NodeKind::Merge | NodeKind::CMerge { .. } => {
                    for q in 0..p.ins.len() {
                        work.push((pid, q as u16));
                    }
                }
                _ => {} // value-transforming: abandon this path
            }
        }
    }
    out
}

/// Forward BFS over `succs` from `starts`; returns a visited bitmap.
pub(crate) fn reach(succs: &[Vec<NodeId>], starts: impl IntoIterator<Item = NodeId>) -> Vec<bool> {
    let mut seen = vec![false; succs.len()];
    let mut work: Vec<NodeId> =
        starts.into_iter().filter(|s| (s.0 as usize) < succs.len()).collect();
    for s in &work {
        seen[s.0 as usize] = true;
    }
    while let Some(n) = work.pop() {
        for &m in &succs[n.0 as usize] {
            if !seen[m.0 as usize] {
                seen[m.0 as usize] = true;
                work.push(m);
            }
        }
    }
    seen
}
