//! The shard pass (`P…`): proven-safe DFG partitioning with progress
//! summaries — the static enabling layer for a sharded multi-worker engine.
//!
//! A shard plan ([`crate::partition::ShardPlan`]) splits the graph's
//! concurrent blocks across K workers. Splitting blindly risks exactly the
//! failures the rest of this crate exists to rule out, so the pass *proves*
//! a plan safe before anyone builds machinery on it:
//!
//! * **P001** ([`Code::ShardMemory`]) — cross-shard memory disjointness
//!   from the strided-interval index sets. Every cross-block access pair
//!   involving a plain `store`, unordered by any dependence path, is judged
//!   exactly as the race pass judges same-block pairs: proven-disjoint
//!   pairs become *claims* (cross-validated dynamically by
//!   `tyr_stats::ShardCrossings`), proven collisions split across shards
//!   are hard errors with the witness index, and undecided pairs demote to
//!   warnings that force the two blocks into one shard (fed to the
//!   partitioner as co-location constraints).
//! * **P002** ([`Code::ShardTagDemand`]) — per-shard tag-space demand,
//!   reusing the T-pass bounds: a shard whose resident spaces statically
//!   demand more tags than the policy can ever grant would wedge alone.
//! * **P003** ([`Code::ShardProgress`]) — progress summaries over the cut:
//!   a per-cut-edge "could-result-in" reachability matrix (the
//!   timely-dataflow frontier skeleton). The certificate checks that every
//!   *live* cut edge is derivable from the source frontier by composing
//!   intra-shard reachability with cut-edge hops — so a distributed
//!   termination detector observing shard-local quiescence plus empty
//!   channels cannot miss pending work. Cut edges on could-result-in
//!   cycles (which need multi-round confirmation) are counted.
//! * **P004** ([`Code::ShardTraffic`]) — static cross-shard traffic: per
//!   directed shard boundary, the cut-edge count and a peak in-flight token
//!   bound scaled by the consumer blocks' concurrent-instance bounds
//!   (W001); per shard, the boundary live-state bound that `repro shard`
//!   gates against the dynamic tracker's observed peak.

use std::collections::BTreeMap;

use tyr_dfg::{BlockId, Dfg, InKind, NodeId, NodeKind};
use tyr_ir::{MemoryImage, Value};
use tyr_sim::ordered::ChannelCapacity;
use tyr_sim::tagged::TagPolicy;

use crate::absint::indexset::{analyze, segments_of, AbsVal, IndexAnalysis};
use crate::absint::{input_value, EdgeMaps};
use crate::diag::{Code, Diagnostic, Report, Severity};
use crate::partition::{partition, ShardPlan};
use crate::passes::races::{judge, Verdict};
use crate::passes::workingset::Instances;
use crate::passes::{analyze_live_state, dyn_targets, reach};

/// The per-shard resource budget the plan is certified against: the tag
/// policy of a tagged elaboration, or the channel capacities of an ordered
/// one. Drives P002 (tagged only) and the P004 in-flight scaling.
#[derive(Clone, Copy)]
pub enum ShardBudget<'a> {
    /// A tagged elaboration under this policy.
    Tagged(&'a TagPolicy),
    /// An ordered elaboration under these FIFO capacities.
    Ordered(&'a ChannelCapacity),
}

/// A cross-block access pair proven to always collide (same word, at least
/// one plain store, no ordering path) — a hard error if split across
/// shards.
#[derive(Debug, Clone)]
pub struct ShardCollision {
    /// The first access.
    pub a: NodeId,
    /// The second access.
    pub b: NodeId,
    /// The first access's block.
    pub block_a: BlockId,
    /// The second access's block.
    pub block_b: BlockId,
    /// The segment both addresses provably land in.
    pub segment: String,
    /// The colliding index within the segment.
    pub index: i64,
}

/// The P001 memory verdicts over cross-block access pairs: which block
/// pairs the pass *claims* disjoint (the claims the dynamic tracker
/// cross-checks), which it could not decide (forced into one shard), and
/// which provably collide.
#[derive(Debug, Clone, Default)]
pub struct MemClaims {
    /// Block pairs (lower id first) with at least one relevant access pair,
    /// every one of them proven disjoint. Contradicting one of these at
    /// runtime falsifies the plan.
    pub disjoint: Vec<(BlockId, BlockId)>,
    /// Block pairs with at least one undecided access pair: co-located by
    /// the partitioner so the undecidedness stays within one shard.
    pub undecided: Vec<(BlockId, BlockId)>,
    /// Proven always-colliding pairs, with witnesses.
    pub collisions: Vec<ShardCollision>,
}

/// One directed shard boundary's static traffic estimate (P004).
#[derive(Debug, Clone)]
pub struct BoundaryFlow {
    /// Producing shard.
    pub from: u32,
    /// Consuming shard.
    pub to: u32,
    /// Node-level token edges crossing this boundary (dyn routing
    /// included).
    pub edges: u64,
    /// Peak in-flight tokens over those edges: each edge targets one
    /// `(node, port)` cell, holding at most one token per concurrent
    /// instance of the consumer block. `None` when some consumer block is
    /// instance-unbounded.
    pub inflight: Option<u64>,
}

/// Per-shard tag-space accounting (P002).
#[derive(Debug, Clone)]
pub struct ShardTagCheck {
    /// The shard.
    pub shard: u32,
    /// Allocated tag spaces resident in the shard.
    pub spaces: u64,
    /// Sum of the spaces' static minimum tag demands (T-pass).
    pub demand: u64,
    /// What the policy can grant the shard: the sum of the spaces'
    /// configured tag counts under local spaces, the whole pool under a
    /// bounded global policy, `None` under an unbounded one.
    pub budget: Option<u64>,
}

/// A certified shard plan: the partition plus every statically derived
/// table the dynamic tracker and the CLI need — node→shard map, boundary
/// consumers, per-shard in-flight bounds, memory claims.
#[derive(Clone)]
pub struct ShardCertificate {
    /// The partition.
    pub plan: ShardPlan,
    /// P001 memory verdicts; `None` when no memory context was supplied.
    pub mem: Option<MemClaims>,
    /// Per-node shard assignment (the node's block's shard).
    pub node_shard: Vec<u32>,
    /// Per-node flag: has a predecessor (dyn routing included) in another
    /// shard, i.e. receives cross-shard tokens.
    pub boundary: Vec<bool>,
    /// Per-node flag: is a plain `store` (used by the dynamic conflict
    /// tracker to distinguish stores from commutative `storeAdd`s).
    pub plain_store: Vec<bool>,
    /// Per-shard peak in-flight bound over its boundary consumers:
    /// `Σ wired_ports(n) × instances(block(n))` (tagged) or the FIFO
    /// capacity sum (ordered). `None` when unbounded. This is the number
    /// `repro shard` gates against the observed peak.
    pub shard_inflight: Vec<Option<u64>>,
    /// Per-shard boundary-consumer counts (for rendering).
    pub shard_boundary_nodes: Vec<u64>,
    /// Directed boundary traffic estimates, sorted by `(from, to)`.
    pub boundaries: Vec<BoundaryFlow>,
    /// P002 accounting; `None` for untagged budgets.
    pub tag_checks: Option<Vec<ShardTagCheck>>,
}

/// A node-level token edge crossing the cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CutEdge {
    from: NodeId,
    to: NodeId,
}

/// Collects every node-level token edge (dyn routing included) whose
/// endpoints live in different shards.
fn collect_cut_edges(dfg: &Dfg, node_shard: &[u32]) -> Vec<CutEdge> {
    let mut out = Vec::new();
    for e in dfg.edges() {
        if node_shard[e.from.0 as usize] != node_shard[e.to.0 as usize] {
            out.push(CutEdge { from: e.from, to: e.to });
        }
    }
    for (ni, node) in dfg.nodes.iter().enumerate() {
        if matches!(node.kind, NodeKind::ChangeTagDyn) {
            for t in dyn_targets(dfg, NodeId(ni as u32)) {
                if node_shard[ni] != node_shard[t.node.0 as usize] {
                    let e = CutEdge { from: NodeId(ni as u32), to: t.node };
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
            }
        }
    }
    out
}

/// Derives the P001 memory verdicts for every cross-block access pair.
fn mem_claims(dfg: &Dfg, maps: &EdgeMaps, mem: &MemoryImage, args: &[Value]) -> MemClaims {
    let segments = segments_of(mem);
    let analysis = IndexAnalysis::new(&segments, args);
    let values = analyze(dfg, maps, &segments, args);

    #[derive(Clone, Copy, PartialEq)]
    enum Acc {
        Load,
        Store,
        StoreAdd,
    }
    // Every reachable access; `None` address = no segment provenance (the
    // access may touch anything, unlike the race pass we must not drop it —
    // it poisons its block's pairs to "undecided").
    let accesses: Vec<(NodeId, Acc, Option<AbsVal>)> = dfg
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(ni, node)| {
            let kind = match node.kind {
                NodeKind::Load => Acc::Load,
                NodeKind::Store => Acc::Store,
                NodeKind::StoreAdd => Acc::StoreAdd,
                _ => return None,
            };
            let addr = input_value(dfg, maps, &analysis, &values, ni, 0);
            if addr.is_bottom() {
                return None; // no token ever reaches this access
            }
            let addr = (addr.mask != 0).then_some(addr);
            Some((NodeId(ni as u32), kind, addr))
        })
        .collect();

    let reaches: Vec<Vec<bool>> =
        accesses.iter().map(|&(a, _, _)| reach(&maps.succs, [a])).collect();

    // Per block pair (lower id first): did we see a relevant access pair,
    // and was any of them undecided?
    let mut seen: BTreeMap<(u32, u32), bool> = BTreeMap::new(); // value: any undecided
    let mut collisions = Vec::new();
    for i in 0..accesses.len() {
        for j in i + 1..accesses.len() {
            let (a, ka, ref ma) = accesses[i];
            let (b, kb, ref mb) = accesses[j];
            let (ba, bb) = (dfg.nodes[a.0 as usize].block, dfg.nodes[b.0 as usize].block);
            if ba == bb || !(ka == Acc::Store || kb == Acc::Store) {
                continue;
            }
            if reaches[i][b.0 as usize] || reaches[j][a.0 as usize] {
                continue; // ordered by a dependence path
            }
            let key = (ba.0.min(bb.0), ba.0.max(bb.0));
            let entry = seen.entry(key).or_insert(false);
            let (Some(ma), Some(mb)) = (ma, mb) else {
                *entry = true; // no provenance on one side: undecidable
                continue;
            };
            let overlap = ma.mask & mb.mask;
            if overlap == 0 {
                continue; // disjoint by segment separation
            }
            match judge(&segments, overlap, ma, mb) {
                Verdict::Disjoint => {}
                Verdict::Collides { segment, index } => collisions.push(ShardCollision {
                    a,
                    b,
                    block_a: ba,
                    block_b: bb,
                    segment: segments[segment].name.clone(),
                    index,
                }),
                Verdict::Unknown => *entry = true,
            }
        }
    }

    let has_collision = |&(x, y): &(u32, u32)| {
        collisions
            .iter()
            .any(|c| (c.block_a.0.min(c.block_b.0), c.block_a.0.max(c.block_b.0)) == (x, y))
    };
    let disjoint = seen
        .iter()
        .filter(|(k, &undecided)| !undecided && !has_collision(k))
        .map(|(&(x, y), _)| (BlockId(x), BlockId(y)))
        .collect();
    let undecided = seen
        .iter()
        .filter(|(_, &undecided)| undecided)
        .map(|(&(x, y), _)| (BlockId(x), BlockId(y)))
        .collect();
    MemClaims { disjoint, undecided, collisions }
}

/// Computes a shard plan for `dfg` and certifies it: runs the P001 memory
/// judgments first (undecided pairs become co-location constraints), then
/// partitions, then derives every static table P002–P004 and the dynamic
/// tracker need. Deterministic in all arguments.
pub fn analyze_shards(
    dfg: &Dfg,
    k: usize,
    seed: u64,
    budget: Option<ShardBudget<'_>>,
    memory: Option<(&MemoryImage, &[Value])>,
) -> ShardCertificate {
    let maps = EdgeMaps::new(dfg);
    let mem = memory.map(|(m, args)| mem_claims(dfg, &maps, m, args));
    let colocate: Vec<(BlockId, BlockId)> =
        mem.as_ref().map(|c| c.undecided.clone()).unwrap_or_default();
    let plan = partition(dfg, k, seed, &colocate);

    let node_shard: Vec<u32> = dfg.nodes.iter().map(|n| plan.shard_of(n.block)).collect();
    let boundary: Vec<bool> = (0..dfg.nodes.len())
        .map(|ni| maps.preds[ni].iter().any(|p| node_shard[p.0 as usize] != node_shard[ni]))
        .collect();
    let plain_store: Vec<bool> =
        dfg.nodes.iter().map(|n| matches!(n.kind, NodeKind::Store)).collect();

    // Concurrent-instance bound per block (tagged budgets), used to scale
    // both the per-shard boundary bound and the per-boundary traffic.
    let instances: Option<Vec<Instances>> = match budget {
        Some(ShardBudget::Tagged(policy)) => {
            Some(analyze_live_state(dfg, policy).per_block.iter().map(|b| b.instances).collect())
        }
        _ => None,
    };
    let wired =
        |ni: usize| dfg.nodes[ni].ins.iter().filter(|i| matches!(i, InKind::Wire)).count() as u64;
    // Peak tokens parked at one consumer node: every wired input port holds
    // at most one token per concurrent instance of the node's block.
    let node_bound = |ni: usize| -> Option<u64> {
        match budget {
            Some(ShardBudget::Tagged(_)) => {
                match instances.as_ref().unwrap()[dfg.nodes[ni].block.0 as usize] {
                    Instances::Bounded(i) => Some(wired(ni) * i),
                    Instances::Unbounded => None,
                }
            }
            Some(ShardBudget::Ordered(caps)) => Some(
                (0..dfg.nodes[ni].ins.len())
                    .filter(|&p| matches!(dfg.nodes[ni].ins[p], InKind::Wire))
                    .map(|p| caps.of(ni as u32, p as u16) as u64)
                    .sum(),
            ),
            None => None,
        }
    };

    let mut shard_inflight: Vec<Option<u64>> = vec![Some(0); plan.shards];
    let mut shard_boundary_nodes = vec![0u64; plan.shards];
    for ni in 0..dfg.nodes.len() {
        if !boundary[ni] {
            continue;
        }
        let s = node_shard[ni] as usize;
        shard_boundary_nodes[s] += 1;
        shard_inflight[s] = match (shard_inflight[s], node_bound(ni)) {
            (Some(acc), Some(b)) => Some(acc + b),
            _ => None,
        };
    }

    // Per-edge in-flight bound: a cut edge targets one (node, port) cell —
    // one token per concurrent consumer instance.
    let edge_bound = |e: &CutEdge| -> Option<u64> {
        match budget {
            Some(ShardBudget::Tagged(_)) => {
                match instances.as_ref().unwrap()[dfg.nodes[e.to.0 as usize].block.0 as usize] {
                    Instances::Bounded(i) => Some(i),
                    Instances::Unbounded => None,
                }
            }
            // Without port attribution for dyn edges we conservatively use
            // the consumer's total wired capacity.
            Some(ShardBudget::Ordered(_)) => node_bound(e.to.0 as usize),
            None => None,
        }
    };
    let cut = collect_cut_edges(dfg, &node_shard);
    let mut flows: BTreeMap<(u32, u32), (u64, Option<u64>)> = BTreeMap::new();
    for e in &cut {
        let key = (node_shard[e.from.0 as usize], node_shard[e.to.0 as usize]);
        let entry = flows.entry(key).or_insert((0, Some(0)));
        entry.0 += 1;
        entry.1 = match (entry.1, edge_bound(e)) {
            (Some(acc), Some(b)) => Some(acc + b),
            _ => None,
        };
    }
    let boundaries = flows
        .into_iter()
        .map(|((from, to), (edges, inflight))| BoundaryFlow { from, to, edges, inflight })
        .collect();

    // P002 accounting (tagged budgets only).
    let tag_checks = match budget {
        Some(ShardBudget::Tagged(policy)) => {
            let demand = crate::passes::analyze_tag_demand(dfg);
            let mut per_shard: BTreeMap<u32, ShardTagCheck> = BTreeMap::new();
            for &(space, need) in &demand.per_space {
                let s = plan.shard_of(space);
                let entry = per_shard.entry(s).or_insert(ShardTagCheck {
                    shard: s,
                    spaces: 0,
                    demand: 0,
                    budget: match policy {
                        TagPolicy::Local { .. } => Some(0),
                        TagPolicy::GlobalBounded { tags } => Some(*tags as u64),
                        TagPolicy::GlobalUnbounded => None,
                    },
                });
                entry.spaces += 1;
                entry.demand += need as u64;
                if let TagPolicy::Local { default_tags, overrides } = policy {
                    let name = dfg.blocks.get(space.0 as usize).map(|b| b.name.as_str());
                    let tags = name
                        .and_then(|nm| overrides.iter().find(|(o, _)| o == nm))
                        .map(|&(_, t)| t)
                        .unwrap_or(*default_tags)
                        .max(1) as u64;
                    entry.budget = entry.budget.map(|b| b + tags);
                }
            }
            Some(per_shard.into_values().collect())
        }
        _ => None,
    };

    ShardCertificate {
        plan,
        mem,
        node_shard,
        boundary,
        plain_store,
        shard_inflight,
        shard_boundary_nodes,
        boundaries,
        tag_checks,
    }
}

/// Runs the P001–P004 checks over an already-computed certificate.
pub fn check_shards(dfg: &Dfg, cert: &ShardCertificate) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_memory(dfg, cert, &mut out);
    check_tag_budgets(cert, &mut out);
    check_progress(dfg, cert, &mut out);
    check_traffic(cert, &mut out);
    out
}

/// P001: cross-shard memory disjointness.
fn check_memory(dfg: &Dfg, cert: &ShardCertificate, out: &mut Vec<Diagnostic>) {
    let Some(claims) = &cert.mem else {
        let mut d = Diagnostic::global(
            Code::ShardMemory,
            "no memory context supplied: cross-shard disjointness not applicable".to_string(),
        );
        d.severity = Severity::Note;
        out.push(d);
        return;
    };
    let mut cross_collisions = 0usize;
    for c in &claims.collisions {
        let (sa, sb) = (cert.plan.shard_of(c.block_a), cert.plan.shard_of(c.block_b));
        if sa != sb {
            cross_collisions += 1;
            let mut d = Diagnostic::at_node(
                Code::ShardMemory,
                dfg,
                c.a,
                format!(
                    "cross-shard accesses always collide at '{}' index {} (shard {sa} vs \
                     shard {sb} {} '{}'): this cut is unsafe; colocate the blocks or use \
                     storeAdd",
                    c.segment, c.index, c.b, dfg.nodes[c.b.0 as usize].label,
                ),
            );
            d.severity = Severity::Error;
            out.push(d);
        } else {
            out.push(Diagnostic::at_node(
                Code::ShardMemory,
                dfg,
                c.a,
                format!(
                    "accesses always collide at '{}' index {} (with {} '{}'); both blocks \
                     are in shard {sa}, so the cut is safe, but the same-shard race stands",
                    c.segment, c.index, c.b, dfg.nodes[c.b.0 as usize].label,
                ),
            ));
        }
    }
    for &(a, b) in &claims.undecided {
        let s = cert.plan.shard_of(a);
        out.push(Diagnostic::at_block(
            Code::ShardMemory,
            dfg,
            a,
            format!(
                "undecided memory overlap with {b}: blocks forced into one shard \
                 (shard {s}) instead of proving the cut",
            ),
        ));
    }
    let mut d = Diagnostic::global(
        Code::ShardMemory,
        format!(
            "cross-shard memory disjointness: {} block pair(s) proven disjoint, {} forced \
             together (undecided), {} cross-shard collision(s)",
            claims.disjoint.len(),
            claims.undecided.len(),
            cross_collisions,
        ),
    );
    d.severity = Severity::Note;
    out.push(d);
}

/// P002: per-shard tag demand vs budget.
fn check_tag_budgets(cert: &ShardCertificate, out: &mut Vec<Diagnostic>) {
    let Some(checks) = &cert.tag_checks else { return };
    if checks.is_empty() {
        out.push(Diagnostic::global(
            Code::ShardTagDemand,
            "no allocated tag spaces: per-shard tag demand is trivially met".to_string(),
        ));
        return;
    }
    for c in checks {
        match c.budget {
            Some(b) if c.demand > b => {
                let mut d = Diagnostic::global(
                    Code::ShardTagDemand,
                    format!(
                        "shard {}: {} tag space(s) statically demand {} tag(s) but the \
                         policy grants at most {b}: the shard wedges on its own",
                        c.shard, c.spaces, c.demand,
                    ),
                );
                d.severity = Severity::Error;
                out.push(d);
            }
            Some(b) => out.push(Diagnostic::global(
                Code::ShardTagDemand,
                format!(
                    "shard {}: {} tag space(s), demand {} of {b} tag(s) within budget",
                    c.shard, c.spaces, c.demand,
                ),
            )),
            None => out.push(Diagnostic::global(
                Code::ShardTagDemand,
                format!(
                    "shard {}: {} tag space(s), demand {} against an unbounded policy",
                    c.shard, c.spaces, c.demand,
                ),
            )),
        }
    }
}

/// P003: progress summaries over the cut.
fn check_progress(dfg: &Dfg, cert: &ShardCertificate, out: &mut Vec<Diagnostic>) {
    let maps = EdgeMaps::new(dfg);
    let cut = collect_cut_edges(dfg, &cert.node_shard);
    if cut.is_empty() {
        out.push(Diagnostic::global(
            Code::ShardProgress,
            format!(
                "progress summary: empty cut across {} shard(s); shard-local quiescence \
                 is global quiescence",
                cert.plan.shards.max(1),
            ),
        ));
        return;
    }

    // Frontier derivation: starting from the source, alternate intra-shard
    // reachability with cut-edge hops until fixpoint. A cut edge is
    // *derived* once its producer is covered.
    let shard = &cert.node_shard;
    let mut covered = vec![false; dfg.nodes.len()];
    let mut work: Vec<NodeId> = Vec::new();
    covered[dfg.source.0 as usize] = true;
    work.push(dfg.source);
    let mut derived = vec![false; cut.len()];
    loop {
        // Intra-shard closure.
        while let Some(n) = work.pop() {
            for &m in &maps.succs[n.0 as usize] {
                if shard[m.0 as usize] == shard[n.0 as usize] && !covered[m.0 as usize] {
                    covered[m.0 as usize] = true;
                    work.push(m);
                }
            }
        }
        // Cut-edge hops from covered producers.
        let mut progressed = false;
        for (i, e) in cut.iter().enumerate() {
            if !derived[i] && covered[e.from.0 as usize] {
                derived[i] = true;
                if !covered[e.to.0 as usize] {
                    covered[e.to.0 as usize] = true;
                    work.push(e.to);
                }
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Could-result-in matrix: e → f iff a token delivered over e can reach
    // f's producer. Cached full reachability per distinct consumer.
    let mut reach_of: BTreeMap<u32, Vec<bool>> = BTreeMap::new();
    for e in &cut {
        reach_of.entry(e.to.0).or_insert_with(|| reach(&maps.succs, [e.to]));
    }
    let mut entries = 0u64;
    let mut cycles = 0u64;
    for e in &cut {
        let r = &reach_of[&e.to.0];
        for f in &cut {
            if r[f.from.0 as usize] {
                entries += 1;
            }
        }
        if r[e.from.0 as usize] {
            cycles += 1;
        }
    }

    // The certificate: every live cut edge (producer reachable from the
    // source at all) must be derivable through the frontier composition.
    let live = reach(&maps.succs, [dfg.source]);
    let mut ok = true;
    for (i, e) in cut.iter().enumerate() {
        if live[e.from.0 as usize] && !derived[i] {
            ok = false;
            let mut d = Diagnostic::at_node(
                Code::ShardProgress,
                dfg,
                e.from,
                format!(
                    "live cut edge to {} '{}' is not derivable from the source frontier: \
                     a distributed termination detector could miss work on it",
                    e.to, dfg.nodes[e.to.0 as usize].label,
                ),
            );
            d.severity = Severity::Error;
            out.push(d);
        }
    }
    if ok {
        out.push(Diagnostic::global(
            Code::ShardProgress,
            format!(
                "progress summary: {} cut edge(s), could-result-in matrix has {entries} \
                 reachable pair(s), {cycles} self-cyclic edge(s) (need multi-round \
                 confirmation); every live cut edge derives from the source frontier, so \
                 shard-local quiescence + empty channels implies global quiescence",
                cut.len(),
            ),
        ));
    }
}

/// P004: static cross-shard traffic estimates.
fn check_traffic(cert: &ShardCertificate, out: &mut Vec<Diagnostic>) {
    if cert.boundaries.is_empty() {
        out.push(Diagnostic::global(
            Code::ShardTraffic,
            "no cross-shard traffic: the cut carries no token edges".to_string(),
        ));
        return;
    }
    let fmt = |b: Option<u64>| match b {
        Some(v) => format!("{v}"),
        None => "unbounded".to_string(),
    };
    for f in &cert.boundaries {
        out.push(Diagnostic::global(
            Code::ShardTraffic,
            format!(
                "shard {} -> shard {}: {} cut edge(s), in-flight <= {} token(s)",
                f.from,
                f.to,
                f.edges,
                fmt(f.inflight),
            ),
        ));
    }
    for (s, (bound, nodes)) in
        cert.shard_inflight.iter().zip(&cert.shard_boundary_nodes).enumerate()
    {
        if *nodes == 0 {
            continue;
        }
        out.push(Diagnostic::global(
            Code::ShardTraffic,
            format!(
                "shard {s}: boundary live state <= {} token(s) across {nodes} boundary \
                 consumer(s)",
                fmt(*bound),
            ),
        ));
    }
}

/// Computes and certifies a shard plan in one call: partitions `dfg` into
/// (at most) `k` shards with `seed`, then runs P001–P004 into a
/// [`Report`] titled `title`.
pub fn verify_shards(
    title: impl Into<String>,
    dfg: &Dfg,
    k: usize,
    seed: u64,
    budget: Option<ShardBudget<'_>>,
    memory: Option<(&MemoryImage, &[Value])>,
) -> (ShardCertificate, Report) {
    let cert = analyze_shards(dfg, k, seed, budget, memory);
    let mut report = Report::new(title);
    report.extend(check_shards(dfg, &cert));
    (cert, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_dfg::{GraphBuilder, PortRef};
    use tyr_ir::AluOp;

    fn image() -> MemoryImage {
        let mut mem = MemoryImage::new();
        mem.alloc("a", 16);
        mem
    }

    /// Two child blocks storing to fixed words of segment `a` (addressed as
    /// `base + offset` so classification sees the provenance), with nothing
    /// connecting them: the partitioner is free to split them.
    fn colliding_graph(base: i64, off_a: i64, off_b: i64) -> Dfg {
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let ba = g.add_block("wa", Some(root), false);
        let bb = g.add_block("wb", Some(root), false);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        let aa = g.add_node(
            NodeKind::Alu(AluOp::Add),
            ba,
            vec![InKind::Imm(base), InKind::Imm(off_a)],
            1,
            "addr.a",
        );
        let ab = g.add_node(
            NodeKind::Alu(AluOp::Add),
            bb,
            vec![InKind::Imm(base), InKind::Imm(off_b)],
            1,
            "addr.b",
        );
        let sa = g.add_node(NodeKind::Store, ba, vec![InKind::Wire, InKind::Wire], 1, "store.a");
        let sb = g.add_node(NodeKind::Store, bb, vec![InKind::Wire, InKind::Wire], 1, "store.b");
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire, InKind::Wire], 0, "sink");
        g.connect(aa, 0, PortRef { node: sa, port: 0 });
        g.connect(ab, 0, PortRef { node: sb, port: 0 });
        g.connect(src, 0, PortRef { node: sa, port: 1 });
        g.connect(src, 0, PortRef { node: sb, port: 1 });
        g.connect(sa, 0, PortRef { node: sink, port: 0 });
        g.connect(sb, 0, PortRef { node: sink, port: 1 });
        g.finish(src, sink, 1)
    }

    #[test]
    fn cross_shard_collision_is_an_error() {
        let mem = image();
        let base = mem.arrays().next().unwrap().1.base as i64;
        let dfg = colliding_graph(base, 3, 3);
        let policy = TagPolicy::local(2);
        let (cert, report) = verify_shards(
            "collision",
            &dfg,
            4,
            5,
            Some(ShardBudget::Tagged(&policy)),
            Some((&mem, &[])),
        );
        let claims = cert.mem.as_ref().unwrap();
        assert_eq!(claims.collisions.len(), 1, "{report:?}");
        // The two worker blocks share no edges, so the partitioner splits
        // them — and the collision across the cut must be a hard error.
        if cert.plan.shard_of(BlockId(1)) != cert.plan.shard_of(BlockId(2)) {
            assert!(!report.is_clean(), "{}", report.render());
            assert!(report.has(Code::ShardMemory));
        }
    }

    #[test]
    fn disjoint_stores_are_claimed_and_clean() {
        let mem = image();
        let base = mem.arrays().next().unwrap().1.base as i64;
        let dfg = colliding_graph(base, 3, 9);
        let policy = TagPolicy::local(2);
        let (cert, report) = verify_shards(
            "disjoint",
            &dfg,
            4,
            5,
            Some(ShardBudget::Tagged(&policy)),
            Some((&mem, &[])),
        );
        let claims = cert.mem.as_ref().unwrap();
        assert!(claims.collisions.is_empty());
        assert_eq!(claims.disjoint, vec![(BlockId(1), BlockId(2))]);
        assert!(report.is_clean(), "{}", report.render());
    }

    /// An address with no segment provenance on one side makes the block
    /// pair undecided, which must co-locate the blocks.
    #[test]
    fn undecided_pair_is_forced_into_one_shard() {
        let mem = image();
        let base = mem.arrays().next().unwrap().1.base as i64;
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let ba = g.add_block("wa", Some(root), false);
        let bb = g.add_block("wb", Some(root), false);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        // wa stores at an input-dependent (provenance-free) address.
        let sa = g.add_node(NodeKind::Store, ba, vec![InKind::Wire, InKind::Imm(1)], 1, "store.a");
        let sb = g.add_node(
            NodeKind::Store,
            bb,
            vec![InKind::Imm(base + 1), InKind::Wire],
            1,
            "store.b",
        );
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire, InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: sa, port: 0 });
        g.connect(src, 0, PortRef { node: sb, port: 1 });
        g.connect(sa, 0, PortRef { node: sink, port: 0 });
        g.connect(sb, 0, PortRef { node: sink, port: 1 });
        let dfg = g.finish(src, sink, 1);

        // Argument 5 matches no segment base: sa's address is a plain
        // number with no provenance.
        let (cert, report) = verify_shards("undecided", &dfg, 4, 5, None, Some((&mem, &[5])));
        let claims = cert.mem.as_ref().unwrap();
        assert_eq!(claims.undecided, vec![(BlockId(1), BlockId(2))]);
        assert_eq!(cert.plan.shard_of(BlockId(1)), cert.plan.shard_of(BlockId(2)));
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.warnings() >= 1, "{}", report.render());
    }

    #[test]
    fn over_budget_shard_is_an_error() {
        // A loop space demands 2 tags; a global pool of 1 cannot grant it.
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let lp = g.add_block("loop", Some(root), true);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        let al = g.add_node(
            NodeKind::Allocate { space: lp, kind: tyr_dfg::AllocKind::External },
            root,
            vec![InKind::Wire],
            1,
            "alloc",
        );
        let body = g.add_node(NodeKind::Alu(AluOp::Mov), lp, vec![InKind::Wire], 1, "body");
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: al, port: 0 });
        g.connect(al, 0, PortRef { node: body, port: 0 });
        g.connect(body, 0, PortRef { node: sink, port: 0 });
        let dfg = g.finish(src, sink, 1);

        let policy = TagPolicy::GlobalBounded { tags: 1 };
        let (cert, report) =
            verify_shards("budget", &dfg, 2, 5, Some(ShardBudget::Tagged(&policy)), None);
        let checks = cert.tag_checks.as_ref().unwrap();
        assert!(checks.iter().any(|c| c.demand > c.budget.unwrap()), "{checks:?}");
        assert!(!report.is_clean(), "{}", report.render());
        assert!(report.has(Code::ShardTagDemand));
    }

    #[test]
    fn progress_summary_derives_all_live_cut_edges() {
        let mem = image();
        let base = mem.arrays().next().unwrap().1.base as i64;
        let dfg = colliding_graph(base, 3, 9);
        let policy = TagPolicy::local(2);
        let (cert, report) = verify_shards(
            "progress",
            &dfg,
            4,
            5,
            Some(ShardBudget::Tagged(&policy)),
            Some((&mem, &[])),
        );
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.has(Code::ShardProgress));
        if cert.plan.shards > 1 {
            // Boundary consumers exist and carry finite bounds.
            assert!(cert.boundary.iter().any(|&b| b));
            assert!(cert.shard_inflight.iter().all(|b| b.is_some()));
        }
    }

    #[test]
    fn certificates_are_deterministic() {
        let mem = image();
        let base = mem.arrays().next().unwrap().1.base as i64;
        let dfg = colliding_graph(base, 3, 9);
        let policy = TagPolicy::local(2);
        let run = || {
            let (cert, report) = verify_shards(
                "det",
                &dfg,
                3,
                17,
                Some(ShardBudget::Tagged(&policy)),
                Some((&mem, &[])),
            );
            format!("{}{}", cert.plan.render(&dfg), report.render())
        };
        assert_eq!(run(), run());
    }
}
