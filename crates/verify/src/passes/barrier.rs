//! Free-barrier coverage (Sec. IV-A).
//!
//! TYR's central safety argument is that a context's `free` fires only
//! after *every* token tagged with that context is dead: the lowering gives
//! each instruction an unconditional control output and `join`s them all
//! into the barrier feeding `free`. This pass checks the resulting
//! obligation graph-wide: every node must — transitively, through data or
//! control edges — feed either its own block's `free` barrier or the sink
//! (return values and anything downstream of them are kept alive by program
//! completion itself).
//!
//! A node failing this check can still hold a live token *after* its
//! context's tag was recycled, silently corrupting a later context — the
//! exact class of bug the dynamic token-leak sanitizer
//! (`TaggedConfig::check_token_leaks`) traps at `free` time. The static
//! pass finds it without running anything.
//!
//! Graphs with no `free` nodes at all (the unordered-unbounded
//! elaboration) have no barriers to cover; the pass is vacuous there.

use tyr_dfg::{Dfg, NodeId, NodeKind};

use crate::absint::EdgeMaps;
use crate::diag::{Code, Diagnostic};
use crate::passes::reach;

/// Runs the free-barrier coverage pass.
pub fn check_barrier_coverage(dfg: &Dfg) -> Vec<Diagnostic> {
    let frees: Vec<NodeId> = dfg
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.kind, NodeKind::Free { .. }))
        .map(|(i, _)| NodeId(i as u32))
        .collect();
    if frees.is_empty() {
        return Vec::new();
    }

    // Work on the reversed graph: "reaches X" = backward-reachable from X.
    let maps = EdgeMaps::new(dfg);
    let reaches_sink = reach(&maps.preds, [dfg.sink]);
    // Per block: the set of nodes reaching any of *that block's* frees.
    let mut reaches_block_free: Vec<Option<Vec<bool>>> = vec![None; dfg.blocks.len()];
    for (b, entry) in reaches_block_free.iter_mut().enumerate() {
        let starts: Vec<NodeId> = frees
            .iter()
            .copied()
            .filter(|f| dfg.nodes[f.0 as usize].block.0 as usize == b)
            .collect();
        if !starts.is_empty() {
            *entry = Some(reach(&maps.preds, starts));
        }
    }
    // Fallback for nodes whose block hosts no free of its own (e.g. the
    // barrierless straight-line parts of root in ordered graphs): any free.
    let reaches_any_free = reach(&maps.preds, frees.iter().copied());

    let mut out = Vec::new();
    for (ni, n) in dfg.nodes.iter().enumerate() {
        if reaches_sink[ni] {
            continue;
        }
        let covered = match reaches_block_free.get(n.block.0 as usize) {
            Some(Some(own)) => own[ni],
            _ => reaches_any_free[ni],
        };
        if !covered {
            out.push(Diagnostic::at_node(
                Code::OutsideBarrier,
                dfg,
                NodeId(ni as u32),
                "node never feeds its block's free barrier or the sink; its tokens can \
                 outlive the context's free",
            ));
        }
    }
    out
}
