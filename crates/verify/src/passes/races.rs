//! Static memory-race detection, with index-precise verdicts.
//!
//! Dataflow executes memory operations in *data-dependence order only*: two
//! accesses in the same concurrent block with no path between them can
//! commit in either order in the same context. The kernels avoid this by
//! construction — disjoint index sets for plain stores, `storeAdd` for
//! commutative accumulation — and this pass checks that discipline
//! statically.
//!
//! The pass is a client of the abstract-interpretation framework
//! ([`crate::absint`]); its domain ([`AbsVal`]) carries two components per
//! node output:
//!
//! * **Segment provenance** — which memory segments the value may point
//!   into, by exact-base-match classification propagated through address
//!   arithmetic (see [`crate::absint::indexset`] for the soundness
//!   argument). This under-approximates — an address materialized by
//!   arithmetic we do not model is simply not classified — so the pass can
//!   miss races but reports no impossible segment pairs.
//! * **A strided interval** over-approximating the value numerically, with
//!   loop counters widened to anchored progressions (`base + [0,∞) step s`).
//!
//! **Verdict.** Two same-block accesses whose segment masks intersect, at
//! least one of which is a plain `store`, with no ordering path either way:
//!
//! * their address intervals, clamped to each common segment, are provably
//!   [`disjoint`](Si::disjoint) (disjoint ranges, or incompatible residues
//!   modulo the stride gcd) → **no finding** — the PR-1 segment warning is
//!   resolved to a proof of safety;
//! * both addresses are the *same singleton* in a common segment → the
//!   accesses always collide; the warning is upgraded to a hard **error**
//!   carrying the witness index;
//! * otherwise → the original **warning** stands ([`Code::StoreStoreRace`]
//!   M001 / [`Code::LoadStoreRace`] M002), now rendering the computed index
//!   sets so the reader sees *why* it is undecided.
//!
//! `storeAdd`/`storeAdd` pairs are permitted (commutative by design — the
//! paper's own fix).

use tyr_dfg::{Dfg, NodeId, NodeKind};
use tyr_ir::{MemoryImage, Value};

use crate::absint::indexset::{analyze, segments_of, AbsVal, IndexAnalysis, Segment};
use crate::absint::si::Si;
use crate::absint::{input_value, EdgeMaps};
use crate::diag::{Code, Diagnostic, Severity};
use crate::passes::reach;

/// Runs the race pass against the memory image and program arguments the
/// graph will execute with.
pub fn check_races(dfg: &Dfg, mem: &MemoryImage, args: &[Value]) -> Vec<Diagnostic> {
    let segments = segments_of(mem);
    if segments.is_empty() {
        return Vec::new();
    }
    let maps = EdgeMaps::new(dfg);
    let analysis = IndexAnalysis::new(&segments, args);
    let values = analyze(dfg, &maps, &segments, args);

    // Memory accesses with a classified address (in0).
    #[derive(Clone, Copy, PartialEq)]
    enum Acc {
        Load,
        Store,
        StoreAdd,
    }
    let accesses: Vec<(NodeId, Acc, AbsVal)> = dfg
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(ni, node)| {
            let kind = match node.kind {
                NodeKind::Load => Acc::Load,
                NodeKind::Store => Acc::Store,
                NodeKind::StoreAdd => Acc::StoreAdd,
                _ => return None,
            };
            let addr = input_value(dfg, &maps, &analysis, &values, ni, 0);
            (addr.mask != 0).then_some((NodeId(ni as u32), kind, addr))
        })
        .collect();

    // Pairwise ordering among accesses (dyn edges included), then judge
    // unordered same-block overlaps involving a plain store.
    let reaches: Vec<Vec<bool>> =
        accesses.iter().map(|&(a, _, _)| reach(&maps.succs, [a])).collect();

    let mut out = Vec::new();
    for i in 0..accesses.len() {
        for j in i + 1..accesses.len() {
            let (a, ka, ref ma) = accesses[i];
            let (b, kb, ref mb) = accesses[j];
            let overlap = ma.mask & mb.mask;
            if overlap == 0
                || dfg.nodes[a.0 as usize].block != dfg.nodes[b.0 as usize].block
                || !(ka == Acc::Store || kb == Acc::Store)
            {
                continue;
            }
            if reaches[i][b.0 as usize] || reaches[j][a.0 as usize] {
                continue; // ordered by a dependence path
            }
            let code = if ka != Acc::Load && kb != Acc::Load {
                Code::StoreStoreRace
            } else {
                Code::LoadStoreRace
            };
            match judge(&segments, overlap, ma, mb) {
                Verdict::Disjoint => {} // proven race-free: suppressed
                Verdict::Collides { segment, index } => {
                    let what =
                        if code == Code::StoreStoreRace { "stores" } else { "load and store" };
                    let mut d = Diagnostic::at_node(
                        code,
                        dfg,
                        a,
                        format!(
                            "unordered {what} to '{}' always collide at index {index} \
                             (with {b} '{}'); use storeAdd or add an ordering dependence",
                            segments[segment].name, dfg.nodes[b.0 as usize].label,
                        ),
                    );
                    d.severity = Severity::Error;
                    out.push(d);
                }
                Verdict::Unknown => {
                    let what =
                        if code == Code::StoreStoreRace { "stores" } else { "load and store" };
                    out.push(Diagnostic::at_node(
                        code,
                        dfg,
                        a,
                        format!(
                            "unordered {what} to segment(s) {} in the same concurrent block \
                             (with {b} '{}'; index sets {} vs {}); if the index sets overlap, \
                             use storeAdd or add an ordering dependence",
                            seg_names(&segments, overlap),
                            dfg.nodes[b.0 as usize].label,
                            render_num(ma),
                            render_num(mb),
                        ),
                    ));
                }
            }
        }
    }
    out
}

pub(crate) enum Verdict {
    /// Provably race-free in every common segment.
    Disjoint,
    /// Provably always the same word of `segments[segment]`.
    Collides {
        segment: usize,
        index: i64,
    },
    Unknown,
}

/// Judges one unordered access pair over their common segments. A pair is
/// race-free only if it is proven disjoint within *every* common segment;
/// it provably collides if, in some common segment, both addresses clamp to
/// the same singleton. Shared with the shard pass's cross-block P001
/// disjointness claims.
pub(crate) fn judge(segments: &[Segment], overlap: u64, a: &AbsVal, b: &AbsVal) -> Verdict {
    let (Some(na), Some(nb)) = (a.num, b.num) else { return Verdict::Unknown };
    let mut all_disjoint = true;
    let mut collision = None;
    for (si, seg) in segments.iter().enumerate() {
        if overlap & (1 << si) == 0 {
            continue;
        }
        let (lo, hi) = (seg.base, seg.base + seg.len - 1);
        match (na.clamp(lo, hi), nb.clamp(lo, hi)) {
            // One of the addresses can never fall inside this segment:
            // vacuously disjoint here.
            (None, _) | (_, None) => {}
            (Some(ca), Some(cb)) => {
                if let Some(addr) = Si::must_equal(ca, cb) {
                    // Only a genuine collision if the clamp didn't narrow:
                    // the unclamped values must already be that singleton.
                    if na.as_singleton() == Some(addr) && nb.as_singleton() == Some(addr) {
                        collision = Some((si, addr - seg.base));
                        all_disjoint = false;
                        continue;
                    }
                }
                if !Si::disjoint(ca, cb) {
                    all_disjoint = false;
                }
            }
        }
    }
    match (all_disjoint, collision) {
        (true, _) => Verdict::Disjoint,
        (false, Some((segment, index))) => Verdict::Collides { segment, index },
        (false, None) => Verdict::Unknown,
    }
}

fn seg_names(segments: &[Segment], m: u64) -> String {
    segments
        .iter()
        .enumerate()
        .filter(|(i, _)| m & (1 << i) != 0)
        .map(|(_, s)| format!("'{}'", s.name))
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_num(v: &AbsVal) -> String {
    match v.num {
        Some(si) => si.to_string(),
        None => "?".to_string(),
    }
}
