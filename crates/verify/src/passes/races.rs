//! Static memory-race detection.
//!
//! Dataflow executes memory operations in *data-dependence order only*: two
//! accesses in the same concurrent block with no path between them can
//! commit in either order in the same context. The kernels avoid this by
//! construction — disjoint index sets for plain stores, `storeAdd` for
//! commutative accumulation — and this pass checks that discipline
//! statically.
//!
//! **Segment analysis.** Address expressions are abstracted to the set of
//! memory segments they may point into, as a bitmask over the image's
//! arrays. Classification is by *exact base match*: a constant or argument
//! is a pointer into segment `s` iff it equals `s.base` exactly — sound
//! because `MemoryImage` reserves word 0 as a guard, so no base is ever 0
//! and the ubiquitous constant 0 never aliases the first array. Pointers
//! then propagate through `add`/`sub`/`mov` (base-plus-offset arithmetic),
//! steering, selection, merging, and tag translation; all other operators
//! (and loaded values) produce non-pointers. This under-approximates — an
//! address materialized by arithmetic we do not model is simply not
//! classified — so the pass can miss races but reports no impossible
//! segment pairs.
//!
//! **Verdict.** Two same-block accesses whose segment masks intersect, at
//! least one of which is a plain `store`, and with no ordering path either
//! way, are flagged: [`Code::StoreStoreRace`] when no load is involved,
//! [`Code::LoadStoreRace`] otherwise. `storeAdd`/`storeAdd` pairs are
//! permitted (commutative by design — the paper's own fix). Findings are
//! warnings: intersecting masks prove overlap of *segments*, not of the
//! precise index sets within them.

use tyr_dfg::{Dfg, InKind, NodeId, NodeKind};
use tyr_ir::{AluOp, MemoryImage, Value};

use crate::diag::{Code, Diagnostic};
use crate::passes::{adjacency, reach};

/// Up to this many segments are tracked (one bitmask bit each); later
/// segments are left unclassified. Real kernels allocate well under this.
const MAX_SEGMENTS: usize = 64;

/// Runs the race pass against the memory image and program arguments the
/// graph will execute with.
pub fn check_races(dfg: &Dfg, mem: &MemoryImage, args: &[Value]) -> Vec<Diagnostic> {
    let segments: Vec<(String, usize)> =
        mem.arrays().take(MAX_SEGMENTS).map(|(n, r)| (n.to_string(), r.base)).collect();
    if segments.is_empty() {
        return Vec::new();
    }
    let classify = |v: Value| -> u64 {
        segments
            .iter()
            .enumerate()
            .filter(|(_, &(_, base))| v == base as Value)
            .fold(0u64, |m, (i, _)| m | 1 << i)
    };

    // Fixpoint over per-node pointer masks (the abstract value of each
    // node's data output). Masks only grow, so iteration terminates.
    let n = dfg.nodes.len();
    let mut mask = vec![0u64; n];
    let in_mask = |mask: &[u64], nid: usize, port: u16| -> u64 {
        match dfg.nodes[nid].ins.get(port as usize) {
            Some(InKind::Imm(v)) => classify(*v),
            Some(InKind::Wire) => {
                let mut m = 0u64;
                for (pi, p) in dfg.nodes.iter().enumerate() {
                    for (qi, targets) in p.outs.iter().enumerate() {
                        if targets.iter().any(|t| t.node.0 as usize == nid && t.port == port) {
                            m |= match p.kind {
                                // The source's ports carry the program
                                // arguments; classify each directly.
                                NodeKind::Source => args.get(qi).copied().map_or(0, classify),
                                _ => mask[pi],
                            };
                        }
                    }
                }
                m
            }
            None => 0,
        }
    };
    loop {
        let mut changed = false;
        for ni in 0..n {
            let new = match &dfg.nodes[ni].kind {
                NodeKind::Const(v) => classify(*v),
                NodeKind::Alu(AluOp::Mov) => in_mask(&mask, ni, 0),
                NodeKind::Alu(AluOp::Add | AluOp::Sub) => {
                    in_mask(&mask, ni, 0) | in_mask(&mask, ni, 1)
                }
                NodeKind::Select => in_mask(&mask, ni, 1) | in_mask(&mask, ni, 2),
                NodeKind::Steer => in_mask(&mask, ni, 1),
                NodeKind::Join => in_mask(&mask, ni, 0),
                NodeKind::ChangeTag => in_mask(&mask, ni, 1),
                NodeKind::ChangeTagDyn => in_mask(&mask, ni, 2),
                NodeKind::Merge | NodeKind::CMerge { .. } => {
                    (0..dfg.nodes[ni].ins.len()).fold(0u64, |m, p| m | in_mask(&mask, ni, p as u16))
                }
                // Loads, other ALU ops, tags, control: non-pointers.
                _ => 0,
            };
            if new != mask[ni] {
                mask[ni] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Memory accesses with a classified address (in0).
    #[derive(Clone, Copy, PartialEq)]
    enum Acc {
        Load,
        Store,
        StoreAdd,
    }
    let accesses: Vec<(NodeId, Acc, u64)> = dfg
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(ni, node)| {
            let kind = match node.kind {
                NodeKind::Load => Acc::Load,
                NodeKind::Store => Acc::Store,
                NodeKind::StoreAdd => Acc::StoreAdd,
                _ => return None,
            };
            let m = in_mask(&mask, ni, 0);
            (m != 0).then_some((NodeId(ni as u32), kind, m))
        })
        .collect();

    // Pairwise ordering among accesses (dyn edges included), then report
    // unordered same-block overlaps involving a plain store.
    let adj = adjacency(dfg);
    let reaches: Vec<Vec<bool>> =
        accesses.iter().map(|&(a, _, _)| reach(&adj.succs, [a])).collect();
    let seg_names = |m: u64| -> String {
        segments
            .iter()
            .enumerate()
            .filter(|(i, _)| m & (1 << i) != 0)
            .map(|(_, (n, _))| format!("'{n}'"))
            .collect::<Vec<_>>()
            .join(", ")
    };

    let mut out = Vec::new();
    for i in 0..accesses.len() {
        for j in i + 1..accesses.len() {
            let (a, ka, ma) = accesses[i];
            let (b, kb, mb) = accesses[j];
            let overlap = ma & mb;
            if overlap == 0
                || dfg.nodes[a.0 as usize].block != dfg.nodes[b.0 as usize].block
                || !(ka == Acc::Store || kb == Acc::Store)
            {
                continue;
            }
            if reaches[i][b.0 as usize] || reaches[j][a.0 as usize] {
                continue; // ordered by a dependence path
            }
            let code = if ka != Acc::Load && kb != Acc::Load {
                Code::StoreStoreRace
            } else {
                Code::LoadStoreRace
            };
            let what = if code == Code::StoreStoreRace { "stores" } else { "load and store" };
            out.push(Diagnostic::at_node(
                code,
                dfg,
                a,
                format!(
                    "unordered {what} to segment(s) {} in the same concurrent block \
                     (with {} '{}'); if the index sets overlap, use storeAdd or add an \
                     ordering dependence",
                    seg_names(overlap),
                    b,
                    dfg.nodes[b.0 as usize].label,
                ),
            ));
        }
    }
    out
}
