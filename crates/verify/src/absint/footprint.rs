//! Static working-set footprint: per-block memory address intervals from
//! the index-set analysis, widened into line-granular working-set bounds.
//!
//! The race pass asks the index-set analysis *"can these two accesses
//! collide?"*; this client asks the complementary question *"how much
//! memory can this block touch at all?"* — the static half of the paper's
//! locality claim. Every `load`/`store`/`store+` node's address value is a
//! strided interval with segment provenance; clamping the interval to each
//! segment it may point into yields a finite set of words, and the union
//! over a block's accesses (over-approximated by the interval join per
//! segment) bounds the block-instance working set. The bound is sound by
//! construction: the dynamic reuse tracker
//! (`tyr_stats::locality::WorkingSet`) can never observe more distinct
//! lines than the static interval covers, which `repro verify`
//! cross-validates on every kernel.
//!
//! An access whose address carries *no* segment provenance (a computed
//! pointer, a loaded address) admits no bound: the block's footprint scales
//! with the input, and the analysis reports the offending access as the
//! witness instead of a number.

use std::collections::BTreeMap;

use tyr_dfg::{BlockId, Dfg, NodeId, NodeKind};
use tyr_ir::{MemoryImage, Value};

use crate::absint::indexset::{self, IndexAnalysis, Segment};
use crate::absint::si::Si;
use crate::absint::{input_value, EdgeMaps};

/// Words per cache line used to convert word intervals into line bounds.
/// Matches `tyr_stats::locality::DEFAULT_LINE_WORDS` so static bounds and
/// dynamic observations are in the same unit.
pub const LINE_WORDS: i64 = 8;

/// Why an access admits no static footprint bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unbounded {
    /// The address value carries no segment provenance: it may point
    /// anywhere, so the footprint scales with the input.
    NoProvenance,
}

/// One memory access that defeats the analysis, reported as the witness on
/// the enclosing block's `W002`.
#[derive(Debug, Clone)]
pub struct UnboundedAccess {
    /// The offending `load`/`store`/`store+` node.
    pub node: NodeId,
    /// Whether the access writes.
    pub write: bool,
    /// Why no bound exists.
    pub why: Unbounded,
}

/// The footprint bound of one concurrent block (per block *instance* —
/// every instance runs the same nodes over the same address intervals).
#[derive(Debug, Clone)]
pub struct BlockFootprint {
    /// The block.
    pub block: BlockId,
    /// Its name.
    pub name: String,
    /// Upper bound on distinct words the block's accesses can touch.
    pub words: u64,
    /// Upper bound on distinct [`LINE_WORDS`]-word lines.
    pub lines: u64,
    /// Per-segment word bounds (`(segment name, words)`), for rendering.
    pub segments: Vec<(String, u64)>,
    /// Accesses in this block with no static bound; when non-empty, `words`
    /// and `lines` cover only the *bounded* accesses and the block's true
    /// footprint is input-scaled.
    pub unbounded: Vec<UnboundedAccess>,
}

/// The whole-graph footprint analysis result.
#[derive(Debug, Clone, Default)]
pub struct FootprintAnalysis {
    /// Per-block bounds, in block order, for blocks containing any access.
    pub per_block: Vec<BlockFootprint>,
}

impl FootprintAnalysis {
    /// Total word bound across blocks; `None` if any access is unbounded.
    pub fn total_words(&self) -> Option<u64> {
        self.bounded().then(|| self.per_block.iter().map(|b| b.words).sum())
    }

    /// Total line bound across blocks; `None` if any access is unbounded.
    pub fn total_lines(&self) -> Option<u64> {
        self.bounded().then(|| self.per_block.iter().map(|b| b.lines).sum())
    }

    /// Whether every access in the graph admits a static bound.
    pub fn bounded(&self) -> bool {
        self.per_block.iter().all(|b| b.unbounded.is_empty())
    }
}

/// Number of words a finite strided interval covers.
fn si_words(si: Si) -> u64 {
    let step = si.step.max(1);
    ((si.hi - si.lo) / step + 1) as u64
}

/// Number of [`LINE_WORDS`]-word lines a finite interval spans.
fn si_lines(si: Si) -> u64 {
    (si.hi.div_euclid(LINE_WORDS) - si.lo.div_euclid(LINE_WORDS) + 1) as u64
}

/// Computes per-block working-set bounds for `dfg` running over `mem` with
/// `args` (the same execution context the race pass takes — segment layout
/// and argument classification both come from it).
pub fn analyze_footprint(dfg: &Dfg, mem: &MemoryImage, args: &[Value]) -> FootprintAnalysis {
    let segments = indexset::segments_of(mem);
    let maps = EdgeMaps::new(dfg);
    let analysis = IndexAnalysis::new(&segments, args);
    let vals = indexset::analyze(dfg, &maps, &segments, args);

    // Per (block, segment): the join of every clamped access interval.
    let mut joined: BTreeMap<(u32, usize), Si> = BTreeMap::new();
    let mut unbounded: BTreeMap<u32, Vec<UnboundedAccess>> = BTreeMap::new();
    let mut touched_blocks: Vec<u32> = Vec::new();

    for (ni, node) in dfg.nodes.iter().enumerate() {
        let write = match node.kind {
            NodeKind::Load => false,
            NodeKind::Store | NodeKind::StoreAdd => true,
            _ => continue,
        };
        let addr = input_value(dfg, &maps, &analysis, &vals, ni, 0);
        if addr.is_bottom() {
            continue; // no token ever reaches this access
        }
        let b = node.block.0;
        if !touched_blocks.contains(&b) {
            touched_blocks.push(b);
        }
        let Some(si) = addr.num else { continue };
        if addr.mask == 0 {
            unbounded.entry(b).or_default().push(UnboundedAccess {
                node: NodeId(ni as u32),
                write,
                why: Unbounded::NoProvenance,
            });
            continue;
        }
        for (s, seg) in segments.iter().enumerate() {
            if addr.mask & (1 << s) == 0 {
                continue;
            }
            let Some(clamped) = si.clamp(seg.base, seg.base + seg.len - 1) else { continue };
            joined
                .entry((b, s))
                .and_modify(|acc| *acc = Si::join(*acc, clamped))
                .or_insert(clamped);
        }
    }

    touched_blocks.sort_unstable();
    let per_block = touched_blocks
        .into_iter()
        .map(|b| {
            let mut words = 0u64;
            let mut lines = 0u64;
            let mut seg_bounds = Vec::new();
            for ((_, s), si) in joined.range((b, 0)..(b, usize::MAX)) {
                let seg: &Segment = &segments[*s];
                // The join can spill past the segment; the segment itself is
                // always a valid cap.
                let w = si_words(*si).min(seg.len as u64);
                let l = si_lines(*si).min((seg.len as u64).div_ceil(LINE_WORDS as u64).max(1) + 1);
                words += w;
                lines += l;
                seg_bounds.push((seg.name.clone(), w));
            }
            BlockFootprint {
                block: BlockId(b),
                name: dfg
                    .blocks
                    .get(b as usize)
                    .map(|bl| bl.name.clone())
                    .unwrap_or_else(|| format!("cb{b}")),
                words,
                lines,
                segments: seg_bounds,
                unbounded: unbounded.remove(&b).unwrap_or_default(),
            }
        })
        .collect();

    FootprintAnalysis { per_block }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_dfg::{GraphBuilder, InKind, PortRef};
    use tyr_ir::AluOp;

    fn image() -> MemoryImage {
        let mut mem = MemoryImage::new();
        mem.alloc("a", 16);
        mem.alloc("b", 32);
        mem
    }

    /// source → load a[k] (k = 0,2,4,…) in a strided loop: the footprint is
    /// the even words of `a`, bounded by the segment.
    #[test]
    fn strided_loop_footprint_is_segment_bounded() {
        let mem = image();
        let base = mem.arrays().next().unwrap().1.base as i64;
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        let k = g.add_node(NodeKind::Merge, root, vec![InKind::Imm(base), InKind::Wire], 1, "k");
        let bump = g.add_node(
            NodeKind::Alu(AluOp::Add),
            root,
            vec![InKind::Wire, InKind::Imm(2)],
            1,
            "bump",
        );
        let ld = g.add_node(NodeKind::Load, root, vec![InKind::Wire], 1, "ld");
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: k, port: 1 });
        g.connect(k, 0, PortRef { node: bump, port: 0 });
        g.connect(bump, 0, PortRef { node: k, port: 1 });
        g.connect(k, 0, PortRef { node: ld, port: 0 });
        g.connect(ld, 0, PortRef { node: sink, port: 0 });
        let dfg = g.finish(src, sink, 1);

        // `k`'s immediate is the base of `a`, which classify() marks with
        // provenance — the widened loop counter keeps stride 2.
        let fp = analyze_footprint(&dfg, &mem, &[]);
        assert_eq!(fp.per_block.len(), 1);
        let b = &fp.per_block[0];
        assert!(b.unbounded.is_empty());
        // Even words of a 16-word segment: at most 8.
        assert_eq!(b.words, 8, "{b:?}");
        assert!(fp.total_words() == Some(8));
        assert!(b.lines >= 1 && b.lines <= 3, "{b:?}");
    }

    /// A load whose address arrives as a plain number (no segment base in
    /// its provenance) admits no bound: the block is input-scaled, with the
    /// access as witness.
    #[test]
    fn provenance_free_address_is_unbounded_with_witness() {
        let mem = image();
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        let mov = g.add_node(NodeKind::Alu(AluOp::Mov), root, vec![InKind::Wire], 1, "mov");
        let ld = g.add_node(NodeKind::Load, root, vec![InKind::Wire], 1, "ld.data");
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: mov, port: 0 });
        g.connect(mov, 0, PortRef { node: ld, port: 0 });
        g.connect(ld, 0, PortRef { node: sink, port: 0 });
        let dfg = g.finish(src, sink, 1);

        // Argument 5 matches no segment base, so the address has a value
        // but no provenance.
        let fp = analyze_footprint(&dfg, &mem, &[5]);
        let b = fp.per_block.iter().find(|b| !b.unbounded.is_empty()).expect("witness");
        assert_eq!(b.unbounded[0].node, ld);
        assert_eq!(b.unbounded[0].why, Unbounded::NoProvenance);
        assert!(fp.total_words().is_none());
    }
}
