//! Ordered-channel occupancy: static FIFO-depth obligations for the
//! ordered (RipTide-style) engine, and the `O…` diagnostics.
//!
//! The ordered engine gives every edge a bounded FIFO and applies back
//! pressure: a node fires only when all wired inputs have a token *and*
//! every output FIFO has space. That rule has a static shadow, the way the
//! tagged engine's tag pools have the `T…` passes:
//!
//! * **Minimum capacity** ([`ChannelDepths::min`]). A *live* edge — one
//!   whose producer a source token can reach — needs capacity ≥ 1: at
//!   capacity 0 the producer's space check (`len < 0`) can never pass, the
//!   producer is wedged forever, and (because barrier coverage guarantees
//!   every node transitively feeds the sink) the graph deadlocks. A primed
//!   `CMerge`'s control port additionally needs room for its `initial_ctl`
//!   preload. Below-minimum capacity is [`Code::ChannelBelowMinimum`]
//!   (O001, error) — a *guaranteed* stall cycle, cross-validated against
//!   the engine's back-pressure deadlock detector in `repro verify`.
//!
//! * **Recommended capacity** ([`ChannelDepths::recommended`]), from
//!   *reconvergent-path imbalance*: when two paths from a common producer
//!   reconverge, the shorter path's tokens wait for the longer path's, and
//!   the wait is the difference of the paths' pipeline depths — computed
//!   here as a longest-path analysis on the monotone framework (cyclic
//!   regions widen to unbounded and claim nothing). A configuration at the
//!   bare minimum is *safe* — progress is guaranteed, one token at a time —
//!   but has zero slack; that is [`Code::ChannelAtMinimum`] (O002, note,
//!   aggregated per graph).
//!
//! * **Data-dependent cycles**. For a loop whose trip count the graph
//!   decides from *loaded* data (the sparse kernels' inner loops), the
//!   static analysis cannot bound how long the zero-slack regime lasts or
//!   prove the schedule fair under memory latency; a zero-slack
//!   configuration of such a cycle is flagged [`Code::DataDependentCycle`]
//!   (O003, warning — may deadlock, not proven).
//!
//! [`check_channel_capacity`] evaluates all three against a concrete
//! [`ChannelCapacity`], mirroring how `check_tag_policy` evaluates the tag
//! passes against a concrete `TagPolicy`.

use tyr_dfg::{Dfg, InKind, NodeId, NodeKind};
use tyr_ir::Value;
use tyr_sim::ordered::ChannelCapacity;

use crate::absint::{fixpoint, Analysis, EdgeMaps, Lattice};
use crate::diag::{Code, Diagnostic};
use crate::passes::reach;

/// Pipeline depth from the source: the value domain of the level analysis.
///
/// Ordered as `Bottom < Depth(0) < Depth(1) < … < Unbounded`; join is max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No token can arrive here.
    Bottom,
    /// Longest acyclic path from the source, in node firings.
    Depth(u32),
    /// On a cycle (or past the widening bound): no finite depth.
    Unbounded,
}

impl Lattice for Level {
    fn bottom() -> Self {
        Level::Bottom
    }

    fn join_from(&mut self, other: &Self) -> bool {
        if other > self {
            *self = *other;
            true
        } else {
            false
        }
    }
}

/// Longest-path-from-source as an [`Analysis`]: node level = 1 + max over
/// wired input levels. Cycles would climb forever; widening sends them to
/// [`Level::Unbounded`], which is exactly the right answer — a cyclic
/// region has no static path imbalance to speak of.
struct Levels;

impl Analysis for Levels {
    type Value = Level;

    fn immediate(&self, _dfg: &Dfg, _node: usize, _port: u16, _value: Value) -> Level {
        // Immediates are baked into the instruction; they add no pipeline
        // depth and never gate firing.
        Level::Bottom
    }

    fn transfer(&self, dfg: &Dfg, node: usize, input: &mut dyn FnMut(u16) -> Level) -> Level {
        let n = &dfg.nodes[node];
        if matches!(n.kind, NodeKind::Source) {
            return Level::Depth(0);
        }
        let mut acc = Level::Bottom;
        for (p, kind) in n.ins.iter().enumerate() {
            if matches!(kind, InKind::Wire) {
                acc.join_from(&input(p as u16));
            }
        }
        match acc {
            Level::Bottom => Level::Bottom,
            Level::Depth(d) => Level::Depth(d.saturating_add(1)),
            Level::Unbounded => Level::Unbounded,
        }
    }

    fn widen(&self, old: &Level, new: &Level) -> Level {
        if new > old {
            Level::Unbounded
        } else {
            *new
        }
    }
}

/// The static per-edge depth obligations of one graph.
#[derive(Debug)]
pub struct ChannelDepths {
    /// `min[node][port]` — the minimum FIFO capacity the edge bundle into
    /// that port needs for the graph to make progress; 0 for ports no live
    /// producer feeds (unconstrained).
    pub min: Vec<Vec<usize>>,
    /// `recommended[node][port]` — capacity for stall-free flow through
    /// reconvergent paths: `min + (path imbalance at this node)`. Equals
    /// `min` where no finite imbalance is known.
    pub recommended: Vec<Vec<usize>>,
    /// Whether a source token can reach each node (including dynamic
    /// `changeTag.dyn` routes).
    pub live: Vec<bool>,
    /// The graph's nontrivial strongly connected components (its loops).
    pub cycles: Vec<Vec<NodeId>>,
    /// Per cycle: whether its trip count is data-dependent — a `Load` sits
    /// in the backward slice of the loop head's control input, so no static
    /// bound on iterations exists.
    pub data_dependent: Vec<bool>,
}

/// Computes the per-edge depth obligations.
pub fn analyze_channel_depths(dfg: &Dfg, maps: &EdgeMaps) -> ChannelDepths {
    let n = dfg.nodes.len();
    let live = reach(&maps.succs, [dfg.source]);
    let levels = fixpoint(dfg, maps, &Levels);

    // Per input port: does a live producer feed it, and at what level?
    let port_info = |ni: usize, p: usize| -> (bool, Level) {
        let mut fed = false;
        let mut lvl = Level::Bottom;
        for &(prod, _) in &maps.producers[ni][p] {
            if live[prod.0 as usize] {
                fed = true;
                lvl.join_from(&levels[prod.0 as usize]);
            }
        }
        (fed, lvl)
    };

    let mut min = Vec::with_capacity(n);
    let mut recommended = Vec::with_capacity(n);
    for (ni, node) in dfg.nodes.iter().enumerate() {
        let ports = node.ins.len();
        let mut m = vec![0usize; ports];
        let mut r = vec![0usize; ports];
        // The deepest live input level, for imbalance.
        let mut deepest = Level::Bottom;
        for (p, mp) in m.iter_mut().enumerate() {
            let (fed, lvl) = port_info(ni, p);
            if fed {
                deepest.join_from(&lvl);
                *mp = match &node.kind {
                    // The primed control tokens must fit alongside flow.
                    NodeKind::CMerge { initial_ctl } if p == 0 => initial_ctl.len().max(1),
                    _ => 1,
                };
            }
        }
        for p in 0..ports {
            if m[p] == 0 {
                continue;
            }
            let (_, lvl) = port_info(ni, p);
            r[p] = match (lvl, deepest) {
                (Level::Depth(mine), Level::Depth(max)) => m[p] + (max - mine) as usize,
                _ => m[p],
            };
        }
        min.push(m);
        recommended.push(r);
    }

    let cycles = nontrivial_sccs(&maps.succs, &maps.preds);
    let data_dependent = cycles
        .iter()
        .map(|cycle| {
            // The loop head is the primed CMerge (a plain Steer for
            // degenerate cycles); its control input's backward slice is the
            // trip-count decider.
            let head = cycle
                .iter()
                .find(|&&c| {
                    matches!(&dfg.nodes[c.0 as usize].kind,
                             NodeKind::CMerge { initial_ctl } if !initial_ctl.is_empty())
                })
                .or_else(|| {
                    cycle.iter().find(|&&c| matches!(dfg.nodes[c.0 as usize].kind, NodeKind::Steer))
                });
            let Some(&head) = head else { return false };
            let deciders: Vec<NodeId> = maps.producers[head.0 as usize]
                .first()
                .into_iter()
                .flatten()
                .map(|&(p, _)| p)
                .collect();
            let slice = reach(&maps.preds, deciders);
            slice
                .iter()
                .enumerate()
                .any(|(i, &in_slice)| in_slice && matches!(dfg.nodes[i].kind, NodeKind::Load))
        })
        .collect();

    ChannelDepths { min, recommended, live, cycles, data_dependent }
}

/// Checks a concrete per-edge capacity configuration against the static
/// obligations; the ordered analogue of `check_tag_policy`.
pub fn check_channel_capacity(dfg: &Dfg, caps: &ChannelCapacity) -> Vec<Diagnostic> {
    let maps = EdgeMaps::new(dfg);
    let depths = analyze_channel_depths(dfg, &maps);
    let mut out = Vec::new();

    let mut at_min = 0usize;
    let mut suggest = 0usize;
    for (ni, node) in dfg.nodes.iter().enumerate() {
        for p in 0..node.ins.len() {
            let need = depths.min[ni][p];
            if need == 0 {
                continue;
            }
            let cap = caps.of(ni as u32, p as u16);
            if cap < need {
                let feeders: Vec<&str> = maps.producers[ni][p]
                    .iter()
                    .map(|&(q, _)| dfg.nodes[q.0 as usize].label.as_str())
                    .collect();
                out.push(Diagnostic::at_node(
                    Code::ChannelBelowMinimum,
                    dfg,
                    NodeId(ni as u32),
                    format!(
                        "channel into i{p} (from '{}') has capacity {cap}, below the static \
                         minimum {need}: the producer can never forward a token, and back \
                         pressure wedges everything upstream — guaranteed deadlock",
                        feeders.join("', '"),
                    ),
                ));
            } else if cap == need {
                at_min += 1;
                suggest = suggest.max(depths.recommended[ni][p]);
            }
        }
    }

    for (cycle, &dd) in depths.cycles.iter().zip(&depths.data_dependent) {
        if !dd {
            continue;
        }
        let zero_slack = cycle.iter().any(|&c| {
            let ni = c.0 as usize;
            (0..dfg.nodes[ni].ins.len()).any(|p| {
                depths.min[ni][p] > 0
                    && caps.of(ni as u32, p as u16) == depths.min[ni][p]
                    && maps.producers[ni][p].iter().any(|(q, _)| cycle.contains(q))
            })
        });
        if !zero_slack {
            continue;
        }
        let head = cycle.iter().min().copied().unwrap_or(NodeId(0));
        let block = dfg.nodes[head.0 as usize].block;
        out.push(Diagnostic::at_block(
            Code::DataDependentCycle,
            dfg,
            block,
            format!(
                "a {}-node cycle with a data-dependent trip count (a load feeds its \
                 decider) runs its channels at the static minimum depth; the minimum \
                 guarantees progress only cycle-locally, so this configuration may \
                 deadlock under adverse memory schedules",
                cycle.len(),
            ),
        ));
    }

    if at_min > 0 && out.is_empty() {
        out.push(Diagnostic::global(
            Code::ChannelAtMinimum,
            format!(
                "{at_min} channel(s) at the static minimum depth: safe, but zero slack \
                 (every token strictly serializes); reconvergent-path imbalance suggests \
                 depth {suggest}",
            ),
        ));
    }
    out
}

/// Nontrivial strongly connected components (size > 1, or a self-loop),
/// via Kosaraju's two passes over the prebuilt adjacency.
fn nontrivial_sccs(succs: &[Vec<NodeId>], preds: &[Vec<NodeId>]) -> Vec<Vec<NodeId>> {
    let n = succs.len();
    // Pass 1: finish order by iterative DFS over the forward graph.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in 0..n {
        if seen[root] {
            continue;
        }
        // (node, next-successor-index) stack.
        let mut stack = vec![(root, 0usize)];
        seen[root] = true;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if let Some(&w) = succs[v].get(*i) {
                *i += 1;
                let wi = w.0 as usize;
                if !seen[wi] {
                    seen[wi] = true;
                    stack.push((wi, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse graph, reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut n_comps = 0usize;
    for &root in order.iter().rev() {
        if comp[root] != usize::MAX {
            continue;
        }
        let c = n_comps;
        n_comps += 1;
        let mut stack = vec![root];
        comp[root] = c;
        while let Some(v) = stack.pop() {
            for &w in &preds[v] {
                let wi = w.0 as usize;
                if comp[wi] == usize::MAX {
                    comp[wi] = c;
                    stack.push(wi);
                }
            }
        }
    }
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); n_comps];
    for (v, &c) in comp.iter().enumerate() {
        members[c].push(NodeId(v as u32));
    }
    members
        .into_iter()
        .filter(|m| m.len() > 1 || m.first().is_some_and(|&v| succs[v.0 as usize].contains(&v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_dfg::lower::lower_ordered;
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::Program;

    fn counted_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, nn] = f.begin_loop("sum", [0.into(), 0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc2, nn], [acc]);
        pb.finish(f, [total])
    }

    fn loaded_bound_loop() -> Program {
        // while (i < mem[1]) — the trip count is loaded, not computed.
        // (Loads are impure, so the bound is loaded before the loop and
        // carried in; the decider's backward slice still reaches it.)
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let bound = f.load(1);
        let [i, b] = f.begin_loop("l", [0.into(), bound]);
        let c = f.lt(i, b);
        f.begin_body(c);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, b], [i]);
        pb.finish(f, [out])
    }

    #[test]
    fn live_edges_need_capacity_one_and_the_preload_fits() {
        let dfg = lower_ordered(&counted_loop()).unwrap();
        let maps = EdgeMaps::new(&dfg);
        let d = analyze_channel_depths(&dfg, &maps);
        // Every wired port of a live node with a live producer needs ≥ 1.
        for (ni, node) in dfg.nodes.iter().enumerate() {
            for p in 0..node.ins.len() {
                if d.min[ni][p] > 0 {
                    assert!(d.recommended[ni][p] >= d.min[ni][p]);
                }
            }
        }
        // The loop-carry CMerges are a cycle.
        assert!(!d.cycles.is_empty(), "a loop must show up as an SCC");
        // A pure counter loop's trip count is not data-dependent.
        assert!(d.data_dependent.iter().all(|&x| !x));
    }

    #[test]
    fn below_minimum_is_an_error_at_minimum_a_note() {
        let dfg = lower_ordered(&counted_loop()).unwrap();
        // Depth 4: slack everywhere, nothing to report.
        assert!(check_channel_capacity(&dfg, &ChannelCapacity::uniform(4)).is_empty());
        // Depth 1: the exact minimum — safe, one aggregated note.
        let diags = check_channel_capacity(&dfg, &ChannelCapacity::uniform(1));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::ChannelAtMinimum);
        // A zero-capacity live edge: guaranteed deadlock, an error.
        let cm = dfg
            .nodes
            .iter()
            .position(
                |n| matches!(&n.kind, NodeKind::CMerge { initial_ctl } if !initial_ctl.is_empty()),
            )
            .unwrap() as u32;
        let caps = ChannelCapacity::uniform(4).with_override(cm, 0, 0);
        let diags = check_channel_capacity(&dfg, &caps);
        assert!(diags.iter().any(|d| d.code == Code::ChannelBelowMinimum), "{diags:?}");
    }

    #[test]
    fn data_dependent_trip_counts_warn_at_zero_slack() {
        let dfg = lower_ordered(&loaded_bound_loop()).unwrap();
        let maps = EdgeMaps::new(&dfg);
        let d = analyze_channel_depths(&dfg, &maps);
        assert!(
            d.data_dependent.iter().any(|&x| x),
            "a loaded loop bound must mark the cycle data-dependent"
        );
        let diags = check_channel_capacity(&dfg, &ChannelCapacity::uniform(1));
        assert!(diags.iter().any(|d| d.code == Code::DataDependentCycle), "{diags:?}");
        // With slack the warning disappears.
        assert!(check_channel_capacity(&dfg, &ChannelCapacity::uniform(4)).is_empty());
    }

    #[test]
    fn static_verdicts_match_the_engine() {
        // The module-level contract in miniature: a predicted-safe capacity
        // completes; a predicted-deadlock capacity deadlocks.
        use tyr_ir::MemoryImage;
        use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
        let dfg = lower_ordered(&counted_loop()).unwrap();
        for depth in [1usize, 2, 4] {
            let caps = ChannelCapacity::uniform(depth);
            assert!(!check_channel_capacity(&dfg, &caps)
                .iter()
                .any(|d| d.code == Code::ChannelBelowMinimum));
            let cfg =
                OrderedConfig { queue_depth: depth, args: vec![25], ..OrderedConfig::default() };
            let r = OrderedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
            assert!(r.is_complete(), "depth {depth}: {:?}", r.outcome);
            assert_eq!(r.returns, vec![300]);
        }
        let cm = dfg
            .nodes
            .iter()
            .position(
                |n| matches!(&n.kind, NodeKind::CMerge { initial_ctl } if !initial_ctl.is_empty()),
            )
            .unwrap() as u32;
        assert!(check_channel_capacity(&dfg, &ChannelCapacity::uniform(4).with_override(cm, 0, 0))
            .iter()
            .any(|d| d.code == Code::ChannelBelowMinimum));
        let cfg = OrderedConfig {
            depth_overrides: vec![((cm, 0), 0)],
            args: vec![25],
            ..OrderedConfig::default()
        };
        let r = OrderedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        assert!(!r.is_complete(), "predicted deadlock must be real");
    }
}
