//! The index-set analysis: segment provenance *and* strided-interval
//! address values, computed together on the monotone framework.
//!
//! This is the race pass's abstract domain. Each node's data output is
//! abstracted to an [`AbsVal`]:
//!
//! * `mask` — which memory segments the value may point into, as provenance
//!   bits (exact-base-match classification, propagated through address
//!   arithmetic; see the race-pass docs for why this is sound);
//! * `num` — a strided interval ([`Si`]) over-approximating the value
//!   *numerically*, regardless of provenance.
//!
//! The two components answer different questions at an access site. The
//! mask says *which arrays* the address may target (may-alias at segment
//! granularity — PR 1's whole story). The interval says *which words*: for
//! two accesses classified into a common segment, their concrete addresses
//! lie in their respective intervals, so [`Si::disjoint`] intervals prove
//! the accesses race-free, and two equal singletons prove they always
//! collide — with the witness index being the singleton minus the segment
//! base. Loop counters keep their stride through widening (see [`si`]), so
//! the classic even/odd and strided partitionings are proved disjoint even
//! with unknown trip counts.
//!
//! [`si`]: crate::absint::si

use tyr_dfg::{Dfg, NodeKind};
use tyr_ir::{AluOp, MemoryImage, Value};

use crate::absint::si::Si;
use crate::absint::{fixpoint, Analysis, EdgeMaps, Lattice};

/// Up to this many segments are tracked (one provenance bit each); later
/// segments are left unclassified. Real kernels allocate well under this.
pub const MAX_SEGMENTS: usize = 64;

/// One tracked memory segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The array's name in the [`MemoryImage`].
    pub name: String,
    /// First word address.
    pub base: i64,
    /// Length in words.
    pub len: i64,
}

/// Extracts the tracked segments (first [`MAX_SEGMENTS`] arrays) from a
/// memory image.
pub fn segments_of(mem: &MemoryImage) -> Vec<Segment> {
    mem.arrays()
        .take(MAX_SEGMENTS)
        .map(|(n, r)| Segment { name: n.to_string(), base: r.base as i64, len: r.len as i64 })
        .collect()
}

/// The abstract value of one node output: segment provenance plus a
/// numeric strided interval.
///
/// Bottom (no token ever flows here) is `mask == 0 && num == None`. Every
/// reachable value has `num = Some(_)` — an unmodeled operator produces
/// [`Si::top`], never `None`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbsVal {
    /// Segment provenance bits (bit `i` = may point into segment `i`).
    pub mask: u64,
    /// Numeric over-approximation of the value; `None` iff bottom.
    pub num: Option<Si>,
}

impl AbsVal {
    /// Whether no value can flow here.
    pub fn is_bottom(&self) -> bool {
        self.mask == 0 && self.num.is_none()
    }

    /// A pure number with no segment provenance.
    pub fn number(si: Si) -> AbsVal {
        AbsVal { mask: 0, num: Some(si) }
    }

    /// The unknown-value top: any number, no provenance.
    pub fn unknown() -> AbsVal {
        AbsVal::number(Si::top())
    }

    fn lift2(a: &AbsVal, b: &AbsVal, mask: u64, op: impl Fn(Si, Si) -> Si) -> AbsVal {
        match (a.num, b.num) {
            (Some(x), Some(y)) => AbsVal { mask, num: Some(op(x, y)) },
            // Either side bottom: the node can never fire on these inputs.
            _ => AbsVal::default(),
        }
    }

    /// Abstract addition. Provenance is the union: `ptr + int` (and the
    /// degenerate `ptr + ptr`) stays classified, exactly as the segment
    /// analysis always propagated `add`.
    pub fn add(a: &AbsVal, b: &AbsVal) -> AbsVal {
        Self::lift2(a, b, a.mask | b.mask, Si::add)
    }

    /// Abstract subtraction; provenance as for [`add`](Self::add).
    pub fn sub(a: &AbsVal, b: &AbsVal) -> AbsVal {
        Self::lift2(a, b, a.mask | b.mask, Si::sub)
    }

    /// Abstract multiplication. Scaling destroys base-plus-offset shape, so
    /// the result carries no provenance (matching the segment analysis,
    /// which never propagated pointers through `mul`).
    pub fn mul(a: &AbsVal, b: &AbsVal) -> AbsVal {
        Self::lift2(a, b, 0, Si::mul)
    }
}

impl Lattice for AbsVal {
    fn bottom() -> Self {
        AbsVal::default()
    }

    fn join_from(&mut self, other: &Self) -> bool {
        let mask_changed = self.mask | other.mask != self.mask;
        self.mask |= other.mask;
        self.num.join_from(&other.num) || mask_changed
    }
}

/// The analysis client: classifies constants and program arguments against
/// the segment table and pushes [`AbsVal`]s through the value-preserving
/// and address-arithmetic operators.
pub struct IndexAnalysis<'a> {
    segments: &'a [Segment],
    args: &'a [Value],
}

impl<'a> IndexAnalysis<'a> {
    /// A client over `segments`, classifying `Source` ports via `args`.
    pub fn new(segments: &'a [Segment], args: &'a [Value]) -> Self {
        IndexAnalysis { segments, args }
    }

    /// Abstracts one concrete value: the exact singleton, plus a provenance
    /// bit for every segment whose base it equals exactly. (Sound because
    /// `MemoryImage` reserves word 0 as a guard, so no base is ever 0 and
    /// the ubiquitous constant 0 never aliases the first array.)
    pub fn classify(&self, v: Value) -> AbsVal {
        let mask = self
            .segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.base == v)
            .fold(0u64, |m, (i, _)| m | 1 << i);
        AbsVal { mask, num: Some(Si::exact(v)) }
    }
}

impl Analysis for IndexAnalysis<'_> {
    type Value = AbsVal;

    fn immediate(&self, _dfg: &Dfg, _node: usize, _port: u16, value: Value) -> AbsVal {
        self.classify(value)
    }

    fn transfer(&self, dfg: &Dfg, node: usize, input: &mut dyn FnMut(u16) -> AbsVal) -> AbsVal {
        let n = &dfg.nodes[node];
        match &n.kind {
            NodeKind::Const(v) => self.classify(*v),
            // The source's per-port argument values are produced by
            // `output`; the node value itself is irrelevant.
            NodeKind::Source => AbsVal::unknown(),
            NodeKind::Alu(AluOp::Mov) => input(0),
            NodeKind::Alu(AluOp::Add) => AbsVal::add(&input(0), &input(1)),
            NodeKind::Alu(AluOp::Sub) => AbsVal::sub(&input(0), &input(1)),
            NodeKind::Alu(AluOp::Mul) => AbsVal::mul(&input(0), &input(1)),
            NodeKind::Alu(
                AluOp::Lt | AluOp::Le | AluOp::Gt | AluOp::Ge | AluOp::Eq | AluOp::Ne,
            ) => {
                if input(0).is_bottom() || input(1).is_bottom() {
                    AbsVal::default()
                } else {
                    AbsVal::number(Si::range(0, 1))
                }
            }
            NodeKind::Select => {
                let mut v = input(1);
                v.join_from(&input(2));
                if input(0).is_bottom() {
                    AbsVal::default()
                } else {
                    v
                }
            }
            NodeKind::Steer => {
                if input(0).is_bottom() {
                    AbsVal::default()
                } else {
                    input(1)
                }
            }
            NodeKind::Join => input(0),
            NodeKind::ChangeTag => input(1),
            NodeKind::ChangeTagDyn => input(2),
            NodeKind::Merge | NodeKind::CMerge { .. } => {
                let mut v = AbsVal::default();
                for p in 0..n.ins.len() {
                    v.join_from(&input(p as u16));
                }
                v
            }
            // Loads, remaining ALU ops, allocation, control: an unknown
            // number once any input is live, never a pointer.
            _ => {
                if (0..n.ins.len()).any(|p| !input(p as u16).is_bottom()) {
                    AbsVal::unknown()
                } else {
                    AbsVal::default()
                }
            }
        }
    }

    fn output(&self, dfg: &Dfg, node: usize, port: u16, value: &AbsVal) -> AbsVal {
        if matches!(dfg.nodes[node].kind, NodeKind::Source) {
            return match self.args.get(port as usize) {
                Some(&v) => self.classify(v),
                None => AbsVal::default(),
            };
        }
        value.clone()
    }

    fn widen(&self, old: &AbsVal, new: &AbsVal) -> AbsVal {
        // The mask component is finite-height; only the interval needs
        // widening.
        AbsVal {
            mask: old.mask | new.mask,
            num: match (old.num, new.num) {
                (Some(o), Some(n)) => Some(Si::widen(o, Si::join(o, n))),
                (o, n) => o.or(n),
            },
        }
    }
}

/// The fixpoint of the index-set analysis: one [`AbsVal`] per node.
pub fn analyze(dfg: &Dfg, maps: &EdgeMaps, segments: &[Segment], args: &[Value]) -> Vec<AbsVal> {
    fixpoint(dfg, maps, &IndexAnalysis::new(segments, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_dfg::{GraphBuilder, InKind, PortRef};

    fn segs() -> Vec<Segment> {
        vec![
            Segment { name: "a".into(), base: 1, len: 8 },
            Segment { name: "b".into(), base: 9, len: 8 },
        ]
    }

    #[test]
    fn classification_is_exact_base_match() {
        let segs = segs();
        let an = IndexAnalysis::new(&segs, &[]);
        assert_eq!(an.classify(1).mask, 0b01);
        assert_eq!(an.classify(9).mask, 0b10);
        assert_eq!(an.classify(0).mask, 0, "the guard word belongs to no segment");
        assert_eq!(an.classify(5).mask, 0, "mid-segment values carry no provenance");
        assert_eq!(an.classify(9).num, Some(Si::exact(9)));
    }

    #[test]
    fn address_arithmetic_keeps_provenance_and_value() {
        let p = AbsVal { mask: 0b01, num: Some(Si::exact(1)) };
        let i = AbsVal::number(Si::progression(0, 2));
        let sum = AbsVal::add(&p, &i);
        assert_eq!(sum.mask, 0b01);
        assert_eq!(sum.num, Some(Si::progression(1, 2)));
        // Scaling drops provenance but keeps the interval.
        let scaled = AbsVal::mul(&i, &AbsVal::number(Si::exact(3)));
        assert_eq!(scaled.mask, 0);
        assert_eq!(scaled.num, Some(Si::progression(0, 6)));
        // Bottom is absorbing.
        assert!(AbsVal::add(&p, &AbsVal::default()).is_bottom());
    }

    /// A single-block counter loop storing to `a[2k]` and `a[2k+1]`:
    /// the fixpoint must find the two store addresses in disjoint residue
    /// classes of segment `a` even though the trip count is dynamic.
    #[test]
    fn loop_counter_widens_to_an_anchored_stride() {
        let segs = segs();
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, root, vec![], 1, "src");
        // k = merge(0, k + 2)
        let k = g.add_node(NodeKind::Merge, root, vec![InKind::Imm(0), InKind::Wire], 1, "k");
        let bump = g.add_node(
            NodeKind::Alu(AluOp::Add),
            root,
            vec![InKind::Wire, InKind::Imm(2)],
            1,
            "bump",
        );
        // even = 1 + k; odd = even + 1 (addresses into segment 'a').
        let even = g.add_node(
            NodeKind::Alu(AluOp::Add),
            root,
            vec![InKind::Imm(1), InKind::Wire],
            1,
            "even",
        );
        let odd = g.add_node(
            NodeKind::Alu(AluOp::Add),
            root,
            vec![InKind::Wire, InKind::Imm(1)],
            1,
            "odd",
        );
        let s0 =
            g.add_node(NodeKind::Store, root, vec![InKind::Wire, InKind::Imm(7)], 1, "store.even");
        let s1 =
            g.add_node(NodeKind::Store, root, vec![InKind::Wire, InKind::Imm(7)], 1, "store.odd");
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: k, port: 1 });
        g.connect(k, 0, PortRef { node: bump, port: 0 });
        g.connect(bump, 0, PortRef { node: k, port: 1 });
        g.connect(k, 0, PortRef { node: even, port: 1 });
        g.connect(even, 0, PortRef { node: odd, port: 0 });
        g.connect(even, 0, PortRef { node: s0, port: 0 });
        g.connect(odd, 0, PortRef { node: s1, port: 0 });
        g.connect(s0, 0, PortRef { node: sink, port: 0 });
        let dfg = g.finish(src, sink, 1);

        let maps = EdgeMaps::new(&dfg);
        let vals = analyze(&dfg, &maps, &segs, &[]);
        let ve = &vals[even.0 as usize];
        let vo = &vals[odd.0 as usize];
        assert_eq!(ve.mask, 0b01);
        assert_eq!(vo.mask, 0b01);
        let (e, o) = (ve.num.unwrap(), vo.num.unwrap());
        assert_eq!(e.step, 2, "even addresses: {e}");
        assert_eq!(o.step, 2, "odd addresses: {o}");
        assert!(Si::disjoint(e, o), "{e} vs {o} must be provably disjoint");
    }
}
