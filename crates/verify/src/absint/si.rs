//! Strided intervals: the numeric lattice of the index-set analysis.
//!
//! A [`Si`] describes the set `{lo, lo + step, lo + 2·step, …} ∩ [lo, hi]`
//! — an arithmetic progression clipped to a range, the classic domain for
//! array-index reasoning (Balakrishnan & Reps' *a + [lo, hi] step s*
//! value-set form). It is exactly what loop counters look like after
//! widening: `0 + [0, ∞) step 1` for `i += 1`, `0 + [0, ∞) step 2` for
//! `i += 2`, and so on — precise enough to *prove* two access streams
//! disjoint (disjoint ranges, or incompatible residues modulo the stride
//! gcd) or to *prove* them overlapping (both singletons, same point).
//!
//! Unbounded ends use `i64::MIN`/`i64::MAX` as ∞ sentinels. Stride
//! information is anchored at `lo`, so a set with `lo = −∞` is forced to
//! step 1 (no anchor to take residues against); widening therefore prefers
//! to blow up `hi`, which keeps loop-counter residues intact.

use tyr_ir::Value;

use crate::absint::Lattice;

/// ∞ sentinel for [`Si::hi`].
pub const INF: i64 = i64::MAX;
/// −∞ sentinel for [`Si::lo`].
pub const NEG_INF: i64 = i64::MIN;

/// A strided interval: the set `{lo + k·step | k ≥ 0} ∩ [lo, hi]`.
///
/// Invariants: `lo ≤ hi`; `step = 0` iff the set is a singleton
/// (`lo == hi`); when both bounds are finite and `step > 0`,
/// `(hi − lo) % step == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Si {
    /// Least element (or [`NEG_INF`]).
    pub lo: i64,
    /// Greatest element (or [`INF`]).
    pub hi: i64,
    /// Distance between consecutive elements; 0 for singletons.
    pub step: i64,
}

// The arithmetic is deliberately associated-function style (`Si::add(a, b)`)
// rather than operator overloads: transfer functions read better with the
// abstract operations spelled out.
#[allow(clippy::should_implement_trait)]
impl Si {
    /// The singleton `{v}`.
    pub fn exact(v: Value) -> Si {
        Si { lo: v, hi: v, step: 0 }
    }

    /// The dense range `[lo, hi]` (step 1), or the singleton when equal.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: i64, hi: i64) -> Si {
        assert!(lo <= hi, "empty range");
        Si { lo, hi, step: if lo == hi { 0 } else { 1 } }
    }

    /// The progression `{lo + k·step | k ≥ 0}` with no upper bound.
    pub fn progression(lo: i64, step: i64) -> Si {
        assert!(step > 0, "a progression needs a positive step");
        Si { lo, hi: INF, step }
    }

    /// Every value: `(−∞, ∞)`.
    pub fn top() -> Si {
        Si { lo: NEG_INF, hi: INF, step: 1 }
    }

    /// Whether this is the full set.
    pub fn is_top(&self) -> bool {
        self.lo == NEG_INF && self.hi == INF
    }

    /// Whether the set is a single point.
    pub fn is_singleton(&self) -> bool {
        self.lo == self.hi
    }

    /// The single point, if [`is_singleton`](Self::is_singleton).
    pub fn as_singleton(&self) -> Option<i64> {
        self.is_singleton().then_some(self.lo)
    }

    /// Renormalizes after bound arithmetic: saturated bounds become ∞, a
    /// `lo = −∞` set loses its stride anchor, finite bounds are snapped to
    /// the progression.
    fn normalize(mut self) -> Si {
        if self.lo == self.hi {
            self.step = 0;
            return self;
        }
        if self.lo == NEG_INF {
            self.step = 1;
            return self;
        }
        if self.step <= 0 {
            self.step = 1;
        }
        if self.hi != INF {
            // Snap hi down onto the progression anchored at lo.
            let span = self.hi - self.lo;
            self.hi = self.lo + span - span % self.step;
            if self.lo == self.hi {
                self.step = 0;
            }
        }
        self
    }

    /// Least upper bound.
    pub fn join(a: Si, b: Si) -> Si {
        let lo = a.lo.min(b.lo);
        let hi = a.hi.max(b.hi);
        // The joined stride must divide both strides and the offset between
        // the anchors.
        let anchor_gap = if a.lo == NEG_INF || b.lo == NEG_INF {
            1
        } else {
            (a.lo - b.lo).unsigned_abs().min(i64::MAX as u64) as i64
        };
        let step = gcd(gcd(a.step, b.step), anchor_gap);
        Si { lo, hi, step }.normalize()
    }

    /// Standard widening: a bound that grew goes straight to ∞. The stride
    /// (anchored at `lo`) survives upward growth, so widened loop counters
    /// keep their residue class.
    pub fn widen(old: Si, new: Si) -> Si {
        let joined = Si::join(old, new);
        Si {
            lo: if joined.lo < old.lo { NEG_INF } else { joined.lo },
            hi: if joined.hi > old.hi { INF } else { joined.hi },
            step: joined.step,
        }
        .normalize()
    }

    /// Abstract addition.
    pub fn add(a: Si, b: Si) -> Si {
        let lo = sat_add(a.lo, b.lo, NEG_INF);
        let hi = sat_add(a.hi, b.hi, INF);
        Si { lo, hi, step: gcd(a.step, b.step) }.normalize()
    }

    /// Abstract negation.
    pub fn neg(a: Si) -> Si {
        let lo = if a.hi == INF { NEG_INF } else { -a.hi };
        let hi = if a.lo == NEG_INF { INF } else { -a.lo };
        Si { lo, hi, step: a.step }.normalize()
    }

    /// Abstract subtraction.
    pub fn sub(a: Si, b: Si) -> Si {
        Si::add(a, Si::neg(b))
    }

    /// Abstract multiplication. Exact for singletons; a singleton scales
    /// the other side's progression (stride and bounds); two genuine
    /// ranges lose stride information.
    pub fn mul(a: Si, b: Si) -> Si {
        match (a.as_singleton(), b.as_singleton()) {
            (Some(x), Some(y)) => Si::exact(x.wrapping_mul(y)),
            (Some(c), None) => Si::scale(b, c),
            (None, Some(c)) => Si::scale(a, c),
            (None, None) => {
                if a.is_top() || b.is_top() {
                    return Si::top();
                }
                let corners = [
                    sat_mul(a.lo, b.lo),
                    sat_mul(a.lo, b.hi),
                    sat_mul(a.hi, b.lo),
                    sat_mul(a.hi, b.hi),
                ];
                let lo = corners.iter().copied().min().unwrap();
                let hi = corners.iter().copied().max().unwrap();
                Si { lo, hi, step: 1 }.normalize()
            }
        }
    }

    fn scale(a: Si, c: i64) -> Si {
        if c == 0 {
            return Si::exact(0);
        }
        let (mut lo, mut hi) = (sat_mul(a.lo, c), sat_mul(a.hi, c));
        if c < 0 {
            std::mem::swap(&mut lo, &mut hi);
        }
        Si { lo, hi, step: sat_mul(a.step, c).abs() }.normalize()
    }

    /// Intersects with the dense range `[lo, hi]`, e.g. a segment's valid
    /// offsets. Returns `None` if the intersection is empty.
    pub fn clamp(&self, lo: i64, hi: i64) -> Option<Si> {
        if self.hi < lo || self.lo > hi {
            return None;
        }
        let mut new_lo = self.lo.max(lo);
        let mut new_hi = self.hi.min(hi);
        if self.step > 1 && self.lo != NEG_INF {
            // Snap the clamped bounds onto the progression.
            let up = (new_lo - self.lo).rem_euclid(self.step);
            if up != 0 {
                new_lo += self.step - up;
            }
            new_hi -= (new_hi - self.lo).rem_euclid(self.step);
            if new_lo > new_hi {
                return None;
            }
        }
        Some(Si { lo: new_lo, hi: new_hi, step: self.step }.normalize())
    }

    /// Proves `a ∩ b = ∅`: disjoint ranges, or — when both progressions
    /// are anchored — incompatible residues modulo the stride gcd.
    pub fn disjoint(a: Si, b: Si) -> bool {
        if a.hi < b.lo || b.hi < a.lo {
            return true;
        }
        if a.lo == NEG_INF || b.lo == NEG_INF {
            return false;
        }
        match (a.as_singleton(), b.as_singleton()) {
            (Some(x), Some(y)) => x != y,
            _ => {
                let g = gcd(gcd(a.step, b.step), 0);
                g > 1 && (a.lo - b.lo).rem_euclid(g) != 0
            }
        }
    }

    /// Proves `a = b = {v}`: both singletons at the same point; returns the
    /// common point (the overlap witness).
    pub fn must_equal(a: Si, b: Si) -> Option<i64> {
        match (a.as_singleton(), b.as_singleton()) {
            (Some(x), Some(y)) if x == y => Some(x),
            _ => None,
        }
    }
}

impl std::fmt::Display for Si {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(v) = self.as_singleton() {
            return write!(f, "{{{v}}}");
        }
        match (self.lo, self.hi) {
            (NEG_INF, INF) => write!(f, "(-inf, inf)"),
            (NEG_INF, hi) => write!(f, "(-inf, {hi}]"),
            (lo, INF) => write!(f, "{lo} + [0, inf) step {}", self.step),
            (lo, hi) => write!(f, "{lo} + [0, {}] step {}", hi - lo, self.step),
        }
    }
}

/// The lattice wrapper: `None` is bottom (no value flows here).
impl Lattice for Option<Si> {
    fn bottom() -> Self {
        None
    }

    fn join_from(&mut self, other: &Self) -> bool {
        match (self.as_ref(), other) {
            (_, None) => false,
            (None, Some(o)) => {
                *self = Some(*o);
                true
            }
            (Some(s), Some(o)) => {
                let joined = Si::join(*s, *o);
                let changed = joined != *s;
                *self = Some(joined);
                changed
            }
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.min(i64::MAX as u64) as i64
}

/// Saturating add that treats the sentinel bounds as ±∞.
fn sat_add(a: i64, b: i64, inf: i64) -> i64 {
    if (a == NEG_INF || b == NEG_INF) && inf == NEG_INF {
        return NEG_INF;
    }
    if (a == INF || b == INF) && inf == INF {
        return INF;
    }
    if a == NEG_INF || a == INF {
        return a;
    }
    if b == NEG_INF || b == INF {
        return b;
    }
    a.saturating_add(b)
}

fn sat_mul(a: i64, b: i64) -> i64 {
    a.saturating_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_keeps_strides() {
        // {0} ⊔ {2} = 0 + [0,2] step 2.
        let j = Si::join(Si::exact(0), Si::exact(2));
        assert_eq!(j, Si { lo: 0, hi: 2, step: 2 });
        // Joining in {4} keeps step 2; {3} breaks it to 1.
        let j = Si::join(j, Si::exact(4));
        assert_eq!(j.step, 2);
        assert_eq!(Si::join(j, Si::exact(3)).step, 1);
    }

    #[test]
    fn widen_blows_the_growing_bound() {
        // The loop-counter shape: {0}, then join with {0..=1} widens to an
        // anchored unbounded progression with the stride intact.
        let w = Si::widen(Si::exact(0), Si::join(Si::exact(0), Si::exact(2)));
        assert_eq!(w, Si { lo: 0, hi: INF, step: 2 });
        // lo shrinking widens to top-like (-inf forces step 1).
        let w = Si::widen(Si::exact(0), Si::join(Si::exact(0), Si::exact(-1)));
        assert_eq!(w.lo, NEG_INF);
        assert_eq!(w.step, 1);
    }

    #[test]
    fn arithmetic() {
        let i = Si::progression(0, 1); // widened counter
        let scaled = Si::mul(i, Si::exact(3));
        assert_eq!(scaled, Si { lo: 0, hi: INF, step: 3 });
        let shifted = Si::add(scaled, Si::exact(1));
        assert_eq!(shifted, Si { lo: 1, hi: INF, step: 3 });
        assert_eq!(Si::sub(shifted, Si::exact(1)), scaled);
        assert_eq!(Si::neg(Si::range(1, 5)), Si::range(-5, -1));
        assert_eq!(Si::mul(Si::exact(6), Si::exact(7)), Si::exact(42));
        // Range × range keeps bounds.
        let r = Si::mul(Si::range(2, 3), Si::range(5, 7));
        assert_eq!((r.lo, r.hi), (10, 21));
    }

    #[test]
    fn clamp_snaps_to_the_progression() {
        let evens = Si::progression(0, 2);
        let c = evens.clamp(3, 10).unwrap();
        assert_eq!(c, Si { lo: 4, hi: 10, step: 2 });
        assert_eq!(evens.clamp(0, 0).unwrap(), Si::exact(0));
        assert!(Si::progression(1, 2).clamp(2, 2).is_none(), "no odd number in [2,2]");
    }

    #[test]
    fn disjointness_proofs() {
        // Disjoint ranges.
        assert!(Si::disjoint(Si::range(0, 4), Si::range(5, 9)));
        // Same stride, different phase: 2k vs 2k+1.
        assert!(Si::disjoint(Si::progression(0, 2), Si::progression(1, 2)));
        // Same phase: overlap possible.
        assert!(!Si::disjoint(Si::progression(0, 2), Si::progression(2, 2)));
        // Distinct singletons.
        assert!(Si::disjoint(Si::exact(3), Si::exact(4)));
        // Unanchored sets prove nothing.
        assert!(!Si::disjoint(Si::top(), Si::exact(0)));
    }

    #[test]
    fn overlap_witness() {
        assert_eq!(Si::must_equal(Si::exact(5), Si::exact(5)), Some(5));
        assert_eq!(Si::must_equal(Si::exact(5), Si::exact(6)), None);
        assert_eq!(Si::must_equal(Si::exact(5), Si::range(4, 6)), None);
    }

    #[test]
    fn option_lattice() {
        let mut v: Option<Si> = Lattice::bottom();
        assert!(!v.join_from(&None));
        assert!(v.join_from(&Some(Si::exact(1))));
        assert!(v.join_from(&Some(Si::exact(3))));
        assert!(!v.join_from(&Some(Si::exact(1))), "already included");
        assert_eq!(v, Some(Si { lo: 1, hi: 3, step: 2 }));
    }
}
