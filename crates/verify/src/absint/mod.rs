//! A generic monotone framework for abstract interpretation over lowered
//! dataflow graphs.
//!
//! Every deep static pass in this crate needs the same machinery: an
//! efficient *reverse* view of the graph's edges (the `Dfg` stores edges
//! forward, producer → consumer, so "who feeds this input port?" is an
//! O(nodes × edges) scan without one), and a fixpoint loop that propagates
//! abstract values until nothing changes. This module provides both, once:
//!
//! * [`EdgeMaps`] — precomputed forward/backward adjacency plus a per-input-
//!   port producer list, with the dynamically routed `changeTag.dyn` edges
//!   synthesized in (see [`crate::passes`]);
//! * [`Lattice`] — the join-semilattice contract an abstract domain must
//!   satisfy;
//! * [`Analysis`] — per-node transfer functions keyed on
//!   [`NodeKind`], with hooks for immediates, per-output
//!   refinement (the `Source` node carries one program argument per port),
//!   and widening;
//! * [`fixpoint`] — the worklist engine: monotone joins per node, widening
//!   after a bounded number of updates so infinite-height domains (strided
//!   intervals, path lengths) still terminate.
//!
//! Clients: the index-set analysis ([`indexset`]) behind the sharpened race
//! pass, the ordered-channel occupancy analysis ([`occupancy`]) behind the
//! `O…` diagnostics, the working-set footprint analysis ([`footprint`])
//! behind the `W…` locality bounds, and the race pass itself
//! ([`check_races`](crate::passes::check_races)), whose segment-mask
//! propagation is the pointer component of the index-set domain.

pub mod footprint;
pub mod indexset;
pub mod occupancy;
pub mod si;

use std::collections::VecDeque;

use tyr_dfg::{Dfg, InKind, NodeId, NodeKind};
use tyr_ir::Value;

use crate::passes::dyn_targets;

/// A join-semilattice: the value domain of an [`Analysis`].
///
/// `bottom` is the least element (no information / unreachable);
/// [`join_from`](Lattice::join_from) computes the least upper bound in
/// place. The framework only ever moves values *up* the lattice, so
/// `join_from` returning `false` (no change) is what drives termination.
pub trait Lattice: Clone + PartialEq {
    /// The least element.
    fn bottom() -> Self;

    /// Joins `other` into `self`; returns whether `self` changed.
    fn join_from(&mut self, other: &Self) -> bool;
}

/// Precomputed edge views over a [`Dfg`], shared by every pass.
///
/// Built once per pass invocation in O(edges); all lookups are O(1) per
/// edge thereafter. This is what fixed the race pass's former
/// O(nodes × edges)-per-query input scan.
pub struct EdgeMaps {
    /// `producers[n][p]` = every `(producer, out_port)` wired into input
    /// port `p` of node `n` (static wires only; dynamic routing has no
    /// fixed target port).
    pub producers: Vec<Vec<Vec<(NodeId, u16)>>>,
    /// `succs[n]` = nodes receiving tokens from node `n`, deduplicated,
    /// including synthesized `changeTag.dyn` routing edges.
    pub succs: Vec<Vec<NodeId>>,
    /// `preds[n]` = nodes feeding node `n`, deduplicated, including
    /// synthesized `changeTag.dyn` routing edges.
    pub preds: Vec<Vec<NodeId>>,
}

impl EdgeMaps {
    /// Builds the edge maps for `dfg`.
    ///
    /// Edges into nonexistent nodes or ports (structural errors reported by
    /// [`check_structure`](crate::passes::check_structure)) are silently
    /// dropped so downstream passes stay total on malformed graphs.
    pub fn new(dfg: &Dfg) -> Self {
        let n = dfg.nodes.len();
        let mut producers: Vec<Vec<Vec<(NodeId, u16)>>> =
            dfg.nodes.iter().map(|node| vec![Vec::new(); node.ins.len()]).collect();
        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut add_adj = |from: NodeId, to: NodeId| {
            if (from.0 as usize) < n && (to.0 as usize) < n {
                let s = &mut succs[from.0 as usize];
                if s.last() != Some(&to) && !s.contains(&to) {
                    s.push(to);
                }
                let p = &mut preds[to.0 as usize];
                if p.last() != Some(&from) && !p.contains(&from) {
                    p.push(from);
                }
            }
        };
        for e in dfg.edges() {
            add_adj(e.from, e.to);
            if let Some(ports) = producers.get_mut(e.to.0 as usize) {
                if let Some(list) = ports.get_mut(e.to_port as usize) {
                    list.push((e.from, e.from_port));
                }
            }
        }
        for (ni, node) in dfg.nodes.iter().enumerate() {
            if matches!(node.kind, NodeKind::ChangeTagDyn) {
                for t in dyn_targets(dfg, NodeId(ni as u32)) {
                    add_adj(NodeId(ni as u32), t.node);
                }
            }
        }
        EdgeMaps { producers, succs, preds }
    }
}

/// An abstract interpretation over a [`Dfg`]: a value domain plus transfer
/// functions.
///
/// The framework computes one abstract value per node (the value "on the
/// node's data outputs"); multi-output nodes whose ports carry different
/// values refine per port via [`output`](Analysis::output).
pub trait Analysis {
    /// The abstract value domain.
    type Value: Lattice;

    /// The abstract value for an immediate input.
    fn immediate(&self, dfg: &Dfg, node: usize, port: u16, value: Value) -> Self::Value;

    /// The transfer function of node `node`: computes its output value from
    /// its input values. `input(p)` is the join over every producer wired
    /// into input port `p` (or the lifted immediate).
    fn transfer(
        &self,
        dfg: &Dfg,
        node: usize,
        input: &mut dyn FnMut(u16) -> Self::Value,
    ) -> Self::Value;

    /// Refines the per-node value for one output port. The default returns
    /// the node value unchanged; the index-set analysis overrides this for
    /// `Source`, whose ports carry distinct program arguments.
    fn output(&self, _dfg: &Dfg, _node: usize, _port: u16, value: &Self::Value) -> Self::Value {
        value.clone()
    }

    /// Accelerates convergence on infinite-height domains: called instead of
    /// a plain join once a node's value has changed [`WIDEN_AFTER`] times.
    /// Must return an upper bound of both arguments that eventually
    /// stabilizes. The default (returning `new`) is only correct for
    /// finite-height domains.
    fn widen(&self, _old: &Self::Value, new: &Self::Value) -> Self::Value {
        new.clone()
    }
}

/// Number of per-node updates before [`Analysis::widen`] kicks in. Small
/// enough to bound work on deep loop nests, large enough to let short
/// constant chains resolve exactly first.
pub const WIDEN_AFTER: u32 = 4;

/// The abstract value arriving at input `port` of `node` under `values`
/// (typically a [`fixpoint`] result): the lifted immediate, or the join of
/// every wired producer's per-port [`output`](Analysis::output). This is
/// what the engine feeds transfer functions, exposed so passes can query
/// port values — e.g. the race pass reading access addresses — after the
/// fixpoint.
pub fn input_value<A: Analysis>(
    dfg: &Dfg,
    maps: &EdgeMaps,
    analysis: &A,
    values: &[A::Value],
    node: usize,
    port: u16,
) -> A::Value {
    match dfg.nodes[node].ins.get(port as usize) {
        Some(InKind::Imm(v)) => analysis.immediate(dfg, node, port, *v),
        Some(InKind::Wire) => {
            let mut acc = A::Value::bottom();
            for &(p, q) in &maps.producers[node][port as usize] {
                let pi = p.0 as usize;
                acc.join_from(&analysis.output(dfg, pi, q, &values[pi]));
            }
            acc
        }
        None => A::Value::bottom(),
    }
}

/// Runs `analysis` to fixpoint over `dfg` and returns the per-node values.
///
/// Standard worklist iteration: every node starts at bottom and is
/// re-evaluated whenever one of its producers changes; values only move up
/// the lattice (the new value is *joined* into the old, never assigned), so
/// with a correct [`widen`](Analysis::widen) the loop terminates on any
/// graph, cyclic or not.
pub fn fixpoint<A: Analysis>(dfg: &Dfg, maps: &EdgeMaps, analysis: &A) -> Vec<A::Value> {
    let n = dfg.nodes.len();
    let mut values: Vec<A::Value> = vec![A::Value::bottom(); n];
    let mut updates: Vec<u32> = vec![0; n];
    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = (0..n).collect();
    while let Some(ni) = work.pop_front() {
        queued[ni] = false;
        let computed = {
            let values = &values;
            let mut input =
                |port: u16| -> A::Value { input_value(dfg, maps, analysis, values, ni, port) };
            analysis.transfer(dfg, ni, &mut input)
        };
        let next = if updates[ni] >= WIDEN_AFTER {
            analysis.widen(&values[ni], &computed)
        } else {
            computed
        };
        if values[ni].join_from(&next) {
            updates[ni] += 1;
            for &s in &maps.succs[ni] {
                let si = s.0 as usize;
                if !queued[si] {
                    queued[si] = true;
                    work.push_back(si);
                }
            }
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_dfg::{GraphBuilder, PortRef};
    use tyr_ir::AluOp;

    /// Reachability-from-source as a trivial boolean analysis.
    struct Reachable;

    impl Lattice for bool {
        fn bottom() -> Self {
            false
        }
        fn join_from(&mut self, other: &Self) -> bool {
            let changed = !*self && *other;
            *self = *self || *other;
            changed
        }
    }

    impl Analysis for Reachable {
        type Value = bool;
        fn immediate(&self, _: &Dfg, _: usize, _: u16, _: Value) -> bool {
            false
        }
        fn transfer(&self, dfg: &Dfg, node: usize, input: &mut dyn FnMut(u16) -> bool) -> bool {
            if matches!(dfg.nodes[node].kind, NodeKind::Source) {
                return true;
            }
            (0..dfg.nodes[node].ins.len()).any(|p| input(p as u16))
        }
    }

    fn diamond() -> Dfg {
        // source → (a, b) → join → sink, plus one orphan.
        let mut g = GraphBuilder::new();
        let root = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, root, vec![], 2, "src");
        let a = g.add_node(NodeKind::Alu(AluOp::Mov), root, vec![InKind::Wire], 1, "a");
        let b = g.add_node(NodeKind::Alu(AluOp::Mov), root, vec![InKind::Wire], 1, "b");
        let j = g.add_node(NodeKind::Join, root, vec![InKind::Wire, InKind::Wire], 1, "j");
        let orphan = g.add_node(NodeKind::Alu(AluOp::Mov), root, vec![InKind::Wire], 1, "orphan");
        let sink = g.add_node(NodeKind::Sink, root, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: a, port: 0 });
        g.connect(src, 1, PortRef { node: b, port: 0 });
        g.connect(a, 0, PortRef { node: j, port: 0 });
        g.connect(b, 0, PortRef { node: j, port: 1 });
        g.connect(j, 0, PortRef { node: sink, port: 0 });
        g.connect(orphan, 0, PortRef { node: orphan, port: 0 }); // self-loop
        g.finish(src, sink, 1)
    }

    #[test]
    fn edge_maps_invert_the_graph() {
        let dfg = diamond();
        let maps = EdgeMaps::new(&dfg);
        // join's two input ports each have exactly one producer.
        assert_eq!(maps.producers[3][0], vec![(NodeId(1), 0)]);
        assert_eq!(maps.producers[3][1], vec![(NodeId(2), 0)]);
        // source's successors are a and b.
        assert_eq!(maps.succs[0], vec![NodeId(1), NodeId(2)]);
        // join's preds are a and b.
        assert_eq!(maps.preds[3], vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn edge_maps_drop_broken_edges() {
        let mut dfg = diamond();
        dfg.nodes[0].outs[0].push(PortRef { node: NodeId(999), port: 0 });
        dfg.nodes[0].outs[0].push(PortRef { node: NodeId(3), port: 999 });
        let maps = EdgeMaps::new(&dfg);
        assert!(maps.producers[3].iter().flatten().all(|&(p, _)| p.0 < dfg.len() as u32));
        // The missing-node edge vanishes entirely; the missing-port edge
        // still counts for reachability (its target node exists) but feeds
        // no producer list. Successor order follows out-port order, so the
        // bad-port edge to n3 lands between the two real ones.
        assert_eq!(maps.succs[0], vec![NodeId(1), NodeId(3), NodeId(2)]);
    }

    #[test]
    fn fixpoint_propagates_through_cycles_and_misses_orphans() {
        let dfg = diamond();
        let maps = EdgeMaps::new(&dfg);
        let reach = fixpoint(&dfg, &maps, &Reachable);
        assert_eq!(reach, vec![true, true, true, true, false, true]);
    }
}
