//! The diagnostics framework: codes, severities, locations, and rendered
//! reports.
//!
//! Every finding a pass produces is a [`Diagnostic`]: a stable [`Code`]
//! (asserted on by tests and greppable in output), a [`Severity`], an
//! optional node/block location, and a human-readable message. Passes
//! accumulate diagnostics into a [`Report`], which renders them compiler
//! style, one line per finding:
//!
//! ```text
//! error[B001] n17 'orphan' (cb1 'dmv_i'): node never reaches its block's free barrier or the sink
//! ```

use std::fmt;

use tyr_dfg::{BlockId, Dfg, NodeId};

/// Stable diagnostic codes, grouped by pass.
///
/// The letter names the pass family (`S`tructure, `B`arrier, `T`ags,
/// `M`emory, `O`rdered channels, `L`ifecycle, `X` translation validation);
/// numbers are stable
/// across releases so tests and tooling can match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    // Structure pass (the Dfg::check obligations, per node).
    /// A node references an out-of-range concurrent block.
    BadBlock,
    /// A non-source node has no wired inputs, so it could never fire (or
    /// would fire forever in the ordered engine).
    NoWiredInputs,
    /// An `Allocate`/`Free` references a nonexistent tag space.
    BadSpace,
    /// An edge targets a node that does not exist.
    MissingNode,
    /// An edge targets an input port that does not exist.
    MissingPort,
    /// An edge targets an immediate input, which can never accept tokens.
    EdgeIntoImm,
    /// A tag space is allocated from but never freed into (tags cannot
    /// recycle), in a graph that otherwise builds barriers.
    UnfreedSpace,

    // Free-barrier coverage pass.
    /// A node never (transitively) feeds its block's `join → free` barrier
    /// or the sink: its tokens can outlive the context's `free`, breaking
    /// free-barrier safety (Sec. IV-A).
    OutsideBarrier,

    // Static tag-demand pass.
    /// A local tag space is configured with fewer tags than its static
    /// minimum demand under the allocate/reserve rule — deadlock.
    InsufficientTags,
    /// A bounded global (FCFS) tag pool is smaller than the flat concurrent
    /// demand of the graph's spaces; deadlock depends on allocation order.
    GlobalPoolTooSmall,
    /// Allocation nesting under a bounded global pool: concurrent tag demand
    /// scales with trip counts, so any fixed pool deadlocks once the input
    /// is large enough (the Fig. 11 failure).
    NestedGlobalAlloc,

    // Memory race pass.
    /// Two stores to the same memory segment in one concurrent block with no
    /// ordering dependency between them.
    StoreStoreRace,
    /// A load and a store to the same memory segment in one concurrent block
    /// with no ordering dependency between them.
    LoadStoreRace,

    // Ordered-channel occupancy pass.
    /// An ordered-lowering FIFO is configured below the static minimum depth
    /// of a live edge: its producer can never deposit, so the graph is
    /// guaranteed to deadlock under back-pressure.
    ChannelBelowMinimum,
    /// Every live edge is at exactly its static minimum depth: the
    /// configuration is safe but has zero slack for pipelining.
    ChannelAtMinimum,
    /// A data-dependent cycle (its trip count derives from loaded values)
    /// runs with zero slack on some in-cycle edge: worst-case occupancy
    /// cannot be bounded statically, so deeper FIFOs are recommended.
    DataDependentCycle,

    // Token-lifecycle lints.
    /// A value-producing node whose results are never consumed.
    DanglingOutput,
    /// A node unreachable from the source: it can never receive a token.
    UnreachableNode,
    /// An `Allocate` from which no `Free` of the same space is reachable:
    /// the allocated tag can never be recycled.
    AllocNoFree,

    // Working-set pass (static locality bounds).
    /// Per-block peak live-state bound: the block's token-store capacity per
    /// context times its concurrent-instance bound under the tag policy.
    /// Reported for every block so the locality claim is auditable; an
    /// unbounded instance count (unbounded tag pool) is still a note — it
    /// states the bound is infinite, which is the honest verdict.
    BlockLiveState,
    /// Per-block-instance memory footprint from the strided-interval
    /// index-set analysis, widened into per-segment address intervals.
    /// Reported as a note with the bound in words/lines per block; raised to
    /// a warning when an access's address has no segment provenance, so the
    /// block's footprint scales with the input (the offending load/store is
    /// the witness).
    FootprintBound,
    /// The paper's headline locality verdict, decided statically: the peak
    /// live-state bound under local tag spaces versus a bounded global pool
    /// versus the ordered elaboration, with the shrink ratio.
    ElaborationComparison,
    /// Per-edge token residency for ordered lowerings: total recommended
    /// FIFO occupancy from the O-pass, with the most imbalanced port as
    /// witness.
    EdgeResidency,

    // Shard-planning pass (static sharding certificates).
    /// Cross-shard memory disjointness from the strided-interval index
    /// sets: a proven always-colliding access pair split across shards is
    /// a hard error with the witness index; an undecided pair is a warning
    /// recording that the two blocks were forced into one shard; a fully
    /// proven cut is a note.
    ShardMemory,
    /// Per-shard tag-space demand versus the tag policy's budget: a shard
    /// whose resident spaces statically demand more tags than the policy
    /// can ever grant is an error (it would wedge the whole pool alone);
    /// otherwise the demand/budget figures are a note.
    ShardTagDemand,
    /// Progress summary over the cut: the per-cut-edge "could-result-in"
    /// matrix must derive every live cut edge from the source frontier, so
    /// shard-local quiescence plus empty channels implies global
    /// quiescence. A live cut edge the summary cannot derive is an error
    /// (a distributed termination detector could miss work on it).
    ShardProgress,
    /// Static cross-shard traffic estimate: per directed shard boundary,
    /// the cut-edge count and the peak in-flight token bound scaled by the
    /// consumer blocks' concurrent-instance bounds (W001).
    ShardTraffic,

    // Translation validation.
    /// A lowered graph's simulation produced different returns or memory
    /// than the reference interpreter.
    TvDivergence,
    /// A lowered graph's simulation faulted where the interpreter succeeded.
    TvFault,
    /// A lowered graph deadlocked under a configuration that must complete.
    TvDeadlock,
}

impl Code {
    /// Every diagnostic code, in pass order. The registry tests iterate
    /// this to assert uniqueness, stability, and documentation coverage.
    pub const ALL: [Code; 30] = [
        Code::BadBlock,
        Code::NoWiredInputs,
        Code::BadSpace,
        Code::MissingNode,
        Code::MissingPort,
        Code::EdgeIntoImm,
        Code::UnfreedSpace,
        Code::OutsideBarrier,
        Code::InsufficientTags,
        Code::GlobalPoolTooSmall,
        Code::NestedGlobalAlloc,
        Code::StoreStoreRace,
        Code::LoadStoreRace,
        Code::ChannelBelowMinimum,
        Code::ChannelAtMinimum,
        Code::DataDependentCycle,
        Code::DanglingOutput,
        Code::UnreachableNode,
        Code::AllocNoFree,
        Code::BlockLiveState,
        Code::FootprintBound,
        Code::ElaborationComparison,
        Code::EdgeResidency,
        Code::ShardMemory,
        Code::ShardTagDemand,
        Code::ShardProgress,
        Code::ShardTraffic,
        Code::TvDivergence,
        Code::TvFault,
        Code::TvDeadlock,
    ];

    /// The stable code string (e.g. `"B001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::BadBlock => "S001",
            Code::NoWiredInputs => "S002",
            Code::BadSpace => "S003",
            Code::MissingNode => "S004",
            Code::MissingPort => "S005",
            Code::EdgeIntoImm => "S006",
            Code::UnfreedSpace => "S007",
            Code::OutsideBarrier => "B001",
            Code::InsufficientTags => "T001",
            Code::GlobalPoolTooSmall => "T002",
            Code::NestedGlobalAlloc => "T003",
            Code::StoreStoreRace => "M001",
            Code::LoadStoreRace => "M002",
            Code::ChannelBelowMinimum => "O001",
            Code::ChannelAtMinimum => "O002",
            Code::DataDependentCycle => "O003",
            Code::DanglingOutput => "L001",
            Code::UnreachableNode => "L002",
            Code::AllocNoFree => "L003",
            Code::BlockLiveState => "W001",
            Code::FootprintBound => "W002",
            Code::ElaborationComparison => "W003",
            Code::EdgeResidency => "W004",
            Code::ShardMemory => "P001",
            Code::ShardTagDemand => "P002",
            Code::ShardProgress => "P003",
            Code::ShardTraffic => "P004",
            Code::TvDivergence => "X001",
            Code::TvFault => "X002",
            Code::TvDeadlock => "X003",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            // Races are reported as warnings: segment classification is a
            // sound-ish heuristic (see the races pass docs), and the paper's
            // kernels resolve them with `StoreAdd`, not ordering edges.
            Code::StoreStoreRace | Code::LoadStoreRace => Severity::Warning,
            // A pool smaller than the flat demand *may* complete under lucky
            // FCFS interleavings; nesting (T003) is the certain failure.
            Code::GlobalPoolTooSmall => Severity::Warning,
            // A node that never fires is dead weight, and fatal only if
            // something strict (like the sink) waits on it — which barrier
            // coverage and TV catch as errors in their own right.
            Code::UnreachableNode => Severity::Warning,
            // Zero-slack cycles with data-dependent trip counts *may*
            // deadlock; only a capacity below the static minimum is certain.
            Code::DataDependentCycle => Severity::Warning,
            // Unconsumed results are wasteful, not wrong.
            Code::DanglingOutput => Severity::Note,
            // Zero slack everywhere is safe, just worth knowing.
            Code::ChannelAtMinimum => Severity::Note,
            // The working-set pass reports *bounds*, not violations. The
            // footprint pass raises individual findings to Warning in place
            // when an address has no provenance (input-scaled footprint).
            Code::BlockLiveState
            | Code::FootprintBound
            | Code::ElaborationComparison
            | Code::EdgeResidency => Severity::Note,
            // A shard-memory finding defaults to Warning (an undecided pair
            // forced into one shard); the pass raises proven cross-shard
            // collisions to Error and lowers proven-clean cuts to Note in
            // place, mirroring the race pass discipline.
            Code::ShardMemory => Severity::Warning,
            // Demand/budget, progress summaries, and traffic estimates are
            // certificates, not violations; the pass raises over-budget
            // shards and underivable cut edges to Error in place.
            Code::ShardTagDemand | Code::ShardProgress | Code::ShardTraffic => Severity::Note,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational.
    Note,
    /// Probably a problem; does not fail verification.
    Warning,
    /// A correctness violation; fails verification.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (normally `code.severity()`).
    pub severity: Severity,
    /// The node the finding anchors to, if any.
    pub node: Option<NodeId>,
    /// The concurrent block the finding anchors to, if any.
    pub block: Option<BlockId>,
    /// Pre-rendered location (`n17 'orphan' (cb1 'dmv_i')`), empty if the
    /// finding is graph-global.
    pub loc: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic anchored to `node` of `dfg`.
    pub fn at_node(code: Code, dfg: &Dfg, node: NodeId, message: impl Into<String>) -> Self {
        let (block, loc) = match dfg.nodes.get(node.0 as usize) {
            Some(n) => {
                (Some(n.block), format!("{node} '{}' ({})", n.label, block_loc(dfg, n.block)))
            }
            None => (None, format!("{node}")),
        };
        Diagnostic {
            code,
            severity: code.severity(),
            node: Some(node),
            block,
            loc,
            message: message.into(),
        }
    }

    /// A diagnostic anchored to a block.
    pub fn at_block(code: Code, dfg: &Dfg, block: BlockId, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            node: None,
            block: Some(block),
            loc: block_loc(dfg, block),
            message: message.into(),
        }
    }

    /// A graph-global diagnostic.
    pub fn global(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            node: None,
            block: None,
            loc: String::new(),
            message: message.into(),
        }
    }
}

fn block_loc(dfg: &Dfg, block: BlockId) -> String {
    match dfg.blocks.get(block.0 as usize) {
        Some(b) => format!("{block} '{}'", b.name),
        None => format!("{block} <invalid>"),
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.loc.is_empty() {
            write!(f, "{}[{}] {}", self.severity, self.code, self.message)
        } else {
            write!(f, "{}[{}] {}: {}", self.severity, self.code, self.loc, self.message)
        }
    }
}

/// A collection of diagnostics from one or more passes over one artifact.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// What was verified (e.g. `"dmv/tyr"`), used as the report header.
    pub title: String,
    /// All findings, in pass order.
    pub diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `title`.
    pub fn new(title: impl Into<String>) -> Self {
        Report { title: title.into(), diags: Vec::new() }
    }

    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Adds findings from a pass.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diags.extend(ds);
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether verification passed (no errors; warnings/notes allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Renders the report: header, one line per finding (most severe first),
    /// and a summary line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== verify {} ==", self.title);
        let mut sorted: Vec<&Diagnostic> = self.diags.iter().collect();
        sorted.sort_by_key(|d| std::cmp::Reverse(d.severity));
        for d in sorted {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} note(s)",
            if self.is_clean() { "PASS" } else { "FAIL" },
            self.errors(),
            self.warnings(),
            self.diags.len() - self.errors() - self.warnings(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        let before = strs.len();
        strs.dedup();
        assert_eq!(before, strs.len(), "duplicate code strings");
    }

    #[test]
    fn report_counts_and_renders() {
        let mut r = Report::new("unit");
        assert!(r.is_clean());
        r.push(Diagnostic::global(Code::TvDivergence, "returns differ"));
        r.push(Diagnostic::global(Code::DanglingOutput, "unused"));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 0);
        assert!(!r.is_clean());
        assert!(r.has(Code::TvDivergence));
        assert!(!r.has(Code::OutsideBarrier));
        let text = r.render();
        assert!(text.contains("error[X001]"), "{text}");
        assert!(text.contains("note[L001]"), "{text}");
        assert!(text.contains("FAIL: 1 error(s)"), "{text}");
    }
}
