//! Static analysis and translation validation for lowered dataflow graphs.
//!
//! The simulator can only show a graph misbehaving on the inputs it is run
//! with; this crate checks the *obligations behind the paper's theorems*
//! directly on the graph, before anything executes:
//!
//! * **structure** (`S…`) — [`Dfg::check`]'s well-formedness rules,
//!   reported exhaustively with per-node locations;
//! * **free-barrier coverage** (`B001`) — every node transitively feeds its
//!   block's `join → free` barrier or the sink (Sec. IV-A's safety
//!   argument);
//! * **static tag demand** (`T…`) — per-space minimum tag counts from the
//!   allocate/reserve rule (Theorem 1), and a decision procedure for
//!   bounded global pools that predicts the Fig. 11 deadlock from graph
//!   shape alone;
//! * **memory races** (`M…`) — unordered same-block accesses to
//!   overlapping segments, sharpened by the strided-interval index-set
//!   analysis into proofs of safety (suppressed), proofs of collision
//!   (errors with a witness index), or honest warnings;
//! * **ordered-channel occupancy** (`O…`) — per-edge minimum FIFO depths
//!   for ordered lowerings, checked against the configured capacity to
//!   predict back-pressure deadlock before anything runs;
//! * **lifecycle lints** (`L…`) — dangling outputs, unreachable nodes,
//!   allocates whose tags can never be recycled;
//! * **working sets** (`W…`) — static peak-live-state bounds per block
//!   under a tag policy, per-instance memory footprints from the
//!   index-set analysis, the tagged-local vs tagged-global vs ordered
//!   elaboration comparison (the paper's locality headline), and per-edge
//!   token residency — each cross-validated against the dynamic reuse
//!   tracker in `tyr-stats`;
//! * **shard planning** (`P…`, [`verify_shards`]) — a deterministic,
//!   seeded partition of the graph's blocks into K shards ([`partition()`]),
//!   certified safe: cross-shard memory disjointness from the index sets,
//!   per-shard tag-demand budgets, progress summaries over the cut (a
//!   could-result-in matrix proving shard-local quiescence + empty
//!   channels ⇒ global quiescence), and static cross-shard traffic bounds
//!   — cross-validated against `tyr_stats::ShardCrossings` by
//!   `repro shard`;
//! * **translation validation** (`X…`, [`tv`]) — every lowering replayed
//!   against the reference interpreter on concrete inputs.
//!
//! The graph-shaped passes (races, occupancy, and the reachability parts
//! of barriers and lints) are clients of the [`absint`] monotone framework.
//! Everything funnels into a [`Report`] of located, stably-coded
//! [`Diagnostic`]s. The `repro verify` subcommand runs the full battery
//! over the paper's kernel suite — including the static↔dynamic
//! cross-validation that replays every static verdict against the matching
//! engine detector.
//!
//! [`Dfg::check`]: tyr_dfg::Dfg::check

#![warn(missing_docs)]

pub mod absint;
pub mod diag;
pub mod partition;
pub mod passes;
pub mod tv;

pub use absint::footprint::{analyze_footprint, BlockFootprint, FootprintAnalysis};
pub use absint::occupancy::{analyze_channel_depths, check_channel_capacity, ChannelDepths};
pub use diag::{Code, Diagnostic, Report, Severity};
pub use partition::{partition, ShardPlan, MAX_SHARDS};
pub use passes::{
    analyze_live_state, analyze_shards, analyze_tag_demand, check_barrier_coverage,
    check_edge_residency, check_footprint, check_lints, check_live_state, check_races,
    check_shards, check_structure, check_tag_policy, compare_elaborations, predict_global,
    verify_shards, BoundaryFlow, ElaborationBounds, GlobalPrediction, LiveStateBound, MemClaims,
    ShardBudget, ShardCertificate, ShardCollision, ShardTagCheck, TagDemand,
};
pub use tv::validate_translations;

use tyr_dfg::Dfg;
use tyr_ir::{MemoryImage, Value};
use tyr_sim::ordered::ChannelCapacity;
use tyr_sim::tagged::TagPolicy;

/// Runs the input-independent static passes (structure, barrier coverage,
/// lifecycle lints) over one graph.
///
/// If the structure pass finds errors, the deeper passes are skipped —
/// they would chase the same dangling edges and drown the report in
/// cascading findings.
pub fn verify(title: &str, dfg: &Dfg) -> Report {
    verify_with(title, dfg, None, None)
}

/// [`verify`], plus the passes that need execution context: a concrete
/// [`TagPolicy`] to check against the graph's static tag demand, and/or the
/// memory image and arguments the graph will run with (enabling the race
/// pass, which must know the segment layout).
pub fn verify_with(
    title: &str,
    dfg: &Dfg,
    policy: Option<&TagPolicy>,
    memory: Option<(&MemoryImage, &[Value])>,
) -> Report {
    let mut report = Report::new(title);
    report.extend(check_structure(dfg));
    if !report.is_clean() {
        return report;
    }
    report.extend(check_barrier_coverage(dfg));
    report.extend(check_lints(dfg));
    if let Some(p) = policy {
        report.extend(check_tag_policy(dfg, p));
        report.extend(check_live_state(dfg, p));
    }
    if let Some((mem, args)) = memory {
        report.extend(check_races(dfg, mem, args));
        report.extend(check_footprint(dfg, mem, args));
    }
    report
}

/// [`verify`] for *ordered* lowerings: the input-independent passes, plus
/// the channel-occupancy pass checked against the FIFO capacities the
/// ordered engine will run with (the ordered analogue of handing
/// [`verify_with`] a [`TagPolicy`]).
pub fn verify_ordered(
    title: &str,
    dfg: &Dfg,
    caps: &ChannelCapacity,
    memory: Option<(&MemoryImage, &[Value])>,
) -> Report {
    let mut report = Report::new(title);
    report.extend(check_structure(dfg));
    if !report.is_clean() {
        return report;
    }
    report.extend(check_barrier_coverage(dfg));
    report.extend(check_lints(dfg));
    report.extend(check_channel_capacity(dfg, caps));
    report.extend(check_edge_residency(dfg));
    if let Some((mem, args)) = memory {
        report.extend(check_races(dfg, mem, args));
        report.extend(check_footprint(dfg, mem, args));
    }
    report
}
