//! The diagnostic-code registry contract: every `Code` variant must have a
//! unique stable string, a severity, and a row in DESIGN.md §5's pass
//! tables — so a new pass cannot land without documentation, and the docs
//! cannot drift from the code.

use std::collections::BTreeSet;

use tyr_verify::{Code, Severity};

/// Extracts section 5 of DESIGN.md (from its `## 5.` heading to the next
/// top-level heading).
fn design_section_5() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("DESIGN.md at the workspace root");
    let start = text.find("\n## 5.").expect("DESIGN.md has a section 5");
    let body = &text[start + 1..];
    let end = body[3..].find("\n## ").map(|i| i + 3 + 1).unwrap_or(body.len());
    body[..end].to_string()
}

/// Collects every code mentioned in the section's tables, expanding
/// `` `S001`–`S007` `` ranges. Only table rows (lines starting with `|`)
/// count: a code name dropped in prose is not registry coverage.
fn documented_codes(section: &str) -> BTreeSet<String> {
    let is_code = |s: &str| {
        s.len() == 4
            && s.starts_with(|c: char| c.is_ascii_uppercase())
            && s[1..].chars().all(|c| c.is_ascii_digit())
    };
    let mut out = BTreeSet::new();
    for line in section.lines().filter(|l| l.trim_start().starts_with('|')) {
        // Backtick-split: odd indices are inside backticks, even are the
        // text between them (where a range's `–` lives).
        let parts: Vec<&str> = line.split('`').collect();
        let mut i = 1;
        while i < parts.len() {
            if is_code(parts[i]) {
                let lo_letter = &parts[i][..1];
                if i + 2 < parts.len()
                    && parts[i + 1] == "\u{2013}"
                    && is_code(parts[i + 2])
                    && parts[i + 2].starts_with(lo_letter)
                {
                    let lo: u32 = parts[i][1..].parse().unwrap();
                    let hi: u32 = parts[i + 2][1..].parse().unwrap();
                    assert!(lo < hi, "inverted range in DESIGN.md: {line}");
                    for n in lo..=hi {
                        out.insert(format!("{lo_letter}{n:03}"));
                    }
                    i += 4;
                    continue;
                }
                out.insert(parts[i].to_string());
            }
            i += 2;
        }
    }
    out
}

#[test]
fn every_code_is_unique_stable_and_documented() {
    let documented = documented_codes(&design_section_5());
    assert!(!documented.is_empty(), "no codes found in DESIGN.md §5 tables");

    let mut seen = BTreeSet::new();
    for code in Code::ALL {
        let s = code.as_str();
        // Stable shape: one pass letter, three digits.
        assert_eq!(s.len(), 4, "{code:?}: code string {s:?} is not letter+3-digits");
        assert!(s.starts_with(|c: char| c.is_ascii_uppercase()), "{s:?}");
        assert!(s[1..].chars().all(|c| c.is_ascii_digit()), "{s:?}");
        // Unique.
        assert!(seen.insert(s), "duplicate code string {s:?}");
        // Display matches the stable string, and a severity is assigned.
        assert_eq!(code.to_string(), s);
        assert!(matches!(code.severity(), Severity::Note | Severity::Warning | Severity::Error));
        // Documented in the §5 pass table.
        assert!(documented.contains(s), "{s} ({code:?}) has no row in DESIGN.md §5's tables");
    }

    // And the docs claim nothing the registry doesn't provide.
    for s in &documented {
        assert!(
            Code::ALL.iter().any(|c| c.as_str() == s),
            "DESIGN.md §5 documents {s}, but no Code variant carries it"
        );
    }
}
