//! Golden snapshots of full diagnostic output, plus a scaling guard on the
//! race pass.
//!
//! The snapshots pin the *complete rendered report* for `dmv` and `spmspv`
//! under all three tagged elaborations, each checked against a
//! deliberately scarce tag policy so the reports are non-trivial: message
//! drift (wording, ordering, severities, locations) shows up as a test
//! diff in review instead of silently reaching users. Regenerate with
//! `TYR_BLESS=1 cargo test -p tyr-verify --test golden` after an
//! intentional change, and read the diff.

use std::path::PathBuf;
use std::time::Instant;

use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
use tyr_sim::tagged::TagPolicy;
use tyr_verify::{analyze_footprint, analyze_live_state, check_races, verify_with};
use tyr_workloads::{by_name, suite, Scale};

/// Seed for the workload generator; must stay fixed or every snapshot
/// changes.
const SEED: u64 = 5;

fn golden(name: &str, actual: &str) {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"));
    if std::env::var_os("TYR_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); regenerate with TYR_BLESS=1", path.display())
    });
    assert_eq!(
        actual, expected,
        "diagnostic output for '{name}' drifted from its golden snapshot; \
         if intentional, regenerate with TYR_BLESS=1 and review the diff"
    );
}

#[test]
fn snapshot_diagnostics_for_dmv_and_spmspv() {
    // Scarce policies per elaboration: Local(1) starves every loop space
    // (T001); a bounded global pool of 2 trips the nesting predictor
    // (T003); the unbounded elaboration has nothing to starve and pins the
    // clean-report rendering instead.
    let elaborations: [(TaggingDiscipline, &str, TagPolicy); 3] = [
        (TaggingDiscipline::Tyr, "tyr", TagPolicy::local(1)),
        (
            TaggingDiscipline::UnorderedBounded,
            "unordered-bounded",
            TagPolicy::GlobalBounded { tags: 2 },
        ),
        (TaggingDiscipline::UnorderedUnbounded, "unordered-unbounded", TagPolicy::GlobalUnbounded),
    ];
    for kernel in ["dmv", "spmspv"] {
        let w = by_name(kernel, Scale::Tiny, SEED).unwrap();
        for (discipline, label, policy) in &elaborations {
            let dfg = lower_tagged(&w.program, *discipline).unwrap();
            let title = format!("{kernel}/{label}");
            let report = verify_with(&title, &dfg, Some(policy), Some((&w.memory, &w.args)));
            golden(&format!("{kernel}_{label}"), &report.render());
        }
    }
}

/// The races pass sits on the framework's precomputed edge maps; finding
/// an input's producers is O(1) per port instead of the old
/// O(nodes × edges) rescan per query. Guard the complexity class with a
/// debug-build wall-clock bound on the largest Table II kernel: many
/// repetitions must stay comfortably inside a budget the quadratic scan
/// would blow.
#[test]
fn race_pass_is_fast_on_the_largest_kernel() {
    let kernels = suite(Scale::Tiny, SEED);
    let (w, dfg) = kernels
        .iter()
        .map(|w| (w, lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap()))
        .max_by_key(|(_, d)| d.nodes.len())
        .unwrap();
    let start = Instant::now();
    let reps = 25;
    for _ in 0..reps {
        let diags = check_races(&dfg, &w.memory, &w.args);
        assert!(diags.is_empty(), "{}: {diags:?}", w.name);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "{reps} race passes over {} ({} nodes) took {elapsed:?} — \
         the per-query producer scan has regressed",
        w.name,
        dfg.nodes.len(),
    );
}

/// Same complexity guard for the working-set pass: one index-set fixpoint
/// plus linear post-processing per run. A regression to per-access fixpoints
/// or per-block graph rescans would blow this budget in a debug build.
#[test]
fn workingset_pass_is_fast_on_the_largest_kernel() {
    let kernels = suite(Scale::Tiny, SEED);
    let (w, dfg) = kernels
        .iter()
        .map(|w| (w, lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap()))
        .max_by_key(|(_, d)| d.nodes.len())
        .unwrap();
    let policy = TagPolicy::local(2);
    let start = Instant::now();
    let reps = 25;
    for _ in 0..reps {
        let live = analyze_live_state(&dfg, &policy);
        assert!(live.total().is_some(), "{}: live-state bound should be finite", w.name);
        let fp = analyze_footprint(&dfg, &w.memory, &w.args);
        assert!(!fp.per_block.is_empty(), "{}: kernel touches memory", w.name);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "{reps} working-set passes over {} ({} nodes) took {elapsed:?} — \
         the pass has regressed from one fixpoint per run",
        w.name,
        dfg.nodes.len(),
    );
}

/// Golden snapshots for the shard pass: the rendered plan and the full
/// P-report for three kernels under both tagged elaboration budgets
/// (`tagged-local`: TYR local spaces; `tagged-global`: the Fig. 11 bounded
/// global pool). Pins the partitioner's cut, the renumbering, and every
/// P001–P004 message against drift.
#[test]
fn snapshot_shard_plans_and_reports() {
    use tyr_verify::{verify_shards, ShardBudget};

    let budgets: [(&str, TagPolicy); 2] = [
        ("tagged-local", TagPolicy::local(2)),
        ("tagged-global", TagPolicy::GlobalBounded { tags: 8 }),
    ];
    for kernel in ["dmv", "spmspv", "tc"] {
        let w = by_name(kernel, Scale::Tiny, SEED).unwrap();
        let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
        for (label, policy) in &budgets {
            let title = format!("{kernel}/{label}/shard");
            let (cert, report) = verify_shards(
                &title,
                &dfg,
                4,
                SEED,
                Some(ShardBudget::Tagged(policy)),
                Some((&w.memory, &w.args)),
            );
            let rendered = format!("{}{}", cert.plan.render(&dfg), report.render());
            golden(&format!("shard_{kernel}_{label}"), &rendered);
        }
    }
}

/// The shard certificate is a pure function of (graph, k, seed, budget,
/// memory): recomputing it must reproduce the plan, every derived table,
/// and the rendered report byte-for-byte.
#[test]
fn shard_certificates_are_deterministic_across_recomputation() {
    use tyr_verify::{verify_shards, ShardBudget};

    let w = by_name("spmspv", Scale::Tiny, SEED).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
    let policy = TagPolicy::local(2);
    let compute = || {
        let (cert, report) = verify_shards(
            "det",
            &dfg,
            4,
            SEED,
            Some(ShardBudget::Tagged(&policy)),
            Some((&w.memory, &w.args)),
        );
        (cert.plan.clone(), cert.node_shard.clone(), cert.boundary.clone(), report.render())
    };
    let a = compute();
    for _ in 0..3 {
        assert_eq!(compute(), a);
    }
}

/// Complexity guard for the partitioner plus the full P-pass: one memory
/// fixpoint, one partition, and linear certificate derivation per run. A
/// regression to per-pair fixpoints or quadratic refinement would blow
/// this budget in a debug build.
#[test]
fn shard_pass_is_fast_on_the_largest_kernel() {
    use tyr_verify::{verify_shards, ShardBudget};

    let kernels = suite(Scale::Tiny, SEED);
    let (w, dfg) = kernels
        .iter()
        .map(|w| (w, lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap()))
        .max_by_key(|(_, d)| d.nodes.len())
        .unwrap();
    let policy = TagPolicy::local(2);
    let start = Instant::now();
    let reps = 25;
    for _ in 0..reps {
        let (cert, report) = verify_shards(
            "perf",
            &dfg,
            4,
            SEED,
            Some(ShardBudget::Tagged(&policy)),
            Some((&w.memory, &w.args)),
        );
        assert_eq!(cert.node_shard.len(), dfg.nodes.len());
        assert_eq!(report.errors(), 0, "{}: {}", w.name, report.render());
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "{reps} shard passes over {} ({} nodes) took {elapsed:?} — \
         the partitioner or P-pass has regressed",
        w.name,
        dfg.nodes.len(),
    );
}
