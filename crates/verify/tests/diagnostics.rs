//! End-to-end tests of the static passes: real lowerings must verify
//! clean, and hand-broken graphs must produce exactly the advertised
//! diagnostic codes.

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_dfg::{AllocKind, Dfg, GraphBuilder, InKind, NodeId, NodeKind, PortRef, ROOT_BLOCK};
use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, Program};
use tyr_sim::tagged::TagPolicy;
use tyr_verify::{
    analyze_tag_demand, check_races, check_tag_policy, predict_global, verify, verify_with, Code,
    GlobalPrediction,
};

/// `main(n)`: one affine loop summing `0..n`.
fn single_loop_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 1);
    let n = f.param(0);
    let [i, acc, m] = f.begin_loop("sum", [Operand::Const(0), Operand::Const(0), n]);
    let c = f.lt(i, m);
    f.begin_body(c);
    let acc2 = f.add(acc, i);
    let i2 = f.add(i, 1);
    let [out] = f.end_loop([i2, acc2, m], [acc]);
    pb.finish(f, [out])
}

/// `main(n)`: a dmv-shaped doubly nested loop.
fn nested_loop_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 1);
    let n = f.param(0);
    let [i, acc, m] = f.begin_loop("outer", [Operand::Const(0), Operand::Const(0), n]);
    let c = f.lt(i, m);
    f.begin_body(c);
    let [j, s, mm] = f.begin_loop("inner", [Operand::Const(0), acc, m]);
    let cj = f.lt(j, mm);
    f.begin_body(cj);
    let s2 = f.add(s, j);
    let j2 = f.add(j, 1);
    let [s_out] = f.end_loop([j2, s2, mm], [s]);
    let i2 = f.add(i, 1);
    let [out] = f.end_loop([i2, s_out, m], [acc]);
    pb.finish(f, [out])
}

/// `main(n)` calling a helper twice — exercises the dynamically-routed
/// return edges that the passes must synthesize.
fn call_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut h = pb.func("helper", 2);
    let (a, b) = (h.param(0), h.param(1));
    let r = h.add(a, b);
    let hid = h.id();
    pb.define(h, [r]);

    let mut f = pb.func("main", 1);
    let n = f.param(0);
    let r1 = f.call(hid, &[n, Operand::Const(3)], 1);
    let r2 = f.call(hid, &[r1[0], n], 1);
    pb.finish(f, [r2[0]])
}

#[test]
fn real_lowerings_verify_clean() {
    for program in [single_loop_program(), nested_loop_program(), call_program()] {
        for disc in [
            TaggingDiscipline::Tyr,
            TaggingDiscipline::UnorderedBounded,
            TaggingDiscipline::UnorderedUnbounded,
        ] {
            let dfg = lower_tagged(&program, disc).unwrap();
            let report = verify("test", &dfg);
            assert!(report.is_clean(), "{disc:?}:\n{}", report.render());
            // Real lowerings are fully live and waste-free: not even
            // warnings or notes.
            assert!(report.diags.is_empty(), "{disc:?}:\n{}", report.render());
        }
        let ord = lower_ordered(&program).unwrap();
        let report = verify("test", &ord);
        assert!(report.is_clean(), "ordered:\n{}", report.render());
    }
}

#[test]
fn tag_demand_of_loop_shapes() {
    // Single loop: its space needs 2 tags (external allocate reserves 1);
    // no nesting, so a global pool >= flat demand is safe.
    let dfg = lower_tagged(&single_loop_program(), TaggingDiscipline::Tyr).unwrap();
    let d = analyze_tag_demand(&dfg);
    let space = dfg.block_by_name("sum").unwrap();
    assert_eq!(d.for_space(space), Some(2));
    assert!(!d.nested);
    assert_eq!(predict_global(&d, d.flat_demand()), GlobalPrediction::Safe);
    assert_eq!(predict_global(&d, 1), GlobalPrediction::MayDeadlock);

    // Nested loops: both spaces need 2 tags, and the inner allocate lives
    // in the outer block — nesting, so any bounded pool is predicted to
    // deadlock on large inputs (Fig. 11).
    let dfg = lower_tagged(&nested_loop_program(), TaggingDiscipline::Tyr).unwrap();
    let d = analyze_tag_demand(&dfg);
    for b in ["outer", "inner"] {
        assert_eq!(d.for_space(dfg.block_by_name(b).unwrap()), Some(2), "{b}");
    }
    assert!(d.nested);
    assert_eq!(predict_global(&d, 1_000_000), GlobalPrediction::DeadlockNested);

    // Call-only spaces need just 1 tag, and a call from straight-line main
    // is not nesting.
    let dfg = lower_tagged(&call_program(), TaggingDiscipline::Tyr).unwrap();
    let d = analyze_tag_demand(&dfg);
    assert_eq!(d.for_space(dfg.block_by_name("helper").unwrap()), Some(1));
    assert!(!d.nested);
}

#[test]
fn tag_policy_checks() {
    let dfg = lower_tagged(&single_loop_program(), TaggingDiscipline::Tyr).unwrap();
    // 1 tag for a loop space: statically doomed (T001).
    let diags = check_tag_policy(&dfg, &TagPolicy::local(1));
    assert!(diags.iter().any(|d| d.code == Code::InsufficientTags), "{diags:?}");
    // Theorem 1 minimum: clean.
    assert!(check_tag_policy(&dfg, &TagPolicy::local(2)).is_empty());
    // A default of 1 rescued by an override on the loop's block: clean.
    let rescued = TagPolicy::local_with(1, vec![("sum".into(), 2)]);
    assert!(check_tag_policy(&dfg, &rescued).is_empty());
    // Unbounded: nothing to check.
    assert!(check_tag_policy(&dfg, &TagPolicy::GlobalUnbounded).is_empty());

    // Nested program under a bounded global pool: T003 regardless of size.
    let dfg = lower_tagged(&nested_loop_program(), TaggingDiscipline::Tyr).unwrap();
    let diags = check_tag_policy(&dfg, &TagPolicy::GlobalBounded { tags: 8 });
    assert!(diags.iter().any(|d| d.code == Code::NestedGlobalAlloc), "{diags:?}");
}

#[test]
fn orphan_node_is_outside_barrier() {
    let mut dfg = lower_tagged(&single_loop_program(), TaggingDiscipline::Tyr).unwrap();
    // Graft a node that consumes a loop-body value but feeds nothing: its
    // tokens outlive the context's free.
    let body = dfg.block_by_name("sum").unwrap();
    let producer = dfg
        .nodes
        .iter()
        .position(|n| n.block == body && matches!(n.kind, NodeKind::Alu(_)))
        .expect("loop body has an alu node");
    let orphan = NodeId(dfg.nodes.len() as u32);
    dfg.nodes.push(tyr_dfg::Node {
        kind: NodeKind::Alu(tyr_ir::AluOp::Neg),
        block: body,
        ins: vec![InKind::Wire],
        outs: vec![Vec::new()],
        label: "orphan".into(),
    });
    dfg.nodes[producer].outs[0].push(PortRef { node: orphan, port: 0 });

    let report = verify("orphan", &dfg);
    assert!(report.has(Code::OutsideBarrier), "{}", report.render());
    assert!(report.has(Code::DanglingOutput), "{}", report.render());
    let diag = report.diags.iter().find(|d| d.code == Code::OutsideBarrier).unwrap();
    assert_eq!(diag.node, Some(orphan));
    assert_eq!(diag.block, Some(body));
}

#[test]
fn broken_edges_are_reported_per_node() {
    let mut dfg = lower_tagged(&single_loop_program(), TaggingDiscipline::Tyr).unwrap();
    // An edge to a port beyond the sink's inputs, and one to a node that
    // does not exist. Both anchored to the same (valid) producer.
    let from = dfg.source.0 as usize;
    dfg.nodes[from].outs[0].push(PortRef { node: dfg.sink, port: 999 });
    dfg.nodes[from].outs[0].push(PortRef { node: NodeId(u32::MAX), port: 0 });
    let report = verify("broken", &dfg);
    assert!(report.has(Code::MissingPort), "{}", report.render());
    assert!(report.has(Code::MissingNode), "{}", report.render());
    // Structure errors gate the deeper passes.
    assert!(!report.has(Code::OutsideBarrier));
}

#[test]
fn allocate_with_unreachable_free() {
    // Hand-built: source feeds an allocate of space B and, separately, a
    // free of B. The graph *has* a free of B (so structure's recycling
    // check passes) but the allocate's forward cone never reaches it.
    let mut g = GraphBuilder::new();
    g.add_block("root", None, false);
    let b = g.add_block("B", Some(ROOT_BLOCK), false);
    let source = g.add_node(NodeKind::Source, ROOT_BLOCK, vec![], 3, "source");
    let alloc = g.add_node(
        NodeKind::Allocate { space: b, kind: AllocKind::Call },
        ROOT_BLOCK,
        vec![InKind::Wire, InKind::Wire],
        2,
        "alloc",
    );
    let free = g.add_node(NodeKind::Free { space: b }, ROOT_BLOCK, vec![InKind::Wire], 0, "free");
    let sink = g.add_node(NodeKind::Sink, ROOT_BLOCK, vec![InKind::Wire], 0, "sink");
    g.connect(source, 0, PortRef { node: alloc, port: 0 });
    g.connect(source, 1, PortRef { node: alloc, port: 1 });
    g.connect(source, 2, PortRef { node: free, port: 0 });
    g.connect(alloc, 0, PortRef { node: sink, port: 0 });
    let dfg = g.finish(source, sink, 1);

    let report = verify("alloc-no-free", &dfg);
    assert!(report.has(Code::AllocNoFree), "{}", report.render());
    let diag = report.diags.iter().find(|d| d.code == Code::AllocNoFree).unwrap();
    assert_eq!(diag.node, Some(alloc));
}

#[test]
fn unfreed_space_is_a_structure_error() {
    let mut dfg = lower_tagged(&single_loop_program(), TaggingDiscipline::Tyr).unwrap();
    // Retarget every free of the loop's space at the root space: the loop
    // space is now allocated from but never freed into.
    let space = dfg.block_by_name("sum").unwrap();
    for n in &mut dfg.nodes {
        if matches!(n.kind, NodeKind::Free { space: s } if s == space) {
            n.kind = NodeKind::Free { space: ROOT_BLOCK };
        }
    }
    let report = verify("unfreed", &dfg);
    assert!(report.has(Code::UnfreedSpace), "{}", report.render());
}

#[test]
fn unreachable_node_is_linted_but_call_landings_are_not() {
    // Call-return landing pads are only fed through changeTag.dyn routing;
    // if the synthesized edges were missing, this clean graph would be full
    // of false L002s — `real_lowerings_verify_clean` covers that. Here:
    // a genuinely unreachable island.
    let mut dfg = lower_tagged(&call_program(), TaggingDiscipline::Tyr).unwrap();
    let a = NodeId(dfg.nodes.len() as u32);
    let b = NodeId(dfg.nodes.len() as u32 + 1);
    for other in [b, a] {
        dfg.nodes.push(tyr_dfg::Node {
            kind: NodeKind::Alu(tyr_ir::AluOp::Mov),
            block: ROOT_BLOCK,
            ins: vec![InKind::Wire],
            outs: vec![vec![PortRef { node: other, port: 0 }]],
            label: "island".into(),
        });
    }
    let report = verify("island", &dfg);
    let flagged: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.code == Code::UnreachableNode)
        .filter_map(|d| d.node)
        .collect();
    assert_eq!(flagged, vec![a, b], "{}", report.render());
}

#[test]
fn race_pass_flags_unordered_stores_only() {
    let mut mem = MemoryImage::new();
    let arr = mem.alloc("out", 8);

    // Two plain stores into the same segment, no path between them: M001.
    let build = |ordered: bool, kinds: [NodeKind; 2]| -> Dfg {
        let mut g = GraphBuilder::new();
        g.add_block("root", None, false);
        let source = g.add_node(NodeKind::Source, ROOT_BLOCK, vec![], 1, "source");
        let mut prev: Option<NodeId> = None;
        let mut stores = Vec::new();
        for (i, kind) in kinds.into_iter().enumerate() {
            // Both accesses use the segment base itself: classification is
            // by exact base match, so offset addresses are deliberately
            // invisible unless reached through add/sub arithmetic.
            let s = g.add_node(
                kind,
                ROOT_BLOCK,
                vec![InKind::Imm(arr.base_const()), InKind::Wire],
                1,
                format!("s{i}"),
            );
            g.connect(source, 0, PortRef { node: s, port: 1 });
            if ordered {
                if let Some(p) = prev {
                    // Thread the ctl output through: an ordering dependence.
                    g.connect(p, 0, PortRef { node: s, port: 1 });
                }
            }
            prev = Some(s);
            stores.push(s);
        }
        let sink = g.add_node(NodeKind::Sink, ROOT_BLOCK, vec![InKind::Wire], 0, "sink");
        g.connect(stores[1], 0, PortRef { node: sink, port: 0 });
        g.finish(source, sink, 1)
    };

    let racy = build(false, [NodeKind::Store, NodeKind::Store]);
    let diags = check_races(&racy, &mem, &[]);
    // Both stores hit the segment base itself, so the index analysis proves
    // they always collide: the finding is upgraded to an error with the
    // witness index.
    let d = diags.iter().find(|d| d.code == Code::StoreStoreRace).expect("M001");
    assert_eq!(d.severity, tyr_verify::Severity::Error, "{diags:?}");
    assert!(d.message.contains("always collide at index 0"), "{}", d.message);

    // Same stores with a dependence edge: ordered, no finding.
    let serial = build(true, [NodeKind::Store, NodeKind::Store]);
    assert!(check_races(&serial, &mem, &[]).is_empty());

    // storeAdd pairs are commutative by design: no finding.
    let atomic = build(false, [NodeKind::StoreAdd, NodeKind::StoreAdd]);
    assert!(check_races(&atomic, &mem, &[]).is_empty());

    // Load vs. store at the same singleton address, unordered: M002,
    // upgraded to an error by the collision proof.
    let mixed = {
        let mut g = GraphBuilder::new();
        g.add_block("root", None, false);
        let source = g.add_node(NodeKind::Source, ROOT_BLOCK, vec![], 1, "source");
        let ld = g.add_node(NodeKind::Load, ROOT_BLOCK, vec![InKind::Wire], 1, "ld");
        g.connect(source, 0, PortRef { node: ld, port: 0 });
        let st = g.add_node(
            NodeKind::Store,
            ROOT_BLOCK,
            vec![InKind::Imm(arr.base_const()), InKind::Wire],
            1,
            "st",
        );
        g.connect(source, 0, PortRef { node: st, port: 1 });
        let sink = g.add_node(NodeKind::Sink, ROOT_BLOCK, vec![InKind::Wire], 0, "sink");
        g.connect(ld, 0, PortRef { node: sink, port: 0 });
        g.finish(source, sink, 1)
    };
    // The load's address is the segment base, delivered as argument 0.
    let report = verify_with("mixed", &mixed, None, Some((&mem, &[arr.base_const()])));
    assert!(report.has(Code::LoadStoreRace), "{}", report.render());
    assert!(!report.is_clean(), "a proven collision must fail verification:\n{}", report.render());

    // An address the analysis cannot pin down (a two-way merge of base and
    // base+1) against the base itself: possibly-overlapping, still a
    // warning — verification passes.
    let undecided = {
        let mut g = GraphBuilder::new();
        g.add_block("root", None, false);
        let source = g.add_node(NodeKind::Source, ROOT_BLOCK, vec![], 1, "source");
        let addr = g.add_node(
            NodeKind::Merge,
            ROOT_BLOCK,
            vec![InKind::Imm(arr.base_const()), InKind::Wire],
            1,
            "addr",
        );
        g.connect(source, 0, PortRef { node: addr, port: 1 });
        let s0 = g.add_node(NodeKind::Store, ROOT_BLOCK, vec![InKind::Wire, InKind::Wire], 1, "s0");
        g.connect(addr, 0, PortRef { node: s0, port: 0 });
        g.connect(source, 0, PortRef { node: s0, port: 1 });
        let s1 = g.add_node(
            NodeKind::Store,
            ROOT_BLOCK,
            vec![InKind::Imm(arr.base_const()), InKind::Wire],
            1,
            "s1",
        );
        g.connect(source, 0, PortRef { node: s1, port: 1 });
        let sink = g.add_node(NodeKind::Sink, ROOT_BLOCK, vec![InKind::Wire], 0, "sink");
        g.connect(s1, 0, PortRef { node: sink, port: 0 });
        g.finish(source, sink, 1)
    };
    // Argument 0 (the source's port-0 value, merged into the address) is
    // base + 1: the merged address is {base, base+1}, not a singleton.
    let report = verify_with("undecided", &undecided, None, Some((&mem, &[arr.base_const() + 1])));
    assert!(report.has(Code::StoreStoreRace), "{}", report.render());
    assert!(report.is_clean(), "undecided overlaps stay warnings:\n{}", report.render());
}

#[test]
fn strided_even_odd_stores_are_proven_disjoint() {
    // Two unordered plain stores into the same segment — exactly the shape
    // PR 1's segment-mask analysis warned about (M001: intersecting masks
    // prove overlap of segments, not of index sets). One store's address
    // set is {base, base+2} (stride 2, even residue), the other's is
    // {base+1, base+3} (stride 2, odd residue): the strided-interval
    // analysis proves the residues incompatible mod 2 and suppresses the
    // warning outright.
    let mut mem = MemoryImage::new();
    let arr = mem.alloc("out", 8);
    let build = |offset: i64| -> Dfg {
        let mut g = GraphBuilder::new();
        g.add_block("root", None, false);
        let source = g.add_node(NodeKind::Source, ROOT_BLOCK, vec![], 1, "source");
        // Even set: merge of the segment base (immediate) and base+2 (the
        // program argument) — the analysis joins them into {base, base+2}
        // step 2, carrying the segment's provenance from the base match.
        let even = g.add_node(
            NodeKind::Merge,
            ROOT_BLOCK,
            vec![InKind::Imm(arr.base_const()), InKind::Wire],
            1,
            "even",
        );
        g.connect(source, 0, PortRef { node: even, port: 1 });
        let st_e =
            g.add_node(NodeKind::Store, ROOT_BLOCK, vec![InKind::Wire, InKind::Wire], 1, "st_e");
        g.connect(even, 0, PortRef { node: st_e, port: 0 });
        g.connect(source, 0, PortRef { node: st_e, port: 1 });
        // Second set: the even set shifted by `offset`, through real address
        // arithmetic so provenance follows.
        let shifted = g.add_node(
            NodeKind::Alu(tyr_ir::AluOp::Add),
            ROOT_BLOCK,
            vec![InKind::Wire, InKind::Imm(offset)],
            1,
            "shifted",
        );
        g.connect(even, 0, PortRef { node: shifted, port: 0 });
        let st_s =
            g.add_node(NodeKind::Store, ROOT_BLOCK, vec![InKind::Wire, InKind::Wire], 1, "st_s");
        g.connect(shifted, 0, PortRef { node: st_s, port: 0 });
        g.connect(source, 0, PortRef { node: st_s, port: 1 });
        let sink = g.add_node(NodeKind::Sink, ROOT_BLOCK, vec![InKind::Wire], 0, "sink");
        g.connect(st_s, 0, PortRef { node: sink, port: 0 });
        g.finish(source, sink, 1)
    };
    let args = [arr.base_const() + 2];

    // Offset 1: {base, base+2} vs {base+1, base+3} — incompatible residues
    // mod 2, the PR-1 warning is resolved to a proof of safety.
    let diags = check_races(&build(1), &mem, &args);
    assert!(diags.is_empty(), "even/odd strides must be proven disjoint: {diags:?}");

    // Offset 2: {base, base+2} vs {base+2, base+4} share the even residue
    // and may both hit base+2 — the honest warning stays (and no collision
    // upgrade: neither address is a singleton).
    let diags = check_races(&build(2), &mem, &args);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::StoreStoreRace);
    assert_eq!(diags[0].severity, tyr_verify::Severity::Warning, "{diags:?}");
}

#[test]
fn pointer_masks_follow_address_arithmetic() {
    // store(base + i, v) vs store(other_base + i, v): disjoint segments,
    // no finding even though both stores are unordered.
    let mut mem = MemoryImage::new();
    let a = mem.alloc("a", 8);
    let b = mem.alloc("b", 8);
    let mut g = GraphBuilder::new();
    g.add_block("root", None, false);
    let source = g.add_node(NodeKind::Source, ROOT_BLOCK, vec![], 1, "source");
    let mut last = None;
    for base in [a.base_const(), b.base_const()] {
        let addr = g.add_node(
            NodeKind::Alu(tyr_ir::AluOp::Add),
            ROOT_BLOCK,
            vec![InKind::Wire, InKind::Imm(base)],
            1,
            "addr",
        );
        g.connect(source, 0, PortRef { node: addr, port: 0 });
        let st = g.add_node(NodeKind::Store, ROOT_BLOCK, vec![InKind::Wire, InKind::Wire], 1, "st");
        g.connect(addr, 0, PortRef { node: st, port: 0 });
        g.connect(source, 0, PortRef { node: st, port: 1 });
        last = Some(st);
    }
    let sink = g.add_node(NodeKind::Sink, ROOT_BLOCK, vec![InKind::Wire], 0, "sink");
    g.connect(last.unwrap(), 0, PortRef { node: sink, port: 0 });
    let dfg = g.finish(source, sink, 1);
    assert!(check_races(&dfg, &mem, &[]).is_empty());
}

#[test]
fn translation_validation_of_clean_programs() {
    let mem = MemoryImage::new();
    for (name, program) in [
        ("single", single_loop_program()),
        ("nested", nested_loop_program()),
        ("calls", call_program()),
    ] {
        let report = tyr_verify::validate_translations(name, &program, &mem, &[6]);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.diags.is_empty(), "{}", report.render());
    }
}

#[test]
fn translation_validation_reports_oracle_faults() {
    // A program that loads far outside the (empty) memory image: the
    // reference interpreter itself faults, which TV must surface rather
    // than panic over.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 1);
    let v = f.load(1 << 40);
    let program = pb.finish(f, [v]);
    let report = tyr_verify::validate_translations("oob", &program, &MemoryImage::new(), &[0]);
    assert!(report.has(Code::TvFault), "{}", report.render());
}

#[test]
fn blockid_display_in_rendered_reports() {
    let dfg = lower_tagged(&single_loop_program(), TaggingDiscipline::Tyr).unwrap();
    let report = verify_with("render", &dfg, Some(&TagPolicy::local(1)), None);
    let text = report.render();
    assert!(text.contains("error[T001]"), "{text}");
    assert!(text.contains("'sum'"), "{text}");
    assert!(text.contains("FAIL"), "{text}");
}
