//! Cross-engine probe-layer integration tests.
//!
//! Every engine must emit `NodeFired` through the shared [`Probe`] trait in
//! exact agreement with the `dyn_instrs` it reports, the profiler must
//! attribute the Fig. 11 bounded-global deadlock to tag starvation, and the
//! Chrome-trace sink must produce JSON that round-trips through its own
//! validator.

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Program};
use tyr_sim::ooo::{OooConfig, OooEngine};
use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
use tyr_sim::seqdf::{SeqDataflowConfig, SeqDataflowEngine};
use tyr_sim::seqvn::{SeqVnConfig, SeqVnEngine};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_sim::MemConfig;
use tyr_stats::probe::{ChromeTrace, CountingProbe, EventKind};
use tyr_stats::{NodeProfiler, StallReason};

fn sum_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 1);
    let n = f.param(0);
    let [i, acc, nn] = f.begin_loop("sum", [0.into(), 0.into(), n]);
    let c = f.lt(i, nn);
    f.begin_body(c);
    let acc2 = f.add(acc, i);
    let i2 = f.add(i, 1);
    let [total] = f.end_loop([i2, acc2, nn], [acc]);
    pb.finish(f, [total])
}

/// The paper's Fig. 11 shape: nested loops whose inner iterations starve
/// when an FCFS global tag pool hands every tag to outer iterations.
fn nested_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [i, acc] = f.begin_loop("outer", [0, 0]);
    let c = f.lt(i, 64);
    f.begin_body(c);
    let [j, ia] = f.begin_loop("inner", [0.into(), acc]);
    let cj = f.lt(j, 8);
    f.begin_body(cj);
    let ia2 = f.add(ia, 1);
    let j2 = f.add(j, 1);
    let [acc_out] = f.end_loop([j2, ia2], [ia]);
    let i2 = f.add(i, 1);
    let [total] = f.end_loop([i2, acc_out], [acc]);
    pb.finish(f, [total])
}

#[test]
fn tagged_profiler_fires_match_dyn_instrs() {
    let p = sum_program();
    let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    let cfg = TaggedConfig { args: vec![100], ..TaggedConfig::default() };
    let mut prof = NodeProfiler::new();
    let r = TaggedEngine::with_probe(&dfg, MemoryImage::new(), cfg, &mut prof).run().unwrap();
    assert!(r.is_complete(), "{:?}", r.outcome);
    let report = prof.report(r.final_cycle());
    assert_eq!(report.total_fires(), r.dyn_instrs());
    assert!(report.nodes.iter().any(|n| n.produced > 0));
    assert!(report.nodes.iter().any(|n| n.consumed > 0));
}

#[test]
fn ordered_profiler_fires_match_dyn_instrs() {
    let p = sum_program();
    let dfg = lower_ordered(&p).unwrap();
    let cfg = OrderedConfig { args: vec![100], ..OrderedConfig::default() };
    let mut prof = NodeProfiler::new();
    let r = OrderedEngine::with_probe(&dfg, MemoryImage::new(), cfg, &mut prof).run().unwrap();
    assert!(r.is_complete(), "{:?}", r.outcome);
    let report = prof.report(r.final_cycle());
    assert_eq!(report.total_fires(), r.dyn_instrs());
}

#[test]
fn seqdf_profiler_fires_match_dyn_instrs() {
    let p = sum_program();
    let cfg = SeqDataflowConfig { args: vec![100], ..SeqDataflowConfig::default() };
    let mut prof = NodeProfiler::new();
    let r = SeqDataflowEngine::with_probe(&p, MemoryImage::new(), cfg, &mut prof).run().unwrap();
    assert!(r.is_complete());
    let report = prof.report(r.final_cycle());
    assert_eq!(report.total_fires(), r.dyn_instrs());
}

#[test]
fn seqvn_profiler_fires_match_dyn_instrs() {
    let p = sum_program();
    let cfg = SeqVnConfig { args: vec![100], ..SeqVnConfig::default() };
    let mut prof = NodeProfiler::new();
    let r = SeqVnEngine::with_probe(&p, MemoryImage::new(), cfg, &mut prof).run().unwrap();
    assert!(r.is_complete());
    let report = prof.report(r.final_cycle());
    assert_eq!(report.total_fires(), r.dyn_instrs());
}

#[test]
fn ooo_profiler_fires_match_dyn_instrs() {
    let p = sum_program();
    let cfg = OooConfig { args: vec![100], ..OooConfig::default() };
    let mut prof = NodeProfiler::new();
    let r = OooEngine::with_probe(&p, MemoryImage::new(), cfg, &mut prof).run().unwrap();
    assert!(r.is_complete());
    let report = prof.report(r.final_cycle());
    assert_eq!(report.total_fires(), r.dyn_instrs());
}

#[test]
fn probe_does_not_change_results() {
    let p = sum_program();
    let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    let cfg = TaggedConfig { args: vec![200], ..TaggedConfig::default() };
    let plain = TaggedEngine::new(&dfg, MemoryImage::new(), cfg.clone()).run().unwrap();
    let mut counting = CountingProbe::default();
    let probed =
        TaggedEngine::with_probe(&dfg, MemoryImage::new(), cfg, &mut counting).run().unwrap();
    assert_eq!(plain.returns, probed.returns);
    assert_eq!(plain.cycles(), probed.cycles());
    assert_eq!(plain.dyn_instrs(), probed.dyn_instrs());
    assert!(counting.events > 0, "an attached probe must see events");
}

#[test]
fn bounded_global_deadlock_attributed_to_tag_starvation() {
    // Fig. 11: the bounded-global run wedges; stall attribution must name
    // tag starvation, and the wedged allocates must sit in the profile with
    // open tag-starved intervals accounted to the deadlock cycle.
    let p = nested_program();
    let dfg = lower_tagged(&p, TaggingDiscipline::UnorderedBounded).unwrap();
    let cfg = TaggedConfig {
        tag_policy: TagPolicy::GlobalBounded { tags: 4 },
        ..TaggedConfig::default()
    };
    let mut prof = NodeProfiler::new();
    let r = TaggedEngine::with_probe(&dfg, MemoryImage::new(), cfg, &mut prof).run().unwrap();
    assert!(!r.is_complete(), "bounded global pool must deadlock: {:?}", r.outcome);
    let report = prof.report(r.final_cycle());
    assert!(
        report.stall_total(StallReason::TagStarved) > 0,
        "deadlock must be attributed to tag starvation:\n{}",
        report.render(10, 40)
    );
    // The dominant tag-starved node is a tag-allocation site.
    let starved = report
        .nodes
        .iter()
        .max_by_key(|n| n.stall_cycles[StallReason::TagStarved.index()])
        .unwrap();
    assert!(starved.stall_cycles[StallReason::TagStarved.index()] > 0);

    // The same program under TYR's per-block local spaces completes with
    // ample tags: no tag starvation at all. (With a deliberately tiny local
    // space TYR *does* accumulate bounded tag-starved waits — that is its
    // throttling working — but the run still completes.)
    let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    let cfg = TaggedConfig { tag_policy: TagPolicy::local(64), ..TaggedConfig::default() };
    let mut prof = NodeProfiler::new();
    let r = TaggedEngine::with_probe(&dfg, MemoryImage::new(), cfg, &mut prof).run().unwrap();
    assert!(r.is_complete(), "{:?}", r.outcome);
    let report = prof.report(r.final_cycle());
    assert_eq!(
        report.stall_total(StallReason::TagStarved),
        0,
        "TYR with ample local tags must not starve:\n{}",
        report.stall_table(10)
    );

    let cfg = TaggedConfig { tag_policy: TagPolicy::local(2), ..TaggedConfig::default() };
    let mut prof = NodeProfiler::new();
    let r = TaggedEngine::with_probe(&dfg, MemoryImage::new(), cfg, &mut prof).run().unwrap();
    assert!(r.is_complete(), "TYR throttled must still complete: {:?}", r.outcome);
    let report = prof.report(r.final_cycle());
    assert!(
        report.stall_total(StallReason::TagStarved) > 0,
        "a 2-tag local space should show bounded allocate waits"
    );
}

#[test]
fn ordered_attributes_back_pressure() {
    // Starve a loop-control edge to zero capacity: the comparison wedges
    // behind the full (capacity-0) FIFO and the profile must say so.
    use tyr_dfg::NodeKind;
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [i] = f.begin_loop("l", [0]);
    let c = f.lt(i, 10);
    f.begin_body(c);
    let i2 = f.add(i, 1);
    let [out] = f.end_loop([i2], [i]);
    let p = pb.finish(f, [out]);
    let dfg = lower_ordered(&p).unwrap();
    let cm = dfg
        .nodes
        .iter()
        .position(
            |n| matches!(&n.kind, NodeKind::CMerge { initial_ctl } if !initial_ctl.is_empty()),
        )
        .expect("a primed loop-carry CMerge") as u32;
    let cfg = OrderedConfig { depth_overrides: vec![((cm, 0), 0)], ..OrderedConfig::default() };
    let mut prof = NodeProfiler::new();
    let r = OrderedEngine::with_probe(&dfg, MemoryImage::new(), cfg, &mut prof).run().unwrap();
    assert!(!r.is_complete());
    let report = prof.report(r.final_cycle());
    assert!(
        report.stall_total(StallReason::BackPressure) > 0,
        "wedge must be attributed to back pressure:\n{}",
        report.stall_table(10)
    );
}

#[test]
fn chrome_trace_round_trips_from_a_real_run() {
    let p = sum_program();
    let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    let cfg = TaggedConfig { args: vec![50], ..TaggedConfig::default() };
    let mut chrome = ChromeTrace::new();
    let r = TaggedEngine::with_probe(&dfg, MemoryImage::new(), cfg, &mut chrome).run().unwrap();
    assert!(r.is_complete());
    let text = chrome.render(r.final_cycle());
    let kinds = ChromeTrace::validate(&text).expect("emitted trace must validate");
    assert!(kinds[EventKind::Fired.name()] > 0);
    assert!(kinds[EventKind::Produced.name()] > 0);
    assert!(kinds[EventKind::Consumed.name()] > 0);
}

#[test]
fn dual_sink_feeds_both() {
    let p = sum_program();
    let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    let cfg = TaggedConfig { args: vec![50], ..TaggedConfig::default() };
    let mut prof = NodeProfiler::new();
    let mut chrome = ChromeTrace::new();
    let r = TaggedEngine::with_probe(&dfg, MemoryImage::new(), cfg, (&mut prof, &mut chrome))
        .run()
        .unwrap();
    assert!(r.is_complete());
    let report = prof.report(r.final_cycle());
    assert_eq!(report.total_fires(), r.dyn_instrs());
    assert_eq!(chrome.kind_count(EventKind::Fired), r.dyn_instrs());
}

#[test]
fn sparse_store_probe_parity() {
    // The unbounded-tag policy exercises the slab-backed FxHash sparse
    // store; probe fire counts must still equal dyn_instrs, and attaching
    // the probe must not perturb the run.
    let p = nested_program();
    let dfg = lower_tagged(&p, TaggingDiscipline::UnorderedUnbounded).unwrap();
    let cfg = TaggedConfig { tag_policy: TagPolicy::GlobalUnbounded, ..TaggedConfig::default() };
    let plain = TaggedEngine::new(&dfg, MemoryImage::new(), cfg.clone()).run().unwrap();
    assert!(plain.is_complete(), "{:?}", plain.outcome);
    let mut counting = CountingProbe::default();
    let mut prof = NodeProfiler::new();
    let probed =
        TaggedEngine::with_probe(&dfg, MemoryImage::new(), cfg, (&mut counting, &mut prof))
            .run()
            .unwrap();
    assert_eq!(plain.cycles(), probed.cycles());
    assert_eq!(plain.returns, probed.returns);
    assert_eq!(prof.report(probed.final_cycle()).total_fires(), probed.dyn_instrs());
}

/// Splits `MemAccess` events by direction, for parity checks against the
/// engine's own architectural load/store counters.
#[derive(Default)]
struct MemCounter {
    loads: u64,
    stores: u64,
}

impl tyr_stats::probe::Probe for MemCounter {
    fn event(&mut self, _cycle: u64, ev: tyr_stats::probe::ProbeEvent) {
        if let tyr_stats::probe::ProbeEvent::MemAccess { write, .. } = ev {
            if write {
                self.stores += 1;
            } else {
                self.loads += 1;
            }
        }
    }
}

/// `ys[i] = xs[i] * 3` — one load and one store per iteration, so every
/// engine has both directions to account for.
fn copy_scale_case() -> (Program, MemoryImage) {
    let mut mem = MemoryImage::new();
    let xs = mem.alloc_init("xs", &(0..24).map(|i| i * 7 - 11).collect::<Vec<_>>());
    let ys = mem.alloc("ys", 24);
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [i] = f.begin_loop("copy", [0]);
    let c = f.lt(i, 24);
    f.begin_body(c);
    let src = f.add(i, xs.base_const());
    let v = f.load(src);
    let v3 = f.mul(v, 3);
    let dst = f.add(i, ys.base_const());
    f.store(dst, v3);
    let i2 = f.add(i, 1);
    let [end] = f.end_loop([i2], [i]);
    (pb.finish(f, [end]), mem)
}

#[test]
fn mem_access_events_match_engine_counters_on_every_engine() {
    // The W-pass cross-validation trusts `MemAccess` to be an exact record
    // of architectural memory traffic: every engine's emitted load/store
    // events must equal the counters it reports on the `RunResult`.
    let (p, mem) = copy_scale_case();
    let dfg_tyr = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    let dfg_ord = lower_ordered(&p).unwrap();

    let mut runs: Vec<(&str, MemCounter, tyr_sim::RunResult)> = Vec::new();

    let mut mc = MemCounter::default();
    let r = TaggedEngine::with_probe(&dfg_tyr, mem.clone(), TaggedConfig::default(), &mut mc)
        .run()
        .unwrap();
    runs.push(("tagged", mc, r));

    let mut mc = MemCounter::default();
    let r = OrderedEngine::with_probe(&dfg_ord, mem.clone(), OrderedConfig::default(), &mut mc)
        .run()
        .unwrap();
    runs.push(("ordered", mc, r));

    let mut mc = MemCounter::default();
    let r = SeqDataflowEngine::with_probe(&p, mem.clone(), SeqDataflowConfig::default(), &mut mc)
        .run()
        .unwrap();
    runs.push(("seqdf", mc, r));

    let mut mc = MemCounter::default();
    let r =
        SeqVnEngine::with_probe(&p, mem.clone(), SeqVnConfig::default(), &mut mc).run().unwrap();
    runs.push(("seqvn", mc, r));

    let mut mc = MemCounter::default();
    let r = OooEngine::with_probe(&p, mem.clone(), OooConfig::default(), &mut mc).run().unwrap();
    runs.push(("ooo", mc, r));

    for (engine, mc, r) in &runs {
        assert!(r.is_complete(), "{engine}: {:?}", r.outcome);
        assert!(mc.loads > 0 && mc.stores > 0, "{engine} must emit both directions");
        assert_eq!(mc.loads, r.mem_loads, "{engine}: load events vs counter");
        assert_eq!(mc.stores, r.mem_stores, "{engine}: store events vs counter");
    }
    // All engines execute the same architectural accesses on this kernel.
    let (_, m0, _) = &runs[0];
    for (engine, mc, _) in &runs[1..] {
        assert_eq!((mc.loads, mc.stores), (m0.loads, m0.stores), "{engine} vs tagged");
    }
}

#[test]
fn timing_wheel_probe_parity() {
    // mem_latency >= 2 routes memory responses through the timing wheel.
    // Fire counts must match dyn_instrs on both the wheel path and the
    // FIFO fallback used for latencies past the wheel's bucket cap.
    let mut mem = MemoryImage::new();
    let xs = mem.alloc_init("xs", &(0..16).map(|i| i * 5 - 3).collect::<Vec<_>>());
    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [i, acc] = f.begin_loop("l", [0, 0]);
    let c = f.lt(i, 16);
    f.begin_body(c);
    let addr = f.add(i, xs.base_const());
    let v = f.load(addr);
    let acc2 = f.add(acc, v);
    let i2 = f.add(i, 1);
    let [out] = f.end_loop([i2, acc2], [acc]);
    let p = pb.finish(f, [out]);
    let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    for lat in [4u64, 64, 20_000] {
        let cfg = TaggedConfig { mem: MemConfig::ideal(lat), ..TaggedConfig::default() };
        let plain = TaggedEngine::new(&dfg, mem.clone(), cfg.clone()).run().unwrap();
        assert!(plain.is_complete(), "lat={lat}: {:?}", plain.outcome);
        let mut prof = NodeProfiler::new();
        let probed = TaggedEngine::with_probe(&dfg, mem.clone(), cfg, &mut prof).run().unwrap();
        assert_eq!(plain.cycles(), probed.cycles(), "lat={lat}");
        assert_eq!(
            prof.report(probed.final_cycle()).total_fires(),
            probed.dyn_instrs(),
            "lat={lat}"
        );
    }
}
