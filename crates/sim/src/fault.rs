//! Deterministic fault injection for the dataflow engines.
//!
//! A [`FaultPlan`] describes *what* to break — drop/duplicate/corrupt a
//! token, delay or flip a memory response, stick a node, exhaust a tag
//! space — and *when*: each fault class carries an injection budget, the
//! plan carries a cycle window, and a seeded PRNG picks which candidate
//! sites inside the window actually strike. The same plan on the same run
//! injects the same faults at the same cycles, every time.
//!
//! Engines that support injection (the tagged and ordered engines) accept a
//! plan through their config. Every applied fault is recorded twice: as a
//! [`FaultRecord`] in [`RunResult::faults`](crate::RunResult::faults) and,
//! when a probe is attached, as a
//! [`ProbeEvent::FaultInjected`](tyr_stats::probe::ProbeEvent::FaultInjected)
//! event — one event per record, so probe parity is checkable. A run with
//! no plan takes a single `Option` test per candidate site and is
//! bit-identical to a run built before this layer existed.
//!
//! Faults never abort the simulation directly. They perturb the machine and
//! let the existing detection paths speak: a wrong answer against the
//! oracle, a [`SimError::UseAfterFree`](crate::SimError::UseAfterFree) or
//! [`SimError::TagOverflow`](crate::SimError::TagOverflow) sanitizer trip, a
//! deadlock report, or a watchdog
//! [`Outcome::TimedOut`](crate::Outcome::TimedOut).

use std::fmt;

use tyr_stats::probe::FaultKind;

/// One applied fault, as recorded in
/// [`RunResult::faults`](crate::RunResult::faults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Cycle the fault was applied at.
    pub cycle: u64,
    /// Node the fault was applied at (0 when no node is involved).
    pub node: u32,
    /// The fault class.
    pub kind: FaultKind,
    /// Human-readable description of exactly what was perturbed.
    pub detail: String,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {:>6}  {:<10} {}", self.cycle, self.kind.label(), self.detail)
    }
}

/// Injection budget for one fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The class to inject.
    pub kind: FaultKind,
    /// Maximum number of injections of this class.
    pub count: u32,
}

/// A deterministic fault-injection plan.
///
/// # Plan strings
///
/// [`FaultPlan::parse`] accepts the `repro fuzz --faults` / `repro chaos
/// --faults` grammar: a comma-separated list of class labels, each with an
/// optional `:count` budget (default 1), optionally followed by a global
/// `@lo..hi` cycle window. `all` expands to every class with budget 1.
///
/// # Example
///
/// ```
/// use tyr_sim::fault::FaultPlan;
/// use tyr_stats::FaultKind;
///
/// let plan = FaultPlan::parse("drop,corrupt:2@100..5000", 42).unwrap();
/// assert_eq!(plan.seed, 42);
/// assert_eq!(plan.window, (100, 5000));
/// assert_eq!(plan.specs.len(), 2);
/// assert_eq!(plan.specs[1].kind, FaultKind::TokenCorrupt);
/// assert_eq!(plan.specs[1].count, 2);
///
/// let all = FaultPlan::parse("all", 7).unwrap();
/// assert_eq!(all.specs.len(), FaultKind::ALL.len());
/// assert!(FaultPlan::parse("frobnicate", 0).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the PRNG that picks strike sites.
    pub seed: u64,
    /// Injection window `[start, end)` in cycles.
    pub window: (u64, u64),
    /// Per-class budgets.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no classes armed) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, window: (0, u64::MAX), specs: Vec::new() }
    }

    /// Arms `count` injections of `kind` (builder-style).
    pub fn with(mut self, kind: FaultKind, count: u32) -> Self {
        self.specs.push(FaultSpec { kind, count });
        self
    }

    /// Restricts injection to cycles in `[lo, hi)` (builder-style).
    pub fn between(mut self, lo: u64, hi: u64) -> Self {
        self.window = (lo, hi);
        self
    }

    /// A plan injecting a single fault of `kind`.
    pub fn single(seed: u64, kind: FaultKind) -> Self {
        FaultPlan::new(seed).with(kind, 1)
    }

    /// Parses a plan string (see the type-level docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token on an unknown class
    /// label, a malformed count, or a malformed window.
    pub fn parse(text: &str, seed: u64) -> Result<Self, String> {
        let (classes, window) = match text.split_once('@') {
            Some((c, w)) => {
                let (lo, hi) = w
                    .split_once("..")
                    .ok_or_else(|| format!("bad fault window '{w}' (want lo..hi)"))?;
                let lo = lo.parse::<u64>().map_err(|_| format!("bad window start '{lo}'"))?;
                let hi = hi.parse::<u64>().map_err(|_| format!("bad window end '{hi}'"))?;
                (c, (lo, hi))
            }
            None => (text, (0, u64::MAX)),
        };
        let mut plan = FaultPlan { seed, window, specs: Vec::new() };
        for item in classes.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (label, count) = match item.split_once(':') {
                Some((l, c)) => {
                    (l, c.parse::<u32>().map_err(|_| format!("bad fault count '{c}'"))?)
                }
                None => (item, 1),
            };
            if label == "all" {
                for kind in FaultKind::ALL {
                    plan.specs.push(FaultSpec { kind, count });
                }
                continue;
            }
            let kind =
                FaultKind::ALL.into_iter().find(|k| k.label() == label).ok_or_else(|| {
                    let known: Vec<&str> = FaultKind::ALL.iter().map(|k| k.label()).collect();
                    format!("unknown fault class '{label}' (known: {})", known.join(" "))
                })?;
            plan.specs.push(FaultSpec { kind, count });
        }
        Ok(plan)
    }
}

/// Strike one candidate site in eight, so faults land mid-run rather than
/// always on the first opportunity.
const STRIKE_GATE_MASK: u64 = 0x7;

/// Live injection state inside a running engine. Engines build one from the
/// configured plan and consult it at each candidate site; with no plan the
/// engine holds `None` and each site costs a single `Option` test.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// Remaining budget per class, indexed by [`FaultKind::index`].
    remaining: [u32; FaultKind::ALL.len()],
    window: (u64, u64),
    rng: u64,
    log: Vec<FaultRecord>,
    /// The stuck node, once a `NodeStick` fault has chosen its victim. A
    /// stuck node never fires again — pair stick faults with a watchdog.
    stuck: Option<u32>,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        let mut remaining = [0u32; FaultKind::ALL.len()];
        for spec in &plan.specs {
            remaining[spec.kind.index()] = remaining[spec.kind.index()].saturating_add(spec.count);
        }
        FaultState {
            remaining,
            window: plan.window,
            // SplitMix64 state (mirrors tyr-workloads' generator); seed 0 is
            // fine — the increment keeps the stream non-degenerate.
            rng: plan.seed,
            log: Vec::new(),
            stuck: None,
        }
    }

    /// SplitMix64 step (Steele et al.; same constants as `tyr-workloads`).
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Decides whether a fault of `kind` strikes this candidate site,
    /// consuming one unit of budget if so.
    pub(crate) fn strike(&mut self, cycle: u64, kind: FaultKind) -> bool {
        if self.remaining[kind.index()] == 0 || cycle < self.window.0 || cycle >= self.window.1 {
            return false;
        }
        if self.next_u64() & STRIKE_GATE_MASK != 0 {
            return false;
        }
        self.remaining[kind.index()] -= 1;
        true
    }

    /// Whether `node` is (or just became) the stuck victim. The first
    /// candidate that wins the strike roll is stuck for the rest of the run.
    pub(crate) fn is_stuck(&mut self, cycle: u64, node: u32) -> bool {
        if self.stuck == Some(node) {
            return true;
        }
        if self.stuck.is_none() && self.strike(cycle, FaultKind::NodeStick) {
            self.stuck = Some(node);
            return true;
        }
        false
    }

    /// The node latched by a stick fault, if any.
    pub(crate) fn stuck_node(&self) -> Option<u32> {
        self.stuck
    }

    /// Whether `kind` still has injection budget. Event-driven engines use
    /// this to decide whether a per-cycle candidate site could still draw
    /// from the PRNG: once the budget is spent, [`FaultState::strike`]
    /// returns without a draw, so idle cycles are safe to skip.
    pub(crate) fn arms(&self, kind: FaultKind) -> bool {
        self.remaining[kind.index()] > 0
    }

    /// The plan's injection window `[lo, hi)`. Outside it,
    /// [`FaultState::strike`] returns without drawing from the PRNG.
    pub(crate) fn window(&self) -> (u64, u64) {
        self.window
    }

    /// Records an applied fault (exactly one record per injection).
    pub(crate) fn record(&mut self, cycle: u64, node: u32, kind: FaultKind, detail: String) {
        self.log.push(FaultRecord { cycle, node, kind, detail });
    }

    /// A nonzero corruption mask.
    pub(crate) fn mask(&mut self) -> i64 {
        (self.next_u64() | 1) as i64
    }

    /// Extra cycles of memory-response delay, in `1..=64`.
    pub(crate) fn extra_delay(&mut self) -> u64 {
        1 + (self.next_u64() & 0x3F)
    }

    pub(crate) fn into_log(self) -> Vec<FaultRecord> {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_counts_and_window() {
        let plan = FaultPlan::parse("drop:3,stick@10..20", 1).unwrap();
        assert_eq!(plan.window, (10, 20));
        assert_eq!(
            plan.specs,
            vec![
                FaultSpec { kind: FaultKind::TokenDrop, count: 3 },
                FaultSpec { kind: FaultKind::NodeStick, count: 1 },
            ]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop:x", 0).is_err());
        assert!(FaultPlan::parse("drop@5", 0).is_err());
        assert!(FaultPlan::parse("nope", 0).is_err());
    }

    #[test]
    fn strikes_respect_budget_and_window() {
        let plan = FaultPlan::new(9).with(FaultKind::TokenDrop, 2).between(100, 200);
        let mut state = FaultState::new(&plan);
        assert!(!state.strike(50, FaultKind::TokenDrop), "before the window");
        assert!(!state.strike(200, FaultKind::TokenDrop), "after the window");
        assert!(!state.strike(150, FaultKind::TokenDup), "class not armed");
        let mut hits = 0;
        for _ in 0..10_000 {
            if state.strike(150, FaultKind::TokenDrop) {
                hits += 1;
            }
        }
        assert_eq!(hits, 2, "budget caps injections");
    }

    #[test]
    fn strikes_are_deterministic_per_seed() {
        let plan = FaultPlan::new(7).with(FaultKind::TokenCorrupt, 4);
        let roll = |plan: &FaultPlan| {
            let mut s = FaultState::new(plan);
            (0..200).map(|c| s.strike(c, FaultKind::TokenCorrupt)).collect::<Vec<bool>>()
        };
        assert_eq!(roll(&plan), roll(&plan));
        let other = FaultPlan::new(8).with(FaultKind::TokenCorrupt, 4);
        assert_ne!(roll(&plan), roll(&other), "different seed, different sites");
    }

    #[test]
    fn stick_latches_one_victim() {
        let plan = FaultPlan::new(3).with(FaultKind::NodeStick, 1);
        let mut state = FaultState::new(&plan);
        let mut victim = None;
        for cycle in 0..1000 {
            for node in [4u32, 9] {
                if state.is_stuck(cycle, node) {
                    victim.get_or_insert(node);
                    assert_eq!(victim, Some(node), "stuck victim never changes");
                }
            }
        }
        assert!(victim.is_some(), "a victim was chosen");
    }

    #[test]
    fn mask_is_never_zero() {
        let mut state = FaultState::new(&FaultPlan::new(0).with(FaultKind::TokenCorrupt, 1));
        for _ in 0..100 {
            assert_ne!(state.mask(), 0);
            let d = state.extra_delay();
            assert!((1..=64).contains(&d));
        }
    }
}
