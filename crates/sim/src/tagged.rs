//! The tagged-dataflow engine: executes graphs from
//! `tyr_dfg::lower::lower_tagged` under a configurable *tag policy*.
//!
//! One engine serves three architectures of the paper's evaluation:
//!
//! * [`TagPolicy::Local`] — **TYR**: every concurrent block has its own
//!   free list; `allocate` obeys the forward-progress rule of Sec. IV-A
//!   (never taking the last usable tag unless the context is ready, and
//!   reserving a spare tag for tail-recursive backedges). Per-block sizes
//!   can differ (Sec. VII-E).
//! * [`TagPolicy::GlobalBounded`] — naïve unordered dataflow with a finite
//!   global tag pool, allocated first-come-first-served. This is the
//!   configuration that deadlocks in Fig. 11.
//! * [`TagPolicy::GlobalUnbounded`] — naïve unordered dataflow with
//!   unlimited tags (the TTDA/Monsoon-style baseline). With a TYR graph this
//!   policy makes every `allocate` succeed immediately, reproducing the
//!   "unlimited tags behaves identically to naïve unordered" observation of
//!   Fig. 9d.
//!
//! Execution is idealized per Sec. VI: every instruction takes one cycle,
//! up to `issue_width` instructions fire per cycle (including multiple
//! dynamic instances of the same static instruction), and live tokens and
//! IPC are sampled every cycle.

use std::collections::VecDeque;

use tyr_dfg::{AllocKind, BlockId, Dfg, InKind, NodeId, NodeKind, PortRef};
use tyr_ir::{MemoryImage, Value};
use tyr_stats::probe::{FaultKind, NoProbe, Probe, ProbeEvent, StallReason};
use tyr_stats::{IpcHistogram, Trace};

use crate::cache::{CacheSim, HitLevel, MemConfig};
use crate::event::EventQueue;
use crate::fault::{FaultPlan, FaultState};
use crate::fxhash::FxHashMap;
use crate::result::{Outcome, RunResult, SimError};
use crate::slab::ValueSlab;
use crate::watchdog::{Watchdog, WatchdogState};

/// Maximum wired inputs per node (token-presence bits share a `u64` with
/// three engine flags).
const MAX_WIRED: usize = 48;

const IN_QUEUE: u64 = 1 << 63;
const IN_PENDING: u64 = 1 << 62;
const AL_POPPED: u64 = 1 << 61;

/// Tag-allocation policy (the axis distinguishing TYR from prior unordered
/// dataflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagPolicy {
    /// TYR: local tag spaces with forward-progress gating.
    Local {
        /// Tags per concurrent block.
        default_tags: usize,
        /// Per-block overrides by block name (function name or loop label).
        overrides: Vec<(String, usize)>,
    },
    /// One global pool of `tags` tags, allocated FCFS with no gating.
    GlobalBounded {
        /// Pool size.
        tags: usize,
    },
    /// Unlimited tags.
    GlobalUnbounded,
}

impl TagPolicy {
    /// TYR with `tags` tags in every local tag space.
    pub fn local(tags: usize) -> Self {
        TagPolicy::Local { default_tags: tags, overrides: Vec::new() }
    }

    /// TYR with per-block overrides: `(block name, tags)`.
    pub fn local_with(tags: usize, overrides: Vec<(String, usize)>) -> Self {
        TagPolicy::Local { default_tags: tags, overrides }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct TaggedConfig {
    /// Instructions issued per cycle (Sec. VI uses 128).
    pub issue_width: usize,
    /// Tag policy.
    pub tag_policy: TagPolicy,
    /// Program arguments delivered by the source node.
    pub args: Vec<Value>,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
    /// Memory model (default [`MemConfig::Ideal`] with latency 1, the
    /// paper's idealized store). Loads and stores deliver their results
    /// after the model's per-access latency; raising the ideal latency (or
    /// switching to [`MemConfig::Cached`]) shows why tagged dataflow
    /// tolerates long/unpredictable latencies where ordered dataflow stalls
    /// (Sec. II-C). The cache decides only *when* results arrive, never
    /// *what* they are, so architectural results are identical across
    /// memory models.
    pub mem: MemConfig,
    /// Model dedicated tag-management hardware: token-synchronization
    /// instructions (`allocate`, `free`, `changeTag`, `extractTag`, `join`,
    /// `merge`, `const`) fire without consuming issue slots. Sec. VIII
    /// sketches exactly such microarchitectures (Monsoon-style block-boundary
    /// matching); this knob quantifies the ISA tax of TYR's token
    /// synchronization. Default off: every instruction costs a slot, as in
    /// the paper's evaluation.
    pub free_token_sync: bool,
    /// Use-after-free sanitizer: every time a `free` recycles a tag, scan
    /// that block's nodes for tokens still held under the freed tag and
    /// fail with [`SimError::UseAfterFree`] if any are found. This is the
    /// dynamic counterpart of `tyr-verify`'s static barrier-coverage pass:
    /// a node outside its block's free barrier is exactly one whose tokens
    /// can survive the free. Default off (the scan is O(block size) per
    /// free).
    pub check_token_leaks: bool,
    /// Deterministic fault-injection plan (see [`crate::fault`]). `None`
    /// (the default) injects nothing: every candidate site costs one
    /// `Option` test and the run is bit-identical to an engine without the
    /// fault layer.
    pub faults: Option<FaultPlan>,
    /// Run watchdog: cycle budget, wall-clock deadline, cancellation (see
    /// [`crate::watchdog`]). Disarmed by default.
    pub watchdog: Watchdog,
    /// Event-driven core (default on): when the ready queue is empty the
    /// engine advances the clock straight to the cycle before the next
    /// delayed release instead of ticking through the idle gap, clamped so
    /// the cycle limit, watchdog budget, and fault windows still see every
    /// cycle they would have in a ticked run. Results are bit-identical
    /// either way (only [`RunResult::skipped_cycles`](crate::RunResult) and
    /// wall-clock time differ); `false` forces the legacy one-tick-per-cycle
    /// loop, kept as the differential baseline for `repro fuzz`.
    pub event_driven: bool,
}

impl Default for TaggedConfig {
    fn default() -> Self {
        TaggedConfig {
            issue_width: 128,
            tag_policy: TagPolicy::local(64),
            args: Vec::new(),
            max_cycles: 500_000_000,
            mem: MemConfig::default(),
            free_token_sync: false,
            check_token_leaks: false,
            faults: None,
            watchdog: Watchdog::none(),
            event_driven: true,
        }
    }
}

/// Token storage for one node: presence bitmask + per-port values, keyed by
/// tag. TYR's bounded local tag spaces permit small dense arrays — exactly
/// the implementation benefit Sec. III claims; unbounded tags force an
/// associative (hash) store.
enum Store {
    Dense {
        n_ports: usize,
        present: Vec<u64>,
        vals: Vec<Value>,
    },
    /// Unbounded tags force an associative store. Keys are engine-generated
    /// tag counters (never adversarial), so the map hashes with [`FxHasher`]
    /// rather than SipHash; slot values live in a pooled [`ValueSlab`] so
    /// steady-state token match/clear never touches the allocator.
    Sparse {
        map: FxHashMap<u64, SparseSlot>,
        slab: ValueSlab,
    },
}

struct SparseSlot {
    present: u64,
    /// Row handle into the store's [`ValueSlab`].
    row: u32,
}

impl Store {
    fn present(&self, tag: u64) -> u64 {
        match self {
            // Out-of-range reads report "nothing present" rather than
            // panicking: a corrupted value feeding a dynamic tag must
            // surface as [`SimError::TagOverflow`] from the guarded
            // [`Store::set`], not as an index fault.
            Store::Dense { present, .. } => present.get(tag as usize).copied().unwrap_or(0),
            Store::Sparse { map, .. } => map.get(&tag).map_or(0, |s| s.present),
        }
    }

    fn set(&mut self, tag: u64, port: u16, val: Value) -> Result<u64, SimError> {
        match self {
            Store::Dense { n_ports, present, vals } => {
                let t = tag as usize;
                if t >= present.len() {
                    return Err(SimError::TagOverflow { tag, space: present.len() });
                }
                present[t] |= 1 << port;
                vals[t * *n_ports + port as usize] = val;
                Ok(present[t])
            }
            Store::Sparse { map, slab } => {
                let slot = map
                    .entry(tag)
                    .or_insert_with(|| SparseSlot { present: 0, row: slab.acquire() });
                slot.present |= 1 << port;
                slab.set(slot.row, port, val);
                Ok(slot.present)
            }
        }
    }

    fn or_flags(&mut self, tag: u64, flags: u64) {
        match self {
            Store::Dense { present, .. } => present[tag as usize] |= flags,
            Store::Sparse { map, slab } => {
                map.entry(tag)
                    .or_insert_with(|| SparseSlot { present: 0, row: slab.acquire() })
                    .present |= flags;
            }
        }
    }

    fn clear(&mut self, tag: u64, bits: u64) {
        match self {
            Store::Dense { present, .. } => present[tag as usize] &= !bits,
            Store::Sparse { map, slab } => {
                if let Some(slot) = map.get_mut(&tag) {
                    slot.present &= !bits;
                    if slot.present == 0 {
                        let row = slot.row;
                        map.remove(&tag);
                        slab.release(row);
                    }
                }
            }
        }
    }

    /// The value on `port` under `tag`, or `None` if the Sparse path holds
    /// no token set for the tag (the Dense path always has backing storage).
    fn val(&self, tag: u64, port: u16) -> Option<Value> {
        match self {
            Store::Dense { n_ports, vals, .. } => {
                Some(vals[tag as usize * *n_ports + port as usize])
            }
            Store::Sparse { map, slab } => map.get(&tag).map(|s| slab.get(s.row, port)),
        }
    }
}

enum Backend {
    Local { free: Vec<Vec<u64>>, pending: Vec<VecDeque<(u32, u64)>> },
    Global { free: Vec<u64>, pending: VecDeque<(u32, u64)> },
    Unbounded { next: u64 },
}

/// The tagged-dataflow engine. Construct with [`TaggedEngine::new`] (no
/// observability, zero overhead) or [`TaggedEngine::with_probe`], run with
/// [`TaggedEngine::run`].
pub struct TaggedEngine<'a, P: Probe = NoProbe> {
    dfg: &'a Dfg,
    mem: MemoryImage,
    cfg: TaggedConfig,
    required: Vec<u64>,
    store: Vec<Store>,
    backend: Backend,
    ready: VecDeque<(u32, u64)>,
    emissions: Vec<(PortRef, u64, Value)>,
    /// Memory results in flight, bucketed by release cycle — and the
    /// engine's wakeup source when the ready queue runs dry.
    delayed: EventQueue<(PortRef, u64, Value)>,
    /// Scratch for the per-cycle release drain (capacity reused).
    due: Vec<(PortRef, u64, Value)>,
    live: u64,
    /// Live tokens per concurrent block (token-store occupancy).
    block_live: Vec<u64>,
    /// Peak occupancy per block.
    block_peak: Vec<u64>,
    fired_total: u64,
    cycle: u64,
    /// Idle cycles advanced over in bulk by the event-driven core.
    skipped: u64,
    /// Architectural loads / stores executed (counted even without a probe).
    mem_loads: u64,
    mem_stores: u64,
    /// Cache-hierarchy state (`None` under ideal memory).
    cache: Option<CacheSim>,
    trace: Trace,
    ipc: IpcHistogram,
    returns: Option<Vec<Value>>,
    /// Live fault-injection state (`None` when no plan is configured).
    faults: Option<FaultState>,
    /// Set once a tag-exhaust fault strikes: the victim local space index
    /// (any value for the global pool). Freed tags returning to the victim
    /// are swallowed so the starvation is permanent.
    tag_sink: Option<usize>,
    /// Armed watchdog, checked at the top of every cycle.
    dog: WatchdogState,
    probe: P,
}

impl<'a> TaggedEngine<'a> {
    /// Builds an engine over a lowered graph and an initial memory image,
    /// with the zero-cost [`NoProbe`] (every probe site compiles out).
    ///
    /// # Example
    ///
    /// ```
    /// use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    /// use tyr_ir::build::ProgramBuilder;
    /// use tyr_ir::MemoryImage;
    /// use tyr_sim::tagged::{TaggedConfig, TaggedEngine};
    ///
    /// let mut pb = ProgramBuilder::new();
    /// let mut f = pb.func("main", 1);
    /// let x = f.param(0);
    /// let y = f.add(x, 1);
    /// let p = pb.finish(f, [y]);
    ///
    /// let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
    /// let cfg = TaggedConfig { args: vec![41], ..TaggedConfig::default() };
    /// let r = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
    /// assert_eq!(r.returns, vec![42]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a node has more than 48 wired inputs (no lowering output
    /// comes close).
    pub fn new(dfg: &'a Dfg, mem: MemoryImage, cfg: TaggedConfig) -> Self {
        TaggedEngine::with_probe(dfg, mem, cfg, NoProbe)
    }
}

impl<'a, P: Probe> TaggedEngine<'a, P> {
    /// Builds an engine that emits probe events into `probe` (pass `&mut
    /// sink` to keep ownership of the sink across [`TaggedEngine::run`]).
    ///
    /// # Panics
    ///
    /// Panics if a node has more than 48 wired inputs.
    pub fn with_probe(dfg: &'a Dfg, mem: MemoryImage, cfg: TaggedConfig, mut probe: P) -> Self {
        if P::ENABLED {
            for (i, b) in dfg.blocks.iter().enumerate() {
                probe.declare_block(i as u32, &b.name);
            }
            for (i, n) in dfg.nodes.iter().enumerate() {
                probe.declare_node(i as u32, &n.label, n.block.0);
            }
        }
        let mut required = Vec::with_capacity(dfg.len());
        for n in &dfg.nodes {
            let mut mask = 0u64;
            let mut count = 0u32;
            for (i, k) in n.ins.iter().enumerate() {
                if matches!(k, InKind::Wire) {
                    mask |= 1 << i;
                    count += 1;
                }
            }
            assert!(
                (count as usize) <= MAX_WIRED,
                "node {} has {count} wired inputs (max {MAX_WIRED})",
                n.label
            );
            required.push(mask);
            let _ = count;
        }

        let space_size = |name: &str, default_tags: usize, overrides: &[(String, usize)]| {
            overrides
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, t)| t)
                .unwrap_or(default_tags)
                .max(1)
        };

        let (backend, store): (Backend, Vec<Store>) = match &cfg.tag_policy {
            TagPolicy::Local { default_tags, overrides } => {
                let root = dfg.node(dfg.source).block;
                let sizes: Vec<usize> = dfg
                    .blocks
                    .iter()
                    .map(|b| space_size(&b.name, *default_tags, overrides))
                    .collect();
                let free: Vec<Vec<u64>> = sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        // The root context owns tag 0 of the root space.
                        let lo = if i == root.0 as usize { 1 } else { 0 };
                        (lo as u64..t as u64).rev().collect()
                    })
                    .collect();
                let pending = vec![VecDeque::new(); sizes.len()];
                let store = dfg
                    .nodes
                    .iter()
                    .map(|n| {
                        let t = sizes[n.block.0 as usize];
                        Store::Dense {
                            n_ports: n.ins.len(),
                            present: vec![0; t],
                            vals: vec![0; t * n.ins.len()],
                        }
                    })
                    .collect();
                (Backend::Local { free, pending }, store)
            }
            TagPolicy::GlobalBounded { tags } => {
                let t = (*tags).max(1);
                // Tags 1..=t are the pool; the root context owns tag 0.
                let free: Vec<u64> = (1..=t as u64).rev().collect();
                let store = dfg
                    .nodes
                    .iter()
                    .map(|n| Store::Dense {
                        n_ports: n.ins.len(),
                        present: vec![0; t + 1],
                        vals: vec![0; (t + 1) * n.ins.len()],
                    })
                    .collect();
                (Backend::Global { free, pending: VecDeque::new() }, store)
            }
            TagPolicy::GlobalUnbounded => {
                let store = dfg
                    .nodes
                    .iter()
                    .map(|n| Store::Sparse {
                        map: FxHashMap::default(),
                        slab: ValueSlab::new(n.ins.len()),
                    })
                    .collect();
                (Backend::Unbounded { next: 1 }, store)
            }
        };

        // Per-response extra delays (the mem-delay fault) break the timing
        // wheel's constant-latency invariant; fall back to the ordered FIFO
        // whenever that fault class is armed.
        let arms_mem_delay = cfg
            .faults
            .as_ref()
            .is_some_and(|p| p.specs.iter().any(|s| s.kind == FaultKind::MemDelay && s.count > 0));
        // Cached mode's per-access latencies vary (L1 hit vs DRAM), so hits
        // must be allowed to overtake earlier misses: the sorted queue.
        let delayed = if arms_mem_delay {
            EventQueue::fifo()
        } else if cfg.mem.is_cached() {
            EventQueue::sorted()
        } else {
            EventQueue::new(cfg.mem.ideal_latency())
        };
        let faults = cfg.faults.as_ref().map(FaultState::new);
        let dog = cfg.watchdog.arm();
        let cache = cfg.mem.build();
        TaggedEngine {
            dfg,
            mem,
            cfg,
            required,
            store,
            backend,
            ready: VecDeque::new(),
            emissions: Vec::new(),
            delayed,
            due: Vec::new(),
            live: 0,
            block_live: vec![0; dfg.blocks.len()],
            block_peak: vec![0; dfg.blocks.len()],
            fired_total: 0,
            cycle: 0,
            skipped: 0,
            mem_loads: 0,
            mem_stores: 0,
            cache,
            trace: Trace::new(),
            ipc: IpcHistogram::new(),
            returns: None,
            faults,
            tag_sink: None,
            dog,
            probe,
        }
    }

    /// Runs the program to completion, deadlock, or fault.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on simulated-program faults (memory, divide),
    /// the cycle limit, or internal invariant violations. Deadlock is *not*
    /// an error: it is reported via [`Outcome::Deadlock`].
    pub fn run(mut self) -> Result<RunResult, SimError> {
        // Seed: the source fires in the first cycle with the root tag.
        self.ready.push_back((self.dfg.source.0, 0));

        loop {
            if let Some(cause) = self.dog.check(self.cycle) {
                let peaks = self.store_peaks();
                let log = self.faults.take().map(FaultState::into_log).unwrap_or_default();
                return Ok(RunResult::new(
                    Outcome::TimedOut { cycle: self.cycle, live_tokens: self.live, cause },
                    self.trace,
                    self.ipc,
                    self.mem,
                    Vec::new(),
                )
                .with_store_peaks(peaks)
                .with_mem_counts(self.mem_loads, self.mem_stores)
                .with_mem_stats(self.cache.as_ref().map(CacheSim::stats))
                .with_faults(log)
                .with_skipped(self.skipped));
            }
            if self.faults.is_some() {
                self.fault_exhaust_tags();
            }
            // Event-driven fast path: with nothing ready, no instruction can
            // fire and no machine state can change until the next delayed
            // memory release, so the clock may advance to the cycle before
            // that release (`drain_due` during cycle `r - 1` delivers
            // release `r`) in one step. The jump is clamped so every
            // deadline that inspects skipped cycles still sees its exact
            // trip cycle: the cycle limit (checked at the bottom of each
            // ticked cycle), the watchdog's cycle budget (checked at each
            // loop top), and the tag-exhaust fault window (whose in-window
            // cycles each draw from the fault PRNG).
            if self.cfg.event_driven && self.ready.is_empty() {
                if let Some(next) = self.delayed.next_release(self.cycle) {
                    // Never leap past an outstanding MSHR fill: the fill
                    // frees an MSHR entry (releasing back-pressure), so the
                    // clock must visit its cycle.
                    let fill = self
                        .cache
                        .as_mut()
                        .and_then(|c| c.next_fill(self.cycle))
                        .unwrap_or(u64::MAX);
                    let target = (next - 1)
                        .min(fill)
                        .min(self.cfg.max_cycles)
                        .min(self.dog.budget().unwrap_or(u64::MAX))
                        .min(self.exhaust_jump_bound());
                    if target > self.cycle {
                        let n = target - self.cycle;
                        // Each skipped cycle samples exactly what the ticked
                        // loop would have: unchanged live state, IPC 0.
                        self.trace.record_n(self.live, n);
                        self.ipc.record_n(0, n);
                        self.skipped += n;
                        self.cycle = target;
                        // Ordering mirrors the ticked loop: the cycle limit
                        // fires at the bottom of cycle `max_cycles - 1`,
                        // before any loop-top watchdog check could run.
                        if self.cycle >= self.cfg.max_cycles {
                            return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
                        }
                        // A jump can leap over every slow-check boundary in
                        // the gap, so poll the host limits once per resume.
                        // The cycle budget is left to the loop-top check so
                        // its attributed cycle stays deterministic.
                        if let Some(cause) = self.dog.poll_host() {
                            let peaks = self.store_peaks();
                            let log =
                                self.faults.take().map(FaultState::into_log).unwrap_or_default();
                            return Ok(RunResult::new(
                                Outcome::TimedOut {
                                    cycle: self.cycle,
                                    live_tokens: self.live,
                                    cause,
                                },
                                self.trace,
                                self.ipc,
                                self.mem,
                                Vec::new(),
                            )
                            .with_store_peaks(peaks)
                            .with_mem_counts(self.mem_loads, self.mem_stores)
                            .with_mem_stats(self.cache.as_ref().map(CacheSim::stats))
                            .with_faults(log)
                            .with_skipped(self.skipped));
                        }
                        continue;
                    }
                }
            }
            let mut fired = 0u64;
            let mut sync_fired = 0u64;
            // With dedicated tag-management hardware, sync instructions are
            // still one-cycle but do not compete for issue slots.
            let sync_budget = if self.cfg.free_token_sync { self.ready.len() } else { 0 };
            let mut considered = 0usize;
            let mut deferred: Vec<(u32, u64)> = Vec::new();
            while (fired as usize) < self.cfg.issue_width
                || (self.cfg.free_token_sync && considered < sync_budget)
            {
                let Some((n, t)) = self.ready.pop_front() else { break };
                considered += 1;
                if let Some(fs) = self.faults.as_mut() {
                    let fresh = fs.stuck_node().is_none();
                    if fs.is_stuck(self.cycle, n) {
                        if fresh {
                            fs.record(
                                self.cycle,
                                n,
                                FaultKind::NodeStick,
                                format!(
                                    "node '{}' wedged; it never fires again",
                                    self.dfg.nodes[n as usize].label
                                ),
                            );
                            if P::ENABLED {
                                self.probe.event(
                                    self.cycle,
                                    ProbeEvent::FaultInjected {
                                        node: n,
                                        kind: FaultKind::NodeStick,
                                    },
                                );
                            }
                        }
                        // The stuck activation keeps its queue slot but never
                        // fires; the run spins until a watchdog or the cycle
                        // limit ends it.
                        deferred.push((n, t));
                        continue;
                    }
                }
                let is_sync = matches!(
                    self.dfg.nodes[n as usize].kind,
                    NodeKind::Allocate { .. }
                        | NodeKind::NewTag
                        | NodeKind::Free { .. }
                        | NodeKind::ChangeTag
                        | NodeKind::ChangeTagDyn
                        | NodeKind::ExtractTag
                        | NodeKind::Join
                        | NodeKind::Merge
                        | NodeKind::Const(_)
                );
                if self.cfg.free_token_sync && !is_sync && (fired as usize) >= self.cfg.issue_width
                {
                    // Out of compute slots this cycle; defer without
                    // perturbing the FIFO issue order.
                    deferred.push((n, t));
                    continue;
                }
                self.store[n as usize].clear(t, IN_QUEUE);
                if !self.recheck_allocate(n, t) {
                    continue; // moved back to the pending list
                }
                self.fire(NodeId(n), t)?;
                if P::ENABLED {
                    self.probe.event(self.cycle, ProbeEvent::NodeFired { node: n });
                }
                if self.cfg.free_token_sync && is_sync {
                    sync_fired += 1;
                } else {
                    fired += 1;
                }
            }

            // Release memory results whose latency has elapsed.
            let mut due = std::mem::take(&mut self.due);
            self.delayed.drain_due(self.cycle, &mut due);
            for (target, tag, val) in due.drain(..) {
                // Re-counted (live and block) by emit_to.
                self.live -= 1;
                self.block_live[self.dfg.nodes[target.node.0 as usize].block.0 as usize] -= 1;
                self.emit_to(target, tag, val);
            }
            self.due = due;
            // Deliver this cycle's emissions (visible next cycle). The list
            // can grow while draining: an `allocate` that already popped
            // consumes its `ready` input on delivery and emits its control
            // token immediately.
            let mut i = 0;
            while i < self.emissions.len() {
                let (target, tag, mut val) = self.emissions[i];
                i += 1;
                if self.faults.is_some() && !self.fault_perturb_emission(target, tag, &mut val) {
                    continue; // token dropped
                }
                self.deliver(target, tag, val)?;
            }
            self.emissions.clear();

            for &(n, t) in deferred.iter().rev() {
                self.ready.push_front((n, t));
            }
            self.cycle += 1;
            // Sync firings are real dynamic instructions even when they do
            // not consume issue slots; IPC counts compute slots only.
            self.fired_total += fired + sync_fired;
            self.trace.record(self.live);
            self.ipc.record(fired);

            if self.live == 0 && self.ready.is_empty() && self.delayed.is_empty() {
                if let Some(returns) = self.returns.take() {
                    let peaks = self.store_peaks();
                    let log = self.faults.take().map(FaultState::into_log).unwrap_or_default();
                    return Ok(RunResult::new(
                        Outcome::Completed { cycles: self.cycle, dyn_instrs: self.fired_total },
                        self.trace,
                        self.ipc,
                        self.mem,
                        returns,
                    )
                    .with_store_peaks(peaks)
                    .with_mem_counts(self.mem_loads, self.mem_stores)
                    .with_mem_stats(self.cache.as_ref().map(CacheSim::stats))
                    .with_faults(log)
                    .with_skipped(self.skipped));
                }
            }
            if fired + sync_fired == 0 && self.ready.is_empty() && self.delayed.is_empty() {
                if self.returns.is_some() {
                    return Err(SimError::TokenLeak { live_tokens: self.live });
                }
                let peaks = self.store_peaks();
                let log = self.faults.take().map(FaultState::into_log).unwrap_or_default();
                return Ok(RunResult::new(
                    Outcome::Deadlock {
                        cycle: self.cycle,
                        live_tokens: self.live,
                        pending_allocates: self.pending_report(),
                    },
                    self.trace,
                    self.ipc,
                    self.mem,
                    Vec::new(),
                )
                .with_store_peaks(peaks)
                .with_mem_counts(self.mem_loads, self.mem_stores)
                .with_mem_stats(self.cache.as_ref().map(CacheSim::stats))
                .with_faults(log)
                .with_skipped(self.skipped));
            }
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
            }
        }
    }

    /// The highest cycle the event core may jump to without skipping a
    /// cycle on which [`TaggedEngine::fault_exhaust_tags`] could draw from
    /// the fault PRNG. Outside the plan window (and once the fault has
    /// struck or its budget is spent) no candidate cycle draws, so jumps
    /// are unbounded; before the window the clock may advance to its start;
    /// inside it every cycle is a potential draw and the engine single-steps.
    fn exhaust_jump_bound(&self) -> u64 {
        match self.faults.as_ref() {
            Some(fs) if self.tag_sink.is_none() && fs.arms(FaultKind::TagExhaust) => {
                let (lo, hi) = fs.window();
                if self.cycle >= hi {
                    u64::MAX
                } else {
                    lo.max(self.cycle + 1)
                }
            }
            _ => u64::MAX,
        }
    }

    /// The tag-exhaust fault: steals every free tag from one space (the
    /// first local space that an `allocate` node actually targets, or the
    /// global pool) and swallows all future frees to it, so the starvation
    /// is permanent. Allocates on the space park forever — the run ends in
    /// a deadlock report or, with a watchdog, an attributed timeout.
    fn fault_exhaust_tags(&mut self) {
        if self.tag_sink.is_some() {
            return;
        }
        // Only spaces with allocate-side demand are worth starving:
        // stealing a pool nothing draws from perturbs nothing.
        let demanded = |space: usize| {
            self.dfg.nodes.iter().any(
                |n| matches!(&n.kind, NodeKind::Allocate { space: s, .. } if s.0 as usize == space),
            )
        };
        let victim = match &self.backend {
            Backend::Local { free, .. } => {
                free.iter().enumerate().position(|(i, f)| !f.is_empty() && demanded(i))
            }
            Backend::Global { free, .. } => {
                (!free.is_empty() && (0..self.dfg.blocks.len()).any(demanded)).then_some(0)
            }
            Backend::Unbounded { .. } => None, // unbounded spaces cannot exhaust
        };
        let Some(space) = victim else { return };
        let fs = self.faults.as_mut().expect("caller checked");
        if !fs.strike(self.cycle, FaultKind::TagExhaust) {
            return;
        }
        let (stolen, name) = match &mut self.backend {
            Backend::Local { free, .. } => {
                let n = free[space].len();
                free[space].clear();
                (n, self.dfg.blocks[space].name.as_str())
            }
            Backend::Global { free, .. } => {
                let n = free.len();
                free.clear();
                (n, "the global pool")
            }
            Backend::Unbounded { .. } => unreachable!("filtered above"),
        };
        self.tag_sink = Some(space);
        let fs = self.faults.as_mut().expect("caller checked");
        fs.record(
            self.cycle,
            0,
            FaultKind::TagExhaust,
            format!("stole {stolen} free tag(s) from {name}; future frees are swallowed"),
        );
        if P::ENABLED {
            self.probe.event(
                self.cycle,
                ProbeEvent::FaultInjected { node: 0, kind: FaultKind::TagExhaust },
            );
        }
    }

    /// Applies token-level faults (drop / duplicate / corrupt) to one
    /// emission. Returns `false` when the token was dropped — the caller
    /// must not deliver it.
    fn fault_perturb_emission(&mut self, target: PortRef, tag: u64, val: &mut Value) -> bool {
        let node = target.node.0;
        let fs = self.faults.as_mut().expect("caller checked");
        if fs.strike(self.cycle, FaultKind::TokenDrop) {
            fs.record(
                self.cycle,
                node,
                FaultKind::TokenDrop,
                format!(
                    "dropped token (value {val}) bound for '{}' port {}",
                    self.dfg.nodes[node as usize].label, target.port
                ),
            );
            if P::ENABLED {
                self.probe.event(
                    self.cycle,
                    ProbeEvent::FaultInjected { node, kind: FaultKind::TokenDrop },
                );
            }
            // The token was counted live by `emit_to`; un-count it.
            self.live -= 1;
            self.block_live[self.dfg.nodes[node as usize].block.0 as usize] -= 1;
            return false;
        }
        if fs.strike(self.cycle, FaultKind::TokenDup) {
            fs.record(
                self.cycle,
                node,
                FaultKind::TokenDup,
                format!(
                    "duplicated token (value {val}) bound for '{}' port {} under tag {tag}",
                    self.dfg.nodes[node as usize].label, target.port
                ),
            );
            if P::ENABLED {
                self.probe.event(
                    self.cycle,
                    ProbeEvent::FaultInjected { node, kind: FaultKind::TokenDup },
                );
            }
            // The copy is appended to this cycle's emission list; delivering
            // it onto the now-occupied port violates the cardinal
            // tagged-dataflow invariant and trips `TagOverflow`.
            self.emissions.push((target, tag, *val));
            self.live += 1;
            let b = self.dfg.nodes[node as usize].block.0 as usize;
            self.block_live[b] += 1;
            self.block_peak[b] = self.block_peak[b].max(self.block_live[b]);
        }
        // Corrupting a dynamic continuation (`ChangeTagDyn` port 1 encodes a
        // port reference) would send the token to an arbitrary graph index —
        // a harness crash, not a simulated fault — so that one port is
        // exempt.
        let dyn_target = target.port == 1
            && matches!(self.dfg.nodes[node as usize].kind, NodeKind::ChangeTagDyn);
        if !dyn_target && fs.strike(self.cycle, FaultKind::TokenCorrupt) {
            let mask = fs.mask();
            let before = *val;
            *val ^= mask;
            fs.record(
                self.cycle,
                node,
                FaultKind::TokenCorrupt,
                format!(
                    "corrupted token for '{}' port {}: {before} -> {}",
                    self.dfg.nodes[node as usize].label, target.port, *val
                ),
            );
            if P::ENABLED {
                self.probe.event(
                    self.cycle,
                    ProbeEvent::FaultInjected { node, kind: FaultKind::TokenCorrupt },
                );
            }
        }
        true
    }

    fn store_peaks(&self) -> Vec<(String, u64)> {
        self.dfg.blocks.iter().zip(&self.block_peak).map(|(b, &p)| (b.name.clone(), p)).collect()
    }

    fn pending_report(&self) -> Vec<String> {
        let mut out = Vec::new();
        let describe = |&(n, t): &(u32, u64)| {
            let node = &self.dfg.nodes[n as usize];
            format!(
                "{} (tag {t}, block '{}')",
                node.label, self.dfg.blocks[node.block.0 as usize].name
            )
        };
        match &self.backend {
            Backend::Local { pending, .. } => {
                for q in pending {
                    out.extend(q.iter().map(describe));
                }
            }
            Backend::Global { pending, .. } => out.extend(pending.iter().map(describe)),
            Backend::Unbounded { .. } => {}
        }
        out
    }

    /// For allocate activations popped from the ready queue: re-verify
    /// eligibility (free lists may have changed). Returns `false` (and parks
    /// the activation) if it can no longer pop.
    fn recheck_allocate(&mut self, n: u32, t: u64) -> bool {
        let NodeKind::Allocate { space, kind } = &self.dfg.nodes[n as usize].kind else {
            return true;
        };
        let ready_present = self.store[n as usize].present(t) & 0b10 != 0;
        if self.alloc_eligible(*space, *kind, ready_present) {
            true
        } else {
            self.store[n as usize].or_flags(t, IN_PENDING);
            match &mut self.backend {
                Backend::Local { pending, .. } => pending[space.0 as usize].push_back((n, t)),
                Backend::Global { pending, .. } => pending.push_back((n, t)),
                Backend::Unbounded { .. } => unreachable!("unbounded is always eligible"),
            }
            if P::ENABLED {
                self.probe.event(
                    self.cycle,
                    ProbeEvent::StallBegin { node: n, tag: t, reason: StallReason::TagStarved },
                );
            }
            false
        }
    }

    fn alloc_eligible(&self, space: tyr_dfg::BlockId, kind: AllocKind, ready: bool) -> bool {
        match &self.backend {
            Backend::Local { free, .. } => {
                let f = free[space.0 as usize].len();
                let r = kind.reserve();
                // Sec. IV-A: pop immediately while more than one usable tag
                // remains; pop the last usable tag only for a ready context.
                if ready {
                    f > r
                } else {
                    f > r + 1
                }
            }
            // FCFS, no gating: this is what deadlocks (Fig. 11).
            Backend::Global { free, .. } => !free.is_empty(),
            Backend::Unbounded { .. } => true,
        }
    }

    fn pop_tag(&mut self, space: tyr_dfg::BlockId) -> u64 {
        match &mut self.backend {
            Backend::Local { free, .. } => {
                free[space.0 as usize].pop().expect("eligibility checked")
            }
            Backend::Global { free, .. } => free.pop().expect("eligibility checked"),
            Backend::Unbounded { next } => {
                let t = *next;
                *next += 1;
                t
            }
        }
    }

    fn push_tag(&mut self, space: tyr_dfg::BlockId, tag: u64) {
        if let Some(sink) = self.tag_sink {
            let swallowed = match &self.backend {
                Backend::Local { .. } => sink == space.0 as usize,
                Backend::Global { .. } => true,
                Backend::Unbounded { .. } => false,
            };
            if swallowed {
                // The exhausted space swallows returned tags, keeping the
                // starvation permanent (see `fault_exhaust_tags`).
                return;
            }
        }
        // Returning a tag may unblock parked allocates; re-examine them in
        // arrival order.
        let mut unparked: Vec<(u32, u64)> = Vec::new();
        match &mut self.backend {
            Backend::Local { free, pending } => {
                free[space.0 as usize].push(tag);
                unparked.extend(pending[space.0 as usize].drain(..));
            }
            Backend::Global { free, pending } => {
                free.push(tag);
                unparked.extend(pending.drain(..));
            }
            Backend::Unbounded { .. } => {}
        }
        for (n, t) in unparked {
            // Entries promoted by a later `ready` arrival are stale.
            if self.store[n as usize].present(t) & IN_PENDING == 0 {
                continue;
            }
            self.store[n as usize].clear(t, IN_PENDING);
            if let NodeKind::NewTag = &self.dfg.nodes[n as usize].kind {
                // A parked pseudo-allocate (bounded policy over an
                // unbounded-elaboration graph).
                let space = self.dfg.nodes[n as usize].block;
                if self.alloc_eligible(space, AllocKind::Call, true) {
                    self.store[n as usize].or_flags(t, IN_QUEUE);
                    self.ready.push_back((n, t));
                    if P::ENABLED {
                        self.probe.event(self.cycle, ProbeEvent::StallEnd { node: n, tag: t });
                    }
                } else {
                    self.store[n as usize].or_flags(t, IN_PENDING);
                    match &mut self.backend {
                        Backend::Local { pending, .. } => {
                            pending[space.0 as usize].push_back((n, t))
                        }
                        Backend::Global { pending, .. } => pending.push_back((n, t)),
                        Backend::Unbounded { .. } => unreachable!(),
                    }
                }
                continue;
            }
            let NodeKind::Allocate { space, kind } = &self.dfg.nodes[n as usize].kind else {
                unreachable!("only allocates park")
            };
            let ready = self.store[n as usize].present(t) & 0b10 != 0;
            if self.alloc_eligible(*space, *kind, ready) {
                self.store[n as usize].or_flags(t, IN_QUEUE);
                self.ready.push_back((n, t));
                if P::ENABLED {
                    self.probe.event(self.cycle, ProbeEvent::StallEnd { node: n, tag: t });
                }
            } else {
                self.store[n as usize].or_flags(t, IN_PENDING);
                match &mut self.backend {
                    Backend::Local { pending, .. } => pending[space.0 as usize].push_back((n, t)),
                    Backend::Global { pending, .. } => pending.push_back((n, t)),
                    Backend::Unbounded { .. } => unreachable!(),
                }
            }
        }
    }

    fn emit(&mut self, node: NodeId, port: u16, tag: u64, val: Value) {
        // Copy the graph reference out of `self` so the target list can be
        // iterated in place while `emit_to` borrows `self` mutably — the
        // previous per-fire `outs[port].clone()` was a hot-path allocation.
        let dfg = self.dfg;
        for &t in &dfg.nodes[node.0 as usize].outs[port as usize] {
            self.emit_to(t, tag, val);
        }
    }

    fn emit_to(&mut self, target: PortRef, tag: u64, val: Value) {
        if P::ENABLED {
            self.probe.event(self.cycle, ProbeEvent::TokenProduced { node: target.node.0 });
        }
        self.emissions.push((target, tag, val));
        self.live += 1;
        let b = self.dfg.nodes[target.node.0 as usize].block.0 as usize;
        self.block_live[b] += 1;
        if self.block_live[b] > self.block_peak[b] {
            self.block_peak[b] = self.block_live[b];
        }
    }

    /// Simulates the memory model for one access and returns its latency
    /// in cycles (emitting a `MemMiss` probe event on L1 misses). Under
    /// ideal memory this is the fixed configured latency.
    fn mem_access(&mut self, node: u32, addr: Value, write: bool) -> u64 {
        match self.cache.as_mut() {
            Some(c) => {
                let acc = c.access(self.cycle, addr, write);
                if P::ENABLED && acc.is_miss() {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::MemMiss { node, addr, l2: acc.level == HitLevel::Mem },
                    );
                }
                acc.complete - self.cycle
            }
            None => self.cfg.mem.ideal_latency(),
        }
    }

    /// Emits a memory result on `port` after `latency` cycles (plus any
    /// injected extra delay).
    fn emit_mem(&mut self, node: NodeId, port: u16, tag: u64, mut val: Value, latency: u64) {
        let mut extra = 0u64;
        if let Some(fs) = self.faults.as_mut() {
            // Flips apply to load responses only: a store's completion token
            // carries no data, so flipping it would perturb nothing.
            let is_load = matches!(self.dfg.nodes[node.0 as usize].kind, NodeKind::Load);
            if is_load && fs.strike(self.cycle, FaultKind::MemFlip) {
                let mask = fs.mask();
                let before = val;
                val ^= mask;
                fs.record(
                    self.cycle,
                    node.0,
                    FaultKind::MemFlip,
                    format!(
                        "flipped load response at '{}': {before} -> {val}",
                        self.dfg.nodes[node.0 as usize].label
                    ),
                );
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::FaultInjected { node: node.0, kind: FaultKind::MemFlip },
                    );
                }
            }
            if fs.strike(self.cycle, FaultKind::MemDelay) {
                extra = fs.extra_delay();
                fs.record(
                    self.cycle,
                    node.0,
                    FaultKind::MemDelay,
                    format!(
                        "delayed memory response at '{}' by {extra} extra cycle(s)",
                        self.dfg.nodes[node.0 as usize].label
                    ),
                );
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::FaultInjected { node: node.0, kind: FaultKind::MemDelay },
                    );
                }
            }
        }
        if latency <= 1 && extra == 0 {
            self.emit(node, port, tag, val);
            return;
        }
        let release = self.cycle + latency.max(1) + extra;
        let dfg = self.dfg;
        for &t in &dfg.nodes[node.0 as usize].outs[port as usize] {
            self.delayed.push(release, (t, tag, val));
            self.live += 1;
            let b = dfg.nodes[t.node.0 as usize].block.0 as usize;
            self.block_live[b] += 1;
            if self.block_live[b] > self.block_peak[b] {
                self.block_peak[b] = self.block_live[b];
            }
        }
    }

    fn input(&self, node: NodeId, tag: u64, port: u16) -> Value {
        match self.dfg.nodes[node.0 as usize].ins[port as usize] {
            InKind::Imm(v) => v,
            InKind::Wire => self.store[node.0 as usize].val(tag, port).unwrap_or_else(|| {
                let n = &self.dfg.nodes[node.0 as usize];
                panic!(
                    "engine invariant violated: node '{}' (block '{}') fired reading \
                     wired port {port} under tag {tag}, but the sparse store holds no \
                     token set for that tag",
                    n.label, self.dfg.blocks[n.block.0 as usize].name
                )
            }),
        }
    }

    /// Consumes the wired inputs indicated by `mask`.
    fn consume(&mut self, node: NodeId, tag: u64, mask: u64) {
        let present = self.store[node.0 as usize].present(tag);
        let eaten = present & mask;
        self.store[node.0 as usize].clear(tag, eaten);
        let n = eaten.count_ones() as u64;
        self.live -= n;
        self.block_live[self.dfg.nodes[node.0 as usize].block.0 as usize] -= n;
        if P::ENABLED && n > 0 {
            self.probe
                .event(self.cycle, ProbeEvent::TokenConsumed { node: node.0, count: n as u32 });
        }
    }

    /// Use-after-free sanitizer (`TaggedConfig::check_token_leaks`): after
    /// `space` recycled `tag`, no node of that block may still hold tokens
    /// under it — any residual presence means the free barrier failed to
    /// cover the node and a future context of the same tag would observe
    /// this context's state. The sink is exempt: it drains the root
    /// context's return tokens concurrently with the root free.
    fn scan_freed_tag(&self, space: BlockId, tag: u64) -> Result<(), SimError> {
        const FLAGS: u64 = IN_QUEUE | IN_PENDING | AL_POPPED;
        for (ni, n) in self.dfg.nodes.iter().enumerate() {
            if n.block != space || matches!(n.kind, NodeKind::Sink) {
                continue;
            }
            if self.store[ni].present(tag) & !FLAGS != 0 {
                return Err(SimError::UseAfterFree {
                    node: n.label.clone(),
                    block: self.dfg.blocks[space.0 as usize].name.clone(),
                    tag,
                });
            }
        }
        Ok(())
    }

    fn fire(&mut self, node: NodeId, tag: u64) -> Result<(), SimError> {
        let n = &self.dfg.nodes[node.0 as usize];
        let idx = node.0 as usize;
        match &n.kind {
            NodeKind::Alu(op) => {
                let a = self.input(node, tag, 0);
                let b = if n.ins.len() > 1 { self.input(node, tag, 1) } else { 0 };
                let v = op.eval(a, b)?;
                self.consume(node, tag, self.required[idx]);
                self.emit(node, 0, tag, v);
            }
            NodeKind::Select => {
                let c = self.input(node, tag, 0);
                let v = if c != 0 { self.input(node, tag, 1) } else { self.input(node, tag, 2) };
                self.consume(node, tag, self.required[idx]);
                self.emit(node, 0, tag, v);
            }
            NodeKind::Load => {
                let addr = self.input(node, tag, 0);
                let v = self.mem.load(addr)?;
                self.mem_loads += 1;
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::MemAccess { node: node.0, addr, write: false },
                    );
                }
                let lat = self.mem_access(node.0, addr, false);
                self.consume(node, tag, self.required[idx]);
                self.emit_mem(node, 0, tag, v, lat);
            }
            NodeKind::Store | NodeKind::StoreAdd => {
                let addr = self.input(node, tag, 0);
                let v = self.input(node, tag, 1);
                if matches!(n.kind, NodeKind::Store) {
                    self.mem.store(addr, v)?;
                } else {
                    self.mem.fetch_add(addr, v)?;
                }
                self.mem_stores += 1;
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::MemAccess { node: node.0, addr, write: true },
                    );
                }
                // Output-less stores still occupy the cache and an MSHR.
                let lat = self.mem_access(node.0, addr, true);
                self.consume(node, tag, self.required[idx]);
                if !n.outs.is_empty() {
                    self.emit_mem(node, 0, tag, 0, lat);
                }
            }
            NodeKind::Steer => {
                let d = self.input(node, tag, 0);
                let v = self.input(node, tag, 1);
                self.consume(node, tag, self.required[idx]);
                self.emit(node, if d != 0 { 0 } else { 1 }, tag, v);
                if n.outs.len() > 2 {
                    self.emit(node, 2, tag, 0);
                }
            }
            NodeKind::Merge => {
                let present = self.store[idx].present(tag) & self.required[idx];
                debug_assert_eq!(present.count_ones(), 1, "merge with multiple arrivals");
                let port = present.trailing_zeros() as u16;
                let v = self.input(node, tag, port);
                self.consume(node, tag, present);
                self.emit(node, 0, tag, v);
            }
            NodeKind::Join => {
                let v = self.input(node, tag, 0);
                self.consume(node, tag, self.required[idx]);
                self.emit(node, 0, tag, v);
            }
            NodeKind::Allocate { space, .. } => {
                let space = *space;
                let t_new = self.pop_tag(space);
                if P::ENABLED {
                    self.probe
                        .event(self.cycle, ProbeEvent::TagAllocated { space: space.0, tag: t_new });
                    self.probe
                        .event(self.cycle, ProbeEvent::BlockEnter { block: space.0, tag: t_new });
                }
                let ready_present = self.store[idx].present(tag) & 0b10 != 0;
                // Consume the request (port 0) and, if present, the ready
                // (port 1, emitting the barrier control token).
                self.consume(node, tag, 0b01);
                if ready_present {
                    self.consume(node, tag, 0b10);
                    if n.outs.len() > 1 {
                        self.emit(node, 1, tag, 0);
                    }
                } else {
                    self.store[idx].or_flags(tag, AL_POPPED);
                }
                self.emit(node, 0, tag, t_new as Value);
            }
            NodeKind::NewTag => {
                let t_new = match &mut self.backend {
                    Backend::Unbounded { next } => {
                        let t = *next;
                        *next += 1;
                        t
                    }
                    // A bounded policy running an unbounded-elaboration
                    // graph still hands out pool tags FCFS (without frees it
                    // exhausts quickly — that is the point of Fig. 11's
                    // companion discussion).
                    _ => {
                        let space = n.block;
                        if !self.alloc_eligible(space, AllocKind::Call, true) {
                            // Park as a pseudo-allocate request.
                            self.store[idx].or_flags(tag, IN_PENDING);
                            match &mut self.backend {
                                Backend::Local { pending, .. } => {
                                    pending[space.0 as usize].push_back((node.0, tag))
                                }
                                Backend::Global { pending, .. } => pending.push_back((node.0, tag)),
                                Backend::Unbounded { .. } => unreachable!(),
                            }
                            if P::ENABLED {
                                self.probe.event(
                                    self.cycle,
                                    ProbeEvent::StallBegin {
                                        node: node.0,
                                        tag,
                                        reason: StallReason::TagStarved,
                                    },
                                );
                            }
                            return Ok(());
                        }
                        self.pop_tag(space)
                    }
                };
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::TagAllocated { space: n.block.0, tag: t_new },
                    );
                    self.probe
                        .event(self.cycle, ProbeEvent::BlockEnter { block: n.block.0, tag: t_new });
                }
                self.consume(node, tag, self.required[idx]);
                self.emit(node, 0, tag, t_new as Value);
            }
            NodeKind::Free { space } => {
                let space = *space;
                self.consume(node, tag, self.required[idx]);
                self.push_tag(space, tag);
                if P::ENABLED {
                    self.probe.event(self.cycle, ProbeEvent::TagFreed { space: space.0, tag });
                    self.probe.event(self.cycle, ProbeEvent::BlockExit { block: space.0, tag });
                }
                if self.cfg.check_token_leaks {
                    self.scan_freed_tag(space, tag)?;
                }
            }
            NodeKind::ChangeTag => {
                let t_new = self.input(node, tag, 0) as u64;
                let v = self.input(node, tag, 1);
                self.consume(node, tag, self.required[idx]);
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::TagChanged { node: node.0, from: tag, to: t_new },
                    );
                }
                self.emit(node, 0, t_new, v);
                if n.outs.len() > 1 {
                    self.emit(node, 1, tag, 0);
                }
            }
            NodeKind::ChangeTagDyn => {
                let t_new = self.input(node, tag, 0) as u64;
                let target = PortRef::decode(self.input(node, tag, 1));
                let v = self.input(node, tag, 2);
                self.consume(node, tag, self.required[idx]);
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::TagChanged { node: node.0, from: tag, to: t_new },
                    );
                }
                self.emit_to(target, t_new, v);
                if n.outs.len() > 1 {
                    self.emit(node, 1, tag, 0);
                }
            }
            NodeKind::ExtractTag => {
                self.consume(node, tag, self.required[idx]);
                self.emit(node, 0, tag, tag as Value);
            }
            NodeKind::Const(c) => {
                let c = *c;
                self.consume(node, tag, self.required[idx]);
                self.emit(node, 0, tag, c);
            }
            NodeKind::Source => {
                let n_args = n.outs.len() - 1;
                for k in 0..n_args {
                    let v = self.cfg.args.get(k).copied().unwrap_or(0);
                    self.emit(node, k as u16, tag, v);
                }
                self.emit(node, (n.outs.len() - 1) as u16, tag, 0);
            }
            NodeKind::Sink => {
                let vals: Vec<Value> =
                    (0..self.dfg.n_returns).map(|j| self.input(node, tag, j as u16)).collect();
                self.consume(node, tag, self.required[idx]);
                self.returns = Some(vals);
            }
            NodeKind::CMerge { .. } => {
                unreachable!("CMerge only appears in ordered lowerings")
            }
        }
        Ok(())
    }

    fn deliver(&mut self, target: PortRef, tag: u64, val: Value) -> Result<(), SimError> {
        let idx = target.node.0 as usize;
        let bit = 1u64 << target.port;
        let before = self.store[idx].present(tag);
        if before & bit != 0 {
            // The cardinal tagged-dataflow invariant (Theorem 2's premise):
            // never two tokens on one input with the same tag.
            return Err(SimError::TagOverflow { tag, space: usize::MAX });
        }
        let present = self.store[idx].set(tag, target.port, val)?;

        match &self.dfg.nodes[idx].kind {
            NodeKind::Allocate { space, kind } => {
                if target.port == 1 && present & AL_POPPED != 0 {
                    // Ready arrived after the pop: consumed without effect
                    // except the barrier control token (Sec. IV-A).
                    self.store[idx].clear(tag, bit | AL_POPPED);
                    self.live -= 1;
                    self.block_live[self.dfg.nodes[idx].block.0 as usize] -= 1;
                    if P::ENABLED {
                        self.probe.event(
                            self.cycle,
                            ProbeEvent::TokenConsumed { node: target.node.0, count: 1 },
                        );
                    }
                    if self.dfg.nodes[idx].outs.len() > 1 {
                        self.emit(target.node, 1, tag, 0);
                    }
                    return Ok(());
                }
                if present & IN_PENDING != 0 {
                    // Parked on tag pressure; a newly-arrived `ready` may
                    // lower the pop threshold (Sec. IV-A's "pop the last tag
                    // only for a ready context").
                    if target.port == 1 && self.alloc_eligible(*space, *kind, true) {
                        self.store[idx].clear(tag, IN_PENDING);
                        self.store[idx].or_flags(tag, IN_QUEUE);
                        self.ready.push_back((target.node.0, tag));
                        if P::ENABLED {
                            self.probe.event(
                                self.cycle,
                                ProbeEvent::StallEnd { node: target.node.0, tag },
                            );
                        }
                    }
                    return Ok(());
                }
                if present & (IN_QUEUE | AL_POPPED) != 0 {
                    return Ok(());
                }
                // Request present? Try to schedule.
                if present & 0b01 != 0 {
                    let ready = present & 0b10 != 0;
                    if self.alloc_eligible(*space, *kind, ready) {
                        self.store[idx].or_flags(tag, IN_QUEUE);
                        self.ready.push_back((target.node.0, tag));
                        if P::ENABLED && before & 0b11 != 0 {
                            self.probe.event(
                                self.cycle,
                                ProbeEvent::StallEnd { node: target.node.0, tag },
                            );
                        }
                    } else {
                        let space = *space;
                        self.store[idx].or_flags(tag, IN_PENDING);
                        match &mut self.backend {
                            Backend::Local { pending, .. } => {
                                pending[space.0 as usize].push_back((target.node.0, tag))
                            }
                            Backend::Global { pending, .. } => {
                                pending.push_back((target.node.0, tag))
                            }
                            Backend::Unbounded { .. } => unreachable!(),
                        }
                        if P::ENABLED {
                            // Switches any open partial-match interval to
                            // tag starvation — the Fig. 11 attribution.
                            self.probe.event(
                                self.cycle,
                                ProbeEvent::StallBegin {
                                    node: target.node.0,
                                    tag,
                                    reason: StallReason::TagStarved,
                                },
                            );
                        }
                    }
                } else if P::ENABLED && before & 0b11 == 0 {
                    // First token of the allocate's input set (the `ready`
                    // arrived before the request): a partial-match wait.
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::StallBegin {
                            node: target.node.0,
                            tag,
                            reason: StallReason::PartialMatch,
                        },
                    );
                }
            }
            NodeKind::Merge => {
                if present & IN_QUEUE == 0 {
                    self.store[idx].or_flags(tag, IN_QUEUE);
                    self.ready.push_back((target.node.0, tag));
                }
            }
            _ => {
                let req = self.required[idx];
                if present & req == req && present & IN_QUEUE == 0 {
                    self.store[idx].or_flags(tag, IN_QUEUE);
                    self.ready.push_back((target.node.0, tag));
                    if P::ENABLED && before & req != 0 {
                        // Earlier tokens of this set were waiting; the set
                        // just completed.
                        self.probe
                            .event(self.cycle, ProbeEvent::StallEnd { node: target.node.0, tag });
                    }
                } else if P::ENABLED && before & req == 0 && present & IN_QUEUE == 0 {
                    // First token of a multi-input set: the activation now
                    // waits for its partners.
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::StallBegin {
                            node: target.node.0,
                            tag,
                            reason: StallReason::PartialMatch,
                        },
                    );
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::{interp, Program};

    fn sum_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, nn] = f.begin_loop("sum", [0.into(), 0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc2, nn], [acc]);
        pb.finish(f, [total])
    }

    fn run_with(p: &Program, d: TaggingDiscipline, policy: TagPolicy, arg: i64) -> RunResult {
        let dfg = lower_tagged(p, d).unwrap();
        let cfg = TaggedConfig { tag_policy: policy, args: vec![arg], ..TaggedConfig::default() };
        TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap()
    }

    #[test]
    fn sanitizer_passes_on_correct_lowering() {
        // With the use-after-free sanitizer on, a correct lowering still
        // completes: the free barrier really does cover every node.
        let p = sum_program();
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        for tags in [2, 64] {
            let cfg = TaggedConfig {
                tag_policy: TagPolicy::local(tags),
                args: vec![25],
                check_token_leaks: true,
                ..TaggedConfig::default()
            };
            let r = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
            assert!(r.is_complete(), "tags={tags}: {:?}", r.outcome);
            assert_eq!(r.returns, vec![300], "tags={tags}");
        }
    }

    #[test]
    fn sanitizer_passes_on_root_if_diamond() {
        // Regression: the root free barrier must also cover the data path.
        // An If-diamond's steer-completion signals fire as soon as the
        // steers commit, cycles before the ALU chain consuming the merged
        // value has drained; a barrier joining only control completion let
        // `root.free` fire while downstream consumers still held tokens.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 2);
        let a = f.param(0);
        let b = f.param(1);
        f.begin_if(a);
        let t = f.op(tyr_ir::AluOp::And, b, a);
        f.begin_else();
        let e = f.op(tyr_ir::AluOp::Gt, b, a);
        let [m] = f.end_if([(t, e)]);
        // A chain hanging off the merge, strictly after all control signals.
        let x = f.op(tyr_ir::AluOp::Lt, a, m);
        let y = f.op(tyr_ir::AluOp::Xor, x, m);
        let p = pb.finish(f, [y]);

        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(4),
            args: vec![3, -5],
            check_token_leaks: true,
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        assert!(r.is_complete(), "{:?}", r.outcome);
        let mut mem = MemoryImage::new();
        let expect = interp::run(&p, &mut mem, &[3, -5]).unwrap().returns;
        assert_eq!(r.returns, expect);
    }

    #[test]
    fn sanitizer_traps_token_surviving_free() {
        // Graft a node into the loop body that receives a token but can
        // never fire (its second input is never fed): the token outlives
        // the context's free, and the sanitizer must trap it. This is the
        // dynamic twin of tyr-verify's B001 static finding.
        let p = sum_program();
        let mut dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        let body = dfg.block_by_name("sum").unwrap();
        let producer = dfg
            .nodes
            .iter()
            .position(|n| n.block == body && matches!(n.kind, NodeKind::Alu(_)))
            .expect("loop body has an alu node");
        let orphan = NodeId(dfg.nodes.len() as u32);
        dfg.nodes.push(tyr_dfg::Node {
            kind: NodeKind::Join,
            block: body,
            ins: vec![InKind::Wire, InKind::Wire],
            outs: vec![Vec::new()],
            label: "leaky".into(),
        });
        dfg.nodes[producer].outs[0].push(PortRef { node: orphan, port: 0 });

        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(4),
            args: vec![25],
            check_token_leaks: true,
            ..TaggedConfig::default()
        };
        let err = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap_err();
        match err {
            SimError::UseAfterFree { node, block, .. } => {
                assert_eq!(node, "leaky");
                assert_eq!(block, "sum");
            }
            other => panic!("expected UseAfterFree, got {other}"),
        }
        // Same corrupted graph with the sanitizer off: the leak is silent
        // (the run completes or token-leaks at exit, but nothing traps the
        // free itself) — which is exactly why the gate exists.
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(4),
            args: vec![25],
            ..TaggedConfig::default()
        };
        let quiet = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run();
        assert!(!matches!(quiet, Err(SimError::UseAfterFree { .. })), "sanitizer must be opt-in");
    }

    #[test]
    fn tyr_computes_sum() {
        let p = sum_program();
        for tags in [2, 3, 8, 64] {
            let r = run_with(&p, TaggingDiscipline::Tyr, TagPolicy::local(tags), 100);
            assert!(r.is_complete(), "tags={tags}: {:?}", r.outcome);
            assert_eq!(r.returns, vec![4950], "tags={tags}");
        }
    }

    #[test]
    fn unordered_unbounded_computes_sum() {
        let p = sum_program();
        let r =
            run_with(&p, TaggingDiscipline::UnorderedUnbounded, TagPolicy::GlobalUnbounded, 100);
        assert!(r.is_complete());
        assert_eq!(r.returns, vec![4950]);
    }

    #[test]
    fn zero_trip_loop_in_dataflow() {
        let p = sum_program();
        let r = run_with(&p, TaggingDiscipline::Tyr, TagPolicy::local(2), 0);
        assert!(r.is_complete());
        assert_eq!(r.returns, vec![0]);
    }

    #[test]
    fn matches_reference_interpreter() {
        let p = sum_program();
        let mut mem = MemoryImage::new();
        let oracle = interp::run(&p, &mut mem, &[57]).unwrap();
        let r = run_with(&p, TaggingDiscipline::Tyr, TagPolicy::local(4), 57);
        assert_eq!(r.returns, oracle.returns);
    }

    #[test]
    fn more_tags_do_not_change_results_but_change_state() {
        let p = sum_program();
        let small = run_with(&p, TaggingDiscipline::Tyr, TagPolicy::local(2), 300);
        let large = run_with(&p, TaggingDiscipline::Tyr, TagPolicy::local(64), 300);
        assert_eq!(small.returns, large.returns);
        // More tags → at least as much peak live state and no more cycles.
        assert!(large.peak_live() >= small.peak_live());
        assert!(large.cycles() <= small.cycles());
    }

    #[test]
    fn live_state_is_bounded_by_theorem2() {
        let p = sum_program();
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        let tags = 4usize;
        let r = run_with(&p, TaggingDiscipline::Tyr, TagPolicy::local(tags), 200);
        let bound = (tags * dfg.len() * dfg.max_wired_inputs()) as u64;
        assert!(r.peak_live() <= bound, "{} > {}", r.peak_live(), bound);
    }

    #[test]
    fn nested_loops_under_tiny_tag_spaces() {
        // sum_{i<12} sum_{j<i} i*j with 2 tags per block must complete
        // (Theorem 1) and match the oracle.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("outer", [0, 0]);
        let c = f.lt(i, 12);
        f.begin_body(c);
        let [j, ia, ii] = f.begin_loop("inner", [0.into(), acc, i]);
        let cj = f.lt(j, ii);
        f.begin_body(cj);
        let prod = f.mul(ii, j);
        let ia2 = f.add(ia, prod);
        let j2 = f.add(j, 1);
        let [acc_out] = f.end_loop([j2, ia2, ii], [ia]);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc_out], [acc]);
        let p = pb.finish(f, [total]);

        let mut mem = MemoryImage::new();
        let oracle = interp::run(&p, &mut mem, &[]).unwrap();
        for tags in [2, 3, 16] {
            let r = run_with(&p, TaggingDiscipline::Tyr, TagPolicy::local(tags), 0);
            assert!(r.is_complete(), "tags={tags}: {:?}", r.outcome);
            assert_eq!(r.returns, oracle.returns, "tags={tags}");
        }
    }

    #[test]
    fn bounded_global_pool_deadlocks_nested_loops() {
        // The Fig. 11 phenomenon: a small FCFS global pool hands all tags to
        // outer iterations; inner loops starve; the machine deadlocks.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("outer", [0, 0]);
        let c = f.lt(i, 64);
        f.begin_body(c);
        let [j, ia] = f.begin_loop("inner", [0.into(), acc]);
        let cj = f.lt(j, 8);
        f.begin_body(cj);
        let ia2 = f.add(ia, 1);
        let j2 = f.add(j, 1);
        let [acc_out] = f.end_loop([j2, ia2], [ia]);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc_out], [acc]);
        let p = pb.finish(f, [total]);

        let dfg = lower_tagged(&p, TaggingDiscipline::UnorderedBounded).unwrap();
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::GlobalBounded { tags: 4 },
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        match &r.outcome {
            Outcome::Deadlock { pending_allocates, live_tokens, .. } => {
                assert!(!pending_allocates.is_empty());
                assert!(*live_tokens > 0);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        // TYR completes the same program with 2 tags per block.
        let r = run_with(&p, TaggingDiscipline::Tyr, TagPolicy::local(2), 0);
        assert!(r.is_complete(), "{:?}", r.outcome);
        assert_eq!(r.returns, vec![64 * 8]);
    }

    #[test]
    fn per_block_tag_overrides_apply() {
        let p = sum_program();
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local_with(64, vec![("sum".into(), 2)]),
            args: vec![200],
            ..TaggedConfig::default()
        };
        let throttled = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        let wide = run_with(&p, TaggingDiscipline::Tyr, TagPolicy::local(64), 200);
        assert_eq!(throttled.returns, wide.returns);
        assert!(throttled.peak_live() <= wide.peak_live());
    }
}

#[cfg(test)]
mod gating_tests {
    //! Focused tests of the Sec. IV-A allocate firing rule.

    use super::*;
    use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::Program;

    /// A loop whose iterations are long-latency (a serial chain), making
    /// tag pressure observable.
    fn chain_loop(iters: i64, chain: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("chain", [0, 0]);
        let c = f.lt(i, iters);
        f.begin_body(c);
        let mut v = f.add(acc, 1);
        for _ in 0..chain {
            v = f.add(v, 0);
        }
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, v], [acc]);
        pb.finish(f, [out])
    }

    #[test]
    fn external_allocate_never_takes_the_last_tag() {
        // With exactly 2 tags: the entry (external) allocate may only pop
        // when both tags are free *and* the context is ready, so the run
        // must serialize but always complete (Lemma 2 in action).
        let p = chain_loop(25, 6);
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        let cfg = TaggedConfig { tag_policy: TagPolicy::local(2), ..TaggedConfig::default() };
        let r = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        assert!(r.is_complete(), "{:?}", r.outcome);
        assert_eq!(r.returns, vec![25]);
    }

    #[test]
    fn single_tag_space_is_clamped_to_one_and_still_works_for_leaf_calls() {
        // TagPolicy::local(0) is clamped to 1 tag. A 1-tag *loop* space
        // cannot satisfy the external allocate's reserve, so use a function
        // call (Call kind, reserve 0): it must still complete, fully
        // serialized.
        let mut pb = ProgramBuilder::new();
        let mut g = pb.func("leaf", 1);
        let x = g.param(0);
        let y = g.mul(x, x);
        let gid = g.id();
        pb.define(g, [y]);
        let mut f = pb.func("main", 1);
        let a = f.param(0);
        let r1 = f.call(gid, &[a], 1);
        let r2 = f.call(gid, &[r1[0]], 1);
        let p = pb.finish(f, [r2[0]]);

        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(0),
            args: vec![3],
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        assert!(r.is_complete(), "{:?}", r.outcome);
        assert_eq!(r.returns, vec![81]);
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let p = chain_loop(100_000, 2);
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::local(2),
            max_cycles: 500,
            ..TaggedConfig::default()
        };
        let err = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 500 }));
    }

    #[test]
    fn dense_store_is_used_for_local_policies() {
        // Structural: a TYR run with bounded tags must never allocate a tag
        // value >= the space size (would be TagOverflow). Completing proves
        // the dense token store sufficed — the Sec. III hardware claim.
        let p = chain_loop(50, 1);
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();
        for tags in [2usize, 3, 7] {
            let cfg =
                TaggedConfig { tag_policy: TagPolicy::local(tags), ..TaggedConfig::default() };
            let r = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
            assert!(r.is_complete());
        }
    }

    #[test]
    fn deadlock_report_names_blocks() {
        let p = chain_loop(50, 1);
        let dfg = lower_tagged(&p, TaggingDiscipline::UnorderedBounded).unwrap();
        let cfg = TaggedConfig {
            tag_policy: TagPolicy::GlobalBounded { tags: 1 },
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        match r.outcome {
            Outcome::Deadlock { pending_allocates, .. } => {
                assert!(
                    pending_allocates.iter().any(|p| p.contains("chain")),
                    "{pending_allocates:?}"
                );
            }
            other => panic!("expected deadlock with 1 global tag, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod isa_tax_tests {
    use super::*;
    use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    use tyr_ir::build::ProgramBuilder;

    #[test]
    fn free_token_sync_is_correct_and_not_slower() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("l", [0, 0]);
        let c = f.lt(i, 300);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, acc2], [acc]);
        let p = pb.finish(f, [out]);
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();

        let run = |free_sync: bool| {
            let cfg = TaggedConfig {
                issue_width: 8,
                tag_policy: TagPolicy::local(16),
                free_token_sync: free_sync,
                ..TaggedConfig::default()
            };
            TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap()
        };
        let taxed = run(false);
        let free = run(true);
        assert_eq!(taxed.returns, free.returns);
        assert_eq!(taxed.returns, vec![(0..300).sum::<i64>()]);
        // Same dynamic instruction count; fewer (or equal) cycles without
        // the tax on a narrow machine.
        assert_eq!(taxed.dyn_instrs(), free.dyn_instrs());
        assert!(free.cycles() <= taxed.cycles(), "{} > {}", free.cycles(), taxed.cycles());
        // IPC under the free-sync model never exceeds the compute width.
        assert!(free.ipc.max_value() <= 8);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    use tyr_ir::build::ProgramBuilder;

    #[test]
    fn results_are_latency_invariant() {
        // dmv-like loop with loads: memory latency changes timing, never
        // values.
        let mut mem = MemoryImage::new();
        let xs = mem.alloc_init("xs", &(0..32).map(|i| i * 3 - 7).collect::<Vec<_>>());
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("l", [0, 0]);
        let c = f.lt(i, 32);
        f.begin_body(c);
        let addr = f.add(i, xs.base_const());
        let v = f.load(addr);
        let acc2 = f.add(acc, v);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, acc2], [acc]);
        let p = pb.finish(f, [out]);
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();

        let mut cycles = Vec::new();
        let mut returns = Vec::new();
        for lat in [1u64, 4, 16, 64] {
            let cfg = TaggedConfig {
                tag_policy: TagPolicy::local(16),
                mem: MemConfig::ideal(lat),
                ..TaggedConfig::default()
            };
            let r = TaggedEngine::new(&dfg, mem.clone(), cfg).run().unwrap();
            assert!(r.is_complete(), "lat={lat}: {:?}", r.outcome);
            cycles.push(r.cycles());
            returns.push(r.returns.clone());
        }
        assert!(returns.windows(2).all(|w| w[0] == w[1]));
        // Longer latency never speeds things up.
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "{cycles:?}");
    }

    #[test]
    fn tags_hide_latency() {
        // With enough tags, many iterations' loads overlap: doubling memory
        // latency must cost far less than 2x. With 2 tags it is nearly
        // serial.
        let mut mem = MemoryImage::new();
        let xs = mem.alloc_init("xs", &vec![1; 256]);
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("l", [0, 0]);
        let c = f.lt(i, 256);
        f.begin_body(c);
        let addr = f.add(i, xs.base_const());
        let v = f.load(addr);
        let acc2 = f.add(acc, v);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, acc2], [acc]);
        let p = pb.finish(f, [out]);
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();

        let run = |tags: usize, lat: u64| {
            let cfg = TaggedConfig {
                tag_policy: TagPolicy::local(tags),
                mem: MemConfig::ideal(lat),
                ..TaggedConfig::default()
            };
            TaggedEngine::new(&dfg, mem.clone(), cfg).run().unwrap().cycles()
        };
        let wide_1 = run(64, 1);
        let wide_32 = run(64, 32);
        let narrow_1 = run(2, 1);
        let narrow_32 = run(2, 32);
        let wide_slowdown = wide_32 as f64 / wide_1 as f64;
        let narrow_slowdown = narrow_32 as f64 / narrow_1 as f64;
        assert!(
            wide_slowdown < narrow_slowdown,
            "tags should hide latency: {wide_slowdown:.2} vs {narrow_slowdown:.2}"
        );
    }
}

#[cfg(test)]
mod event_core_tests {
    //! The event-driven fast path must be bit-identical to the ticked loop
    //! it replaces: same outcome, traces, histograms, memory, and deadline
    //! trip cycles, differing only in `skipped_cycles` and wall-clock time.

    use super::*;
    use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::Program;

    /// Serial reduction over loads: with few tags and long memory latency
    /// almost every cycle is idle — the worst case the event core targets.
    fn load_loop(n: i64) -> (Program, MemoryImage) {
        let mut mem = MemoryImage::new();
        let xs = mem.alloc_init("xs", &(0..n).map(|i| i * 3 - 7).collect::<Vec<_>>());
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("l", [0, 0]);
        let c = f.lt(i, n);
        f.begin_body(c);
        let addr = f.add(i, xs.base_const());
        let v = f.load(addr);
        let acc2 = f.add(acc, v);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, acc2], [acc]);
        (pb.finish(f, [out]), mem)
    }

    fn run_mode(
        p: &Program,
        mem: &MemoryImage,
        policy: TagPolicy,
        lat: u64,
        event_driven: bool,
        watchdog: Watchdog,
        max_cycles: u64,
    ) -> Result<RunResult, SimError> {
        let dfg = lower_tagged(p, TaggingDiscipline::Tyr).unwrap();
        let cfg = TaggedConfig {
            tag_policy: policy,
            mem: MemConfig::ideal(lat),
            event_driven,
            watchdog,
            max_cycles,
            ..TaggedConfig::default()
        };
        TaggedEngine::new(&dfg, mem.clone(), cfg).run()
    }

    fn assert_identical(event: &RunResult, ticked: &RunResult, what: &str) {
        assert_eq!(event.outcome, ticked.outcome, "{what}: outcome");
        assert_eq!(event.live, ticked.live, "{what}: live trace");
        assert_eq!(event.ipc, ticked.ipc, "{what}: ipc histogram");
        assert_eq!(event.returns, ticked.returns, "{what}: returns");
        assert_eq!(event.store_peaks, ticked.store_peaks, "{what}: store peaks");
        assert_eq!(event.mem_loads, ticked.mem_loads, "{what}: loads");
        assert_eq!(event.mem_stores, ticked.mem_stores, "{what}: stores");
        assert_eq!(event.memory(), ticked.memory(), "{what}: memory");
        assert_eq!(event.faults, ticked.faults, "{what}: fault log");
        assert_eq!(ticked.skipped_cycles, 0, "{what}: ticked runs never skip");
    }

    #[test]
    fn event_and_ticked_runs_are_bit_identical() {
        let (p, mem) = load_loop(24);
        for lat in [2u64, 7, 200] {
            for (label, policy) in [
                ("local(2)", TagPolicy::local(2)),
                ("local(16)", TagPolicy::local(16)),
                ("unbounded", TagPolicy::GlobalUnbounded),
            ] {
                let max = TaggedConfig::default().max_cycles;
                let run = |ed| {
                    run_mode(&p, &mem, policy.clone(), lat, ed, Watchdog::none(), max).unwrap()
                };
                let event = run(true);
                let ticked = run(false);
                let what = format!("lat={lat} {label}");
                assert!(event.is_complete(), "{what}: {:?}", event.outcome);
                assert_identical(&event, &ticked, &what);
                // With 2 tags the loads serialize, so at 200-cycle latency
                // nearly the whole run is skippable idle time. (Wider
                // policies overlap their loads and skip far less.)
                if lat == 200 && label == "local(2)" {
                    assert!(
                        event.skipped_cycles > event.cycles() / 2,
                        "{what}: skipped {} of {}",
                        event.skipped_cycles,
                        event.cycles()
                    );
                }
            }
        }
    }

    #[test]
    fn cycle_limit_trips_identically_mid_gap() {
        // Limits chosen to land inside idle gaps: the event core must not
        // jump past `max_cycles` and run longer than a ticked engine would.
        let (p, mem) = load_loop(24);
        let total = run_mode(&p, &mem, TagPolicy::local(2), 200, true, Watchdog::none(), u64::MAX)
            .unwrap()
            .cycles();
        for limit in [total / 7, total / 3, total / 2, total - 2] {
            let run = |ed| {
                run_mode(&p, &mem, TagPolicy::local(2), 200, ed, Watchdog::none(), limit)
                    .unwrap_err()
            };
            assert_eq!(run(true), SimError::CycleLimit { limit }, "event mode, limit={limit}");
            assert_eq!(run(true), run(false), "limit={limit}");
        }
    }

    #[test]
    fn cycle_budget_trips_at_the_same_cycle_even_when_jumped_past() {
        // A watchdog budget landing mid-gap must attribute the timeout to
        // exactly the budget cycle, with the same trace lengths, in both
        // modes — the jump is clamped to the budget boundary.
        let (p, mem) = load_loop(24);
        for budget in [37u64, 123, 391, 777] {
            let dog = Watchdog::none().with_cycle_budget(budget);
            let run = |ed| {
                run_mode(&p, &mem, TagPolicy::local(2), 200, ed, dog.clone(), u64::MAX).unwrap()
            };
            let event = run(true);
            let ticked = run(false);
            match event.outcome {
                Outcome::TimedOut { cycle, cause, .. } => {
                    assert_eq!(cycle, budget, "attributed to the exact budget cycle");
                    assert_eq!(cause, crate::result::TimeoutCause::CycleBudget { budget });
                }
                ref other => panic!("budget={budget}: expected a timeout, got {other:?}"),
            }
            assert_identical(&event, &ticked, &format!("budget={budget}"));
            assert_eq!(event.live.cycles(), budget, "one trace record per pre-trip cycle");
        }
    }
}

#[cfg(test)]
mod store_size_tests {
    //! Per-block token-store occupancy: the hardware-implementability
    //! argument of Sec. III ("small, private token stores").

    use super::*;
    use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    use tyr_ir::build::ProgramBuilder;

    #[test]
    fn block_store_peaks_are_tracked_and_bounded() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("work", [0, 0]);
        let c = f.lt(i, 500);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, acc2], [acc]);
        let p = pb.finish(f, [out]);
        let dfg = lower_tagged(&p, TaggingDiscipline::Tyr).unwrap();

        let tags = 8usize;
        let cfg = TaggedConfig { tag_policy: TagPolicy::local(tags), ..TaggedConfig::default() };
        let r = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        assert!(r.is_complete());
        // One entry per block, block peaks sum >= overall peak never holds
        // exactly (peaks at different times), but every block peak is
        // bounded by T * (nodes in block) * max inputs.
        assert_eq!(r.store_peaks.len(), dfg.blocks.len());
        for (name, peak) in &r.store_peaks {
            let members =
                dfg.nodes.iter().filter(|n| dfg.blocks[n.block.0 as usize].name == *name).count()
                    as u64;
            let bound = tags as u64 * members * dfg.max_wired_inputs() as u64;
            assert!(peak <= &bound, "block '{name}': {peak} > {bound}");
            assert!(*peak > 0 || members == 0 || name == "main");
        }
        assert!(r.max_store_peak() > 0);
        // Fewer tags => smaller per-block stores.
        let cfg = TaggedConfig { tag_policy: TagPolicy::local(2), ..TaggedConfig::default() };
        let r2 = TaggedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        assert!(r2.max_store_peak() <= r.max_store_peak());
    }
}
