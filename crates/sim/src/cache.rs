//! Two-level cache-hierarchy memory model (ROADMAP item 4).
//!
//! Every engine issues architectural memory accesses through the same
//! request path; this module puts a configurable L1/L2 cache with an MSHR
//! table behind that path so the paper's headline claim — *taming
//! parallelism improves locality* — becomes measurable in cycles instead of
//! only in the static W-pass bounds. The model is deliberately simple and
//! deterministic:
//!
//! * **Geometry.** Two set-associative levels with LRU replacement and a
//!   shared line size. Addresses are word indices (one [`Value`] = 8
//!   bytes), so a 64-byte line holds 8 words — the same granularity the
//!   W-pass ([`tyr-verify`]'s W002 footprint bound) and the dynamic
//!   [`WorkingSet`](tyr_stats::locality::WorkingSet) tracker use.
//! * **Latencies.** An L1 hit completes after `l1_lat` cycles, an L2 hit
//!   after `l1_lat + l2_lat`, and a DRAM access after
//!   `l1_lat + l2_lat + mem_lat`. Both levels fill on a miss
//!   (write-allocate; stores probe and fill exactly like loads).
//! * **MSHRs.** A bounded table of outstanding L1 misses. A miss that finds
//!   the table full back-pressures: it cannot start until the earliest
//!   outstanding fill completes, which pushes its own completion later and
//!   counts one `mshr_stall`. Hits never occupy an MSHR.
//!
//! The cache decides *when* a memory result is available, never *what* it
//! is: values are read/written architecturally at issue time, so cached and
//! ideal runs produce identical memory images and return values (the
//! differential fuzzer's `--mem cached` sweep pins this). The variable
//! completion cycles ride the engines' existing [`EventQueue`](crate::event::EventQueue) miss path
//! (the `Sorted` representation), so the event-driven idle-skip keeps
//! working; the jump clamp includes [`CacheSim::next_fill`], the earliest
//! outstanding MSHR fill.
//!
//! [`tyr-verify`]: ../../tyr_verify/index.html

use tyr_ir::Value;

/// Memory-model selection threaded through every engine configuration.
///
/// # Grammar
///
/// [`MemConfig::parse`] accepts the `repro --mem` surface syntax:
///
/// ```
/// use tyr_sim::cache::MemConfig;
///
/// // The idealized fixed-latency store (the default, latency 1):
/// assert_eq!(MemConfig::parse("ideal").unwrap(), MemConfig::ideal(1));
/// assert_eq!(MemConfig::parse("ideal:200").unwrap(), MemConfig::ideal(200));
///
/// // The cache hierarchy; every key is optional (defaults shown by label):
/// let m = MemConfig::parse("cached:l1=4k,l2=64k,mshr=8").unwrap();
/// assert_eq!(m.label(), "cached:l1=4096,l2=65536,line=64,assoc=4/8,lat=2/12/100,mshr=8");
/// let deep = MemConfig::parse("cached:l1=1k,lat2=20,mem=300,assoc1=2").unwrap();
/// assert!(m.is_cached() && deep.is_cached());
/// assert!(MemConfig::parse("cached:l1=zzz").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemConfig {
    /// Fixed-latency memory: every access completes after `latency` cycles
    /// (the paper's idealized model). Latency 1 is the default and is
    /// bit-identical to the pre-cache engines.
    Ideal {
        /// Cycles from issue to completion for every access.
        latency: u64,
    },
    /// The two-level cache hierarchy described in [`CacheConfig`].
    Cached(CacheConfig),
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::ideal(1)
    }
}

impl MemConfig {
    /// Fixed-latency memory with the given latency.
    pub fn ideal(latency: u64) -> Self {
        MemConfig::Ideal { latency }
    }

    /// Whether this configuration models the cache hierarchy.
    pub fn is_cached(&self) -> bool {
        matches!(self, MemConfig::Cached(_))
    }

    /// The fixed latency for [`MemConfig::Ideal`]; 1 for cached mode (the
    /// engines take the per-access latency from [`CacheSim::access`]
    /// instead).
    pub fn ideal_latency(&self) -> u64 {
        match self {
            MemConfig::Ideal { latency } => *latency,
            MemConfig::Cached(_) => 1,
        }
    }

    /// Builds the simulator state for this configuration: `Some(CacheSim)`
    /// in cached mode, `None` for ideal memory.
    pub fn build(&self) -> Option<CacheSim> {
        match self {
            MemConfig::Ideal { .. } => None,
            MemConfig::Cached(c) => Some(CacheSim::new(c.clone())),
        }
    }

    /// Canonical one-token rendering, accepted back by [`MemConfig::parse`].
    pub fn label(&self) -> String {
        match self {
            MemConfig::Ideal { latency } => format!("ideal:{latency}"),
            MemConfig::Cached(c) => format!(
                "cached:l1={},l2={},line={},assoc={}/{},lat={}/{}/{},mshr={}",
                c.l1_bytes,
                c.l2_bytes,
                c.line_bytes,
                c.l1_assoc,
                c.l2_assoc,
                c.l1_lat,
                c.l2_lat,
                c.mem_lat,
                c.mshrs
            ),
        }
    }

    /// Parses the `--mem` grammar: `ideal`, `ideal:N`, or
    /// `cached[:key=value,...]` with keys `l1`, `l2` (capacities in bytes,
    /// `k`/`m` suffixes allowed), `line` (bytes), `assoc1`, `assoc2`,
    /// `lat1`, `lat2`, `mem` (latencies in cycles), and `mshr`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token on unknown modes, keys,
    /// or malformed numbers.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (mode, rest) = match s.split_once(':') {
            Some((m, r)) => (m, Some(r)),
            None => (s, None),
        };
        match mode {
            "ideal" => {
                let latency = match rest {
                    None | Some("") => 1,
                    Some(v) => v.parse().map_err(|_| format!("--mem ideal: bad latency '{v}'"))?,
                };
                Ok(MemConfig::Ideal { latency })
            }
            "cached" => {
                let mut c = CacheConfig::default();
                for kv in rest.unwrap_or("").split(',').filter(|t| !t.is_empty()) {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("--mem cached: expected key=value, got '{kv}'"))?;
                    match k {
                        "l1" => c.l1_bytes = parse_size(v)?,
                        "l2" => c.l2_bytes = parse_size(v)?,
                        "line" => c.line_bytes = parse_size(v)?,
                        "assoc1" => c.l1_assoc = parse_num(k, v)? as usize,
                        "assoc2" => c.l2_assoc = parse_num(k, v)? as usize,
                        "lat1" => c.l1_lat = parse_num(k, v)?,
                        "lat2" => c.l2_lat = parse_num(k, v)?,
                        "mem" => c.mem_lat = parse_num(k, v)?,
                        "mshr" => c.mshrs = parse_num(k, v)? as usize,
                        // Compound forms produced by `label()`.
                        "assoc" => {
                            let (a1, a2) = v.split_once('/').ok_or_else(|| {
                                format!("--mem cached: assoc wants 'a1/a2', got '{v}'")
                            })?;
                            c.l1_assoc = parse_num(k, a1)? as usize;
                            c.l2_assoc = parse_num(k, a2)? as usize;
                        }
                        "lat" => {
                            let mut it = v.splitn(3, '/');
                            let mut next = || {
                                it.next().ok_or_else(|| {
                                    format!("--mem cached: lat wants 'l1/l2/mem', got '{v}'")
                                })
                            };
                            c.l1_lat = parse_num(k, next()?)?;
                            c.l2_lat = parse_num(k, next()?)?;
                            c.mem_lat = parse_num(k, next()?)?;
                        }
                        other => {
                            return Err(format!(
                                "--mem cached: unknown key '{other}' (known: l1 l2 line \
                                 assoc1 assoc2 lat1 lat2 mem mshr assoc lat)"
                            ))
                        }
                    }
                }
                c.validate()?;
                Ok(MemConfig::Cached(c))
            }
            other => Err(format!("--mem: unknown mode '{other}' (known: ideal, cached)")),
        }
    }
}

/// Parses a capacity with an optional `k`/`m` suffix.
fn parse_size(v: &str) -> Result<u64, String> {
    let (digits, mult) = match v.strip_suffix(['k', 'K']) {
        Some(d) => (d, 1024),
        None => match v.strip_suffix(['m', 'M']) {
            Some(d) => (d, 1024 * 1024),
            None => (v, 1),
        },
    };
    digits.parse::<u64>().map(|n| n * mult).map_err(|_| format!("--mem cached: bad size '{v}'"))
}

/// Parses a plain numeric value for key `k`.
fn parse_num(k: &str, v: &str) -> Result<u64, String> {
    v.parse().map_err(|_| format!("--mem cached: bad value '{v}' for '{k}'"))
}

/// Geometry and timing of the two-level hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// L1 capacity in bytes (default 4 KiB).
    pub l1_bytes: u64,
    /// L2 capacity in bytes (default 64 KiB).
    pub l2_bytes: u64,
    /// Line size in bytes, shared by both levels (default 64 — 8 words).
    pub line_bytes: u64,
    /// L1 associativity (ways per set, default 4).
    pub l1_assoc: usize,
    /// L2 associativity (default 8).
    pub l2_assoc: usize,
    /// L1 hit latency in cycles (default 2).
    pub l1_lat: u64,
    /// Additional cycles for an L2 hit (default 12).
    pub l2_lat: u64,
    /// Additional cycles for a DRAM access (default 100).
    pub mem_lat: u64,
    /// Outstanding-miss (MSHR) table size; a full table back-pressures new
    /// misses (default 8).
    pub mshrs: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1_bytes: 4096,
            l2_bytes: 65536,
            line_bytes: 64,
            l1_assoc: 4,
            l2_assoc: 8,
            l1_lat: 2,
            l2_lat: 12,
            mem_lat: 100,
            mshrs: 8,
        }
    }
}

impl CacheConfig {
    /// Words per line (the address-bucketing granularity; addresses are
    /// word indices).
    pub fn line_words(&self) -> u64 {
        (self.line_bytes / 8).max(1)
    }

    /// Rejects degenerate geometries (zero sizes, a level smaller than one
    /// way set, or no MSHRs).
    fn validate(&self) -> Result<(), String> {
        let bad = |why: String| Err(format!("--mem cached: {why}"));
        if self.line_bytes == 0 {
            return bad("line size must be nonzero".into());
        }
        for (name, bytes, assoc) in
            [("l1", self.l1_bytes, self.l1_assoc), ("l2", self.l2_bytes, self.l2_assoc)]
        {
            if assoc == 0 {
                return bad(format!("{name} associativity must be nonzero"));
            }
            if bytes < self.line_bytes * assoc as u64 {
                return bad(format!(
                    "{name}={bytes} bytes holds less than one {assoc}-way set of \
                     {}-byte lines",
                    self.line_bytes
                ));
            }
        }
        if self.l1_lat == 0 {
            return bad("l1 hit latency must be at least 1".into());
        }
        if self.mshrs == 0 {
            return bad("mshr table must have at least one entry".into());
        }
        Ok(())
    }
}

/// Hit/miss/occupancy counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses served by this level.
    pub hits: u64,
    /// Accesses that missed this level.
    pub misses: u64,
    /// Lines currently resident.
    pub resident_lines: u64,
    /// Peak resident lines over the run.
    pub peak_lines: u64,
}

impl LevelStats {
    /// Misses over accesses (0.0 when the level was never probed).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// End-of-run cache statistics attached to
/// [`RunResult`](crate::RunResult)`::mem_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// L1 counters. `l1.misses` equals the run's `MemMiss` probe-event
    /// count.
    pub l1: LevelStats,
    /// L2 counters (probed only on L1 misses).
    pub l2: LevelStats,
    /// Misses that found the MSHR table full and had to wait for an
    /// outstanding fill.
    pub mshr_stalls: u64,
}

/// Where an access was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by L1.
    L1,
    /// Missed L1, served by L2.
    L2,
    /// Missed both levels; served by DRAM.
    Mem,
}

/// The outcome of one [`CacheSim::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the result is available (`> issue cycle`).
    pub complete: u64,
    /// Level that served the access.
    pub level: HitLevel,
    /// Whether a full MSHR table delayed the start of this miss.
    pub mshr_stall: bool,
}

impl Access {
    /// Whether the access missed L1 (and therefore emits a `MemMiss` probe
    /// event).
    pub fn is_miss(&self) -> bool {
        self.level != HitLevel::L1
    }
}

/// One set-associative LRU level. Each set is a small vector of line
/// indices ordered most-recently-used first; lookups and fills rotate the
/// touched line to the front and evict from the back.
#[derive(Debug)]
struct Level {
    /// `sets[s]` holds at most `assoc` line indices, MRU first.
    sets: Vec<Vec<i64>>,
    assoc: usize,
    stats: LevelStats,
}

impl Level {
    fn new(bytes: u64, line_bytes: u64, assoc: usize) -> Self {
        let lines = (bytes / line_bytes).max(assoc as u64);
        let n_sets = (lines / assoc as u64).max(1) as usize;
        Level { sets: vec![Vec::new(); n_sets], assoc, stats: LevelStats::default() }
    }

    fn set_of(&self, line: i64) -> usize {
        line.rem_euclid(self.sets.len() as i64) as usize
    }

    /// Probes for `line`; on a hit, promotes it to MRU.
    fn probe(&mut self, line: i64) -> bool {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(p) = set.iter().position(|&l| l == line) {
            set[..=p].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Installs `line` as MRU, evicting the LRU way if the set is full.
    fn fill(&mut self, line: i64) {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if set.len() >= self.assoc {
            set.pop();
            self.stats.resident_lines -= 1;
        }
        set.insert(0, line);
        self.stats.resident_lines += 1;
        self.stats.peak_lines = self.stats.peak_lines.max(self.stats.resident_lines);
    }
}

/// The two-level cache + MSHR simulator.
///
/// # Example
///
/// ```
/// use tyr_sim::cache::{CacheConfig, CacheSim, HitLevel};
///
/// let mut c = CacheSim::new(CacheConfig::default()); // lat 2/12/100
/// let cold = c.access(0, 64, false);
/// assert_eq!((cold.level, cold.complete), (HitLevel::Mem, 114));
/// // Same line, one word over: now L1-resident.
/// let warm = c.access(1, 65, true);
/// assert_eq!((warm.level, warm.complete), (HitLevel::L1, 3));
/// assert_eq!(c.stats().l1.misses, 1);
/// assert_eq!(c.stats().l1.hits, 1);
/// ```
#[derive(Debug)]
pub struct CacheSim {
    cfg: CacheConfig,
    l1: Level,
    l2: Level,
    /// Completion cycles of outstanding L1-miss fills, unordered.
    mshr: Vec<u64>,
    mshr_stalls: u64,
}

impl CacheSim {
    /// Builds an empty hierarchy for `cfg`.
    pub fn new(cfg: CacheConfig) -> Self {
        let l1 = Level::new(cfg.l1_bytes, cfg.line_bytes, cfg.l1_assoc);
        let l2 = Level::new(cfg.l2_bytes, cfg.line_bytes, cfg.l2_assoc);
        CacheSim { cfg, l1, l2, mshr: Vec::new(), mshr_stalls: 0 }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Simulates one access at `cycle` and returns when it completes and
    /// which level served it. Loads and stores are modeled identically
    /// (write-allocate). Determinism: the outcome depends only on the
    /// sequence of `(cycle, addr)` pairs presented.
    pub fn access(&mut self, cycle: u64, addr: Value, _write: bool) -> Access {
        self.retire(cycle);
        let line = addr.div_euclid(self.cfg.line_words() as i64);
        if self.l1.probe(line) {
            return Access {
                complete: cycle + self.cfg.l1_lat,
                level: HitLevel::L1,
                mshr_stall: false,
            };
        }
        // L1 miss: allocate an MSHR (stalling on a full table), probe L2.
        let (start, stalled) = if self.mshr.len() >= self.cfg.mshrs {
            let (i, &earliest) = self
                .mshr
                .iter()
                .enumerate()
                .min_by_key(|&(_, &c)| c)
                .expect("mshrs >= 1 checked at parse time");
            self.mshr.swap_remove(i);
            self.mshr_stalls += 1;
            (earliest.max(cycle), true)
        } else {
            (cycle, false)
        };
        let (level, lat) = if self.l2.probe(line) {
            (HitLevel::L2, self.cfg.l1_lat + self.cfg.l2_lat)
        } else {
            self.l2.fill(line);
            (HitLevel::Mem, self.cfg.l1_lat + self.cfg.l2_lat + self.cfg.mem_lat)
        };
        self.l1.fill(line);
        let complete = start + lat;
        self.mshr.push(complete);
        Access { complete, level, mshr_stall: stalled }
    }

    /// Drops MSHR entries whose fill completed at or before `cycle`.
    fn retire(&mut self, cycle: u64) {
        self.mshr.retain(|&c| c > cycle);
    }

    /// The earliest outstanding MSHR fill strictly after `cycle`, or `None`
    /// when the table is idle — the additional clamp an event-driven jump
    /// must respect so a fill (and the back-pressure release it implies) is
    /// never leapt over.
    pub fn next_fill(&mut self, cycle: u64) -> Option<u64> {
        self.retire(cycle);
        self.mshr.iter().copied().min()
    }

    /// Current counters (cheap copy; call at end of run for
    /// [`RunResult`](crate::RunResult)`::mem_stats`).
    pub fn stats(&self) -> MemStats {
        MemStats { l1: self.l1.stats, l2: self.l2.stats, mshr_stalls: self.mshr_stalls }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(l1_lines: u64, assoc: usize, mshrs: usize) -> CacheSim {
        CacheSim::new(CacheConfig {
            l1_bytes: l1_lines * 64,
            l2_bytes: 64 * 64,
            line_bytes: 64,
            l1_assoc: assoc,
            l2_assoc: 8,
            l1_lat: 2,
            l2_lat: 10,
            mem_lat: 100,
            mshrs,
        })
    }

    /// Word addresses of distinct lines (8 words per 64-byte line).
    fn line_addr(i: i64) -> Value {
        i * 8
    }

    #[test]
    fn hit_miss_latencies_follow_the_hierarchy() {
        let mut c = tiny(4, 4, 8);
        let a = c.access(0, line_addr(0), false);
        assert_eq!((a.level, a.complete), (HitLevel::Mem, 112)); // 2+10+100
        let b = c.access(5, line_addr(0), false);
        assert_eq!((b.level, b.complete), (HitLevel::L1, 7));
        // Evict line 0 from the 4-line L1 with four new lines, then return:
        for i in 1..=4 {
            c.access(10 + i as u64, line_addr(i), false);
        }
        let back = c.access(200, line_addr(0), false);
        assert_eq!((back.level, back.complete), (HitLevel::L2, 212)); // 2+10
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        // Fully associative 3-line L1; L2 large enough to hold everything.
        let mut c = tiny(3, 3, 8);
        for (t, l) in [(0, 0), (1, 1), (2, 2)] {
            c.access(t, line_addr(l), false);
        }
        c.access(3, line_addr(0), false); // order now (MRU..LRU) 0,2,1
        c.access(4, line_addr(3), false); // evicts 1
        assert_eq!(c.access(300, line_addr(0), false).level, HitLevel::L1);
        assert_eq!(c.access(301, line_addr(2), false).level, HitLevel::L1);
        assert_eq!(c.access(302, line_addr(3), false).level, HitLevel::L1);
        assert_eq!(c.access(303, line_addr(1), false).level, HitLevel::L2);
    }

    #[test]
    fn associativity_conflicts_thrash_a_single_set() {
        // 8 lines, 2-way => 4 sets. Lines 0, 4, 8 all map to set 0; with
        // only 2 ways they thrash even though the cache holds 8 lines.
        let mut c = tiny(8, 2, 8);
        let mut t = 0;
        for _ in 0..3 {
            for l in [0i64, 4, 8] {
                c.access(t, line_addr(l), false);
                t += 200;
            }
        }
        let s = c.stats();
        assert_eq!(s.l1.hits, 0, "3 lines round-robin through a 2-way set");
        assert_eq!(s.l1.misses, 9);
        // Same pattern with assoc 4 (2 sets of 4): all three fit one set.
        let mut c = tiny(8, 4, 8);
        let mut t = 0;
        for _ in 0..3 {
            for l in [0i64, 4, 8] {
                c.access(t, line_addr(l), false);
                t += 200;
            }
        }
        assert_eq!(c.stats().l1.misses, 3, "only the cold misses remain");
        assert_eq!(c.stats().l1.hits, 6);
    }

    #[test]
    fn full_mshr_table_backpressures_new_misses() {
        let mut c = tiny(64, 4, 2);
        // Three distinct-line misses in the same cycle: the third finds both
        // MSHRs busy and must wait for the earliest fill (cycle 112).
        let a = c.access(0, line_addr(0), false);
        let b = c.access(0, line_addr(1), false);
        let d = c.access(0, line_addr(2), false);
        assert_eq!(a.complete, 112);
        assert_eq!(b.complete, 112);
        assert!(!a.mshr_stall && !b.mshr_stall);
        assert!(d.mshr_stall);
        assert_eq!(d.complete, 112 + 112, "starts when the earliest fill lands");
        assert_eq!(c.stats().mshr_stalls, 1);
        // Once the fills retire, the table frees up: no stall.
        let e = c.access(500, line_addr(3), false);
        assert!(!e.mshr_stall);
        assert_eq!(e.complete, 612);
    }

    #[test]
    fn next_fill_tracks_the_earliest_outstanding_miss() {
        let mut c = tiny(64, 4, 8);
        assert_eq!(c.next_fill(0), None);
        c.access(0, line_addr(0), false); // completes 112
        c.access(50, line_addr(1), false); // completes 162
        assert_eq!(c.next_fill(60), Some(112));
        assert_eq!(c.next_fill(112), Some(162), "matured fills retire");
        assert_eq!(c.next_fill(162), None);
    }

    #[test]
    fn resident_and_peak_line_stats_track_occupancy() {
        let mut c = tiny(2, 2, 8);
        for l in 0..5 {
            c.access(l as u64 * 300, line_addr(l), false);
        }
        let s = c.stats();
        assert_eq!(s.l1.resident_lines, 2);
        assert_eq!(s.l1.peak_lines, 2);
        assert_eq!(s.l2.resident_lines, 5);
        assert_eq!(s.l2.peak_lines, 5);
        assert_eq!(s.l1.misses, 5);
        assert!((s.l1.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_addresses_bucket_cleanly() {
        let mut c = tiny(8, 4, 8);
        c.access(0, -1, false);
        let a = c.access(1, -8, false);
        assert_eq!(a.level, HitLevel::L1, "adjacent negative words share a line");
    }

    #[test]
    fn parse_rejects_degenerate_geometries() {
        assert!(MemConfig::parse("cached:l1=64,assoc1=4").is_err(), "l1 < one set");
        assert!(MemConfig::parse("cached:mshr=0").is_err());
        assert!(MemConfig::parse("cached:lat1=0").is_err());
        assert!(MemConfig::parse("cached:line=0").is_err());
        assert!(MemConfig::parse("cached:assoc2=0").is_err());
        assert!(MemConfig::parse("cached:bogus=1").is_err());
        assert!(MemConfig::parse("wat").is_err());
    }

    #[test]
    fn label_round_trips_through_parse() {
        for text in ["ideal", "ideal:200", "cached:l1=1k,l2=8k,mshr=4", "cached:line=32,lat1=1"] {
            let m = MemConfig::parse(text).unwrap();
            assert_eq!(MemConfig::parse(&m.label()).unwrap(), m);
        }
    }
}
