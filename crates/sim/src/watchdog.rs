//! Run watchdogs: cycle budgets, wall-clock deadlines, and cooperative
//! cancellation.
//!
//! Every engine config carries a [`Watchdog`]. Disarmed (the default) it
//! costs one boolean test per cycle and never perturbs a run. Armed, it
//! turns a hung or runaway simulation into an attributed
//! [`Outcome::TimedOut`](crate::Outcome::TimedOut) *result* — the run ends
//! gracefully with its trace, live-token census, and fault log intact,
//! instead of erroring out or spinning forever.
//!
//! Three limits compose:
//!
//! * **cycle budget** — deterministic: the same run trips at the same cycle
//!   on every host. This is what the fuzzer uses, so reruns stay
//!   byte-identical.
//! * **wall-clock deadline** — host-dependent; checked every
//!   [`SLOW_CHECK_PERIOD`] cycles so `Instant::now` stays off the hot path.
//! * **cancellation** — a [`CancelToken`] shared across a worker pool, so
//!   one sweep-wide deadline can wind down every in-flight run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::result::TimeoutCause;

/// How often (in cycles) the armed watchdog consults the wall clock and the
/// cancel token. Power of two; the cycle budget is checked every cycle.
pub const SLOW_CHECK_PERIOD: u64 = 4096;

/// A shared cancellation flag for cooperative shutdown of in-flight runs.
///
/// Clones share one flag. Engines polling an armed watchdog that carries the
/// token exit with [`TimeoutCause::Cancelled`] shortly after
/// [`CancelToken::cancel`] is called — this is how `tyr-bench`'s worker pool
/// winds a whole sweep down when its overall deadline passes.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Watchdog configuration, attached to every engine config.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use tyr_sim::watchdog::{CancelToken, Watchdog};
///
/// let token = CancelToken::new();
/// let dog = Watchdog::none()
///     .with_cycle_budget(1_000_000)
///     .with_wall_limit(Duration::from_secs(30))
///     .with_cancel(token.clone());
/// assert!(dog.is_armed());
/// assert!(Watchdog::none().is_armed() == false);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    /// Trip after this many simulated cycles (deterministic).
    pub cycle_budget: Option<u64>,
    /// Trip once this much wall time has elapsed since the run started.
    pub wall_limit: Option<Duration>,
    /// Trip when this shared token is cancelled.
    pub cancel: Option<CancelToken>,
}

impl Watchdog {
    /// The disarmed watchdog: never trips, adds one boolean test per cycle.
    pub fn none() -> Self {
        Watchdog::default()
    }

    /// Arms a deterministic cycle budget (builder-style).
    pub fn with_cycle_budget(mut self, budget: u64) -> Self {
        self.cycle_budget = Some(budget);
        self
    }

    /// Arms a wall-clock deadline (builder-style).
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Attaches a shared cancellation token (builder-style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether any limit is configured.
    pub fn is_armed(&self) -> bool {
        self.cycle_budget.is_some() || self.wall_limit.is_some() || self.cancel.is_some()
    }

    /// Starts the clock: converts the wall limit into a concrete deadline.
    /// Engines call this once at the top of `run()`.
    pub(crate) fn arm(&self) -> WatchdogState {
        WatchdogState {
            armed: self.is_armed(),
            cycle_budget: self.cycle_budget,
            deadline: self.wall_limit.map(|l| Instant::now() + l),
            limit_ms: self.wall_limit.map(|l| l.as_millis() as u64).unwrap_or(0),
            cancel: self.cancel.clone(),
        }
    }
}

/// An armed watchdog mid-run.
#[derive(Debug)]
pub(crate) struct WatchdogState {
    armed: bool,
    cycle_budget: Option<u64>,
    deadline: Option<Instant>,
    limit_ms: u64,
    cancel: Option<CancelToken>,
}

impl WatchdogState {
    /// Returns the cause if any limit has fired at `cycle`. The cycle budget
    /// is checked on every call; the wall clock and cancel token only every
    /// [`SLOW_CHECK_PERIOD`] cycles.
    #[inline]
    pub(crate) fn check(&self, cycle: u64) -> Option<TimeoutCause> {
        if !self.armed {
            return None;
        }
        self.check_armed(cycle)
    }

    /// The armed cycle budget, if any. Event-driven engines clamp clock
    /// jumps to this boundary so the budget trips at exactly the same cycle
    /// as in a ticked run, even when the jump would otherwise leap past it.
    #[inline]
    pub(crate) fn budget(&self) -> Option<u64> {
        self.cycle_budget
    }

    /// Polls the host-side limits (cancel token, wall clock) regardless of
    /// cycle alignment. Event-driven engines call this once per clock jump:
    /// a single jump can leap over many [`SLOW_CHECK_PERIOD`] boundaries, so
    /// the resume point itself must consult the host or a wedged sweep
    /// could outlive its deadline by an entire jump. The cycle budget is
    /// deliberately *not* checked here — it stays with
    /// [`WatchdogState::check`] so its attributed cycle is deterministic.
    pub(crate) fn poll_host(&self) -> Option<TimeoutCause> {
        if !self.armed {
            return None;
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(TimeoutCause::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(TimeoutCause::WallClock { limit_ms: self.limit_ms });
            }
        }
        None
    }

    #[cold]
    fn check_armed(&self, cycle: u64) -> Option<TimeoutCause> {
        if let Some(budget) = self.cycle_budget {
            if cycle >= budget {
                return Some(TimeoutCause::CycleBudget { budget });
            }
        }
        if cycle.is_multiple_of(SLOW_CHECK_PERIOD) {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Some(TimeoutCause::Cancelled);
                }
            }
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Some(TimeoutCause::WallClock { limit_ms: self.limit_ms });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_trips() {
        let state = Watchdog::none().arm();
        assert!(state.check(0).is_none());
        assert!(state.check(u64::MAX).is_none());
    }

    #[test]
    fn cycle_budget_trips_deterministically() {
        let state = Watchdog::none().with_cycle_budget(100).arm();
        assert!(state.check(99).is_none());
        assert_eq!(state.check(100), Some(TimeoutCause::CycleBudget { budget: 100 }));
        assert_eq!(state.check(101), Some(TimeoutCause::CycleBudget { budget: 100 }));
    }

    #[test]
    fn wall_limit_trips_on_slow_check_boundary() {
        let state = Watchdog::none().with_wall_limit(Duration::ZERO).arm();
        // Off-period cycles skip the wall check entirely.
        assert!(state.check(1).is_none());
        assert_eq!(state.check(SLOW_CHECK_PERIOD), Some(TimeoutCause::WallClock { limit_ms: 0 }));
    }

    /// `poll_host` is the clock-jump resume check: it must see host limits
    /// on *any* cycle (no slow-check alignment) but never report the cycle
    /// budget, whose attribution stays with `check`.
    #[test]
    fn poll_host_checks_host_limits_but_not_the_cycle_budget() {
        let state = Watchdog::none().with_cycle_budget(0).arm();
        assert!(state.poll_host().is_none());
        assert_eq!(state.budget(), Some(0));
        assert_eq!(Watchdog::none().arm().budget(), None);
        assert!(Watchdog::none().arm().poll_host().is_none());

        let token = CancelToken::new();
        let state = Watchdog::none().with_cancel(token.clone()).arm();
        assert!(state.poll_host().is_none());
        token.cancel();
        assert_eq!(state.poll_host(), Some(TimeoutCause::Cancelled));

        let state = Watchdog::none().with_wall_limit(Duration::ZERO).arm();
        assert_eq!(state.poll_host(), Some(TimeoutCause::WallClock { limit_ms: 0 }));
    }

    #[test]
    fn cancel_token_shared_across_clones() {
        let token = CancelToken::new();
        let state = Watchdog::none().with_cancel(token.clone()).arm();
        assert!(state.check(0).is_none());
        token.cancel();
        assert_eq!(state.check(SLOW_CHECK_PERIOD), Some(TimeoutCause::Cancelled));
        assert!(state.check(SLOW_CHECK_PERIOD + 1).is_none(), "only on slow-check cycles");
    }
}
