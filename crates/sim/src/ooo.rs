//! Out-of-order von Neumann engine (Sec. II-C, Fig. 5b).
//!
//! The classic vN/dataflow hybrid: instructions issue out of order from a
//! bounded *window* over the sequential instruction stream and retire in
//! order. The paper illustrates it with a 4-instruction window: "parallelism
//! increases by nearly 4×, and live state is kept small. However, OoO is
//! still fundamentally vN — reordering is limited to a small region of the
//! vN execution order, preventing the OoO processor from discovering
//! parallelism across, e.g., outer-loop iterations."
//!
//! This engine is an *extension* of the reproduction (Fig. 5 is
//! illustrative; OoO is not one of the five evaluated systems). It streams
//! the dynamic vN instruction order from the reference interpreter —
//! including *exact* def-use dependence ids via
//! [`Tracer::on_instr_deps`] — and schedules it against a `window`-entry
//! reorder buffer with an issue-width cap: instruction *i* issues at the
//! earliest cycle where (a) its operands have finished, (b) instruction
//! *i − window* has retired (in-order retirement frees window slots), and
//! (c) an issue slot is free. Memory disambiguation is perfect (loads and
//! stores are ordered only by their address/value dependences), which only
//! flatters OoO — and it still cannot approach dataflow's parallelism.
//! Live state is the reorder-buffer occupancy plus the architectural
//! registers, vN-style.

use std::collections::VecDeque;

use tyr_ir::interp::{self, Tracer};
use tyr_ir::{MemoryImage, Program, Value};
use tyr_stats::probe::{NoProbe, Probe, ProbeEvent};
use tyr_stats::{IpcHistogram, Trace};

use crate::cache::{CacheSim, HitLevel, MemConfig};
use crate::result::{Outcome, RunResult, SimError, TimeoutCause};
use crate::watchdog::{Watchdog, WatchdogState};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct OooConfig {
    /// Reorder-buffer size (the instruction window).
    pub window: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Program arguments.
    pub args: Vec<Value>,
    /// Safety limit on retired instructions.
    pub max_instrs: u64,
    /// Memory model. Ideal memory completes every access within the
    /// instruction's single execution cycle (the engine's historical
    /// behaviour). A cached model stretches a memory instruction's
    /// execution latency to the hierarchy's response time: younger
    /// independent instructions still issue around the miss (that is the
    /// point of OoO), but in-order retirement means an outstanding miss at
    /// the window head stalls window refill — the classic MLP-vs-window
    /// tension.
    pub mem: MemConfig,
    /// Run watchdog (see [`crate::watchdog`]). Disarmed by default. The
    /// cycle budget is checked against the scheduler's retirement horizon;
    /// trips end the run as an attributed [`Outcome::TimedOut`].
    pub watchdog: Watchdog,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            window: 64,
            issue_width: 8,
            args: Vec::new(),
            max_instrs: 50_000_000_000,
            mem: MemConfig::default(),
            watchdog: Watchdog::none(),
        }
    }
}

/// The out-of-order vN engine.
pub struct OooEngine<'a, P: Probe = NoProbe> {
    program: &'a Program,
    mem: MemoryImage,
    cfg: OooConfig,
    probe: P,
}

/// Greedy window scheduler over the dynamic vN instruction stream.
///
/// Out-of-order issue, in-order retirement: instruction *i* may issue at
/// any cycle ≥ its operands' readiness once it has entered the window
/// (i.e. instruction *i − window* has retired), subject to `width` issue
/// slots per cycle. Younger instructions may issue before stalled older
/// ones — the defining OoO property.
struct WindowScheduler {
    window: usize,
    width: u64,
    /// In-order retirement times of in-flight instructions (≤ `window`).
    rob: VecDeque<u64>,
    /// Retirement time of the youngest retired instruction (monotone).
    last_retire: u64,
    /// Issue-slot usage per cycle, keyed relative to `slot_base`.
    slots: VecDeque<u64>,
    slot_base: u64,
    /// Cycles fully accounted into the trace/IPC so far.
    accounted: u64,
    /// Retire times awaiting trace accounting (popped from `rob`).
    retired_pending: VecDeque<u64>,
    issued: u64,
    retired_counted: u64,
    trace: Trace,
    ipc: IpcHistogram,
    live_values: u64,
}

impl WindowScheduler {
    fn new(window: usize, width: usize) -> Self {
        WindowScheduler {
            window: window.max(1),
            width: width.max(1) as u64,
            rob: VecDeque::new(),
            last_retire: 0,
            slots: VecDeque::new(),
            slot_base: 0,
            accounted: 0,
            retired_pending: VecDeque::new(),
            issued: 0,
            retired_counted: 0,
            trace: Trace::new(),
            ipc: IpcHistogram::new(),
            live_values: 0,
        }
    }

    fn slot_at(&mut self, cycle: u64) -> &mut u64 {
        debug_assert!(cycle >= self.slot_base);
        let idx = (cycle - self.slot_base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, 0);
        }
        &mut self.slots[idx]
    }

    /// Accounts finished cycles `< upto` into the trace and IPC histogram.
    ///
    /// Zero-issue stretches are folded in bulk: between one retirement and
    /// the next, a cycle with no issue-slot usage records exactly the same
    /// `(in_flight, 0)` sample as its neighbours, so a long memory-latency
    /// gap costs one `record_n` instead of one `record` per cycle. The
    /// samples produced are bit-identical to the per-cycle loop's.
    fn account_to(&mut self, upto: u64) {
        while self.accounted < upto {
            let c = self.accounted;
            while self.retired_pending.front().is_some_and(|&r| r <= c) {
                self.retired_pending.pop_front();
                self.retired_counted += 1;
            }
            let issued_this = if c >= self.slot_base { *self.slot_at(c) } else { 0 };
            let in_flight = self.issued - self.retired_counted;
            let value = in_flight.min(self.window as u64) + self.live_values;
            if issued_this > 0 {
                self.trace.record(value);
                self.ipc.record(issued_this);
                self.accounted += 1;
                continue;
            }
            // The constant-sample run ends at the next retirement (which
            // changes `in_flight`) or the next cycle with issued slots.
            let mut end = self.retired_pending.front().map_or(upto, |&r| upto.min(r));
            let base = self.slot_base;
            let mut idx = ((c + 1).max(base) - base) as usize;
            while base + (idx as u64) < end && idx < self.slots.len() {
                if self.slots[idx] != 0 {
                    end = base + idx as u64;
                    break;
                }
                idx += 1;
            }
            let n = end - c;
            self.trace.record_n(value, n);
            self.ipc.record_n(0, n);
            self.accounted = end;
        }
        // Prune slot storage below the accounted horizon.
        while self.slot_base < self.accounted && !self.slots.is_empty() {
            self.slots.pop_front();
            self.slot_base += 1;
        }
    }

    /// Schedules one dynamic instruction whose operands finish at
    /// `ready_cycle`; returns its finish cycle. (The engine itself goes
    /// through the split halves so memory instructions can carry a cache
    /// latency; this convenience wrapper anchors the equivalence test.)
    #[cfg(test)]
    fn issue(&mut self, ready_cycle: u64, live_values: u64) -> u64 {
        let at = self.issue_slot(ready_cycle, live_values);
        self.finish_at(at, 1)
    }

    /// First half of [`WindowScheduler::issue`]: claims an issue slot and
    /// returns the issue cycle. Must be paired with a
    /// [`WindowScheduler::finish_at`] call.
    fn issue_slot(&mut self, ready_cycle: u64, live_values: u64) -> u64 {
        self.live_values = live_values;
        // Window entry: the (i - window)-th instruction must have retired.
        let enter = if self.rob.len() >= self.window {
            let r = self.rob.pop_front().expect("full rob");
            self.retired_pending.push_back(r);
            r
        } else {
            0
        };
        // Everything strictly before `enter` can no longer issue: account it.
        self.account_to(enter);
        // Find the first cycle >= max(ready, enter) with a free issue slot.
        let mut at = ready_cycle.max(enter).max(self.slot_base);
        let width = self.width;
        loop {
            let used = self.slot_at(at);
            if *used < width {
                *used += 1;
                break;
            }
            at += 1;
        }
        self.issued += 1;
        at
    }

    /// Second half of [`WindowScheduler::issue`]: completes the instruction
    /// issued at `at` after `latency` execution cycles (1 for ALU ops and
    /// ideal memory; the hierarchy's response time for cached accesses) and
    /// returns its finish cycle.
    fn finish_at(&mut self, at: u64, latency: u64) -> u64 {
        let finish = at + latency.max(1);
        // In-order retirement: visible completion is monotone.
        self.last_retire = self.last_retire.max(finish);
        self.rob.push_back(self.last_retire);
        finish
    }

    fn drain(mut self) -> (u64, Trace, IpcHistogram) {
        let end = self.last_retire.max(self.accounted);
        while let Some(r) = self.rob.pop_front() {
            self.retired_pending.push_back(r);
        }
        self.account_to(end);
        (end.max(1), self.trace, self.ipc)
    }
}

/// Interpreter tracer that schedules the exact def-use stream: every
/// dynamic instruction carries its definition id and its operands'
/// definition ids, so operand readiness is each producer's true finish
/// cycle.
struct OooTracer<P: Probe> {
    sched: WindowScheduler,
    /// Finish cycle per definition id. A long-lived value (e.g. a loop
    /// invariant) can be referenced arbitrarily late, so the whole table is
    /// kept: 8 bytes per dynamic instruction.
    finish: Vec<u64>,
    dog: WatchdogState,
    tripped: Option<TimeoutCause>,
    mem_loads: u64,
    mem_stores: u64,
    /// Cache-hierarchy state (`None` under ideal memory).
    cache: Option<CacheSim>,
    /// Accesses reported by `on_mem` but not yet charged: the interpreter
    /// calls `on_mem` *before* the owning instruction's `on_instr_deps`, so
    /// the issue cycle — where the cache lookup happens — is not known yet.
    pending_mem: Vec<(Value, bool)>,
    probe: P,
}

impl<P: Probe> OooTracer<P> {
    /// Charges any pending memory accesses against the cache at issue cycle
    /// `at` and returns the instruction's execution latency: 1 for pure ALU
    /// work or ideal memory, otherwise the slowest access's response time.
    fn mem_latency(&mut self, at: u64) -> u64 {
        let mut lat = 1;
        if self.pending_mem.is_empty() {
            return lat;
        }
        match self.cache.as_mut() {
            Some(c) => {
                for (addr, write) in self.pending_mem.drain(..) {
                    let acc = c.access(at, addr, write);
                    if P::ENABLED && acc.is_miss() {
                        self.probe.event(
                            at,
                            ProbeEvent::MemMiss { node: 0, addr, l2: acc.level == HitLevel::Mem },
                        );
                    }
                    lat = lat.max(acc.complete - at);
                }
            }
            None => self.pending_mem.clear(),
        }
        lat
    }
}

impl<P: Probe> Tracer for OooTracer<P> {
    fn on_instr(&mut self, live_values: u64) {
        // Not reached: the interpreter always calls `on_instr_deps`.
        let at = self.sched.issue_slot(0, live_values);
        let lat = self.mem_latency(at);
        let f = self.sched.finish_at(at, lat);
        if P::ENABLED {
            self.probe.event(at, ProbeEvent::NodeFired { node: 0 });
        }
        self.finish.push(f);
    }

    fn on_instr_deps(&mut self, live_values: u64, def: u64, srcs: &[u64]) {
        let ready = srcs
            .iter()
            .map(|&s| self.finish.get(s as usize).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let at = self.sched.issue_slot(ready, live_values);
        let lat = self.mem_latency(at);
        let f = self.sched.finish_at(at, lat);
        if P::ENABLED {
            // Stamped with the issue cycle. Issue times are not monotone
            // across the stream (the defining OoO property); sinks tolerate
            // out-of-order timestamps.
            self.probe.event(at, ProbeEvent::NodeFired { node: 0 });
        }
        // `def` ids are issued consecutively starting at 1; binds into the
        // table may skip ids (branches define nothing consumed later) but
        // stay ordered.
        if self.finish.len() <= def as usize {
            self.finish.resize(def as usize + 1, 0);
        }
        self.finish[def as usize] = f;
    }

    fn on_mem(&mut self, addr: Value, write: bool) {
        if write {
            self.mem_stores += 1;
        } else {
            self.mem_loads += 1;
        }
        // `on_mem` precedes the access's `on_instr_deps`, so the issue cycle
        // is not known yet; stamp with the retirement horizon (timestamps
        // are out of order in this engine anyway, and sinks tolerate it).
        if P::ENABLED {
            self.probe
                .event(self.sched.last_retire, ProbeEvent::MemAccess { node: 0, addr, write });
        }
        if self.cache.is_some() {
            self.pending_mem.push((addr, write));
        }
    }

    fn poll_halt(&mut self) -> bool {
        // The scheduler's retirement horizon is the engine's notion of the
        // current cycle.
        if let Some(cause) = self.dog.check(self.sched.last_retire) {
            self.tripped = Some(cause);
            return true;
        }
        false
    }
}

impl<'a> OooEngine<'a> {
    /// Builds an engine over a structured program with no probe attached.
    ///
    /// # Example
    ///
    /// ```
    /// use tyr_ir::build::ProgramBuilder;
    /// use tyr_ir::MemoryImage;
    /// use tyr_sim::ooo::{OooConfig, OooEngine};
    ///
    /// let mut pb = ProgramBuilder::new();
    /// let mut f = pb.func("main", 1);
    /// let x = f.param(0);
    /// let a = f.add(x, 1);
    /// let b = f.mul(x, 2);
    /// let y = f.add(a, b);
    /// let p = pb.finish(f, [y]);
    ///
    /// let cfg = OooConfig { args: vec![10], ..OooConfig::default() };
    /// let r = OooEngine::new(&p, MemoryImage::new(), cfg).run().unwrap();
    /// assert_eq!(r.returns, vec![31]);
    /// assert!(r.cycles() < r.dyn_instrs(), "independent ops overlap");
    /// ```
    pub fn new(program: &'a Program, mem: MemoryImage, cfg: OooConfig) -> Self {
        OooEngine::with_probe(program, mem, cfg, NoProbe)
    }
}

impl<'a, P: Probe> OooEngine<'a, P> {
    /// Builds an engine that reports events to `probe` as it runs. Like the
    /// vN engine, the OoO window has no spatial structure: each dynamic
    /// instruction fires virtual node 0 (`instr`) in block 0 (`program`),
    /// timestamped with its (out-of-order) issue cycle.
    pub fn with_probe(
        program: &'a Program,
        mem: MemoryImage,
        cfg: OooConfig,
        mut probe: P,
    ) -> Self {
        if P::ENABLED {
            probe.declare_block(0, "program");
            probe.declare_node(0, "instr", 0);
        }
        OooEngine { program, mem, cfg, probe }
    }

    /// Runs the program.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Interp`] on interpreter faults and
    /// [`SimError::CycleLimit`] when the instruction budget runs out.
    pub fn run(mut self) -> Result<RunResult, SimError> {
        let mut tracer = OooTracer {
            sched: WindowScheduler::new(self.cfg.window, self.cfg.issue_width),
            finish: vec![0],
            dog: self.cfg.watchdog.arm(),
            tripped: None,
            mem_loads: 0,
            mem_stores: 0,
            cache: self.cfg.mem.build(),
            pending_mem: Vec::new(),
            probe: self.probe,
        };
        let out = match interp::run_traced(
            self.program,
            &mut self.mem,
            &self.cfg.args,
            self.cfg.max_instrs,
            &mut tracer,
        ) {
            Ok(out) => out,
            Err(interp::InterpError::Halted) => {
                let cause = tracer.tripped.take().expect("halt implies a tripped watchdog");
                let live = tracer.sched.rob.len() as u64;
                let cycle = tracer.sched.last_retire;
                let (loads, stores) = (tracer.mem_loads, tracer.mem_stores);
                let mem_stats = tracer.cache.as_ref().map(CacheSim::stats);
                let (_, trace, ipc) = tracer.sched.drain();
                return Ok(RunResult::new(
                    Outcome::TimedOut { cycle, live_tokens: live, cause },
                    trace,
                    ipc,
                    self.mem,
                    Vec::new(),
                )
                .with_mem_counts(loads, stores)
                .with_mem_stats(mem_stats));
            }
            Err(interp::InterpError::OutOfFuel) => {
                return Err(SimError::CycleLimit { limit: self.cfg.max_instrs })
            }
            Err(other) => return Err(SimError::Interp(other.to_string())),
        };
        let dyn_instrs = out.dyn_instrs;
        let (loads, stores) = (tracer.mem_loads, tracer.mem_stores);
        let mem_stats = tracer.cache.as_ref().map(CacheSim::stats);
        let (cycles, trace, ipc) = tracer.sched.drain();
        Ok(RunResult::new(
            Outcome::Completed { cycles, dyn_instrs },
            trace,
            ipc,
            self.mem,
            out.returns,
        )
        .with_mem_counts(loads, stores)
        .with_mem_stats(mem_stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::build::ProgramBuilder;

    fn sum_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, nn] = f.begin_loop("sum", [0.into(), 0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc2, nn], [acc]);
        pb.finish(f, [total])
    }

    fn run(window: usize, width: usize, n: i64) -> RunResult {
        let p = sum_program();
        let cfg = OooConfig { window, issue_width: width, args: vec![n], ..OooConfig::default() };
        OooEngine::new(&p, MemoryImage::new(), cfg).run().unwrap()
    }

    #[test]
    fn computes_correct_result() {
        let r = run(64, 8, 200);
        assert!(r.is_complete());
        assert_eq!(r.returns, vec![(0..200).sum::<i64>()]);
    }

    #[test]
    fn window_one_degenerates_to_sequential() {
        let r = run(1, 8, 100);
        // One-entry window: issue waits for the previous retire — cycles at
        // least the instruction count.
        assert!(r.cycles() >= r.dyn_instrs());
    }

    #[test]
    fn wider_windows_do_not_slow_down() {
        let w1 = run(4, 4, 300);
        let w2 = run(64, 4, 300);
        assert_eq!(w1.dyn_instrs(), w2.dyn_instrs());
        assert!(w2.cycles() <= w1.cycles(), "{} > {}", w2.cycles(), w1.cycles());
        // But OoO cannot approach dataflow: ILP stays window/width-limited.
        assert!(w2.cycles() * 64 >= w2.dyn_instrs());
    }

    #[test]
    fn live_state_tracks_window_not_program() {
        let small = run(4, 4, 400);
        let large = run(256, 16, 400);
        assert!(small.peak_live() <= 4 + 32, "peak {}", small.peak_live());
        assert!(large.peak_live() <= 256 + 32, "peak {}", large.peak_live());
        assert!(large.peak_live() > small.peak_live());
    }

    /// A copy of the pre-batching scheduler whose `account_to` ticks one
    /// cycle at a time — the reference the bulk-folding version must match
    /// sample for sample.
    struct RefScheduler(WindowScheduler);

    impl RefScheduler {
        fn account_to(&mut self, upto: u64) {
            let s = &mut self.0;
            while s.accounted < upto {
                let c = s.accounted;
                let issued_this = if c >= s.slot_base { *s.slot_at(c) } else { 0 };
                while s.retired_pending.front().is_some_and(|&r| r <= c) {
                    s.retired_pending.pop_front();
                    s.retired_counted += 1;
                }
                let in_flight = s.issued - s.retired_counted;
                s.trace.record(in_flight.min(s.window as u64) + s.live_values);
                s.ipc.record(issued_this);
                s.accounted += 1;
            }
            while s.slot_base < s.accounted && !s.slots.is_empty() {
                s.slots.pop_front();
                s.slot_base += 1;
            }
        }

        fn issue(&mut self, ready_cycle: u64, live_values: u64) -> u64 {
            let enter = {
                let s = &mut self.0;
                s.live_values = live_values;
                if s.rob.len() >= s.window {
                    let r = s.rob.pop_front().expect("full rob");
                    s.retired_pending.push_back(r);
                    r
                } else {
                    0
                }
            };
            self.account_to(enter);
            let s = &mut self.0;
            let mut at = ready_cycle.max(enter).max(s.slot_base);
            let width = s.width;
            loop {
                let used = s.slot_at(at);
                if *used < width {
                    *used += 1;
                    break;
                }
                at += 1;
            }
            s.issued += 1;
            let finish = at + 1;
            s.last_retire = s.last_retire.max(finish);
            s.rob.push_back(s.last_retire);
            finish
        }

        fn drain(mut self) -> (u64, Trace, IpcHistogram) {
            let end = self.0.last_retire.max(self.0.accounted);
            while let Some(r) = self.0.rob.pop_front() {
                self.0.retired_pending.push_back(r);
            }
            self.account_to(end);
            (end.max(1), self.0.trace, self.0.ipc)
        }
    }

    /// The batched `account_to` must produce bit-identical traces, IPC
    /// histograms, and issue cycles to the one-tick-at-a-time reference —
    /// across dense streams, long memory-latency gaps (the case the
    /// batching exists for), and window-full retirement stalls.
    #[test]
    fn batched_accounting_matches_per_cycle_reference() {
        let schedules: Vec<Vec<u64>> = vec![
            // Dense: every instruction ready immediately.
            (0..200).map(|_| 0).collect(),
            // Serial chain with a 500-cycle gap per instruction.
            (0..40).map(|i| i * 500).collect(),
            // Mixed: bursts separated by long gaps.
            (0..120).map(|i| (i / 10) * 3000 + (i % 10)).collect(),
            // Gaps shorter than the window refill rate.
            (0..300).map(|i| i * 3).collect(),
        ];
        for (wi, (window, width)) in [(1usize, 1usize), (4, 2), (64, 8)].iter().enumerate() {
            for (si, ready) in schedules.iter().enumerate() {
                let mut fast = WindowScheduler::new(*window, *width);
                let mut slow = RefScheduler(WindowScheduler::new(*window, *width));
                for (k, &r) in ready.iter().enumerate() {
                    let live = (k % 7) as u64;
                    assert_eq!(
                        fast.issue(r, live),
                        slow.issue(r, live),
                        "w{wi} s{si} k{k}: issue cycle diverged"
                    );
                }
                let (end_f, trace_f, ipc_f) = fast.drain();
                let (end_s, trace_s, ipc_s) = slow.drain();
                assert_eq!(end_f, end_s, "w{wi} s{si}: end");
                assert_eq!(trace_f, trace_s, "w{wi} s{si}: trace");
                assert_eq!(ipc_f, ipc_s, "w{wi} s{si}: ipc");
            }
        }
    }
}
