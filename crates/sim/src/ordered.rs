//! Ordered-dataflow engine (RipTide-style; Sec. II-C).
//!
//! Instructions communicate through bounded per-edge FIFO queues. A node
//! fires when every wired input FIFO has a token *and* every output FIFO has
//! space (back pressure); each static instruction fires at most once per
//! cycle, which is precisely the serialization that costs ordered dataflow
//! its cross-iteration parallelism. "The queue size also limits the number
//! of dynamic instances of each instruction, applying back pressure to
//! upstream instructions."
//!
//! Readiness is evaluated against start-of-cycle state (synchronous
//! hardware); a queue may transiently hold one token above its capacity
//! within a cycle, and the producer stalls the next cycle.

use std::collections::VecDeque;

use tyr_dfg::{Dfg, InKind, NodeKind};
use tyr_ir::{MemoryImage, Value};
use tyr_stats::probe::{FaultKind, NoProbe, Probe, ProbeEvent, StallReason};
use tyr_stats::{IpcHistogram, Trace};

use crate::cache::{CacheSim, HitLevel, MemConfig};
use crate::fault::{FaultPlan, FaultState};
use crate::result::{Outcome, RunResult, SimError};
use crate::watchdog::{Watchdog, WatchdogState};

/// Per-edge FIFO capacities: a uniform default plus targeted overrides.
///
/// Capacities are keyed by the *consumer* input port `(node, port)` — the
/// same indexing as the engine's FIFO array — because every edge has
/// exactly one consumer port while an output port may fan out. This is the
/// configuration surface the static occupancy pass (`tyr-verify`'s `O…`
/// diagnostics) checks against, the way `check_tag_policy` checks a
/// [`TagPolicy`](crate::tagged::TagPolicy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelCapacity {
    /// Capacity of every edge without an override.
    pub default: usize,
    /// `((consumer node id, input port), capacity)` exceptions.
    pub overrides: Vec<((u32, u16), usize)>,
}

impl ChannelCapacity {
    /// Every edge at `default`.
    pub fn uniform(default: usize) -> Self {
        ChannelCapacity { default, overrides: Vec::new() }
    }

    /// Builder: overrides the capacity of the edge into `(node, port)`.
    pub fn with_override(mut self, node: u32, port: u16, capacity: usize) -> Self {
        self.overrides.push(((node, port), capacity));
        self
    }

    /// The capacity of the edge into input `port` of `node`.
    pub fn of(&self, node: u32, port: u16) -> usize {
        self.overrides
            .iter()
            .find(|((n, p), _)| *n == node && *p == port)
            .map_or(self.default, |&(_, c)| c)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct OrderedConfig {
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// FIFO capacity per edge (the paper's baseline uses 4, which
    /// "empirically minimizes peak state with minimal loss in performance").
    pub queue_depth: usize,
    /// Per-edge capacity exceptions, keyed by consumer `(node, port)`;
    /// edges not listed use `queue_depth`. See [`ChannelCapacity`].
    pub depth_overrides: Vec<((u32, u16), usize)>,
    /// Program arguments.
    pub args: Vec<Value>,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
    /// Memory model (default [`MemConfig::Ideal`] with latency 1). Results
    /// are pipelined: each load node delivers its results in issue order,
    /// so per-edge FIFO order is preserved even when a cached model gives
    /// later accesses shorter latencies (a hit behind a miss waits for the
    /// miss — the in-order memory interface ordered dataflow pays for).
    pub mem: MemConfig,
    /// Deterministic fault-injection plan (see [`crate::fault`]). `None`
    /// (the default) injects nothing. Tag-space faults do not apply to the
    /// ordered machine (it is untagged) and are never triggered.
    pub faults: Option<FaultPlan>,
    /// Run watchdog (see [`crate::watchdog`]). Disarmed by default.
    pub watchdog: Watchdog,
    /// Event-driven core (default on): when a cycle fires nothing and
    /// releases nothing, the machine is frozen until the earliest in-flight
    /// memory release matures, so the clock advances straight to that cycle
    /// (clamped to the cycle limit and watchdog budget). Bit-identical to
    /// the ticked loop; `false` forces one tick per cycle, kept as the
    /// differential baseline for `repro fuzz`.
    pub event_driven: bool,
}

impl OrderedConfig {
    /// The per-edge capacity map this configuration induces.
    pub fn capacity(&self) -> ChannelCapacity {
        ChannelCapacity { default: self.queue_depth, overrides: self.depth_overrides.clone() }
    }
}

impl Default for OrderedConfig {
    fn default() -> Self {
        OrderedConfig {
            issue_width: 128,
            queue_depth: 4,
            depth_overrides: Vec::new(),
            args: Vec::new(),
            max_cycles: 500_000_000,
            mem: MemConfig::default(),
            faults: None,
            watchdog: Watchdog::none(),
            event_driven: true,
        }
    }
}

/// The ordered-dataflow engine.
pub struct OrderedEngine<'a, P: Probe = NoProbe> {
    dfg: &'a Dfg,
    mem: MemoryImage,
    cfg: OrderedConfig,
    /// Resolved per-edge capacity: `caps[node][port]`.
    caps: Vec<Vec<usize>>,
    /// One FIFO per wired input port: `fifos[node][port]`.
    fifos: Vec<Vec<VecDeque<Value>>>,
    source_fired: bool,
    /// Memory results in flight, per load node (results of one node stay
    /// ordered; different nodes deliver independently):
    /// `delayed[node] = (release_cycle, value)`.
    delayed: Vec<VecDeque<(u64, Value)>>,
    delayed_count: usize,
    live: u64,
    fired_total: u64,
    cycle: u64,
    /// Idle cycles advanced over in bulk by the event-driven core.
    skipped: u64,
    /// Architectural loads / stores executed (counted even without a probe).
    mem_loads: u64,
    mem_stores: u64,
    /// Cache-hierarchy state (`None` under ideal memory).
    cache: Option<CacheSim>,
    trace: Trace,
    ipc: IpcHistogram,
    returns: Option<Vec<Value>>,
    /// Live fault-injection state (`None` when no plan is configured).
    faults: Option<FaultState>,
    /// Armed watchdog, checked at the top of every cycle.
    dog: WatchdogState,
    probe: P,
    /// Current stall reason per node, for edge-triggered probe emission.
    /// Empty unless the probe is enabled.
    stall_state: Vec<Option<StallReason>>,
}

impl<'a> OrderedEngine<'a> {
    /// Builds an engine over an ordered-lowered graph with no probe
    /// attached.
    ///
    /// # Example
    ///
    /// ```
    /// use tyr_dfg::lower::lower_ordered;
    /// use tyr_ir::build::ProgramBuilder;
    /// use tyr_ir::MemoryImage;
    /// use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
    ///
    /// let mut pb = ProgramBuilder::new();
    /// let mut f = pb.func("main", 1);
    /// let x = f.param(0);
    /// let y = f.mul(x, 3);
    /// let p = pb.finish(f, [y]);
    ///
    /// let dfg = lower_ordered(&p).unwrap();
    /// let cfg = OrderedConfig { args: vec![7], ..OrderedConfig::default() };
    /// let r = OrderedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
    /// assert_eq!(r.returns, vec![21]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a non-source node has no wired input (it would fire every
    /// cycle forever).
    pub fn new(dfg: &'a Dfg, mem: MemoryImage, cfg: OrderedConfig) -> Self {
        OrderedEngine::with_probe(dfg, mem, cfg, NoProbe)
    }
}

impl<'a, P: Probe> OrderedEngine<'a, P> {
    /// Builds an engine that reports events to `probe` as it runs.
    ///
    /// # Panics
    ///
    /// Panics if a non-source node has no wired input (it would fire every
    /// cycle forever).
    pub fn with_probe(dfg: &'a Dfg, mem: MemoryImage, cfg: OrderedConfig, mut probe: P) -> Self {
        if P::ENABLED {
            for (i, b) in dfg.blocks.iter().enumerate() {
                probe.declare_block(i as u32, &b.name);
            }
            for (i, n) in dfg.nodes.iter().enumerate() {
                probe.declare_node(i as u32, &n.label, n.block.0);
            }
        }
        for n in &dfg.nodes {
            assert!(
                matches!(n.kind, NodeKind::Source)
                    || n.ins.iter().any(|i| matches!(i, InKind::Wire)),
                "node '{}' has no wired inputs",
                n.label
            );
        }
        let mut live = 0;
        let fifos: Vec<Vec<VecDeque<Value>>> = dfg
            .nodes
            .iter()
            .map(|n| {
                let mut qs: Vec<VecDeque<Value>> = n.ins.iter().map(|_| VecDeque::new()).collect();
                if let NodeKind::CMerge { initial_ctl } = &n.kind {
                    for &t in initial_ctl {
                        qs[0].push_back(t);
                        live += 1;
                    }
                }
                qs
            })
            .collect();
        let capacity = cfg.capacity();
        let caps: Vec<Vec<usize>> = dfg
            .nodes
            .iter()
            .enumerate()
            .map(|(ni, n)| (0..n.ins.len()).map(|p| capacity.of(ni as u32, p as u16)).collect())
            .collect();
        let faults = cfg.faults.as_ref().map(FaultState::new);
        let dog = cfg.watchdog.arm();
        let cache = cfg.mem.build();
        OrderedEngine {
            dfg,
            mem,
            cfg,
            caps,
            fifos,
            source_fired: false,
            delayed: vec![VecDeque::new(); dfg.len()],
            delayed_count: 0,
            live,
            fired_total: 0,
            cycle: 0,
            skipped: 0,
            mem_loads: 0,
            mem_stores: 0,
            cache,
            trace: Trace::new(),
            ipc: IpcHistogram::new(),
            returns: None,
            faults,
            dog,
            probe,
            stall_state: if P::ENABLED { vec![None; dfg.len()] } else { Vec::new() },
        }
    }

    /// Simulates the memory model for one access and returns its latency
    /// in cycles (emitting a `MemMiss` probe event on L1 misses). Under
    /// ideal memory this is the fixed configured latency.
    fn mem_access(&mut self, node: u32, addr: Value, write: bool) -> u64 {
        match self.cache.as_mut() {
            Some(c) => {
                let acc = c.access(self.cycle, addr, write);
                if P::ENABLED && acc.is_miss() {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::MemMiss { node, addr, l2: acc.level == HitLevel::Mem },
                    );
                }
                acc.complete - self.cycle
            }
            None => self.cfg.mem.ideal_latency(),
        }
    }

    fn outputs_have_space(&self, idx: usize) -> bool {
        self.dfg.nodes[idx].outs.iter().all(|targets| {
            targets.iter().all(|t| {
                self.fifos[t.node.0 as usize][t.port as usize].len()
                    < self.caps[t.node.0 as usize][t.port as usize]
            })
        })
    }

    /// Describes why each stuck node is stuck, for the deadlock outcome:
    /// either starved (some wired input FIFO empty) or back-pressured (a
    /// full downstream FIFO, named with its capacity). Only nodes actually
    /// holding tokens are listed — they are the wavefront of the wedge.
    fn stall_witness(&self) -> Vec<String> {
        const MAX_LINES: usize = 12;
        let mut out = Vec::new();
        for idx in 0..self.dfg.len() {
            let n = &self.dfg.nodes[idx];
            let held: usize = self.fifos[idx].iter().map(|q| q.len()).sum();
            if held == 0 || matches!(n.kind, NodeKind::Source) {
                continue;
            }
            let starved =
                n.ins.iter().enumerate().find(|(p, kind)| {
                    matches!(kind, InKind::Wire) && self.fifos[idx][*p].is_empty()
                });
            let reason = if let Some((p, _)) = starved {
                format!("starved on i{p}")
            } else if let Some(t) = n
                .outs
                .iter()
                .flatten()
                .find(|t| !self.outputs_have_space_at(t.node.0 as usize, t.port as usize))
            {
                let (tn, tp) = (t.node.0 as usize, t.port as usize);
                format!(
                    "back-pressured: {}.i{} full ({}/{})",
                    self.dfg.nodes[tn].label,
                    tp,
                    self.fifos[tn][tp].len(),
                    self.caps[tn][tp],
                )
            } else {
                // e.g. a CMerge whose selected side is empty.
                "not fireable".to_string()
            };
            if out.len() == MAX_LINES {
                out.push("…".to_string());
                break;
            }
            out.push(format!("{} holds {held} token(s), {reason}", n.label));
        }
        out
    }

    fn outputs_have_space_at(&self, node: usize, port: usize) -> bool {
        self.fifos[node][port].len() < self.caps[node][port]
    }

    /// Whether `idx` could fire if its output FIFOs had room — i.e. it is
    /// blocked *only* by back-pressure. At quiescence this is a wedge, not
    /// a normal end state: nothing will ever fire again, so the full
    /// downstream FIFO can never drain and the held tokens are lost. (A
    /// merely *starved* node at quiescence is normal — the loops' final
    /// control tokens always end up starved.)
    fn back_pressured(&self, idx: usize) -> bool {
        let n = &self.dfg.nodes[idx];
        match &n.kind {
            NodeKind::Source => !self.source_fired && !self.outputs_have_space(idx),
            NodeKind::Sink => false,
            NodeKind::CMerge { .. } => {
                let Some(&ctl) = self.fifos[idx][0].front() else { return false };
                let side = if ctl == 0 { 1 } else { 2 };
                let side_ok = match n.ins[side] {
                    InKind::Imm(_) => true,
                    InKind::Wire => !self.fifos[idx][side].is_empty(),
                };
                side_ok && !self.outputs_have_space(idx)
            }
            _ => self.wired_inputs_ready(idx) && !self.outputs_have_space(idx),
        }
    }

    /// Re-derives every node's stall reason against post-fire state and
    /// emits `StallBegin`/`StallEnd` on transitions. A node holding tokens
    /// but not fireable is either back-pressured (a full downstream FIFO)
    /// or waiting on a partial input match (a starved FIFO); a node that
    /// can fire next cycle is not stalled. Ordered graphs are untagged, so
    /// stall intervals use tag 0.
    fn scan_stalls(&mut self) {
        for idx in 0..self.dfg.len() {
            if matches!(self.dfg.nodes[idx].kind, NodeKind::Source | NodeKind::Sink) {
                continue;
            }
            let held: usize = self.fifos[idx].iter().map(|q| q.len()).sum();
            let now = if held == 0 || self.is_ready(idx) {
                None
            } else if self.back_pressured(idx) {
                Some(StallReason::BackPressure)
            } else {
                Some(StallReason::PartialMatch)
            };
            if now == self.stall_state[idx] {
                continue;
            }
            let node = idx as u32;
            match now {
                // A Begin on an already-open (node, tag) key switches the
                // reason in the sinks; no explicit End needed first.
                Some(reason) => {
                    self.probe.event(self.cycle, ProbeEvent::StallBegin { node, tag: 0, reason });
                }
                None => self.probe.event(self.cycle, ProbeEvent::StallEnd { node, tag: 0 }),
            }
            self.stall_state[idx] = now;
        }
    }

    fn wired_inputs_ready(&self, idx: usize) -> bool {
        self.dfg.nodes[idx].ins.iter().enumerate().all(|(p, kind)| match kind {
            InKind::Imm(_) => true,
            InKind::Wire => !self.fifos[idx][p].is_empty(),
        })
    }

    fn is_ready(&self, idx: usize) -> bool {
        let n = &self.dfg.nodes[idx];
        match &n.kind {
            NodeKind::Source => !self.source_fired && self.outputs_have_space(idx),
            NodeKind::Sink => self.returns.is_none() && self.wired_inputs_ready(idx),
            NodeKind::CMerge { .. } => {
                let Some(&ctl) = self.fifos[idx][0].front() else { return false };
                let side = if ctl == 0 { 1 } else { 2 };
                let side_ok = match n.ins[side] {
                    InKind::Imm(_) => true,
                    InKind::Wire => !self.fifos[idx][side].is_empty(),
                };
                side_ok && self.outputs_have_space(idx)
            }
            _ => self.wired_inputs_ready(idx) && self.outputs_have_space(idx),
        }
    }

    fn pop(&mut self, idx: usize, port: usize) -> Value {
        match self.dfg.nodes[idx].ins[port] {
            InKind::Imm(v) => v,
            InKind::Wire => {
                self.live -= 1;
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::TokenConsumed { node: idx as u32, count: 1 },
                    );
                }
                self.fifos[idx][port].pop_front().expect("readiness checked")
            }
        }
    }

    fn push_outputs(&mut self, idx: usize, port: usize, val: Value) {
        // Copy the graph reference out of `self` so the target list is
        // iterated in place — the per-fire `outs[port].clone()` this
        // replaces was a hot-path allocation.
        let dfg = self.dfg;
        for &t in &dfg.nodes[idx].outs[port] {
            let mut val = val;
            if let Some(fs) = self.faults.as_mut() {
                let tn = t.node.0;
                if fs.strike(self.cycle, FaultKind::TokenDrop) {
                    fs.record(
                        self.cycle,
                        tn,
                        FaultKind::TokenDrop,
                        format!(
                            "dropped token (value {val}) bound for '{}' port {}",
                            dfg.nodes[tn as usize].label, t.port
                        ),
                    );
                    if P::ENABLED {
                        self.probe.event(
                            self.cycle,
                            ProbeEvent::FaultInjected { node: tn, kind: FaultKind::TokenDrop },
                        );
                    }
                    continue;
                }
                if fs.strike(self.cycle, FaultKind::TokenDup) {
                    fs.record(
                        self.cycle,
                        tn,
                        FaultKind::TokenDup,
                        format!(
                            "duplicated token (value {val}) bound for '{}' port {}",
                            dfg.nodes[tn as usize].label, t.port
                        ),
                    );
                    if P::ENABLED {
                        self.probe.event(
                            self.cycle,
                            ProbeEvent::FaultInjected { node: tn, kind: FaultKind::TokenDup },
                        );
                        self.probe.event(self.cycle, ProbeEvent::TokenProduced { node: tn });
                    }
                    // The extra token skews the edge's FIFO alignment for
                    // the rest of the run: a wrong answer or a wedge.
                    self.fifos[tn as usize][t.port as usize].push_back(val);
                    self.live += 1;
                }
                if fs.strike(self.cycle, FaultKind::TokenCorrupt) {
                    let mask = fs.mask();
                    let before = val;
                    val ^= mask;
                    fs.record(
                        self.cycle,
                        tn,
                        FaultKind::TokenCorrupt,
                        format!(
                            "corrupted token for '{}' port {}: {before} -> {val}",
                            dfg.nodes[tn as usize].label, t.port
                        ),
                    );
                    if P::ENABLED {
                        self.probe.event(
                            self.cycle,
                            ProbeEvent::FaultInjected { node: tn, kind: FaultKind::TokenCorrupt },
                        );
                    }
                }
            }
            if P::ENABLED {
                self.probe.event(self.cycle, ProbeEvent::TokenProduced { node: t.node.0 });
            }
            self.fifos[t.node.0 as usize][t.port as usize].push_back(val);
            self.live += 1;
        }
    }

    fn fire(&mut self, idx: usize) -> Result<(), SimError> {
        // Match the node kind by reference (`kind.clone()` here used to
        // heap-allocate for every CMerge fire, whose kind owns a Vec).
        let dfg = self.dfg;
        match &dfg.nodes[idx].kind {
            NodeKind::Alu(op) => {
                let a = self.pop(idx, 0);
                let b = if self.dfg.nodes[idx].ins.len() > 1 { self.pop(idx, 1) } else { 0 };
                let v = op.eval(a, b)?;
                self.push_outputs(idx, 0, v);
            }
            NodeKind::Select => {
                let c = self.pop(idx, 0);
                let t = self.pop(idx, 1);
                let f = self.pop(idx, 2);
                self.push_outputs(idx, 0, if c != 0 { t } else { f });
            }
            NodeKind::Load => {
                let addr = self.pop(idx, 0);
                if self.dfg.nodes[idx].ins.len() > 1 {
                    self.pop(idx, 1); // trigger
                }
                let mut v = self.mem.load(addr)?;
                self.mem_loads += 1;
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::MemAccess { node: idx as u32, addr, write: false },
                    );
                }
                let mut extra = 0u64;
                if let Some(fs) = self.faults.as_mut() {
                    if fs.strike(self.cycle, FaultKind::MemFlip) {
                        let mask = fs.mask();
                        let before = v;
                        v ^= mask;
                        fs.record(
                            self.cycle,
                            idx as u32,
                            FaultKind::MemFlip,
                            format!(
                                "flipped load response at '{}': {before} -> {v}",
                                dfg.nodes[idx].label
                            ),
                        );
                        if P::ENABLED {
                            self.probe.event(
                                self.cycle,
                                ProbeEvent::FaultInjected {
                                    node: idx as u32,
                                    kind: FaultKind::MemFlip,
                                },
                            );
                        }
                    }
                    if fs.strike(self.cycle, FaultKind::MemDelay) {
                        extra = fs.extra_delay();
                        fs.record(
                            self.cycle,
                            idx as u32,
                            FaultKind::MemDelay,
                            format!(
                                "delayed memory response at '{}' by {extra} extra cycle(s)",
                                dfg.nodes[idx].label
                            ),
                        );
                        if P::ENABLED {
                            self.probe.event(
                                self.cycle,
                                ProbeEvent::FaultInjected {
                                    node: idx as u32,
                                    kind: FaultKind::MemDelay,
                                },
                            );
                        }
                    }
                }
                let lat = self.mem_access(idx as u32, addr, false);
                if lat <= 1 && extra == 0 {
                    self.push_outputs(idx, 0, v);
                } else {
                    self.live += 1; // in flight in the memory system
                    let release = self.cycle + lat.max(1) + extra;
                    self.delayed[idx].push_back((release, v));
                    self.delayed_count += 1;
                }
            }
            NodeKind::Store | NodeKind::StoreAdd => {
                let addr = self.pop(idx, 0);
                let v = self.pop(idx, 1);
                if self.dfg.nodes[idx].ins.len() > 2 {
                    self.pop(idx, 2); // trigger
                }
                if matches!(dfg.nodes[idx].kind, NodeKind::Store) {
                    self.mem.store(addr, v)?;
                } else {
                    self.mem.fetch_add(addr, v)?;
                }
                self.mem_stores += 1;
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::MemAccess { node: idx as u32, addr, write: true },
                    );
                }
                // Stores commit instantly (no completion token) but still
                // occupy the cache and an MSHR.
                let _ = self.mem_access(idx as u32, addr, true);
            }
            NodeKind::Steer => {
                let d = self.pop(idx, 0);
                let v = self.pop(idx, 1);
                self.push_outputs(idx, if d != 0 { 0 } else { 1 }, v);
            }
            NodeKind::CMerge { .. } => {
                let ctl = self.pop(idx, 0);
                let side = if ctl == 0 { 1 } else { 2 };
                let v = self.pop(idx, side);
                self.push_outputs(idx, 0, v);
            }
            NodeKind::Const(c) => {
                let c = *c;
                self.pop(idx, 0);
                self.push_outputs(idx, 0, c);
            }
            NodeKind::Source => {
                let n_outs = self.dfg.nodes[idx].outs.len();
                for k in 0..n_outs - 1 {
                    let v = self.cfg.args.get(k).copied().unwrap_or(0);
                    self.push_outputs(idx, k, v);
                }
                self.push_outputs(idx, n_outs - 1, 0);
                self.source_fired = true;
            }
            NodeKind::Sink => {
                let n_ins = self.dfg.nodes[idx].ins.len();
                let vals: Vec<Value> = (0..n_ins).map(|p| self.pop(idx, p)).collect();
                self.returns = Some(vals[..self.dfg.n_returns].to_vec());
            }
            other => unreachable!("{} in an ordered graph", other.mnemonic()),
        }
        Ok(())
    }

    /// Runs the program.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on simulated-program faults or the cycle
    /// limit. A stall with no fireable instruction before completion is
    /// reported as [`Outcome::Deadlock`].
    pub fn run(mut self) -> Result<RunResult, SimError> {
        loop {
            if let Some(cause) = self.dog.check(self.cycle) {
                let log = self.faults.take().map(FaultState::into_log).unwrap_or_default();
                return Ok(RunResult::new(
                    Outcome::TimedOut { cycle: self.cycle, live_tokens: self.live, cause },
                    self.trace,
                    self.ipc,
                    self.mem,
                    Vec::new(),
                )
                .with_mem_counts(self.mem_loads, self.mem_stores)
                .with_mem_stats(self.cache.as_ref().map(CacheSim::stats))
                .with_faults(log)
                .with_skipped(self.skipped));
            }
            // Snapshot readiness against start-of-cycle state.
            let mut ready: Vec<usize> = Vec::new();
            for idx in 0..self.dfg.len() {
                if ready.len() >= self.cfg.issue_width {
                    break;
                }
                if self.is_ready(idx) {
                    if let Some(fs) = self.faults.as_mut() {
                        let fresh = fs.stuck_node().is_none();
                        if fs.is_stuck(self.cycle, idx as u32) {
                            if fresh {
                                fs.record(
                                    self.cycle,
                                    idx as u32,
                                    FaultKind::NodeStick,
                                    format!(
                                        "node '{}' wedged; it never fires again",
                                        self.dfg.nodes[idx].label
                                    ),
                                );
                                if P::ENABLED {
                                    self.probe.event(
                                        self.cycle,
                                        ProbeEvent::FaultInjected {
                                            node: idx as u32,
                                            kind: FaultKind::NodeStick,
                                        },
                                    );
                                }
                            }
                            continue;
                        }
                    }
                    ready.push(idx);
                }
            }
            let fired = ready.len() as u64;
            for idx in ready {
                self.fire(idx)?;
                if P::ENABLED {
                    self.probe.event(self.cycle, ProbeEvent::NodeFired { node: idx as u32 });
                }
            }
            // Release matured memory results — per load node, in issue
            // order, and only into FIFOs with space: the memory system
            // honors back-pressure, otherwise a late delivery could consume
            // the flow-control bubble a loop cycle needs and wedge the
            // machine.
            let mut released = 0usize;
            if self.delayed_count > 0 {
                for idx in 0..self.dfg.len() {
                    while let Some(&(r, _)) = self.delayed[idx].front() {
                        if r > self.cycle + 1 {
                            break;
                        }
                        let has_space = self.dfg.nodes[idx].outs[0].iter().all(|t| {
                            self.fifos[t.node.0 as usize][t.port as usize].len()
                                < self.caps[t.node.0 as usize][t.port as usize]
                        });
                        if !has_space {
                            break;
                        }
                        let (_, v) = self.delayed[idx].pop_front().expect("checked");
                        self.delayed_count -= 1;
                        released += 1;
                        self.live -= 1; // re-counted by push_outputs
                        self.push_outputs(idx, 0, v);
                    }
                }
            }
            if P::ENABLED {
                self.scan_stalls();
            }
            self.cycle += 1;
            self.fired_total += fired;
            self.trace.record(self.live);
            self.ipc.record(fired);

            // Quiescent only if nothing fired AND the memory system neither
            // holds nor delivered anything this cycle (a release re-enables
            // consumers).
            if fired == 0 && released == 0 && self.delayed_count == 0 {
                // Set TYR_ORDERED_DEBUG=1 to dump the tokens left in the
                // machine at quiescence (normal runs leave only the loops'
                // final control tokens).
                if std::env::var_os("TYR_ORDERED_DEBUG").is_some() {
                    for (i, qs) in self.fifos.iter().enumerate() {
                        for (p, q) in qs.iter().enumerate() {
                            if !q.is_empty() {
                                eprintln!(
                                    "[ordered] leftover: {} .i{p} holds {:?}",
                                    self.dfg.nodes[i].label, q
                                );
                            }
                        }
                    }
                }
                // Quiescent. The sink's return tokens may arrive long before
                // the last stores drain, so completion is only declared once
                // nothing can fire anymore — and only if no node is wedged
                // behind a full FIFO. A return value independent of a loop
                // (e.g. a kernel whose real output is memory) must not mask
                // a back-pressure deadlock that wedged the loop's stores.
                let wedged = (0..self.dfg.len()).any(|i| self.back_pressured(i));
                let log = self.faults.take().map(FaultState::into_log).unwrap_or_default();
                return if let Some(returns) = self.returns.take().filter(|_| !wedged) {
                    Ok(RunResult::new(
                        Outcome::Completed { cycles: self.cycle, dyn_instrs: self.fired_total },
                        self.trace,
                        self.ipc,
                        self.mem,
                        returns,
                    )
                    .with_mem_counts(self.mem_loads, self.mem_stores)
                    .with_mem_stats(self.cache.as_ref().map(CacheSim::stats))
                    .with_faults(log)
                    .with_skipped(self.skipped))
                } else {
                    let witness = self.stall_witness();
                    Ok(RunResult::new(
                        Outcome::Deadlock {
                            cycle: self.cycle,
                            live_tokens: self.live,
                            pending_allocates: witness,
                        },
                        self.trace,
                        self.ipc,
                        self.mem,
                        Vec::new(),
                    )
                    .with_mem_counts(self.mem_loads, self.mem_stores)
                    .with_mem_stats(self.cache.as_ref().map(CacheSim::stats))
                    .with_faults(log)
                    .with_skipped(self.skipped))
                };
            }
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
            }
            // Event-driven fast path: a cycle that fired nothing and
            // released nothing leaves the FIFOs, readiness, and stall edges
            // exactly as they were — the machine is frozen until the
            // earliest in-flight memory release matures, so the clock can
            // advance straight to the cycle before that release. A
            // matured-but-back-pressured head keeps the minimum release at
            // or below the current cycle, so blocked deliveries (which
            // ticked runs retry every cycle) are never jumped over. The
            // target is clamped so the cycle limit and the watchdog's cycle
            // budget trip at exactly their ticked cycles.
            if self.cfg.event_driven && fired == 0 && released == 0 && self.delayed_count > 0 {
                let next = self
                    .delayed
                    .iter()
                    .filter_map(|q| q.front().map(|&(r, _)| r))
                    .min()
                    .expect("delayed_count > 0");
                // Never leap past an outstanding MSHR fill (it frees an MSHR
                // entry, releasing back-pressure on future misses).
                let fill =
                    self.cache.as_mut().and_then(|c| c.next_fill(self.cycle)).unwrap_or(u64::MAX);
                let target = (next - 1)
                    .min(fill)
                    .min(self.cfg.max_cycles)
                    .min(self.dog.budget().unwrap_or(u64::MAX));
                if target > self.cycle {
                    let n = target - self.cycle;
                    self.trace.record_n(self.live, n);
                    self.ipc.record_n(0, n);
                    self.skipped += n;
                    self.cycle = target;
                    if self.cycle >= self.cfg.max_cycles {
                        return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
                    }
                    // A jump can leap over every slow-check boundary in the
                    // gap; poll the host limits once per resume. The cycle
                    // budget stays with the loop-top check so its attributed
                    // cycle is deterministic.
                    if let Some(cause) = self.dog.poll_host() {
                        let log = self.faults.take().map(FaultState::into_log).unwrap_or_default();
                        return Ok(RunResult::new(
                            Outcome::TimedOut { cycle: self.cycle, live_tokens: self.live, cause },
                            self.trace,
                            self.ipc,
                            self.mem,
                            Vec::new(),
                        )
                        .with_mem_counts(self.mem_loads, self.mem_stores)
                        .with_mem_stats(self.cache.as_ref().map(CacheSim::stats))
                        .with_faults(log)
                        .with_skipped(self.skipped));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_dfg::lower::lower_ordered;
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::{interp, Program};

    fn sum_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, nn] = f.begin_loop("sum", [0.into(), 0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc2, nn], [acc]);
        pb.finish(f, [total])
    }

    fn run(p: &Program, arg: i64) -> RunResult {
        let dfg = lower_ordered(p).unwrap();
        let cfg = OrderedConfig { args: vec![arg], ..OrderedConfig::default() };
        OrderedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap()
    }

    #[test]
    fn computes_sum() {
        let r = run(&sum_program(), 100);
        assert!(r.is_complete(), "{:?}", r.outcome);
        assert_eq!(r.returns, vec![4950]);
    }

    #[test]
    fn zero_trip_loop() {
        let r = run(&sum_program(), 0);
        assert!(r.is_complete(), "{:?}", r.outcome);
        assert_eq!(r.returns, vec![0]);
    }

    #[test]
    fn nested_loops_match_oracle() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("outer", [0, 0]);
        let c = f.lt(i, 9);
        f.begin_body(c);
        let [j, ia, ii] = f.begin_loop("inner", [0.into(), acc, i]);
        let cj = f.lt(j, ii);
        f.begin_body(cj);
        let prod = f.mul(ii, j);
        let ia2 = f.add(ia, prod);
        let j2 = f.add(j, 1);
        let [acc_out] = f.end_loop([j2, ia2, ii], [ia]);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc_out], [acc]);
        let p = pb.finish(f, [total]);

        let mut mem = MemoryImage::new();
        let oracle = interp::run(&p, &mut mem, &[]).unwrap();
        let dfg = lower_ordered(&p).unwrap();
        for q in [2, 4, 16] {
            let cfg = OrderedConfig { queue_depth: q, ..OrderedConfig::default() };
            let r = OrderedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
            assert!(r.is_complete(), "q={q}: {:?}", r.outcome);
            assert_eq!(r.returns, oracle.returns, "q={q}");
        }
    }

    #[test]
    fn queue_depth_bounds_state() {
        let p = sum_program();
        let dfg = lower_ordered(&p).unwrap();
        let shallow = OrderedEngine::new(
            &dfg,
            MemoryImage::new(),
            OrderedConfig { queue_depth: 2, args: vec![200], ..OrderedConfig::default() },
        )
        .run()
        .unwrap();
        let deep = OrderedEngine::new(
            &dfg,
            MemoryImage::new(),
            OrderedConfig { queue_depth: 64, args: vec![200], ..OrderedConfig::default() },
        )
        .run()
        .unwrap();
        assert_eq!(shallow.returns, deep.returns);
        assert!(shallow.peak_live() <= deep.peak_live());
    }

    #[test]
    fn one_fire_per_node_per_cycle_limits_ipc() {
        // Ordered IPC can never exceed the static node count.
        let p = sum_program();
        let dfg = lower_ordered(&p).unwrap();
        let r = run(&p, 50);
        assert!(r.ipc.max_value() <= dfg.len() as u64);
    }
}

#[cfg(test)]
mod stall_tests {
    use super::*;
    use tyr_dfg::{GraphBuilder, InKind, NodeKind, PortRef};

    #[test]
    fn starved_graph_reports_deadlock() {
        // A CMerge with an empty control FIFO can never fire: the engine
        // must report a stall (Outcome::Deadlock), not hang.
        let mut g = GraphBuilder::new();
        let b = g.add_block("main", None, false);
        let src = g.add_node(NodeKind::Source, b, vec![], 2, "src");
        let cm = g.add_node(
            NodeKind::CMerge { initial_ctl: vec![] },
            b,
            vec![InKind::Wire, InKind::Wire, InKind::Wire],
            1,
            "cm",
        );
        let sink = g.add_node(NodeKind::Sink, b, vec![InKind::Wire], 0, "sink");
        g.connect(src, 0, PortRef { node: cm, port: 1 });
        g.connect(src, 1, PortRef { node: cm, port: 2 });
        g.connect(cm, 0, PortRef { node: sink, port: 0 });
        let dfg = g.finish(src, sink, 1);
        let r =
            OrderedEngine::new(&dfg, MemoryImage::new(), OrderedConfig::default()).run().unwrap();
        match r.outcome {
            Outcome::Deadlock { live_tokens, .. } => assert_eq!(live_tokens, 2),
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn capacity_override_resolves_per_edge() {
        let caps = ChannelCapacity::uniform(4).with_override(7, 0, 0).with_override(7, 1, 9);
        assert_eq!(caps.of(3, 0), 4);
        assert_eq!(caps.of(7, 0), 0);
        assert_eq!(caps.of(7, 1), 9);
        let cfg = OrderedConfig {
            queue_depth: 4,
            depth_overrides: vec![((7, 0), 0)],
            ..OrderedConfig::default()
        };
        assert_eq!(cfg.capacity().of(7, 0), 0);
        assert_eq!(cfg.capacity().of(7, 1), 4);
    }

    #[test]
    fn zero_capacity_on_a_loop_control_edge_deadlocks_with_a_witness() {
        // Wedge the loop: the comparison can never forward its decision into
        // the carry CMerge's control FIFO, so after the primed first
        // iteration nothing can fire. The outcome must be a deadlock whose
        // witness names the back-pressured edge.
        use tyr_dfg::lower::lower_ordered;
        use tyr_ir::build::ProgramBuilder;
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("l", [0]);
        let c = f.lt(i, 10);
        f.begin_body(c);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2], [i]);
        let p = pb.finish(f, [out]);
        let dfg = lower_ordered(&p).unwrap();
        let cm = dfg
            .nodes
            .iter()
            .position(
                |n| matches!(&n.kind, NodeKind::CMerge { initial_ctl } if !initial_ctl.is_empty()),
            )
            .expect("a primed loop-carry CMerge") as u32;

        let cfg = OrderedConfig { depth_overrides: vec![((cm, 0), 0)], ..OrderedConfig::default() };
        let r = OrderedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap();
        match r.outcome {
            Outcome::Deadlock { ref pending_allocates, .. } => {
                assert!(
                    pending_allocates.iter().any(|s| s.contains("back-pressured")),
                    "witness must name the full edge: {pending_allocates:?}"
                );
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        // The same graph with the override removed completes.
        let r =
            OrderedEngine::new(&dfg, MemoryImage::new(), OrderedConfig::default()).run().unwrap();
        assert!(r.is_complete());
    }

    #[test]
    fn cycle_limit_is_enforced() {
        // An endless producer/consumer ring would run forever; the limit
        // must stop it. Build `while(i < huge)` via the real lowering.
        use tyr_dfg::lower::lower_ordered;
        use tyr_ir::build::ProgramBuilder;
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("long", [0]);
        let c = f.lt(i, 1_000_000_000);
        f.begin_body(c);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2], [i]);
        let p = pb.finish(f, [out]);
        let dfg = lower_ordered(&p).unwrap();
        let cfg = OrderedConfig { max_cycles: 1000, ..OrderedConfig::default() };
        let err = OrderedEngine::new(&dfg, MemoryImage::new(), cfg).run().unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 1000 }));
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use tyr_dfg::lower::lower_ordered;
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::interp;

    #[test]
    fn latency_changes_timing_not_results() {
        // A load-bearing loop (literally): results must be identical across
        // memory latencies, including latencies far above the FIFO depth.
        let mut mem = MemoryImage::new();
        let xs = mem.alloc_init("xs", &(0..40).map(|i| i * 2 + 1).collect::<Vec<_>>());
        let out = mem.alloc("out", 40);
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("l", [0]);
        let c = f.lt(i, 40);
        f.begin_body(c);
        let addr = f.add(i, xs.base_const());
        let v = f.load(addr);
        let scaled = f.mul(v, 3);
        let oaddr = f.add(i, out.base_const());
        f.store(oaddr, scaled);
        let i2 = f.add(i, 1);
        f.end_loop([i2], tyr_ir::NO_OPERANDS);
        let p = pb.finish(f, [tyr_ir::Operand::Const(0)]);

        let mut oracle_mem = mem.clone();
        interp::run(&p, &mut oracle_mem, &[]).unwrap();
        let dfg = lower_ordered(&p).unwrap();
        let mut prev_cycles = 0;
        for lat in [1u64, 2, 7, 32] {
            let cfg = OrderedConfig { mem: MemConfig::ideal(lat), ..OrderedConfig::default() };
            let r = OrderedEngine::new(&dfg, mem.clone(), cfg).run().unwrap();
            assert!(r.is_complete(), "lat={lat}: {:?}", r.outcome);
            assert_eq!(r.memory().slice(out), oracle_mem.slice(out), "lat={lat}");
            assert!(r.cycles() >= prev_cycles, "latency should not speed things up");
            prev_cycles = r.cycles();
        }
    }
}

#[cfg(test)]
mod event_core_tests {
    //! The event-driven fast path must be bit-identical to the ticked loop:
    //! same outcome, traces, histograms, memory, and watchdog trip cycles,
    //! differing only in `skipped_cycles` and wall-clock time.

    use super::*;
    use tyr_dfg::lower::lower_ordered;
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::Program;

    /// Load-to-store loop: shallow FIFOs plus long memory latency freeze
    /// the machine for most of every iteration.
    fn load_store_loop() -> (Program, MemoryImage) {
        let mut mem = MemoryImage::new();
        let xs = mem.alloc_init("xs", &(0..24).map(|i| i * 2 + 1).collect::<Vec<_>>());
        let out = mem.alloc("out", 24);
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("l", [0]);
        let c = f.lt(i, 24);
        f.begin_body(c);
        let addr = f.add(i, xs.base_const());
        let v = f.load(addr);
        let scaled = f.mul(v, 3);
        let oaddr = f.add(i, out.base_const());
        f.store(oaddr, scaled);
        let i2 = f.add(i, 1);
        f.end_loop([i2], tyr_ir::NO_OPERANDS);
        (pb.finish(f, [tyr_ir::Operand::Const(0)]), mem)
    }

    fn run_mode(
        p: &Program,
        mem: &MemoryImage,
        lat: u64,
        event_driven: bool,
        watchdog: Watchdog,
    ) -> RunResult {
        let dfg = lower_ordered(p).unwrap();
        let cfg = OrderedConfig {
            queue_depth: 2,
            mem: MemConfig::ideal(lat),
            event_driven,
            watchdog,
            ..OrderedConfig::default()
        };
        OrderedEngine::new(&dfg, mem.clone(), cfg).run().unwrap()
    }

    fn assert_identical(event: &RunResult, ticked: &RunResult, what: &str) {
        assert_eq!(event.outcome, ticked.outcome, "{what}: outcome");
        assert_eq!(event.live, ticked.live, "{what}: live trace");
        assert_eq!(event.ipc, ticked.ipc, "{what}: ipc histogram");
        assert_eq!(event.returns, ticked.returns, "{what}: returns");
        assert_eq!(event.mem_loads, ticked.mem_loads, "{what}: loads");
        assert_eq!(event.mem_stores, ticked.mem_stores, "{what}: stores");
        assert_eq!(event.memory(), ticked.memory(), "{what}: memory");
        assert_eq!(ticked.skipped_cycles, 0, "{what}: ticked runs never skip");
    }

    #[test]
    fn event_and_ticked_runs_are_bit_identical() {
        let (p, mem) = load_store_loop();
        for lat in [2u64, 7, 200] {
            let event = run_mode(&p, &mem, lat, true, Watchdog::none());
            let ticked = run_mode(&p, &mem, lat, false, Watchdog::none());
            let what = format!("lat={lat}");
            assert!(event.is_complete(), "{what}: {:?}", event.outcome);
            assert_identical(&event, &ticked, &what);
            if lat == 200 {
                assert!(
                    event.skipped_cycles > event.cycles() / 2,
                    "{what}: skipped {} of {}",
                    event.skipped_cycles,
                    event.cycles()
                );
            }
        }
    }

    #[test]
    fn cycle_budget_trips_at_the_same_cycle_even_when_jumped_past() {
        let (p, mem) = load_store_loop();
        for budget in [41u64, 137, 513] {
            let dog = Watchdog::none().with_cycle_budget(budget);
            let event = run_mode(&p, &mem, 200, true, dog.clone());
            let ticked = run_mode(&p, &mem, 200, false, dog);
            match event.outcome {
                Outcome::TimedOut { cycle, .. } => {
                    assert_eq!(cycle, budget, "attributed to the exact budget cycle");
                }
                ref other => panic!("budget={budget}: expected a timeout, got {other:?}"),
            }
            assert_identical(&event, &ticked, &format!("budget={budget}"));
            assert_eq!(event.live.cycles(), budget, "one trace record per pre-trip cycle");
        }
    }
}
