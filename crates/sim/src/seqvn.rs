//! Sequential von Neumann engine (Sec. II-C, Fig. 5a).
//!
//! One instruction retires per cycle — the depth-first traversal of the
//! dynamic execution graph. Live state is the number of bound values across
//! the activation stack (registers + spilled locals), which stays tiny:
//! that is exactly the paper's point about vN machines minimizing state at
//! the cost of parallelism.
//!
//! Implemented as instrumentation over the `tyr-ir` reference interpreter,
//! which doubles as the correctness oracle for the dataflow engines.

use tyr_ir::interp::{self, Tracer};
use tyr_ir::{MemoryImage, Program, Value};
use tyr_stats::probe::{NoProbe, Probe, ProbeEvent};
use tyr_stats::{IpcHistogram, Trace};

use crate::cache::{CacheSim, HitLevel, MemConfig};
use crate::result::{Outcome, RunResult, SimError, TimeoutCause};
use crate::watchdog::{Watchdog, WatchdogState};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SeqVnConfig {
    /// Program arguments.
    pub args: Vec<Value>,
    /// Safety limit on retired instructions (= cycles under ideal memory).
    pub max_cycles: u64,
    /// Memory model (default ideal latency 1, which costs nothing beyond
    /// the instruction's own cycle). The serial machine blocks on every
    /// access: a cached model's miss latency is added to the clock as stall
    /// cycles during which nothing retires — the vN baseline has no
    /// parallelism to hide memory behind.
    pub mem: MemConfig,
    /// Run watchdog (see [`crate::watchdog`]). Disarmed by default. One
    /// instruction retires per cycle, so the cycle budget doubles as an
    /// instruction budget; trips end the run as an attributed
    /// [`Outcome::TimedOut`] instead of a [`SimError::CycleLimit`].
    pub watchdog: Watchdog,
}

impl Default for SeqVnConfig {
    fn default() -> Self {
        SeqVnConfig {
            args: Vec::new(),
            max_cycles: 50_000_000_000,
            mem: MemConfig::default(),
            watchdog: Watchdog::none(),
        }
    }
}

/// The sequential von Neumann engine.
pub struct SeqVnEngine<'a, P: Probe = NoProbe> {
    program: &'a Program,
    mem: MemoryImage,
    cfg: SeqVnConfig,
    probe: P,
}

struct VnTracer<P: Probe> {
    trace: Trace,
    ipc: IpcHistogram,
    probe: P,
    cycle: u64,
    live: u64,
    mem_loads: u64,
    mem_stores: u64,
    /// Cache-hierarchy state (`None` under ideal memory, which completes
    /// within the instruction's own cycle).
    cache: Option<CacheSim>,
    /// Memory-stall cycles owed by the access of the instruction about to
    /// retire (applied by `on_instr` right after its one compute cycle).
    stall_pending: u64,
    /// Total memory-stall cycles added to the clock.
    stalls: u64,
    dog: WatchdogState,
    tripped: Option<TimeoutCause>,
}

impl<P: Probe> Tracer for VnTracer<P> {
    fn on_instr(&mut self, live: u64) {
        self.cycle += 1;
        self.live = live;
        if P::ENABLED {
            self.probe.event(self.cycle, ProbeEvent::NodeFired { node: 0 });
        }
        self.trace.record(live);
        self.ipc.record(1);
        if self.stall_pending > 0 {
            // The serial machine blocks on its access: the miss latency is
            // idle clock with the live state unchanged and nothing retiring.
            let n = self.stall_pending;
            self.stall_pending = 0;
            self.stalls += n;
            self.cycle += n;
            self.trace.record_n(live, n);
            self.ipc.record_n(0, n);
        }
    }

    fn on_mem(&mut self, addr: Value, write: bool) {
        if write {
            self.mem_stores += 1;
        } else {
            self.mem_loads += 1;
        }
        // `on_mem` precedes the instruction's retire, so stamp the access
        // with the cycle that instruction will occupy.
        if P::ENABLED {
            self.probe.event(self.cycle + 1, ProbeEvent::MemAccess { node: 0, addr, write });
        }
        if let Some(c) = self.cache.as_mut() {
            let at = self.cycle + 1;
            let acc = c.access(at, addr, write);
            if P::ENABLED && acc.is_miss() {
                self.probe.event(
                    at,
                    ProbeEvent::MemMiss { node: 0, addr, l2: acc.level == HitLevel::Mem },
                );
            }
            // One cycle is the instruction's own; the rest is stall.
            self.stall_pending += (acc.complete - at).saturating_sub(1);
        }
    }

    fn poll_halt(&mut self) -> bool {
        if let Some(cause) = self.dog.check(self.cycle) {
            self.tripped = Some(cause);
            return true;
        }
        false
    }
}

impl<'a> SeqVnEngine<'a> {
    /// Builds an engine over a structured program with no probe attached.
    ///
    /// # Example
    ///
    /// ```
    /// use tyr_ir::build::ProgramBuilder;
    /// use tyr_ir::MemoryImage;
    /// use tyr_sim::seqvn::{SeqVnConfig, SeqVnEngine};
    ///
    /// let mut pb = ProgramBuilder::new();
    /// let mut f = pb.func("main", 1);
    /// let x = f.param(0);
    /// let y = f.sub(x, 2);
    /// let p = pb.finish(f, [y]);
    ///
    /// let cfg = SeqVnConfig { args: vec![44], ..SeqVnConfig::default() };
    /// let r = SeqVnEngine::new(&p, MemoryImage::new(), cfg).run().unwrap();
    /// assert_eq!(r.returns, vec![42]);
    /// assert_eq!(r.cycles(), r.dyn_instrs(), "one instruction per cycle");
    /// ```
    pub fn new(program: &'a Program, mem: MemoryImage, cfg: SeqVnConfig) -> Self {
        SeqVnEngine::with_probe(program, mem, cfg, NoProbe)
    }
}

impl<'a, P: Probe> SeqVnEngine<'a, P> {
    /// Builds an engine that reports events to `probe` as it runs. The vN
    /// machine has no spatial structure, so every retired instruction is a
    /// fire of the single virtual node 0 (`instr`) in block 0 (`program`),
    /// one per cycle.
    pub fn with_probe(
        program: &'a Program,
        mem: MemoryImage,
        cfg: SeqVnConfig,
        mut probe: P,
    ) -> Self {
        if P::ENABLED {
            probe.declare_block(0, "program");
            probe.declare_node(0, "instr", 0);
        }
        SeqVnEngine { program, mem, cfg, probe }
    }

    /// Runs the program.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Interp`] on interpreter faults and
    /// [`SimError::CycleLimit`] if the instruction budget runs out.
    pub fn run(mut self) -> Result<RunResult, SimError> {
        let mut tracer = VnTracer {
            trace: Trace::new(),
            ipc: IpcHistogram::new(),
            probe: self.probe,
            cycle: 0,
            live: 0,
            mem_loads: 0,
            mem_stores: 0,
            cache: self.cfg.mem.build(),
            stall_pending: 0,
            stalls: 0,
            dog: self.cfg.watchdog.arm(),
            tripped: None,
        };
        let out = match interp::run_traced(
            self.program,
            &mut self.mem,
            &self.cfg.args,
            self.cfg.max_cycles,
            &mut tracer,
        ) {
            Ok(out) => out,
            Err(interp::InterpError::Halted) => {
                let cause = tracer.tripped.take().expect("halt implies a tripped watchdog");
                return Ok(RunResult::new(
                    Outcome::TimedOut { cycle: tracer.cycle, live_tokens: tracer.live, cause },
                    tracer.trace,
                    tracer.ipc,
                    self.mem,
                    Vec::new(),
                )
                .with_mem_counts(tracer.mem_loads, tracer.mem_stores)
                .with_mem_stats(tracer.cache.as_ref().map(CacheSim::stats)));
            }
            Err(interp::InterpError::OutOfFuel) => {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles })
            }
            Err(other) => return Err(SimError::Interp(other.to_string())),
        };
        Ok(RunResult::new(
            Outcome::Completed {
                cycles: out.dyn_instrs + tracer.stalls,
                dyn_instrs: out.dyn_instrs,
            },
            tracer.trace,
            tracer.ipc,
            self.mem,
            out.returns,
        )
        .with_mem_counts(tracer.mem_loads, tracer.mem_stores)
        .with_mem_stats(tracer.cache.as_ref().map(CacheSim::stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::build::ProgramBuilder;

    #[test]
    fn one_ipc_and_tiny_state() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, nn] = f.begin_loop("sum", [0.into(), 0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc2, nn], [acc]);
        let p = pb.finish(f, [total]);

        let cfg = SeqVnConfig { args: vec![500], ..SeqVnConfig::default() };
        let r = SeqVnEngine::new(&p, MemoryImage::new(), cfg).run().unwrap();
        assert!(r.is_complete());
        assert_eq!(r.returns, vec![(0..500).sum::<i64>()]);
        assert_eq!(r.cycles(), r.dyn_instrs());
        assert_eq!(r.ipc.max_value(), 1);
        assert!(r.peak_live() < 16, "vN live state should be register-like");
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i] = f.begin_loop("long", [0]);
        let c = f.lt(i, 1_000_000);
        f.begin_body(c);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2], [i]);
        let p = pb.finish(f, [out]);
        let cfg = SeqVnConfig { max_cycles: 100, ..SeqVnConfig::default() };
        let err = SeqVnEngine::new(&p, MemoryImage::new(), cfg).run().unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 100 }));
    }
}
