//! A dependency-free FxHash64-style hasher for the engines' hot-path maps.
//!
//! SipHash — `std`'s default, chosen for HashDoS resistance — costs the
//! tagged engine dearly on the `Store::Sparse` path: the unbounded-tag
//! policies hash *every token delivery* (`set`/`present`/`clear` on a
//! `HashMap<u64, SparseSlot>`), so the hasher sits squarely on the
//! simulator's inner loop. Simulation keys are small integers produced by
//! the engine itself (tag counters), never attacker-controlled, so the
//! DoS-resistance tax buys nothing here.
//!
//! This module is the classic multiply-xor design used by rustc (`FxHash`):
//! one wrapping multiply and a rotate per word. The workspace builds
//! offline with no external crates (DESIGN.md §8), so it is written out
//! rather than pulled in.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (derived from the golden ratio, as
/// in Fibonacci hashing); spreads low-entropy integer keys across the high
/// bits, which `HashMap` then uses for bucket selection.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The per-word mixing step: fold `word` in, then diffuse with one
/// wrapping multiply.
#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// A fast, non-cryptographic, deterministic hasher (FxHash64).
///
/// Deterministic across runs and platforms — unlike `RandomState`, two
/// engines hashing the same tag stream produce identical bucket layouts,
/// which keeps behavior reproducible under profiling.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.hash = mix(self.hash, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.hash = mix(self.hash, u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.hash = mix(self.hash, n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.hash = mix(self.hash, n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = mix(self.hash, n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = mix(self.hash, n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = mix(self.hash, n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, zero-sized).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`] — drop-in for hot-path maps whose
/// keys the simulator itself generates.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_u64(0xdead_beef), hash_u64(0xdead_beef));
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
    }

    #[test]
    fn sequential_tags_spread_over_high_bits() {
        // Tags are allocated sequentially; the multiply must spread them so
        // the map does not degenerate. Check the top byte takes many values
        // over a small consecutive range.
        let mut top_bytes = FxHashSet::default();
        for t in 0u64..256 {
            top_bytes.insert((hash_u64(t) >> 56) as u8);
        }
        assert!(top_bytes.len() > 100, "only {} distinct top bytes", top_bytes.len());
    }

    #[test]
    fn byte_stream_matches_padded_tail() {
        // A non-multiple-of-8 write folds its tail zero-padded; the same
        // logical prefix must hash differently from a different one.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrips_like_std() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for t in 0..1000u64 {
            m.insert(t, t * 3);
        }
        for t in (0..1000u64).step_by(2) {
            m.remove(&t);
        }
        assert_eq!(m.len(), 500);
        assert_eq!(m.get(&501), Some(&1503));
        assert_eq!(m.get(&500), None);
    }
}
