//! Cycle-level idealized simulators for the TYR reproduction (Sec. VI).
//!
//! Five architectures, one measurement harness:
//!
//! * [`tagged::TaggedEngine`] — tagged dataflow. With
//!   [`tagged::TagPolicy::Local`] it is **TYR**; with the global policies it
//!   is the naïve unordered dataflow baseline (bounded or unbounded tags).
//! * [`ordered::OrderedEngine`] — ordered dataflow (per-edge bounded FIFOs,
//!   back pressure; RipTide-style).
//! * [`seqvn::SeqVnEngine`] — sequential von Neumann (1 IPC).
//! * [`seqdf::SeqDataflowEngine`] — sequential dataflow (WaveScalar-style
//!   global block order, dataflow parallelism inside each block instance).
//! * [`ooo::OooEngine`] — out-of-order vN with a bounded instruction window
//!   (Fig. 5b; an extension beyond the paper's five evaluated systems).
//!
//! All engines execute up to an issue width of instructions per cycle, take
//! one cycle per instruction, and sample live state and IPC every cycle;
//! results are returned as a [`RunResult`].
//!
//! Every engine additionally has a `with_probe` constructor that attaches a
//! [`Probe`] sink (re-exported from `tyr_stats::probe`); the default
//! [`NoProbe`] compiles all emission out of the hot loops. See the
//! `tyr_stats` crate for the built-in sinks (per-node profiler,
//! Chrome-trace exporter).
//!
//! Two robustness layers ride along (both disarmed by default and
//! bit-neutral when off):
//!
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`]):
//!   drop/duplicate/corrupt tokens, delay or flip memory responses, stick a
//!   node, exhaust a tag space, each attributed through the probe taxonomy
//!   and the [`RunResult::faults`] log.
//! * [`watchdog`] — per-run cycle budgets, wall-clock deadlines, and
//!   cooperative cancellation, ending hung runs as attributed
//!   [`Outcome::TimedOut`] results.

#![warn(missing_docs)]

pub mod cache;
pub mod event;
pub mod fault;
pub mod fxhash;
pub mod ooo;
pub mod ordered;
pub mod result;
pub mod seqdf;
pub mod seqvn;
pub mod slab;
pub mod tagged;
pub mod watchdog;

pub use cache::{CacheConfig, CacheSim, MemConfig, MemStats};
pub use event::EventQueue;
pub use fault::{FaultPlan, FaultRecord, FaultSpec};
pub use result::{Outcome, RunResult, SimError, TimeoutCause};
pub use tyr_stats::probe::{FaultKind, NoProbe, Probe, ProbeEvent, StallReason};
pub use watchdog::{CancelToken, Watchdog};
