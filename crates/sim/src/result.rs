//! Shared run results and simulation errors for all engines.

use std::fmt;

use tyr_ir::{AluError, MemError, MemoryImage, Value};
use tyr_stats::{IpcHistogram, ProfileReport, TimelineReport, Trace};

use crate::cache::MemStats;
use crate::fault::FaultRecord;

/// Which watchdog limit ended a run (see [`crate::watchdog::Watchdog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutCause {
    /// The per-run cycle budget was exhausted. Deterministic: the same run
    /// trips at the same cycle on every host.
    CycleBudget {
        /// The configured budget.
        budget: u64,
    },
    /// The wall-clock deadline passed (host-dependent).
    WallClock {
        /// The configured limit in milliseconds.
        limit_ms: u64,
    },
    /// A shared [`crate::watchdog::CancelToken`] was cancelled — typically
    /// because a sweep-wide deadline fired in another worker.
    Cancelled,
}

impl fmt::Display for TimeoutCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeoutCause::CycleBudget { budget } => write!(f, "cycle budget {budget} exhausted"),
            TimeoutCause::WallClock { limit_ms } => {
                write!(f, "wall-clock limit {limit_ms} ms exceeded")
            }
            TimeoutCause::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// How a simulation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program ran to completion.
    Completed {
        /// Total cycles.
        cycles: u64,
        /// Total dynamic instructions fired.
        dyn_instrs: u64,
    },
    /// The machine deadlocked: no instruction could fire, but work remained
    /// (the failure mode of bounded global tag spaces — Fig. 11).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Live tokens stranded in the machine.
        live_tokens: u64,
        /// Human-readable descriptions of what is wedged: pending tag
        /// allocations (tagged engine) or starved/back-pressured nodes
        /// (ordered engine).
        pending_allocates: Vec<String>,
    },
    /// A watchdog ended the run before it completed or deadlocked: the
    /// machine was still (apparently) making progress, but a cycle budget,
    /// wall-clock deadline, or cancellation fired. Unlike
    /// [`SimError::CycleLimit`] this is an attributed *result*, not a fault:
    /// the fuzzer and chaos harness treat hangs as first-class outcomes.
    TimedOut {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Live tokens in the machine at that point.
        live_tokens: u64,
        /// Which limit fired.
        cause: TimeoutCause,
    },
}

impl fmt::Display for Outcome {
    /// Renders the outcome the way the deadlock reports and
    /// [`RunResult::cycles`]'s panic message present it: one summary line,
    /// plus (for deadlocks) an indented `wedged:` line per stuck activation,
    /// capped at eight.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Completed { cycles, dyn_instrs } => {
                write!(f, "completed in {cycles} cycles ({dyn_instrs} dynamic instructions)")
            }
            Outcome::Deadlock { cycle, live_tokens, pending_allocates } => {
                write!(f, "deadlocked at cycle {cycle} with {live_tokens} stranded token(s)")?;
                const MAX_LINES: usize = 8;
                for p in pending_allocates.iter().take(MAX_LINES) {
                    write!(f, "\n  wedged: {p}")?;
                }
                if pending_allocates.len() > MAX_LINES {
                    write!(f, "\n  … and {} more", pending_allocates.len() - MAX_LINES)?;
                }
                Ok(())
            }
            Outcome::TimedOut { cycle, live_tokens, cause } => {
                write!(f, "timed out at cycle {cycle} ({cause}) with {live_tokens} live token(s)")
            }
        }
    }
}

/// The complete record of one simulation run.
///
/// # Example
///
/// ```
/// use tyr_ir::MemoryImage;
/// use tyr_sim::{Outcome, RunResult};
/// use tyr_stats::{IpcHistogram, Trace};
///
/// let r = RunResult::new(
///     Outcome::Completed { cycles: 10, dyn_instrs: 25 },
///     Trace::new(),
///     IpcHistogram::new(),
///     MemoryImage::new(),
///     vec![7],
/// );
/// assert!(r.is_complete());
/// assert_eq!(r.cycles(), 10);
/// assert_eq!(r.dyn_instrs(), 25);
/// assert!(r.faults.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Per-cycle live-token (or live-value) trace.
    pub live: Trace,
    /// Exact histogram of per-cycle IPC.
    pub ipc: IpcHistogram,
    /// Final memory contents.
    memory: MemoryImage,
    /// Program return values (empty on deadlock).
    pub returns: Vec<Value>,
    /// Peak tokens resident per concurrent block's token store
    /// (`(block name, peak)`), for engines that track it (the tagged
    /// engine). Quantifies the hardware token-store size each block needs —
    /// the implementability argument of Sec. III.
    pub store_peaks: Vec<(String, u64)>,
    /// Per-node profile from the probe layer, when the run was executed
    /// with a `NodeProfiler` attached (see `tyr_stats::profile`).
    pub profile: Option<ProfileReport>,
    /// Cycle-windowed telemetry from the probe layer, when the run was
    /// executed with a `Timeline` sink attached (see `tyr_stats::timeline`).
    pub timeline: Option<TimelineReport>,
    /// Every fault the injection layer applied during the run, in injection
    /// order (empty unless the engine ran with a
    /// [`FaultPlan`](crate::fault::FaultPlan)). The length always equals the
    /// number of `FaultInjected` probe events the run emitted.
    pub faults: Vec<FaultRecord>,
    /// Architectural loads executed. Counted unconditionally by every
    /// engine (probe or not); always equals the number of `MemAccess`
    /// probe events with `write: false` the run emitted.
    pub mem_loads: u64,
    /// Architectural stores executed (`store` and `store_add` each count
    /// one); always equals the number of `MemAccess` probe events with
    /// `write: true`.
    pub mem_stores: u64,
    /// Idle cycles the event-driven core advanced over in bulk instead of
    /// ticking one by one. Purely a wall-clock diagnostic: every skipped
    /// cycle is still accounted in `live`, `ipc`, and the cycle counts, so
    /// two runs differing only in this field are otherwise bit-identical.
    /// Always 0 for ticked runs and for engines without an event core.
    pub skipped_cycles: u64,
    /// Cache-hierarchy counters, present iff the run used
    /// [`MemConfig::Cached`](crate::cache::MemConfig). `mem_stats.l1.misses`
    /// always equals the number of `MemMiss` probe events the run emitted.
    pub mem_stats: Option<MemStats>,
}

impl RunResult {
    /// Assembles a result.
    pub fn new(
        outcome: Outcome,
        live: Trace,
        ipc: IpcHistogram,
        memory: MemoryImage,
        returns: Vec<Value>,
    ) -> Self {
        RunResult {
            outcome,
            live,
            ipc,
            memory,
            returns,
            store_peaks: Vec::new(),
            profile: None,
            timeline: None,
            faults: Vec::new(),
            mem_loads: 0,
            mem_stores: 0,
            skipped_cycles: 0,
            mem_stats: None,
        }
    }

    /// Attaches the count of bulk-skipped idle cycles (builder-style).
    pub fn with_skipped(mut self, skipped: u64) -> Self {
        self.skipped_cycles = skipped;
        self
    }

    /// Attaches the architectural load/store counts (builder-style).
    pub fn with_mem_counts(mut self, loads: u64, stores: u64) -> Self {
        self.mem_loads = loads;
        self.mem_stores = stores;
        self
    }

    /// Attaches cache-hierarchy counters (builder-style; cached runs only).
    pub fn with_mem_stats(mut self, stats: Option<MemStats>) -> Self {
        self.mem_stats = stats;
        self
    }

    /// L1 hits (0 under ideal memory, where every access "hits").
    pub fn mem_hits(&self) -> u64 {
        self.mem_stats.map_or(0, |s| s.l1.hits)
    }

    /// L1 misses — the count of `MemMiss` probe events (0 under ideal
    /// memory).
    pub fn mem_misses(&self) -> u64 {
        self.mem_stats.map_or(0, |s| s.l1.misses)
    }

    /// Accesses delayed by a full MSHR table (0 under ideal memory).
    pub fn mshr_stalls(&self) -> u64 {
        self.mem_stats.map_or(0, |s| s.mshr_stalls)
    }

    /// Attaches per-block token-store peaks (builder-style).
    pub fn with_store_peaks(mut self, peaks: Vec<(String, u64)>) -> Self {
        self.store_peaks = peaks;
        self
    }

    /// Attaches the fault-injection log (builder-style).
    pub fn with_faults(mut self, faults: Vec<FaultRecord>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a per-node profile from the probe layer (builder-style).
    pub fn with_profile(mut self, profile: ProfileReport) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Attaches a cycle-windowed timeline from the probe layer
    /// (builder-style).
    pub fn with_timeline(mut self, timeline: TimelineReport) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// The largest single block-store occupancy seen (0 if untracked).
    pub fn max_store_peak(&self) -> u64 {
        self.store_peaks.iter().map(|&(_, p)| p).max().unwrap_or(0)
    }

    /// Whether the run completed.
    pub fn is_complete(&self) -> bool {
        matches!(self.outcome, Outcome::Completed { .. })
    }

    /// Execution time in cycles.
    ///
    /// # Panics
    ///
    /// Panics if the run deadlocked.
    pub fn cycles(&self) -> u64 {
        match &self.outcome {
            Outcome::Completed { cycles, .. } => *cycles,
            dead => panic!("{dead}; no completion time"),
        }
    }

    /// The cycle the run ended at — completion, deadlock, or timeout — the
    /// final timestamp for probe sinks.
    pub fn final_cycle(&self) -> u64 {
        match self.outcome {
            Outcome::Completed { cycles, .. } => cycles,
            Outcome::Deadlock { cycle, .. } => cycle,
            Outcome::TimedOut { cycle, .. } => cycle,
        }
    }

    /// Total dynamic instructions (0 for a deadlocked or timed-out run).
    pub fn dyn_instrs(&self) -> u64 {
        match self.outcome {
            Outcome::Completed { dyn_instrs, .. } => dyn_instrs,
            Outcome::Deadlock { .. } | Outcome::TimedOut { .. } => 0,
        }
    }

    /// Peak live state over the run.
    pub fn peak_live(&self) -> u64 {
        self.live.peak()
    }

    /// Mean live state over the run.
    pub fn mean_live(&self) -> f64 {
        self.live.mean()
    }

    /// Final memory contents.
    pub fn memory(&self) -> &MemoryImage {
        &self.memory
    }
}

/// A simulation fault (distinct from [`Outcome::Deadlock`], which is a
/// legitimate result the evaluation observes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Arithmetic fault in the simulated program.
    Alu(AluError),
    /// Memory fault in the simulated program.
    Mem(MemError),
    /// The configured cycle limit was reached.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// The program completed but tokens remained in the machine — a lowering
    /// or engine bug, surfaced loudly.
    TokenLeak {
        /// Leaked token count.
        live_tokens: u64,
    },
    /// A token arrived with a tag outside its block's tag space — an engine
    /// or policy bug.
    TagOverflow {
        /// Offending tag value.
        tag: u64,
        /// Size of the space it was delivered into.
        space: usize,
    },
    /// A node has more wired inputs than the engine's token store supports.
    TooManyInputs {
        /// The node's wired input count.
        count: usize,
    },
    /// A `free` recycled a tag while a node of its block still held tokens
    /// under it — the free-barrier safety property (Sec. IV-A) was violated
    /// and a later context would silently read this context's state. Only
    /// raised when `TaggedConfig::check_token_leaks` is on.
    UseAfterFree {
        /// Label of the node still holding tokens.
        node: String,
        /// Name of the block whose tag was freed.
        block: String,
        /// The recycled tag.
        tag: u64,
    },
    /// The interpreter faulted (vN engine).
    Interp(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Alu(e) => write!(f, "alu fault: {e}"),
            SimError::Mem(e) => write!(f, "memory fault: {e}"),
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} reached"),
            SimError::TokenLeak { live_tokens } => {
                write!(f, "program completed with {live_tokens} tokens leaked")
            }
            SimError::TagOverflow { tag, space } => {
                write!(f, "tag {tag} outside its space of {space}")
            }
            SimError::TooManyInputs { count } => {
                write!(f, "node has {count} wired inputs (maximum 63)")
            }
            SimError::UseAfterFree { node, block, tag } => {
                write!(
                    f,
                    "use-after-free: block '{block}' freed tag {tag} while '{node}' still \
                     held tokens under it"
                )
            }
            SimError::Interp(e) => write!(f, "interpreter fault: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<AluError> for SimError {
    fn from(e: AluError) -> Self {
        SimError::Alu(e)
    }
}

impl From<MemError> for SimError {
    fn from(e: MemError) -> Self {
        SimError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let r = RunResult::new(
            Outcome::Completed { cycles: 10, dyn_instrs: 25 },
            Trace::new(),
            IpcHistogram::new(),
            MemoryImage::new(),
            vec![7],
        );
        assert!(r.is_complete());
        assert_eq!(r.cycles(), 10);
        assert_eq!(r.dyn_instrs(), 25);
        assert_eq!(r.returns, vec![7]);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn cycles_panics_on_deadlock() {
        let r = RunResult::new(
            Outcome::Deadlock { cycle: 5, live_tokens: 3, pending_allocates: vec![] },
            Trace::new(),
            IpcHistogram::new(),
            MemoryImage::new(),
            vec![],
        );
        assert!(!r.is_complete());
        let _ = r.cycles();
    }

    #[test]
    fn outcome_display() {
        let done = Outcome::Completed { cycles: 10, dyn_instrs: 25 };
        assert_eq!(done.to_string(), "completed in 10 cycles (25 dynamic instructions)");
        let dead = Outcome::Deadlock {
            cycle: 5,
            live_tokens: 3,
            pending_allocates: (0..10).map(|i| format!("alloc {i}")).collect(),
        };
        let text = dead.to_string();
        assert!(text.starts_with("deadlocked at cycle 5 with 3 stranded token(s)"));
        assert!(text.contains("wedged: alloc 0"));
        assert!(text.contains("wedged: alloc 7"));
        assert!(!text.contains("alloc 8"), "wedged lines are capped");
        assert!(text.contains("and 2 more"));
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::CycleLimit { limit: 99 };
        assert!(e.to_string().contains("99"));
        let e = SimError::TokenLeak { live_tokens: 4 };
        assert!(e.to_string().contains("4 tokens"));
    }
}
