//! Sequential dataflow engine (WaveScalar/TRIPS-style; Sec. II-C, Fig. 5c).
//!
//! These architectures impose *global ordering points* at block boundaries:
//! execution proceeds one dynamic block instance (one "wave") at a time, in
//! the von Neumann block order, with dataflow parallelism only *inside* the
//! current instance. We model this directly on the structured IR:
//!
//! * simple statements accumulate into the current instance's dependence
//!   DAG; conditionals are if-converted into the same instance (hyperblock
//!   style);
//! * loop entries, every loop iteration, calls, and returns are ordering
//!   points that *flush* the instance: its instructions are scheduled by
//!   dependence level, at most `issue_width` per cycle, before the next
//!   instance may begin.
//!
//! Live state is the bound-value count across activation frames, as in the
//! vN engine — sequential dataflow keeps values "in place" rather than as
//! tokens, which is why Fig. 14 shows its state comparable to (even below)
//! the vN baseline.

use tyr_ir::{MemoryImage, Program, Region, Stmt, Value, Var};
use tyr_stats::probe::{NoProbe, Probe, ProbeEvent};
use tyr_stats::{IpcHistogram, Trace};

use crate::cache::{CacheSim, HitLevel, MemConfig};
use crate::result::{Outcome, RunResult, SimError, TimeoutCause};
use crate::watchdog::{Watchdog, WatchdogState};

/// Why the executor unwound early: a simulated fault, or a watchdog trip
/// (which is an attributed *result*, not an error).
enum Halt {
    Fault(SimError),
    Timeout(TimeoutCause),
}

impl From<SimError> for Halt {
    fn from(e: SimError) -> Self {
        Halt::Fault(e)
    }
}

impl From<tyr_ir::MemError> for Halt {
    fn from(e: tyr_ir::MemError) -> Self {
        Halt::Fault(SimError::Mem(e))
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SeqDataflowConfig {
    /// Instructions issued per cycle within the current block instance.
    pub issue_width: usize,
    /// Program arguments.
    pub args: Vec<Value>,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
    /// Memory model. Ideal memory is free (accesses complete within the
    /// instruction's cycle, matching the engine's historical behaviour). A
    /// cached model charges each access's excess latency as a serial
    /// end-of-run stall penalty: block-at-a-time machines can hide some
    /// latency inside a wave's dataflow parallelism, so this is a coarse,
    /// deliberately pessimistic bound — but hits and misses are still
    /// counted exactly, which is what the locality comparison needs.
    pub mem: MemConfig,
    /// Run watchdog (see [`crate::watchdog`]). Disarmed by default; checked
    /// once per simulated cycle as block instances are scheduled. Trips end
    /// the run as an attributed [`Outcome::TimedOut`].
    pub watchdog: Watchdog,
}

impl Default for SeqDataflowConfig {
    fn default() -> Self {
        SeqDataflowConfig {
            issue_width: 128,
            args: Vec::new(),
            max_cycles: 50_000_000_000,
            mem: MemConfig::default(),
            watchdog: Watchdog::none(),
        }
    }
}

/// The sequential-dataflow engine.
pub struct SeqDataflowEngine<'a, P: Probe = NoProbe> {
    program: &'a Program,
    mem: MemoryImage,
    cfg: SeqDataflowConfig,
    probe: P,
}

struct Frame {
    env: Vec<Option<Value>>,
    /// Dependence level of each variable within the *current* instance
    /// (0 = produced by an earlier instance).
    level: Vec<u32>,
}

struct Exec<'a, P: Probe> {
    program: &'a Program,
    mem: &'a mut MemoryImage,
    probe: &'a mut P,
    width: u64,
    max_cycles: u64,
    dog: WatchdogState,
    /// Instructions per dependence level in the current instance
    /// (index = level - 1).
    hist: Vec<u64>,
    live: u64,
    cycle: u64,
    fired: u64,
    /// Architectural loads / stores executed (counted even without a probe).
    mem_loads: u64,
    mem_stores: u64,
    /// Cache-hierarchy state (`None` under ideal memory).
    cache: Option<CacheSim>,
    /// Accumulated memory-stall cycles, appended to the clock at run end.
    stalls: u64,
    trace: Trace,
    ipc: IpcHistogram,
}

impl<'a> SeqDataflowEngine<'a> {
    /// Builds an engine over a structured program with no probe attached.
    ///
    /// # Example
    ///
    /// ```
    /// use tyr_ir::build::ProgramBuilder;
    /// use tyr_ir::MemoryImage;
    /// use tyr_sim::seqdf::{SeqDataflowConfig, SeqDataflowEngine};
    ///
    /// let mut pb = ProgramBuilder::new();
    /// let mut f = pb.func("main", 1);
    /// let x = f.param(0);
    /// let a = f.add(x, 1);
    /// let b = f.mul(x, 2);
    /// let y = f.add(a, b);
    /// let p = pb.finish(f, [y]);
    ///
    /// let cfg = SeqDataflowConfig { args: vec![5], ..SeqDataflowConfig::default() };
    /// let r = SeqDataflowEngine::new(&p, MemoryImage::new(), cfg).run().unwrap();
    /// assert_eq!(r.returns, vec![16]);
    /// ```
    pub fn new(program: &'a Program, mem: MemoryImage, cfg: SeqDataflowConfig) -> Self {
        SeqDataflowEngine::with_probe(program, mem, cfg, NoProbe)
    }
}

impl<'a, P: Probe> SeqDataflowEngine<'a, P> {
    /// Builds an engine that reports events to `probe` as it runs. The
    /// engine executes the structured IR directly (no per-node graph), so
    /// all events are attributed to a single virtual node 0 (`instr`) in a
    /// single virtual block 0 (`program`); values bound into activation
    /// frames count as produced tokens, unbinds as consumed.
    pub fn with_probe(
        program: &'a Program,
        mem: MemoryImage,
        cfg: SeqDataflowConfig,
        mut probe: P,
    ) -> Self {
        if P::ENABLED {
            probe.declare_block(0, "program");
            probe.declare_node(0, "instr", 0);
        }
        SeqDataflowEngine { program, mem, cfg, probe }
    }

    /// Runs the program.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on simulated-program faults or when the cycle
    /// limit is exceeded.
    pub fn run(mut self) -> Result<RunResult, SimError> {
        let mut exec = Exec {
            program: self.program,
            mem: &mut self.mem,
            probe: &mut self.probe,
            width: self.cfg.issue_width.max(1) as u64,
            max_cycles: self.cfg.max_cycles,
            dog: self.cfg.watchdog.arm(),
            hist: Vec::new(),
            live: 0,
            cycle: 0,
            fired: 0,
            mem_loads: 0,
            mem_stores: 0,
            cache: self.cfg.mem.build(),
            stalls: 0,
            trace: Trace::new(),
            ipc: IpcHistogram::new(),
        };
        let outcome = exec.call(self.program.entry, &self.cfg.args).and_then(|returns| {
            exec_flush(&mut exec)?;
            Ok(returns)
        });
        if outcome.is_ok() && exec.stalls > 0 {
            // Coarse serial-penalty model: the excess latency of every cache
            // access lands as idle clock after the last wave drains.
            exec.cycle += exec.stalls;
            exec.trace.record_n(exec.live, exec.stalls);
            exec.ipc.record_n(0, exec.stalls);
        }
        let (cycle, live, fired) = (exec.cycle, exec.live, exec.fired);
        let (loads, stores) = (exec.mem_loads, exec.mem_stores);
        let mem_stats = exec.cache.as_ref().map(CacheSim::stats);
        let (trace, ipc) = (exec.trace, exec.ipc);
        match outcome {
            Ok(returns) => Ok(RunResult::new(
                Outcome::Completed { cycles: cycle, dyn_instrs: fired },
                trace,
                ipc,
                self.mem,
                returns,
            )
            .with_mem_counts(loads, stores)
            .with_mem_stats(mem_stats)),
            Err(Halt::Timeout(cause)) => Ok(RunResult::new(
                Outcome::TimedOut { cycle, live_tokens: live, cause },
                trace,
                ipc,
                self.mem,
                Vec::new(),
            )
            .with_mem_counts(loads, stores)
            .with_mem_stats(mem_stats)),
            Err(Halt::Fault(e)) => Err(e),
        }
    }
}

/// Free-function wrapper so `run` can flush inside an `and_then` closure
/// that already holds the executor mutably.
fn exec_flush<P: Probe>(exec: &mut Exec<'_, P>) -> Result<(), Halt> {
    exec.flush()
}

impl<'a, P: Probe> Exec<'a, P> {
    /// Schedules the accumulated instance DAG: levels in order, at most
    /// `width` instructions per cycle.
    fn flush(&mut self) -> Result<(), Halt> {
        for l in 0..self.hist.len() {
            let mut remaining = self.hist[l];
            while remaining > 0 {
                let fire = remaining.min(self.width);
                self.cycle += 1;
                self.fired += fire;
                if P::ENABLED {
                    for _ in 0..fire {
                        self.probe.event(self.cycle, ProbeEvent::NodeFired { node: 0 });
                    }
                }
                self.trace.record(self.live);
                self.ipc.record(fire);
                remaining -= fire;
                if let Some(cause) = self.dog.check(self.cycle) {
                    return Err(Halt::Timeout(cause));
                }
                if self.cycle >= self.max_cycles {
                    return Err(Halt::Fault(SimError::CycleLimit { limit: self.max_cycles }));
                }
            }
        }
        self.hist.clear();
        Ok(())
    }

    /// Runs one access through the cache model (if any): counts hit level,
    /// emits a [`ProbeEvent::MemMiss`] on misses, and accumulates the excess
    /// latency beyond the instruction's own cycle as stall debt.
    fn mem_access(&mut self, addr: Value, write: bool) {
        if let Some(c) = self.cache.as_mut() {
            let acc = c.access(self.cycle, addr, write);
            if P::ENABLED && acc.is_miss() {
                self.probe.event(
                    self.cycle,
                    ProbeEvent::MemMiss { node: 0, addr, l2: acc.level == HitLevel::Mem },
                );
            }
            self.stalls += (acc.complete - self.cycle).saturating_sub(1);
        }
    }

    fn record(&mut self, level: u32) {
        let idx = level.saturating_sub(1) as usize;
        if idx >= self.hist.len() {
            self.hist.resize(idx + 1, 0);
        }
        self.hist[idx] += 1;
    }

    fn bind(&mut self, frame: &mut Frame, v: Var, value: Value, level: u32) {
        let slot = &mut frame.env[v.0 as usize];
        if slot.is_none() {
            self.live += 1;
            if P::ENABLED {
                self.probe.event(self.cycle, ProbeEvent::TokenProduced { node: 0 });
            }
        }
        *slot = Some(value);
        frame.level[v.0 as usize] = level;
    }

    fn unbind(&mut self, frame: &mut Frame, v: Var) {
        if frame.env[v.0 as usize].take().is_some() {
            self.live -= 1;
            if P::ENABLED {
                self.probe.event(self.cycle, ProbeEvent::TokenConsumed { node: 0, count: 1 });
            }
        }
        frame.level[v.0 as usize] = 0;
    }

    fn operand(frame: &Frame, o: tyr_ir::Operand) -> Result<(Value, u32), Halt> {
        match o {
            tyr_ir::Operand::Const(c) => Ok((c, 0)),
            tyr_ir::Operand::Var(v) => {
                let val = frame.env[v.0 as usize]
                    .ok_or_else(|| Halt::Fault(SimError::Interp(format!("unbound {v}"))))?;
                Ok((val, frame.level[v.0 as usize]))
            }
        }
    }

    fn call(&mut self, func: tyr_ir::FuncId, args: &[Value]) -> Result<Vec<Value>, Halt> {
        let f = self.program.func(func);
        let mut frame =
            Frame { env: vec![None; f.n_vars as usize], level: vec![0; f.n_vars as usize] };
        for (&p, &a) in f.params.iter().zip(args) {
            self.bind(&mut frame, p, a, 0);
        }
        self.exec_region(&f.body, &mut frame)?;
        self.flush()?;
        let rets: Vec<Value> = f
            .returns
            .iter()
            .map(|&r| Self::operand(&frame, r).map(|(v, _)| v))
            .collect::<Result<_, _>>()?;
        self.live -= frame.env.iter().filter(|s| s.is_some()).count() as u64;
        Ok(rets)
    }

    fn exec_region(&mut self, region: &Region, frame: &mut Frame) -> Result<(), Halt> {
        for stmt in &region.stmts {
            self.exec_stmt(stmt, frame)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<(), Halt> {
        match stmt {
            Stmt::Op { dst, op, lhs, rhs } => {
                let (a, la) = Self::operand(frame, *lhs)?;
                let (b, lb) = Self::operand(frame, *rhs)?;
                let v = op.eval(a, b).map_err(|e| Halt::Fault(SimError::Alu(e)))?;
                let level = la.max(lb) + 1;
                self.record(level);
                self.bind(frame, *dst, v, level);
            }
            Stmt::Load { dst, addr } => {
                let (a, la) = Self::operand(frame, *addr)?;
                let v = self.mem.load(a)?;
                self.mem_loads += 1;
                if P::ENABLED {
                    self.probe.event(
                        self.cycle,
                        ProbeEvent::MemAccess { node: 0, addr: a, write: false },
                    );
                }
                self.mem_access(a, false);
                let level = la + 1;
                self.record(level);
                self.bind(frame, *dst, v, level);
            }
            Stmt::Store { addr, value } => {
                let (a, la) = Self::operand(frame, *addr)?;
                let (v, lv) = Self::operand(frame, *value)?;
                self.mem.store(a, v)?;
                self.mem_stores += 1;
                if P::ENABLED {
                    self.probe
                        .event(self.cycle, ProbeEvent::MemAccess { node: 0, addr: a, write: true });
                }
                self.mem_access(a, true);
                self.record(la.max(lv) + 1);
            }
            Stmt::StoreAdd { addr, value } => {
                let (a, la) = Self::operand(frame, *addr)?;
                let (v, lv) = Self::operand(frame, *value)?;
                self.mem.fetch_add(a, v)?;
                self.mem_stores += 1;
                if P::ENABLED {
                    self.probe
                        .event(self.cycle, ProbeEvent::MemAccess { node: 0, addr: a, write: true });
                }
                self.mem_access(a, true);
                self.record(la.max(lv) + 1);
            }
            Stmt::Select { dst, cond, on_true, on_false } => {
                let (c, lc) = Self::operand(frame, *cond)?;
                let (t, lt) = Self::operand(frame, *on_true)?;
                let (e, le) = Self::operand(frame, *on_false)?;
                let level = lc.max(lt).max(le) + 1;
                self.record(level);
                self.bind(frame, *dst, if c != 0 { t } else { e }, level);
            }
            Stmt::If(i) => {
                // If-converted into the current hyperblock: the branch is one
                // instruction; the taken side's statements keep accumulating.
                let (c, lc) = Self::operand(frame, i.cond)?;
                self.record(lc + 1);
                let (taken, merge_then) =
                    if c != 0 { (&i.then_region, true) } else { (&i.else_region, false) };
                self.exec_region(taken, frame)?;
                let merged: Vec<(Var, Value, u32)> = i
                    .merges
                    .iter()
                    .map(|&(d, t, e)| {
                        let src = if merge_then { t } else { e };
                        Self::operand(frame, src).map(|(v, l)| (d, v, l))
                    })
                    .collect::<Result<_, _>>()?;
                for v in region_defs(taken) {
                    self.unbind(frame, v);
                }
                for (d, v, l) in merged {
                    self.bind(frame, d, v, l);
                }
            }
            Stmt::Loop(l) => {
                let inits: Vec<(Var, Value)> = l
                    .carried
                    .iter()
                    .map(|&(v, init)| Self::operand(frame, init).map(|(x, _)| (v, x)))
                    .collect::<Result<_, _>>()?;
                // Loop entry is an ordering point (the wave advances).
                self.flush()?;
                for (v, x) in inits {
                    self.bind(frame, v, x, 0);
                }
                loop {
                    self.exec_region(&l.pre, frame)?;
                    let (c, lc) = Self::operand(frame, l.cond)?;
                    self.record(lc + 1); // the steer/branch
                    if c == 0 {
                        break;
                    }
                    self.exec_region(&l.body, frame)?;
                    let nexts: Vec<Value> = l
                        .next
                        .iter()
                        .map(|&n| Self::operand(frame, n).map(|(v, _)| v))
                        .collect::<Result<_, _>>()?;
                    // Iteration boundary: wave advance.
                    self.flush()?;
                    for (&(v, _), x) in l.carried.iter().zip(nexts) {
                        self.bind(frame, v, x, 0);
                    }
                }
                let exits: Vec<(Var, Value)> = l
                    .exits
                    .iter()
                    .map(|&(d, src)| Self::operand(frame, src).map(|(v, _)| (d, v)))
                    .collect::<Result<_, _>>()?;
                self.flush()?;
                for (v, _) in &l.carried {
                    self.unbind(frame, *v);
                }
                for v in region_defs(&l.pre).chain(region_defs(&l.body)) {
                    self.unbind(frame, v);
                }
                for (d, v) in exits {
                    self.bind(frame, d, v, 0);
                }
            }
            Stmt::Call { func, args, rets } => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|&a| Self::operand(frame, a).map(|(v, _)| v))
                    .collect::<Result<_, _>>()?;
                self.record(1); // the call
                self.flush()?;
                let retv = self.call(*func, &argv)?;
                self.record(1); // the return
                self.flush()?;
                for (&d, v) in rets.iter().zip(retv) {
                    self.bind(frame, d, v, 0);
                }
            }
        }
        Ok(())
    }
}

/// All variables defined anywhere inside a region (recursively).
fn region_defs(region: &Region) -> impl Iterator<Item = Var> + '_ {
    let mut out = Vec::new();
    fn collect(region: &Region, out: &mut Vec<Var>) {
        for stmt in &region.stmts {
            out.extend(stmt.defs());
            match stmt {
                Stmt::Loop(l) => {
                    out.extend(l.carried.iter().map(|&(v, _)| v));
                    collect(&l.pre, out);
                    collect(&l.body, out);
                }
                Stmt::If(i) => {
                    collect(&i.then_region, out);
                    collect(&i.else_region, out);
                }
                _ => {}
            }
        }
    }
    collect(region, &mut out);
    out.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::build::ProgramBuilder;
    use tyr_ir::interp;

    fn sum_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 1);
        let n = f.param(0);
        let [i, acc, nn] = f.begin_loop("sum", [0.into(), 0.into(), n]);
        let c = f.lt(i, nn);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [total] = f.end_loop([i2, acc2, nn], [acc]);
        pb.finish(f, [total])
    }

    #[test]
    fn matches_oracle_and_beats_vn() {
        let p = sum_program();
        let mut mem = MemoryImage::new();
        let oracle = interp::run(&p, &mut mem, &[500]).unwrap();
        let cfg = SeqDataflowConfig { args: vec![500], ..SeqDataflowConfig::default() };
        let r = SeqDataflowEngine::new(&p, MemoryImage::new(), cfg).run().unwrap();
        assert!(r.is_complete());
        assert_eq!(r.returns, oracle.returns);
        // Same dynamic instruction count as vN, fewer cycles (ILP inside the
        // block instance).
        assert_eq!(r.dyn_instrs(), oracle.dyn_instrs);
        assert!(r.cycles() < oracle.dyn_instrs);
        // But still serialized across iterations: much slower than ~depth.
        assert!(r.cycles() >= 500);
    }

    #[test]
    fn ipc_exceeds_one_within_instances() {
        let p = sum_program();
        let cfg = SeqDataflowConfig { args: vec![100], ..SeqDataflowConfig::default() };
        let r = SeqDataflowEngine::new(&p, MemoryImage::new(), cfg).run().unwrap();
        assert!(r.ipc.max_value() >= 2, "expected intra-block ILP");
    }

    #[test]
    fn narrow_width_serializes() {
        let p = sum_program();
        let wide = SeqDataflowEngine::new(
            &p,
            MemoryImage::new(),
            SeqDataflowConfig { args: vec![100], ..SeqDataflowConfig::default() },
        )
        .run()
        .unwrap();
        let narrow = SeqDataflowEngine::new(
            &p,
            MemoryImage::new(),
            SeqDataflowConfig { issue_width: 1, args: vec![100], ..SeqDataflowConfig::default() },
        )
        .run()
        .unwrap();
        assert_eq!(wide.returns, narrow.returns);
        assert!(narrow.cycles() >= wide.cycles());
        assert_eq!(narrow.cycles(), narrow.dyn_instrs());
    }
}
