//! The event queue behind the event-driven simulator cores.
//!
//! PR 4 introduced a timing wheel (`DelayLine`, private to the tagged
//! engine) purely as a faster container for delayed memory responses. This
//! module generalizes it into the *scheduler* the engines plan around:
//! [`EventQueue`] holds any future work item keyed by its release cycle and
//! can answer the question an event-driven core needs — *"when does
//! anything happen next?"* ([`EventQueue::next_release`]) — so that an
//! engine whose ready queue is empty can advance its clock straight to the
//! cycle before the next release instead of spinning through idle cycles.
//!
//! The queue is payload-generic. The tagged engines store delayed memory
//! responses (`(PortRef, tag, Value)`); the ordered engine keeps its
//! per-node delay FIFOs (back-pressure gating is per-edge, so a central
//! queue cannot preserve its delivery order) but derives its wakeup bound
//! with the same head-release rule. The other wakeup sources an
//! event-driven engine must respect — watchdog cycle-budget boundaries,
//! fault-plan window edges, and the simulation cycle limit — are pure
//! deadlines with no payload, so they enter the jump computation as clamps
//! on the target cycle rather than queue entries; timeline window flushes
//! need nothing at all, because probe events carry absolute cycles and the
//! sinks materialize skipped windows from those (see DESIGN.md §7.7).
//!
//! # Scheduling invariants
//!
//! * **Release order.** `drain_due(cycle, out)` moves exactly the items
//!   with `release <= cycle + 1` (wheel) or the matured FIFO prefix into
//!   `out`, in insertion order per release cycle — bit-identical to the
//!   per-cycle scan it replaces.
//! * **Quiescence.** For every cycle `x` with
//!   `x < next_release(cycle) - 1`, `drain_due(x, ..)` delivers nothing.
//!   This is the jump-safety property: an engine at cycle `c` with an empty
//!   ready queue may set `c = next_release(c) - 1` without changing any
//!   observable behaviour, because no firing, delivery, or probe event can
//!   occur in the skipped cycles.

use std::collections::{BTreeMap, VecDeque};

/// Largest constant latency served by the timing-wheel representation;
/// beyond it the wheel's bucket array would outweigh the FIFO it replaces.
pub const WHEEL_MAX_LATENCY: u64 = 1 << 14;

/// Future work items bucketed by release cycle.
///
/// Two representations share one interface:
///
/// * **Wheel** — for a constant latency `L` in `2..=`[`WHEEL_MAX_LATENCY`]:
///   at most `L` distinct release cycles are ever in flight, so a ring of
///   `L + 1` buckets is exact. An item released at cycle `r` lives in
///   bucket `r % (L + 1)`; the per-cycle drain empties bucket
///   `(cycle + 1) % (L + 1)` with a single `Vec::append`. Same-cycle
///   insertions can never collide with the bucket being drained
///   (`c + L ≡ c + 1 (mod L + 1)` has no solution for `L ≥ 2`).
/// * **FIFO** — the fallback for latencies outside the wheel range and for
///   *variable* per-item delays (the `mem-delay` fault class adds random
///   extra latency). The drain is **front-gated**: it pops only while the
///   front item has matured. With constant latency insertion order equals
///   release order and the gate is exact; with variable delays an item
///   behind a later-releasing front waits for it — deliberately, because
///   that is the delivery order the pre-wheel engines had, and fault-run
///   reproducibility pins it.
/// * **Sorted** — for variable per-item delays that must deliver in
///   *release* order rather than issue order: the cache-hierarchy memory
///   model ([`crate::cache`]) completes an L1 hit in a couple of cycles
///   while a concurrent DRAM miss is still outstanding, so front-gating
///   would make every hit as slow as the miss ahead of it. A `BTreeMap`
///   keyed by release cycle delivers matured items in release order
///   (insertion order within a cycle), preserving the quiescence invariant
///   below at an O(log n) insert cost paid only in cached mode.
pub enum EventQueue<T> {
    /// Ring of `latency + 1` buckets; `buckets[r % len]` holds exactly the
    /// items releasing at cycle `r`.
    Wheel {
        /// The bucket ring.
        buckets: Vec<Vec<T>>,
        /// Total items in flight across all buckets.
        in_flight: usize,
    },
    /// Front-gated `(release, item)` queue.
    Fifo(VecDeque<(u64, T)>),
    /// Release-ordered map for variable latencies (cached memory mode).
    Sorted {
        /// Items bucketed by release cycle, delivered in key order.
        map: BTreeMap<u64, Vec<T>>,
        /// Total items in flight across all buckets.
        in_flight: usize,
    },
}

impl<T> EventQueue<T> {
    /// A queue sized for constant `latency`. Latencies of 0/1 never queue
    /// (the engines emit such responses directly) and latencies above
    /// [`WHEEL_MAX_LATENCY`] would need an oversized ring; both fall back
    /// to the FIFO representation.
    pub fn new(latency: u64) -> Self {
        if (2..=WHEEL_MAX_LATENCY).contains(&latency) {
            let len = latency as usize + 1;
            EventQueue::Wheel { buckets: (0..len).map(|_| Vec::new()).collect(), in_flight: 0 }
        } else {
            EventQueue::Fifo(VecDeque::new())
        }
    }

    /// An explicitly FIFO queue, for callers whose per-item delays vary
    /// (e.g. when the `mem-delay` fault class is armed).
    pub fn fifo() -> Self {
        EventQueue::Fifo(VecDeque::new())
    }

    /// A release-ordered queue for variable per-item delays that must not
    /// be front-gated — the cached-memory miss path, where short hits
    /// complete while long misses are still in flight.
    pub fn sorted() -> Self {
        EventQueue::Sorted { map: BTreeMap::new(), in_flight: 0 }
    }

    /// Schedules `item` for cycle `release`. On the wheel representation
    /// the caller must push with the queue's constant latency (the ring
    /// holds one bucket per distinct in-flight release cycle).
    pub fn push(&mut self, release: u64, item: T) {
        match self {
            EventQueue::Wheel { buckets, in_flight } => {
                let len = buckets.len() as u64;
                buckets[(release % len) as usize].push(item);
                *in_flight += 1;
            }
            EventQueue::Fifo(q) => q.push_back((release, item)),
            EventQueue::Sorted { map, in_flight } => {
                map.entry(release).or_default().push(item);
                *in_flight += 1;
            }
        }
    }

    /// Whether no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of items in flight.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel { in_flight, .. } => *in_flight,
            EventQueue::Fifo(q) => q.len(),
            EventQueue::Sorted { in_flight, .. } => *in_flight,
        }
    }

    /// Moves every item due by the end of `cycle` (release `<= cycle + 1`)
    /// into `out`, in issue order, reusing `out`'s capacity across cycles.
    pub fn drain_due(&mut self, cycle: u64, out: &mut Vec<T>) {
        match self {
            EventQueue::Wheel { buckets, in_flight } => {
                let len = buckets.len() as u64;
                let bucket = &mut buckets[((cycle + 1) % len) as usize];
                *in_flight -= bucket.len();
                out.append(bucket);
            }
            EventQueue::Fifo(q) => {
                while q.front().is_some_and(|&(r, _)| r <= cycle + 1) {
                    let (_, item) = q.pop_front().expect("checked");
                    out.push(item);
                }
            }
            EventQueue::Sorted { map, in_flight } => {
                while map.first_key_value().is_some_and(|(&r, _)| r <= cycle + 1) {
                    let (_, mut items) = map.pop_first().expect("checked");
                    *in_flight -= items.len();
                    out.append(&mut items);
                }
            }
        }
    }

    /// The earliest cycle at which [`EventQueue::drain_due`] will next
    /// deliver anything, seen from `cycle`, or `None` when empty.
    ///
    /// On the wheel this scans at most `len` buckets outward from `cycle`
    /// — O(latency), paid only when the caller is about to skip up to
    /// `latency` idle cycles, so O(1) amortized per skipped cycle. On the
    /// FIFO it is the *front* item's release: the drain is front-gated, so
    /// even if a later item matures earlier it cannot be delivered before
    /// the front — the front release, not the minimum release, is the next
    /// delivery cycle.
    pub fn next_release(&self, cycle: u64) -> Option<u64> {
        match self {
            EventQueue::Wheel { buckets, in_flight } => {
                if *in_flight == 0 {
                    return None;
                }
                let len = buckets.len() as u64;
                (1..=len).map(|d| cycle + d).find(|r| !buckets[(r % len) as usize].is_empty())
            }
            EventQueue::Fifo(q) => q.front().map(|&(r, _)| r),
            EventQueue::Sorted { map, .. } => map.first_key_value().map(|(&r, _)| r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains queue state for cycles `from..to` and returns `(cycle, item)`
    /// delivery pairs.
    fn play(q: &mut EventQueue<u32>, from: u64, to: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for cycle in from..to {
            q.drain_due(cycle, &mut scratch);
            out.extend(scratch.drain(..).map(|v| (cycle, v)));
        }
        out
    }

    #[test]
    fn wheel_and_fifo_agree_on_constant_latency() {
        // Pushes must happen at their originating cycle: the wheel's ring is
        // exact only while every in-flight release is within `latency` of
        // the current cycle.
        let pushes = [(0u64, 10u32), (0, 11), (3, 12), (5, 13)];
        for latency in [2u64, 3, 7, 64] {
            let mut wheel = EventQueue::new(latency);
            let mut fifo = EventQueue::fifo();
            assert!(matches!(wheel, EventQueue::Wheel { .. }));
            let run = |q: &mut EventQueue<u32>| {
                let mut out = Vec::new();
                let mut scratch = Vec::new();
                for cycle in 0..5 + latency + 2 {
                    for &(c, v) in pushes.iter().filter(|&&(c, _)| c == cycle) {
                        q.push(c + latency, v);
                    }
                    q.drain_due(cycle, &mut scratch);
                    out.extend(scratch.drain(..).map(|v| (cycle, v)));
                }
                out
            };
            let w = run(&mut wheel);
            assert_eq!(w, run(&mut fifo));
            assert_eq!(w.len(), pushes.len());
            assert!(wheel.is_empty() && fifo.is_empty());
        }
    }

    #[test]
    fn next_release_matches_first_delivery_cycle() {
        for latency in [2u64, 5, 200] {
            let mut q = EventQueue::new(latency);
            q.push(latency, 1); // pushed at cycle 0
            let r = q.next_release(0).unwrap();
            assert_eq!(r, latency);
            // Jump safety: nothing is delivered strictly before cycle r - 1.
            assert_eq!(play(&mut q, 0, r - 1), Vec::new());
            let mut due = Vec::new();
            q.drain_due(r - 1, &mut due);
            assert_eq!(due, vec![1], "release r is delivered during cycle r - 1");
        }
    }

    #[test]
    fn next_release_sees_the_nearest_of_several_wheel_buckets() {
        let mut q = EventQueue::new(16);
        q.push(3 + 16, 1); // pushed at cycle 3
        q.push(9 + 16, 2); // pushed at cycle 9
        assert_eq!(q.next_release(10), Some(19));
        let mut due = Vec::new();
        q.drain_due(18, &mut due);
        assert_eq!(due, vec![1]);
        assert_eq!(q.next_release(18), Some(25));
    }

    #[test]
    fn fifo_next_release_is_front_gated() {
        // With variable delays the front can mature *later* than an item
        // behind it; the drain (and therefore next_release) must follow the
        // front, preserving the pre-wheel delivery order.
        let mut q = EventQueue::fifo();
        q.push(50, 1);
        q.push(10, 2);
        assert_eq!(q.next_release(0), Some(50));
        assert_eq!(play(&mut q, 0, 48), Vec::new());
        let mut due = Vec::new();
        q.drain_due(49, &mut due);
        assert_eq!(due, vec![1, 2], "both pop once the front matures");
    }

    #[test]
    fn sorted_delivers_in_release_order_not_issue_order() {
        // The cached-memory shape: a long miss issued first, a short hit
        // issued later. Unlike the FIFO, the hit overtakes the miss.
        let mut q = EventQueue::sorted();
        q.push(112, 1); // DRAM miss issued at cycle 0
        q.push(4, 2); // L1 hit issued at cycle 2
        q.push(4, 3); // same-cycle insertion order preserved
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_release(0), Some(4));
        assert_eq!(play(&mut q, 0, 2), Vec::new(), "quiescent before release - 1");
        let mut due = Vec::new();
        q.drain_due(3, &mut due);
        assert_eq!(due, vec![2, 3]);
        assert_eq!(q.next_release(3), Some(112));
        due.clear();
        q.drain_due(111, &mut due);
        assert_eq!(due, vec![1]);
        assert!(q.is_empty());
    }

    #[test]
    fn sorted_agrees_with_fifo_on_constant_latency() {
        let pushes = [(0u64, 10u32), (0, 11), (3, 12), (5, 13)];
        let latency = 7u64;
        let run = |q: &mut EventQueue<u32>| {
            let mut out = Vec::new();
            let mut scratch = Vec::new();
            for cycle in 0..latency + 8 {
                for &(c, v) in pushes.iter().filter(|&&(c, _)| c == cycle) {
                    q.push(c + latency, v);
                }
                q.drain_due(cycle, &mut scratch);
                out.extend(scratch.drain(..).map(|v| (cycle, v)));
            }
            out
        };
        let mut sorted = EventQueue::sorted();
        let mut fifo = EventQueue::fifo();
        assert_eq!(run(&mut sorted), run(&mut fifo));
    }

    #[test]
    fn empty_queue_has_no_next_release() {
        let q: EventQueue<u32> = EventQueue::new(8);
        assert_eq!(q.next_release(123), None);
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn out_of_range_latency_falls_back_to_fifo() {
        assert!(matches!(EventQueue::<u32>::new(0), EventQueue::Fifo(_)));
        assert!(matches!(EventQueue::<u32>::new(1), EventQueue::Fifo(_)));
        assert!(matches!(EventQueue::<u32>::new(WHEEL_MAX_LATENCY + 1), EventQueue::Fifo(_)));
        assert!(matches!(EventQueue::<u32>::new(WHEEL_MAX_LATENCY), EventQueue::Wheel { .. }));
    }
}
