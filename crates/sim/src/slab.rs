//! A pooled slab of fixed-width value rows with a free list.
//!
//! The tagged engine's sparse token stores used to allocate a fresh
//! `vec![0; n_ports]` for every tag that received its first token and drop
//! it when the last token was consumed — one heap round-trip per dynamic
//! token set, on the hottest path of the unbounded-tag policies. The slab
//! replaces that with recycled rows carved out of one backing `Vec`: after
//! warm-up, acquiring and releasing a row touches no allocator at all.
//!
//! Rows are always handed out zeroed (matching the `vec![0; width]` the
//! slab replaces); zeroing happens on release, where the row's width is a
//! handful of ports at most.

use tyr_ir::Value;

/// A pool of fixed-width `Value` rows addressed by `u32` handles.
#[derive(Debug, Clone)]
pub struct ValueSlab {
    /// Values per row (a node's input-port count).
    width: usize,
    /// Backing storage: row `r` lives at `data[r * width .. (r + 1) * width]`.
    data: Vec<Value>,
    /// Recycled row handles, LIFO for cache warmth.
    free: Vec<u32>,
}

impl ValueSlab {
    /// An empty slab of `width`-value rows.
    pub fn new(width: usize) -> Self {
        ValueSlab { width, data: Vec::new(), free: Vec::new() }
    }

    /// The row width this slab was built with.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Hands out a zeroed row, recycling a released one when available.
    pub fn acquire(&mut self) -> u32 {
        if let Some(row) = self.free.pop() {
            return row;
        }
        // Zero-width rows (a node with no inputs) all share handle 0 and no
        // storage; the division below must not see width 0.
        let stride = self.width.max(1);
        let row = (self.data.len() / stride) as u32;
        self.data.resize(self.data.len() + self.width, 0);
        row
    }

    /// Returns `row` to the pool, zeroing it for its next tenant.
    pub fn release(&mut self, row: u32) {
        let start = row as usize * self.width;
        self.data[start..start + self.width].fill(0);
        self.free.push(row);
    }

    /// Reads one value of `row`.
    #[inline]
    pub fn get(&self, row: u32, port: u16) -> Value {
        self.data[row as usize * self.width + port as usize]
    }

    /// Writes one value of `row`.
    #[inline]
    pub fn set(&mut self, row: u32, port: u16, val: Value) {
        self.data[row as usize * self.width + port as usize] = val;
    }

    /// Rows ever carved out of the backing storage (capacity high-water
    /// mark, not current occupancy).
    pub fn rows_allocated(&self) -> usize {
        self.data.len() / self.width.max(1)
    }

    /// Rows currently parked on the free list.
    pub fn rows_free(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_zeroed_and_recycled() {
        let mut s = ValueSlab::new(3);
        let a = s.acquire();
        s.set(a, 0, 7);
        s.set(a, 2, -4);
        assert_eq!(s.get(a, 0), 7);
        assert_eq!(s.get(a, 1), 0);
        assert_eq!(s.get(a, 2), -4);
        s.release(a);
        let b = s.acquire();
        assert_eq!(b, a, "released row is recycled LIFO");
        assert_eq!((s.get(b, 0), s.get(b, 1), s.get(b, 2)), (0, 0, 0), "recycled row is zeroed");
    }

    #[test]
    fn steady_state_stops_growing() {
        let mut s = ValueSlab::new(4);
        // Churn far more acquire/release pairs than live rows: the backing
        // store must stay at the high-water mark.
        let mut live = Vec::new();
        for i in 0..1000 {
            live.push(s.acquire());
            if i % 2 == 1 {
                s.release(live.swap_remove(0));
            }
        }
        let high_water = s.rows_allocated();
        for _ in 0..10_000 {
            let r = s.acquire();
            s.release(r);
        }
        assert_eq!(s.rows_allocated(), high_water, "steady-state churn must not grow the slab");
    }

    #[test]
    fn zero_width_rows_are_safe() {
        let mut s = ValueSlab::new(0);
        let a = s.acquire();
        let b = s.acquire();
        s.release(a);
        s.release(b);
        assert_eq!(s.rows_allocated(), 0);
        assert_eq!(s.width(), 0);
    }
}
