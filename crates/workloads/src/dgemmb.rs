//! Blocked dense matrix-matrix multiplication (cache-stressing extension;
//! not part of the Table II suite).
//!
//! The same `C = A·B` as [`crate::dmm`], but tiled `bs×bs`: the three outer
//! loops walk block coordinates and the three inner loops stay inside one
//! tile, so the working set per tile triple is `3·bs²` words instead of
//! whole matrices. Under the two-level cache model this is the classic
//! locality contrast to the untiled kernel — and the headline workload for
//! `repro figure locality`, where TYR's local tag spaces keep the *dynamic*
//! access stream tile-shaped while global tag pools interleave tiles from
//! distant iterations.
//!
//! Partial products are accumulated into `C` with `store_add` (C starts
//! zeroed), so tiles over `k` commute and no cross-block accumulator needs
//! threading.

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, NO_OPERANDS};

use crate::workload::Workload;
use crate::{gen, oracle};

/// Builds blocked `C = A·B` with all matrices `n×n`, tile size `bs`, and
/// seeded random inputs.
///
/// # Panics
///
/// Panics unless `bs` divides `n` (tiles must cover the matrix exactly).
pub fn build(n: usize, bs: usize, seed: u64) -> Workload {
    assert!(bs > 0 && n.is_multiple_of(bs), "tile size {bs} must divide n = {n}");
    let a = gen::dense_matrix(seed, n, n);
    let b = gen::dense_matrix(seed.wrapping_add(1), n, n);

    let mut mem = MemoryImage::new();
    let a_ref = mem.alloc_init("A", &a);
    let b_ref = mem.alloc_init("B", &b);
    let c_ref = mem.alloc("C", n * n);

    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let nn = n as i64;
    let bb = bs as i64;

    // Block loops: (i0, j0, k0) in steps of bs.
    let [i0] = f.begin_loop("dgemmb_i0", [Operand::Const(0)]);
    let ci0 = f.lt(i0, nn);
    f.begin_body(ci0);
    let [j0, i0a] = f.begin_loop("dgemmb_j0", [Operand::Const(0), i0]);
    let cj0 = f.lt(j0, nn);
    f.begin_body(cj0);
    let [k0, j0a, i0b] = f.begin_loop("dgemmb_k0", [Operand::Const(0), j0, i0a]);
    let ck0 = f.lt(k0, nn);
    f.begin_body(ck0);

    // Tile loops: i in [i0, i0+bs), j in [j0, j0+bs), k in [k0, k0+bs).
    let iend = f.add(i0b, bb);
    let [i, ie, j0b, k0b] = f.begin_loop("dgemmb_i", [i0b, iend, j0a, k0]);
    let ci = f.lt(i, ie);
    f.begin_body(ci);
    let row = f.mul(i, nn);
    let jend = f.add(j0b, bb);
    let [j, je, rw, k0c] = f.begin_loop("dgemmb_j", [j0b, jend, row, k0b]);
    let cj = f.lt(j, je);
    f.begin_body(cj);
    let kend = f.add(k0c, bb);
    let [k, ke, acc, rw2, jv] = f.begin_loop("dgemmb_k", [k0c, kend, Operand::Const(0), rw, j]);
    let ck = f.lt(k, ke);
    f.begin_body(ck);
    let aoff = f.add(rw2, k);
    let aaddr = f.add(aoff, a_ref.base_const());
    let av = f.load(aaddr);
    let kn = f.mul(k, nn);
    let boff = f.add(kn, jv);
    let baddr = f.add(boff, b_ref.base_const());
    let bv = f.load(baddr);
    let prod = f.mul(av, bv);
    let acc2 = f.add(acc, prod);
    let k2 = f.add(k, 1);
    let [tile_acc] = f.end_loop([k2, ke, acc2, rw2, jv], [acc]);
    let coff = f.add(rw, j);
    let caddr = f.add(coff, c_ref.base_const());
    f.store_add(caddr, tile_acc);
    let j2 = f.add(j, 1);
    f.end_loop([j2, je, rw, k0c], NO_OPERANDS);
    let i2 = f.add(i, 1);
    f.end_loop([i2, ie, j0b, k0b], NO_OPERANDS);

    let k02 = f.add(k0, bb);
    f.end_loop([k02, j0a, i0b], NO_OPERANDS);
    let j02 = f.add(j0, bb);
    f.end_loop([j02, i0a], NO_OPERANDS);
    let i02 = f.add(i0, bb);
    f.end_loop([i02], NO_OPERANDS);
    let program = pb.finish(f, [Operand::Const(0)]);

    let mut w = Workload::new("dgemmb", format!("size: {n}x{n}, tile {bs}"), program, mem, vec![]);
    w.expect("C", c_ref, oracle::dmm(&a, &b, n));
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, validate::validate};

    #[test]
    fn validates_and_matches_oracle_under_vn() {
        let w = build(8, 4, 11);
        validate(&w.program).unwrap();
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }

    #[test]
    fn matches_untiled_dmm_result() {
        // Same seed, same inputs: the blocked kernel must produce the exact
        // C matrix the untiled one does (integer arithmetic commutes).
        let wb = build(8, 2, 3);
        let wu = crate::dmm::build(8, 3);
        let mut mb = wb.memory.clone();
        let mut mu = wu.memory.clone();
        interp::run(&wb.program, &mut mb, &wb.args).unwrap();
        interp::run(&wu.program, &mut mu, &wu.args).unwrap();
        wb.check(&mb).unwrap();
        wu.check(&mu).unwrap();
    }
}
