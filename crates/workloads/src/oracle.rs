//! Plain-Rust reference implementations of the seven kernels.
//!
//! These compute the expected output arrays that every engine's simulated
//! memory is checked against — the reproduction's end-to-end correctness
//! oracle.

use crate::gen::Csr;
use tyr_ir::Value;

/// Dense matrix-vector: `y = A·x`, `A` is `m×n` row-major.
pub fn dmv(a: &[Value], x: &[Value], m: usize, n: usize) -> Vec<Value> {
    (0..m).map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum()).collect()
}

/// Dense matrix-matrix: `C = A·B`, all `n×n` row-major.
pub fn dmm(a: &[Value], b: &[Value], n: usize) -> Vec<Value> {
    let mut c = vec![0; n * n];
    for i in 0..n {
        for k in 0..n {
            let av = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += av * b[k * n + j];
            }
        }
    }
    c
}

/// Dense 2-D convolution (valid padding): `img` is `h×w`, `flt` is `kh×kw`;
/// output is `(h-kh+1)×(w-kw+1)`.
pub fn dconv(img: &[Value], flt: &[Value], h: usize, w: usize, kh: usize, kw: usize) -> Vec<Value> {
    let oh = h - kh + 1;
    let ow = w - kw + 1;
    let mut out = vec![0; oh * ow];
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = 0;
            for fy in 0..kh {
                for fx in 0..kw {
                    acc += img[(oy + fy) * w + (ox + fx)] * flt[fy * kw + fx];
                }
            }
            out[oy * ow + ox] = acc;
        }
    }
    out
}

/// Sparse matrix (CSR) × dense vector.
pub fn smv(m: &Csr, x: &[Value]) -> Vec<Value> {
    (0..m.rows)
        .map(|i| {
            (m.ptr[i] as usize..m.ptr[i + 1] as usize)
                .map(|k| m.vals[k] * x[m.idx[k] as usize])
                .sum()
        })
        .collect()
}

/// Sparse matrix (CSC) × sparse vector, producing a dense accumulator of
/// length `m.cols` (the matrix's row dimension when read as CSC).
pub fn spmspv(m: &Csr, vidx: &[Value], vval: &[Value]) -> Vec<Value> {
    let mut y = vec![0; m.cols];
    for (t, &j) in vidx.iter().enumerate() {
        let vv = vval[t];
        for k in m.ptr[j as usize] as usize..m.ptr[j as usize + 1] as usize {
            y[m.idx[k] as usize] += m.vals[k] * vv;
        }
    }
    y
}

/// Sparse × sparse matrix multiply (both CSR, same square dimension),
/// producing a dense `n×n` output.
pub fn spmspm(a: &Csr, b: &Csr) -> Vec<Value> {
    let n = a.rows;
    let mut c = vec![0; n * n];
    for i in 0..n {
        for k in a.ptr[i] as usize..a.ptr[i + 1] as usize {
            let j = a.idx[k] as usize;
            let av = a.vals[k];
            for l in b.ptr[j] as usize..b.ptr[j + 1] as usize {
                c[i * n + b.idx[l] as usize] += av * b.vals[l];
            }
        }
    }
    c
}

/// Triangle count over a *forward* adjacency CSR (row `u` lists sorted
/// neighbors `v > u`), by sorted-list intersection — the same algorithm the
/// kernel implements.
pub fn count_triangles(g: &Csr) -> Value {
    let mut count = 0;
    for u in 0..g.rows {
        for e in g.ptr[u] as usize..g.ptr[u + 1] as usize {
            let v = g.idx[e] as usize;
            let (mut pa, ea) = (g.ptr[u] as usize, g.ptr[u + 1] as usize);
            let (mut pb, eb) = (g.ptr[v] as usize, g.ptr[v + 1] as usize);
            while pa < ea && pb < eb {
                let a = g.idx[pa];
                let b = g.idx[pb];
                if a == b {
                    count += 1;
                }
                if a <= b {
                    pa += 1;
                }
                if a >= b {
                    pb += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dmv_small() {
        // [1 2; 3 4] * [5, 6] = [17, 39]
        assert_eq!(dmv(&[1, 2, 3, 4], &[5, 6], 2, 2), vec![17, 39]);
    }

    #[test]
    fn dmm_identity() {
        let a = vec![1, 0, 0, 1];
        let b = vec![7, 8, 9, 10];
        assert_eq!(dmm(&a, &b, 2), b);
    }

    #[test]
    fn dconv_unit_filter() {
        let img: Vec<Value> = (0..16).collect(); // 4x4
        let flt = vec![1]; // 1x1 identity
        assert_eq!(dconv(&img, &flt, 4, 4, 1, 1), img);
        // 2x2 box filter on 3x3 of ones = 4s.
        let ones = vec![1; 9];
        assert_eq!(dconv(&ones, &[1, 1, 1, 1], 3, 3, 2, 2), vec![4; 4]);
    }

    #[test]
    fn smv_matches_dense() {
        // CSR of [1 0; 2 3]
        let m =
            Csr { rows: 2, cols: 2, ptr: vec![0, 1, 3], idx: vec![0, 0, 1], vals: vec![1, 2, 3] };
        assert_eq!(smv(&m, &[10, 100]), vec![10, 320]);
    }

    #[test]
    fn spmspv_small() {
        // CSC of a matrix with column 1 = [5, 0], column 0 = [0, 7]
        let m = Csr { rows: 2, cols: 2, ptr: vec![0, 1, 2], idx: vec![1, 0], vals: vec![7, 5] };
        // v = e1 * 2 (index 1, value 2): y = col1 * 2 = [10, 0]
        assert_eq!(spmspv(&m, &[1], &[2]), vec![10, 0]);
    }

    #[test]
    fn spmspm_matches_dense_mm() {
        use crate::gen::random_csr;
        let n = 16;
        let a = random_csr(10, n, n, 40);
        let b = random_csr(11, n, n, 40);
        let dense = |m: &Csr| {
            let mut d = vec![0; n * n];
            for i in 0..n {
                for k in m.ptr[i] as usize..m.ptr[i + 1] as usize {
                    d[i * n + m.idx[k] as usize] = m.vals[k];
                }
            }
            d
        };
        assert_eq!(spmspm(&a, &b), dmm(&dense(&a), &dense(&b), n));
    }

    #[test]
    fn triangles_of_k4() {
        // Complete graph on 4 nodes: forward adjacency.
        let g = Csr {
            rows: 4,
            cols: 4,
            ptr: vec![0, 3, 5, 6, 6],
            idx: vec![1, 2, 3, 2, 3, 3],
            vals: vec![1; 6],
        };
        assert_eq!(count_triangles(&g), 4);
    }

    #[test]
    fn triangles_of_triangle_free_graph() {
        // A 4-cycle has no triangles.
        let g = Csr {
            rows: 4,
            cols: 4,
            ptr: vec![0, 2, 3, 4, 4],
            idx: vec![1, 3, 2, 3],
            vals: vec![1; 4],
        };
        assert_eq!(count_triangles(&g), 0);
    }
}
