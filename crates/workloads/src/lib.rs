//! The seven evaluation kernels of the TYR paper (Table II), their input
//! generators, and plain-Rust oracles.
//!
//! | App | Pattern |
//! |-----|---------|
//! | [`dmv`] | dense matrix-vector (the running example, Fig. 3) |
//! | [`dmm`] | dense matrix-matrix, 3 nested loops |
//! | [`dconv`] | dense 2-D convolution |
//! | [`smv`] | CSR sparse matrix × dense vector (data-dependent trips) |
//! | [`spmspv`] | CSC sparse matrix × sparse vector (scatter-add) |
//! | [`spmspm`] | CSR × CSR sparse matrix multiply (Figs. 2, 16) |
//! | [`tc`] | triangle counting by sorted intersection (most irregular) |
//!
//! Each `build` function returns a [`Workload`]: the structured program, an
//! initialized [`tyr_ir::MemoryImage`], and the oracle-computed expected
//! outputs, so any engine's result can be verified with
//! [`Workload::check`].
//!
//! ```
//! use tyr_workloads::suite::{by_name, Scale};
//! use tyr_ir::interp;
//!
//! let w = by_name("dmv", Scale::Tiny, 42).unwrap();
//! let mut mem = w.memory.clone();
//! interp::run(&w.program, &mut mem, &w.args)?;
//! w.check(&mem)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod dconv;
pub mod dgemmb;
pub mod dmm;
pub mod dmv;
pub mod gen;
pub mod hist;
pub mod oracle;
pub mod smv;
pub mod spmspm;
pub mod spmspv;
pub mod suite;
pub mod tc;
pub mod workload;

pub use suite::{by_name, suite, Scale, APP_NAMES, CACHE_NAMES};
pub use workload::{CheckError, Workload};
