//! Dense 2-D convolution (Table II: 512×512 image, 11×11 filter). Three
//! nested loops — output row, output column, and a flattened filter loop
//! whose body recovers `(fy, fx)` with a divide/remainder, giving the
//! innermost block slightly richer arithmetic than the matrix kernels.

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, NO_OPERANDS};

use crate::workload::Workload;
use crate::{gen, oracle};

/// Builds a valid-padding convolution of a seeded `h×w` image with a
/// seeded `kh×kw` filter.
///
/// # Panics
///
/// Panics if the filter is larger than the image.
pub fn build(h: usize, w: usize, kh: usize, kw: usize, seed: u64) -> Workload {
    assert!(kh <= h && kw <= w, "filter larger than image");
    let img = gen::dense_matrix(seed, h, w);
    let flt = gen::dense_matrix(seed.wrapping_add(1), kh, kw);
    let (oh, ow) = (h - kh + 1, w - kw + 1);

    let mut mem = MemoryImage::new();
    let img_ref = mem.alloc_init("img", &img);
    let flt_ref = mem.alloc_init("flt", &flt);
    let out_ref = mem.alloc("out", oh * ow);

    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [oy] = f.begin_loop("dconv_oy", [0]);
    let cy = f.lt(oy, oh as i64);
    f.begin_body(cy);
    let [ox, oyy] = f.begin_loop("dconv_ox", [Operand::Const(0), oy]);
    let cx = f.lt(ox, ow as i64);
    f.begin_body(cx);
    let kk = (kh * kw) as i64;
    let [fi, acc, oy3, ox3] =
        f.begin_loop("dconv_f", [Operand::Const(0), Operand::Const(0), oyy, ox]);
    let cf = f.lt(fi, kk);
    f.begin_body(cf);
    let fy = f.div(fi, kw as i64);
    let fx = f.rem(fi, kw as i64);
    let iy = f.add(oy3, fy);
    let ix = f.add(ox3, fx);
    let irow = f.mul(iy, w as i64);
    let ioff = f.add(irow, ix);
    let iaddr = f.add(ioff, img_ref.base_const());
    let iv = f.load(iaddr);
    let faddr = f.add(fi, flt_ref.base_const());
    let fv = f.load(faddr);
    let prod = f.mul(iv, fv);
    let acc2 = f.add(acc, prod);
    let fi2 = f.add(fi, 1);
    let [acc_out] = f.end_loop([fi2, acc2, oy3, ox3], [acc]);
    let orow = f.mul(oyy, ow as i64);
    let ooff = f.add(orow, ox);
    let oaddr = f.add(ooff, out_ref.base_const());
    f.store(oaddr, acc_out);
    let ox2 = f.add(ox, 1);
    f.end_loop([ox2, oyy], NO_OPERANDS);
    let oy2 = f.add(oy, 1);
    f.end_loop([oy2], NO_OPERANDS);
    let program = pb.finish(f, [Operand::Const(0)]);

    let mut wl =
        Workload::new("dconv", format!("image: {h}x{w}, filter: {kh}x{kw}"), program, mem, vec![]);
    wl.expect("out", out_ref, oracle::dconv(&img, &flt, h, w, kh, kw));
    wl
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, validate::validate};

    #[test]
    fn validates_and_matches_oracle_under_vn() {
        let w = build(8, 9, 3, 2, 5);
        validate(&w.program).unwrap();
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }
}
