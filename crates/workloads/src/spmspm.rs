//! Sparse matrix × sparse matrix (Table II; the headline workload of
//! Figs. 2 and 16). Three nested loops, the inner two with data-dependent
//! trip counts; partial products scatter into a dense output with atomic
//! adds.

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, NO_OPERANDS};

use crate::gen::{self, Csr};
use crate::oracle;
use crate::workload::Workload;

/// Builds `C = A·B` for explicit CSR operands of equal square dimension.
///
/// # Panics
///
/// Panics if the operands are not square and same-sized.
pub fn build_from(a: &Csr, b: &Csr, _seed: u64) -> Workload {
    assert_eq!(a.rows, a.cols);
    assert_eq!(a.rows, b.rows);
    assert_eq!(b.rows, b.cols);
    let n = a.rows;

    let mut mem = MemoryImage::new();
    let pa_ref = mem.alloc_init("ptrA", &a.ptr);
    let ia_ref = mem.alloc_init("idxA", &a.idx);
    let va_ref = mem.alloc_init("valA", &a.vals);
    let pb_ref = mem.alloc_init("ptrB", &b.ptr);
    let ib_ref = mem.alloc_init("idxB", &b.idx);
    let vb_ref = mem.alloc_init("valB", &b.vals);
    let c_ref = mem.alloc("C", n * n);

    let mut pbld = ProgramBuilder::new();
    let mut f = pbld.func("main", 0);
    let [i] = f.begin_loop("spmspm_i", [0]);
    let ci = f.lt(i, n as i64);
    f.begin_body(ci);
    let paddr = f.add(i, pa_ref.base_const());
    let ka = f.load(paddr);
    let paddr1 = f.add(paddr, 1);
    let ha = f.load(paddr1);
    let row_c = f.mul(i, n as i64);
    let [k, hac, rc] = f.begin_loop("spmspm_k", [ka, ha, row_c]);
    let ck = f.lt(k, hac);
    f.begin_body(ck);
    let jaddr = f.add(k, ia_ref.base_const());
    let j = f.load(jaddr);
    let avaddr = f.add(k, va_ref.base_const());
    let av = f.load(avaddr);
    let pbaddr = f.add(j, pb_ref.base_const());
    let lb = f.load(pbaddr);
    let pbaddr1 = f.add(pbaddr, 1);
    let hb = f.load(pbaddr1);
    let [l, hbc, avc, rcc] = f.begin_loop("spmspm_l", [lb, hb, av, rc]);
    let cl = f.lt(l, hbc);
    f.begin_body(cl);
    let cbaddr = f.add(l, ib_ref.base_const());
    let cb = f.load(cbaddr);
    let bvaddr = f.add(l, vb_ref.base_const());
    let bv = f.load(bvaddr);
    let prod = f.mul(avc, bv);
    let coff = f.add(rcc, cb);
    let caddr = f.add(coff, c_ref.base_const());
    f.store_add(caddr, prod);
    let l2 = f.add(l, 1);
    f.end_loop([l2, hbc, avc, rcc], NO_OPERANDS);
    let k2 = f.add(k, 1);
    f.end_loop([k2, hac, rc], NO_OPERANDS);
    let i2 = f.add(i, 1);
    f.end_loop([i2], NO_OPERANDS);
    let program = pbld.finish(f, [Operand::Const(0)]);

    let mut w = Workload::new(
        "spmspm",
        format!("size: {n}x{n}, nnzA: {}, nnzB: {}", a.nnz(), b.nnz()),
        program,
        mem,
        vec![],
    );
    w.expect("C", c_ref, oracle::spmspm(a, b));
    w
}

/// Builds spmspm on seeded random `n×n` operands with the given density.
pub fn build(n: usize, density: f64, seed: u64) -> Workload {
    let nnz = ((n * n) as f64 * density) as usize;
    let a = gen::random_csr(seed, n, n, nnz);
    let b = gen::random_csr(seed.wrapping_add(1), n, n, nnz);
    build_from(&a, &b, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, validate::validate};

    #[test]
    fn validates_and_matches_oracle_under_vn() {
        let w = build(12, 0.15, 9);
        validate(&w.program).unwrap();
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::gen::Csr;
    use tyr_ir::interp;

    #[test]
    fn empty_rows_and_empty_matrix() {
        // A has an empty row; B has an empty row reachable through A.
        let a = Csr {
            rows: 3,
            cols: 3,
            ptr: vec![0, 0, 2, 3],
            idx: vec![0, 2, 1],
            vals: vec![2, 3, 4],
        };
        let b = Csr { rows: 3, cols: 3, ptr: vec![0, 1, 1, 2], idx: vec![1, 0], vals: vec![5, 7] };
        let w = build_from(&a, &b, 0);
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();

        // Fully empty operands: zero-trip everywhere.
        let z = Csr { rows: 2, cols: 2, ptr: vec![0, 0, 0], idx: vec![], vals: vec![] };
        let w = build_from(&z, &z, 0);
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }
}
