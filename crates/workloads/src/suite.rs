//! The full benchmark suite at standard scales.

use crate::workload::Workload;
use crate::{dconv, dgemmb, dmm, dmv, hist, smv, spmspm, spmspv, tc};

/// Input scale presets.
///
/// `Paper` reproduces Table II exactly (50M–1B dynamic instructions per
/// app — expect long simulations, especially for the unordered baseline
/// whose live state reaches tens of millions of tokens). `Small` keeps every
/// app under a few million dynamic instructions while preserving the same
/// loop structure; `Tiny` is for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long simulations; the default for the `repro` harness.
    Small,
    /// Sub-second instances for integration tests.
    Tiny,
    /// Table II sizes.
    Paper,
}

/// The names of the seven applications, in Table II order.
pub const APP_NAMES: [&str; 7] = ["dmv", "dmm", "dconv", "smv", "spmspv", "spmspm", "tc"];

/// Cache-stressing extension workloads: available through [`by_name`] (and
/// the cache-model experiments), but deliberately *not* part of
/// [`APP_NAMES`]/[`suite`] — the Table II figures and the perf-baseline
/// schema are pinned to the paper's seven applications.
pub const CACHE_NAMES: [&str; 2] = ["dgemmb", "hist"];

/// Builds one application by name at the given scale.
///
/// Returns `None` for an unknown name.
pub fn by_name(name: &str, scale: Scale, seed: u64) -> Option<Workload> {
    Some(match (name, scale) {
        ("dmv", Scale::Tiny) => dmv::build(12, 12, seed),
        ("dmv", Scale::Small) => dmv::build(256, 256, seed),
        ("dmv", Scale::Paper) => dmv::build(4096, 4096, seed),

        ("dmm", Scale::Tiny) => dmm::build(8, seed),
        ("dmm", Scale::Small) => dmm::build(40, seed),
        ("dmm", Scale::Paper) => dmm::build(256, seed),

        ("dconv", Scale::Tiny) => dconv::build(10, 10, 3, 3, seed),
        ("dconv", Scale::Small) => dconv::build(64, 64, 7, 7, seed),
        ("dconv", Scale::Paper) => dconv::build(512, 512, 11, 11, seed),

        ("smv", Scale::Tiny) => smv::build(32, 4, 0.5, seed),
        ("smv", Scale::Small) => smv::build(1024, 16, 0.5, seed),
        // trdheim substitute: 22098², ~88 nnz/row banded.
        ("smv", Scale::Paper) => smv::build(22_098, 44, 1.0, seed),

        ("spmspv", Scale::Tiny) => spmspv::build(48, 160, 8, seed),
        ("spmspv", Scale::Small) => spmspv::build(2048, 8192, 128, seed),
        // M6-subset substitute: 32276², 74482 matrix nnz, 1638 vector nnz.
        ("spmspv", Scale::Paper) => spmspv::build(32_276, 74_482, 1_638, seed),

        ("spmspm", Scale::Tiny) => spmspm::build(16, 0.1, seed),
        ("spmspm", Scale::Small) => spmspm::build(96, 0.05, seed),
        ("spmspm", Scale::Paper) => spmspm::build(256, 0.05, seed),

        ("tc", Scale::Tiny) => tc::build(48, 6, 0.1, seed),
        ("tc", Scale::Small) => tc::build(384, 10, 0.1, seed),
        // Navigable-small-world substitute: 16384 nodes, ~206K edges
        // (k = 26 ring degree ≈ 213K undirected edges).
        ("tc", Scale::Paper) => tc::build(16_384, 26, 0.1, seed),

        // Cache-stressing extensions (see `CACHE_NAMES`). Sizes are chosen
        // against the default cache geometry (4 KiB L1 / 64 KiB L2): Tiny
        // fits L2 but not L1; Small overflows L2.
        ("dgemmb", Scale::Tiny) => dgemmb::build(16, 4, seed),
        ("dgemmb", Scale::Small) => dgemmb::build(48, 8, seed),
        ("dgemmb", Scale::Paper) => dgemmb::build(192, 16, seed),

        ("hist", Scale::Tiny) => hist::build(1024, 256, seed),
        ("hist", Scale::Small) => hist::build(16_384, 4096, seed),
        ("hist", Scale::Paper) => hist::build(1 << 20, 65_536, seed),

        _ => return None,
    })
}

/// Builds all seven Table II applications at the given scale.
pub fn suite(scale: Scale, seed: u64) -> Vec<Workload> {
    APP_NAMES.iter().map(|n| by_name(n, scale, seed).expect("known name")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::validate::validate;

    #[test]
    fn all_tiny_apps_build_and_validate() {
        let apps = suite(Scale::Tiny, 1);
        assert_eq!(apps.len(), 7);
        for w in &apps {
            validate(&w.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(w.expectation_count() >= 1, "{} has no oracle outputs", w.name);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nope", Scale::Tiny, 0).is_none());
    }

    #[test]
    fn small_scale_apps_build() {
        for name in APP_NAMES {
            let w = by_name(name, Scale::Small, 2).unwrap();
            validate(&w.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}

#[cfg(test)]
mod paper_scale_tests {
    use super::*;

    /// Paper-scale inputs build and their oracles compute (no simulation).
    /// ~1 GB of transient memory and a few seconds; ignored by default.
    #[test]
    #[ignore = "builds paper-scale inputs (~1 GB, seconds); run explicitly"]
    fn paper_scale_workloads_build() {
        for name in APP_NAMES {
            let w = by_name(name, Scale::Paper, 1).unwrap();
            tyr_ir::validate::validate(&w.program).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(w.expectation_count() >= 1, "{name}");
        }
    }
}
