//! Dense matrix-matrix multiplication: three nested loops (Table II).
//! Fig. 18 uses this app to show per-region tag tuning (its outermost loop
//! is named `dmm_i`).

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, NO_OPERANDS};

use crate::workload::Workload;
use crate::{gen, oracle};

/// Builds `C = A·B` with all matrices `n×n` and seeded random inputs.
pub fn build(n: usize, seed: u64) -> Workload {
    let a = gen::dense_matrix(seed, n, n);
    let b = gen::dense_matrix(seed.wrapping_add(1), n, n);

    let mut mem = MemoryImage::new();
    let a_ref = mem.alloc_init("A", &a);
    let b_ref = mem.alloc_init("B", &b);
    let c_ref = mem.alloc("C", n * n);

    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let nn = n as i64;
    let [i] = f.begin_loop("dmm_i", [0]);
    let ci = f.lt(i, nn);
    f.begin_body(ci);
    let row_a = f.mul(i, nn);
    let [j, ra] = f.begin_loop("dmm_j", [Operand::Const(0), row_a]);
    let cj = f.lt(j, nn);
    f.begin_body(cj);
    let [k, acc, raa, jj] = f.begin_loop("dmm_k", [Operand::Const(0), Operand::Const(0), ra, j]);
    let ck = f.lt(k, nn);
    f.begin_body(ck);
    let aoff = f.add(raa, k);
    let aaddr = f.add(aoff, a_ref.base_const());
    let av = f.load(aaddr);
    let kn = f.mul(k, nn);
    let boff = f.add(kn, jj);
    let baddr = f.add(boff, b_ref.base_const());
    let bv = f.load(baddr);
    let prod = f.mul(av, bv);
    let acc2 = f.add(acc, prod);
    let k2 = f.add(k, 1);
    let [acc_out] = f.end_loop([k2, acc2, raa, jj], [acc]);
    let coff = f.add(ra, j);
    let caddr = f.add(coff, c_ref.base_const());
    f.store(caddr, acc_out);
    let j2 = f.add(j, 1);
    f.end_loop([j2, ra], NO_OPERANDS);
    let i2 = f.add(i, 1);
    f.end_loop([i2], NO_OPERANDS);
    let program = pb.finish(f, [Operand::Const(0)]);

    let mut w = Workload::new("dmm", format!("size: {n}x{n}"), program, mem, vec![]);
    w.expect("C", c_ref, oracle::dmm(&a, &b, n));
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, validate::validate};

    #[test]
    fn validates_and_matches_oracle_under_vn() {
        let w = build(6, 11);
        validate(&w.program).unwrap();
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }
}
