//! Dense matrix-vector multiplication — the paper's running example
//! (Fig. 3). Two nested loops; the inner loop accumulates one output row.

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, NO_OPERANDS};

use crate::workload::Workload;
use crate::{gen, oracle};

/// Builds `y = A·x` with `A` of size `m×n` and seeded random inputs.
pub fn build(m: usize, n: usize, seed: u64) -> Workload {
    let a = gen::dense_matrix(seed, m, n);
    let x = gen::dense_vector(seed.wrapping_add(1), n);

    let mut mem = MemoryImage::new();
    let a_ref = mem.alloc_init("A", &a);
    let x_ref = mem.alloc_init("x", &x);
    let y_ref = mem.alloc("y", m);

    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [i] = f.begin_loop("dmv_outer", [0]);
    let c = f.lt(i, m as i64);
    f.begin_body(c);
    let rowbase = f.mul(i, n as i64);
    let [j, w, rb] = f.begin_loop("dmv_inner", [Operand::Const(0), Operand::Const(0), rowbase]);
    let cj = f.lt(j, n as i64);
    f.begin_body(cj);
    let arow = f.add(rb, j);
    let aaddr = f.add(arow, a_ref.base_const());
    let av = f.load(aaddr);
    let xaddr = f.add(j, x_ref.base_const());
    let xv = f.load(xaddr);
    let prod = f.mul(av, xv);
    let w2 = f.add(w, prod);
    let j2 = f.add(j, 1);
    let [w_out] = f.end_loop([j2, w2, rb], [w]);
    let yaddr = f.add(i, y_ref.base_const());
    f.store(yaddr, w_out);
    let i2 = f.add(i, 1);
    f.end_loop([i2], NO_OPERANDS);
    let program = pb.finish(f, [Operand::Const(0)]);

    let mut w = Workload::new("dmv", format!("size: {m}x{n}"), program, mem, vec![]);
    w.expect("y", y_ref, oracle::dmv(&a, &x, m, n));
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, validate::validate};

    #[test]
    fn validates_and_matches_oracle_under_vn() {
        let w = build(9, 7, 42);
        validate(&w.program).unwrap();
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }
}
