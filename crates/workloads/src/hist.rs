//! Skewed histogram (cache-stressing extension; not part of the Table II
//! suite).
//!
//! One pass over `m` items, each a precomputed bin index in `[0, bins)`,
//! accumulated with `store_add`. The bin distribution is deliberately
//! skewed: most items land in a small hot set of bins, the rest scatter
//! uniformly. Under the two-level cache model the hot bins pin a handful of
//! lines (near-perfect L1 reuse) while the cold tail strides the whole
//! `bins`-word table — a data-dependent locality profile the dense kernels
//! cannot produce, and a direct stress on the MSHR table when many cold
//! misses are in flight at once.

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, Value, NO_OPERANDS};

use crate::gen::SplitMix64;
use crate::workload::Workload;

/// Fraction of items drawn from the hot bin set.
const HOT_FRACTION: f64 = 0.875;

/// The skewed item stream: `HOT_FRACTION` of items in the first `bins/16`
/// bins, the rest uniform over all bins.
///
/// # Panics
///
/// Panics if `bins < 16` (the hot set must be nonempty).
fn skewed_data(m: usize, bins: usize, seed: u64) -> Vec<Value> {
    assert!(bins >= 16, "need at least 16 bins, got {bins}");
    let hot = bins / 16;
    let mut rng = SplitMix64::new(seed);
    (0..m)
        .map(|_| {
            if rng.gen_bool(HOT_FRACTION) {
                rng.gen_index(hot) as Value
            } else {
                rng.gen_index(bins) as Value
            }
        })
        .collect()
}

/// Builds a histogram of `m` skewed items over `bins` bins.
///
/// # Panics
///
/// Panics if `bins < 16` (the hot set is `bins / 16` and must be nonempty).
pub fn build(m: usize, bins: usize, seed: u64) -> Workload {
    let data = skewed_data(m, bins, seed);
    let mut counts = vec![0; bins];
    for &b in &data {
        counts[b as usize] += 1;
    }

    let mut mem = MemoryImage::new();
    let d_ref = mem.alloc_init("data", &data);
    let h_ref = mem.alloc("hist", bins);

    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let mm = m as i64;
    let [i] = f.begin_loop("hist_i", [Operand::Const(0)]);
    let c = f.lt(i, mm);
    f.begin_body(c);
    let daddr = f.add(i, d_ref.base_const());
    let bin = f.load(daddr);
    let haddr = f.add(bin, h_ref.base_const());
    f.store_add(haddr, 1);
    let i2 = f.add(i, 1);
    f.end_loop([i2], NO_OPERANDS);
    let program = pb.finish(f, [Operand::Const(0)]);

    let mut w = Workload::new("hist", format!("items: {m}, bins: {bins}"), program, mem, vec![]);
    w.expect("hist", h_ref, counts);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, validate::validate};

    #[test]
    fn validates_and_matches_oracle_under_vn() {
        let w = build(300, 64, 9);
        validate(&w.program).unwrap();
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }

    #[test]
    fn distribution_is_actually_skewed() {
        // The hot set is bins/16 = 4 bins; ~87.5% of items must land there.
        let data = skewed_data(2000, 64, 5);
        let hot_mass = data.iter().filter(|&&b| b < 4).count();
        assert!(hot_mass > 1600, "only {hot_mass}/2000 items in the hot set");
        // And the cold tail still touches most of the table.
        let distinct = data.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct > 32, "only {distinct} distinct bins");
    }
}
