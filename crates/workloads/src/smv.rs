//! Sparse matrix-vector multiplication over CSR (Table II). The inner
//! loop's trip count is data-dependent (`rowptr[i+1] - rowptr[i]`), the
//! pattern that motivates tagged dataflow for irregular workloads.
//!
//! The paper runs smv on SuiteSparse DNVS/trdheim (22098², 1.94M nonzeros,
//! a banded FEM structure); we substitute a seeded banded matrix of matching
//! shape (DESIGN.md §2).

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, NO_OPERANDS};

use crate::gen::{self, Csr};
use crate::oracle;
use crate::workload::Workload;

/// Builds `y = M·x` for an explicit CSR matrix.
pub fn build_from(m: &Csr, seed: u64) -> Workload {
    let x = gen::dense_vector(seed.wrapping_add(7), m.cols);

    let mut mem = MemoryImage::new();
    let ptr_ref = mem.alloc_init("rowptr", &m.ptr);
    let idx_ref = mem.alloc_init("colidx", &m.idx);
    let val_ref = mem.alloc_init("vals", &m.vals);
    let x_ref = mem.alloc_init("x", &x);
    let y_ref = mem.alloc("y", m.rows);

    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [i] = f.begin_loop("smv_rows", [0]);
    let c = f.lt(i, m.rows as i64);
    f.begin_body(c);
    let paddr = f.add(i, ptr_ref.base_const());
    let lo = f.load(paddr);
    let paddr1 = f.add(paddr, 1);
    let hi = f.load(paddr1);
    let [k, acc, hic] = f.begin_loop("smv_nnz", [lo, Operand::Const(0), hi]);
    let ck = f.lt(k, hic);
    f.begin_body(ck);
    let vaddr = f.add(k, val_ref.base_const());
    let v = f.load(vaddr);
    let caddr = f.add(k, idx_ref.base_const());
    let col = f.load(caddr);
    let xaddr = f.add(col, x_ref.base_const());
    let xv = f.load(xaddr);
    let prod = f.mul(v, xv);
    let acc2 = f.add(acc, prod);
    let k2 = f.add(k, 1);
    let [acc_out] = f.end_loop([k2, acc2, hic], [acc]);
    let yaddr = f.add(i, y_ref.base_const());
    f.store(yaddr, acc_out);
    let i2 = f.add(i, 1);
    f.end_loop([i2], NO_OPERANDS);
    let program = pb.finish(f, [Operand::Const(0)]);

    let mut w = Workload::new(
        "smv",
        format!("size: {}x{}, non-zeros: {}", m.rows, m.cols, m.nnz()),
        program,
        mem,
        vec![],
    );
    w.expect("y", y_ref, oracle::smv(m, &x));
    w
}

/// Builds smv on a seeded banded matrix (the trdheim substitute): size
/// `n×n`, bandwidth `band`, in-band density `density`.
pub fn build(n: usize, band: usize, density: f64, seed: u64) -> Workload {
    let m = gen::banded_csr(seed, n, band, density);
    build_from(&m, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, validate::validate};

    #[test]
    fn validates_and_matches_oracle_under_vn() {
        let w = build(24, 4, 0.6, 3);
        validate(&w.program).unwrap();
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }

    #[test]
    fn handles_empty_rows() {
        // A matrix with completely empty rows exercises zero-trip inner loops.
        let m = Csr { rows: 3, cols: 3, ptr: vec![0, 0, 2, 2], idx: vec![0, 2], vals: vec![4, 5] };
        let w = build_from(&m, 1);
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use tyr_ir::interp;

    #[test]
    fn single_row_single_nonzero() {
        let m = Csr { rows: 1, cols: 1, ptr: vec![0, 1], idx: vec![0], vals: vec![3] };
        let w = build_from(&m, 0);
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }
}
