//! Triangle counting (Table II). For each forward edge `(u, v)` the kernel
//! intersects the sorted forward-adjacency lists of `u` and `v` with a
//! two-pointer loop — a while-loop whose condition and advance are fully
//! data-dependent, the most irregular control flow in the suite. Matches
//! are accumulated into a global counter cell with `store_add`.
//!
//! The paper runs tc on a navigable small-world graph; we substitute a
//! seeded Watts–Strogatz small-world graph (DESIGN.md §2).

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, NO_OPERANDS};

use crate::gen::{self, Csr};
use crate::oracle;
use crate::workload::Workload;

/// Builds triangle counting over an explicit forward-adjacency CSR.
pub fn build_from(g: &Csr, _seed: u64) -> Workload {
    let mut mem = MemoryImage::new();
    let ptr_ref = mem.alloc_init("rowptr", &g.ptr);
    let adj_ref = mem.alloc_init("adj", &g.idx);
    let cnt_ref = mem.alloc("count", 1);

    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [u] = f.begin_loop("tc_nodes", [0]);
    let cu = f.lt(u, g.rows as i64);
    f.begin_body(cu);
    let paddr = f.add(u, ptr_ref.base_const());
    let lo_u = f.load(paddr);
    let paddr1 = f.add(paddr, 1);
    let hi_u = f.load(paddr1);
    let [e, ee, lou] = f.begin_loop("tc_edges", [lo_u, hi_u, lo_u]);
    let ce = f.lt(e, ee);
    f.begin_body(ce);
    let vaddr = f.add(e, adj_ref.base_const());
    let v = f.load(vaddr);
    let pvaddr = f.add(v, ptr_ref.base_const());
    let lo_v = f.load(pvaddr);
    let pvaddr1 = f.add(pvaddr, 1);
    let hi_v = f.load(pvaddr1);
    // Two-pointer sorted intersection of adj[u] and adj[v].
    let [pa, ea, pbp, eb] = f.begin_loop("tc_intersect", [lou, ee, lo_v, hi_v]);
    let ca = f.lt(pa, ea);
    let cb = f.lt(pbp, eb);
    let both = f.and_(ca, cb);
    f.begin_body(both);
    let aaddr = f.add(pa, adj_ref.base_const());
    let a = f.load(aaddr);
    let baddr = f.add(pbp, adj_ref.base_const());
    let b = f.load(baddr);
    let eq = f.eq(a, b);
    f.store_add(cnt_ref.base_const(), eq);
    let adv_a = f.le(a, b);
    let adv_b = f.ge(a, b);
    let pa2 = f.add(pa, adv_a);
    let pb2 = f.add(pbp, adv_b);
    f.end_loop([pa2, ea, pb2, eb], NO_OPERANDS);
    let e2 = f.add(e, 1);
    f.end_loop([e2, ee, lou], NO_OPERANDS);
    let u2 = f.add(u, 1);
    f.end_loop([u2], NO_OPERANDS);
    let program = pb.finish(f, [Operand::Const(0)]);

    let mut w =
        Workload::new("tc", format!("nodes: {}, edges: {}", g.rows, g.nnz()), program, mem, vec![]);
    w.expect("count", cnt_ref, vec![oracle::count_triangles(g)]);
    w
}

/// Builds tc on a seeded Watts–Strogatz small-world graph with `n` nodes,
/// ring degree `k`, and rewiring probability `p`.
pub fn build(n: usize, k: usize, p: f64, seed: u64) -> Workload {
    let g = gen::watts_strogatz_forward(seed, n, k, p);
    build_from(&g, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, validate::validate};

    #[test]
    fn validates_and_matches_oracle_under_vn() {
        let w = build(40, 6, 0.1, 17);
        validate(&w.program).unwrap();
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }

    #[test]
    fn counts_k4_triangles() {
        let g = Csr {
            rows: 4,
            cols: 4,
            ptr: vec![0, 3, 5, 6, 6],
            idx: vec![1, 2, 3, 2, 3, 3],
            vals: vec![1; 6],
        };
        let w = build_from(&g, 0);
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
        assert_eq!(mem.slice(mem.array("count").unwrap()), &[4]);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use tyr_ir::interp;

    #[test]
    fn isolated_nodes_and_empty_graph() {
        // Nodes with no forward edges at all.
        let g = Csr { rows: 5, cols: 5, ptr: vec![0, 0, 0, 0, 0, 0], idx: vec![], vals: vec![] };
        let w = build_from(&g, 0);
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
        assert_eq!(mem.slice(mem.array("count").unwrap()), &[0]);
    }

    #[test]
    fn single_triangle() {
        let g =
            Csr { rows: 3, cols: 3, ptr: vec![0, 2, 3, 3], idx: vec![1, 2, 2], vals: vec![1; 3] };
        let w = build_from(&g, 0);
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
        assert_eq!(mem.slice(mem.array("count").unwrap()), &[1]);
    }
}
