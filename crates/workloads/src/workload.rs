//! The [`Workload`] bundle: a built program, its memory image, and the
//! expected outputs from the reference oracle.

use std::fmt;

use tyr_ir::{ArrayRef, MemoryImage, Program, Value};

/// One benchmark instance, ready to lower and simulate on any engine.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (Table II's abbreviation: `dmv`, `spmspm`, …).
    pub name: String,
    /// Human-readable parameter description.
    pub params: String,
    /// The structured program.
    pub program: Program,
    /// Initial memory (inputs + zeroed outputs).
    pub memory: MemoryImage,
    /// Program arguments.
    pub args: Vec<Value>,
    expected: Vec<(String, ArrayRef, Vec<Value>)>,
}

/// A mismatch between simulated memory and the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// The workload name.
    pub workload: String,
    /// The output array that differs.
    pub array: String,
    /// First differing element index.
    pub index: usize,
    /// Expected word.
    pub expected: Value,
    /// Simulated word.
    pub got: Value,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: output '{}' differs at [{}]: expected {}, got {}",
            self.workload, self.array, self.index, self.expected, self.got
        )
    }
}

impl std::error::Error for CheckError {}

impl Workload {
    /// Creates a workload with no expectations yet.
    pub fn new(
        name: impl Into<String>,
        params: impl Into<String>,
        program: Program,
        memory: MemoryImage,
        args: Vec<Value>,
    ) -> Self {
        Workload {
            name: name.into(),
            params: params.into(),
            program,
            memory,
            args,
            expected: Vec::new(),
        }
    }

    /// Registers an expected output array.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the array.
    pub fn expect(&mut self, name: impl Into<String>, array: ArrayRef, values: Vec<Value>) {
        assert_eq!(array.len, values.len(), "expected-output length mismatch");
        self.expected.push((name.into(), array, values));
    }

    /// Checks a simulated memory against every registered expectation.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch found.
    pub fn check(&self, mem: &MemoryImage) -> Result<(), CheckError> {
        for (name, array, values) in &self.expected {
            let got = mem.slice(*array);
            for (i, (&e, &g)) in values.iter().zip(got).enumerate() {
                if e != g {
                    return Err(CheckError {
                        workload: self.name.clone(),
                        array: name.clone(),
                        index: i,
                        expected: e,
                        got: g,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of registered expected-output arrays.
    pub fn expectation_count(&self) -> usize {
        self.expected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::build::ProgramBuilder;

    fn trivial() -> (Workload, ArrayRef) {
        let mut mem = MemoryImage::new();
        let out = mem.alloc("out", 2);
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let r = f.add(1, 2);
        let p = pb.finish(f, [r]);
        let mut w = Workload::new("t", "tiny", p, mem, vec![]);
        w.expect("out", out, vec![10, 20]);
        (w, out)
    }

    #[test]
    fn check_passes_on_matching_memory() {
        let (w, out) = trivial();
        let mut mem = w.memory.clone();
        mem.slice_mut(out).copy_from_slice(&[10, 20]);
        assert!(w.check(&mem).is_ok());
        assert_eq!(w.expectation_count(), 1);
    }

    #[test]
    fn check_reports_first_mismatch() {
        let (w, out) = trivial();
        let mut mem = w.memory.clone();
        mem.slice_mut(out).copy_from_slice(&[10, 21]);
        let err = w.check(&mem).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.expected, 20);
        assert_eq!(err.got, 21);
        assert!(err.to_string().contains("differs"));
    }
}
