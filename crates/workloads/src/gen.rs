//! Seeded input generators.
//!
//! The paper's dense apps run on random inputs; its sparse apps use
//! SuiteSparse matrices (DNVS/trdheim for smv, a DIMACS10/M6 subset for
//! spmspv) and a navigable small-world graph for tc. Those external datasets
//! are substituted with seeded synthetic inputs that preserve the properties
//! the engines are sensitive to — nonzero *structure* (trip-count
//! irregularity and data-dependent control flow), not numeric content; see
//! DESIGN.md §2:
//!
//! * [`banded_csr`] — banded symmetric structure, like the trdheim FEM
//!   matrix;
//! * [`random_csr`] / [`sparse_vector`] — uniform random sparsity for the
//!   M6 substitute;
//! * [`watts_strogatz_forward`] — a small-world graph (high clustering,
//!   short paths) for triangle counting.
//!
//! All generators are deterministic in their seed.

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{AluOp, ArrayRef, MemoryImage, Operand, Program, Value};

/// SplitMix64 — the dependency-free seeded PRNG behind every generator.
///
/// The repository builds with no registry access, so `rand` is deliberately
/// not a dependency; SplitMix64 (Steele, Lea & Flood, OOPSLA '14 — the
/// `java.util.SplittableRandom` mixer) gives 64 bits of well-mixed output
/// per step from three shift-xor-multiply rounds, which is more than enough
/// statistical quality for input synthesis. Determinism per seed is part of
/// the public contract: figures and tests key on it.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Every seed, including 0, is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits of the next output).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses the widening-multiply range reduction (Lemire), which avoids the
    /// modulo bias of `next_u64() % n` without a rejection loop.
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "gen_index range must be nonempty");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.gen_index((hi - lo) as usize) as i64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A sparse matrix in compressed-sparse-row form (also used column-wise as
/// CSC by spmspv — the format is symmetric in interpretation).
#[derive(Debug, Clone)]
pub struct Csr {
    /// Number of rows (or columns for CSC usage).
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// `rows + 1` offsets into `idx`/`vals`.
    pub ptr: Vec<Value>,
    /// Column (row) indices, sorted within each row.
    pub idx: Vec<Value>,
    /// Nonzero values.
    pub vals: Vec<Value>,
}

impl Csr {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }
}

/// Small nonzero values keep products and long accumulations far from
/// overflow while still exercising real arithmetic.
fn small_val(rng: &mut SplitMix64) -> Value {
    let v = rng.gen_range(1, 10);
    if rng.gen_bool(0.5) {
        v
    } else {
        -v
    }
}

/// Dense `rows × cols` matrix with small random entries.
pub fn dense_matrix(seed: u64, rows: usize, cols: usize) -> Vec<Value> {
    let mut rng = SplitMix64::new(seed);
    (0..rows * cols).map(|_| small_val(&mut rng)).collect()
}

/// Dense vector of length `n` with small random entries.
pub fn dense_vector(seed: u64, n: usize) -> Vec<Value> {
    dense_matrix(seed, n, 1)
}

/// Uniform random CSR: ~`nnz` nonzeros spread evenly over the rows, sorted
/// unique column indices per row.
pub fn random_csr(seed: u64, rows: usize, cols: usize, nnz: usize) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let per_row = (nnz as f64 / rows as f64).max(0.0);
    let mut ptr = Vec::with_capacity(rows + 1);
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    ptr.push(0);
    for _ in 0..rows {
        // Poisson-ish row lengths around the mean, clamped to the width.
        let lo = per_row * 0.5;
        let hi = per_row * 1.5 + 1.0;
        let k = (rng.gen_f64(lo, hi) as usize).min(cols);
        let mut row: Vec<Value> = Vec::with_capacity(k);
        while row.len() < k {
            let c = rng.gen_index(cols) as Value;
            if let Err(pos) = row.binary_search(&c) {
                row.insert(pos, c);
            }
        }
        for c in row {
            idx.push(c);
            vals.push(small_val(&mut rng));
        }
        ptr.push(idx.len() as Value);
    }
    Csr { rows, cols, ptr, idx, vals }
}

/// Banded symmetric-structure CSR (the trdheim substitute): row `i` has
/// nonzeros at a `density` fraction of the columns in `[i-band, i+band]`,
/// always including the diagonal.
pub fn banded_csr(seed: u64, n: usize, band: usize, density: f64) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let mut ptr = Vec::with_capacity(n + 1);
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    ptr.push(0);
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n - 1);
        for c in lo..=hi {
            if c == i || rng.gen_bool(density) {
                idx.push(c as Value);
                vals.push(small_val(&mut rng));
            }
        }
        ptr.push(idx.len() as Value);
    }
    Csr { rows: n, cols: n, ptr, idx, vals }
}

/// A sparse vector: `nnz` sorted unique indices in `0..n` with small values.
pub fn sparse_vector(seed: u64, n: usize, nnz: usize) -> (Vec<Value>, Vec<Value>) {
    let mut rng = SplitMix64::new(seed);
    let nnz = nnz.min(n);
    let mut idxs: Vec<Value> = Vec::with_capacity(nnz);
    while idxs.len() < nnz {
        let i = rng.gen_index(n) as Value;
        if let Err(pos) = idxs.binary_search(&i) {
            idxs.insert(pos, i);
        }
    }
    let vals = (0..nnz).map(|_| small_val(&mut rng)).collect();
    (idxs, vals)
}

/// Watts–Strogatz small-world graph, returned as a *forward* adjacency CSR:
/// row `u` lists only neighbors `v > u`, sorted — the form the triangle
/// counting kernel intersects. `k` is the (even) ring degree; `p` the
/// rewiring probability.
pub fn watts_strogatz_forward(seed: u64, n: usize, k: usize, p: f64) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let k = k.max(2) & !1; // even, >= 2
                           // Adjacency sets via sorted vecs per node.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let add = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
        if a == b {
            return;
        }
        if let Err(pos) = adj[a].binary_search(&b) {
            adj[a].insert(pos, b);
        }
        if let Err(pos) = adj[b].binary_search(&a) {
            adj[b].insert(pos, a);
        }
    };
    // Ring lattice.
    for u in 0..n {
        for d in 1..=k / 2 {
            add(&mut adj, u, (u + d) % n);
        }
    }
    // Rewire each lattice edge with probability p.
    for u in 0..n {
        for d in 1..=k / 2 {
            if rng.gen_bool(p) {
                let v = (u + d) % n;
                // Remove (u, v), add (u, w) for random w.
                if let Ok(pos) = adj[u].binary_search(&v) {
                    adj[u].remove(pos);
                    if let Ok(pos2) = adj[v].binary_search(&u) {
                        adj[v].remove(pos2);
                    }
                    let mut w = rng.gen_index(n);
                    let mut guard = 0;
                    while (w == u || adj[u].binary_search(&w).is_ok()) && guard < 32 {
                        w = rng.gen_index(n);
                        guard += 1;
                    }
                    if w != u && adj[u].binary_search(&w).is_err() {
                        add(&mut adj, u, w);
                    } else {
                        add(&mut adj, u, v); // give up, restore
                    }
                }
            }
        }
    }
    // Forward CSR.
    let mut ptr = Vec::with_capacity(n + 1);
    let mut idx = Vec::new();
    ptr.push(0);
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if v > u {
                idx.push(v as Value);
            }
        }
        ptr.push(idx.len() as Value);
    }
    let vals = vec![1; idx.len()];
    Csr { rows: n, cols: n, ptr, idx, vals }
}

// ---------------------------------------------------------------------------
// Structured-program generator — the differential fuzzer's front end.
// ---------------------------------------------------------------------------

/// Words in the read-only `data` array of every generated program (a power
/// of two, so load indices can be masked instead of range-checked).
pub const DATA_LEN: usize = 64;

/// Accumulator slots in the write-only `out` array of every generated
/// program. Writes are `store_add` only, so the final slot values are
/// order-insensitive and comparable across engines.
pub const OUT_SLOTS: usize = 8;

/// Entry parameters of every generated program.
pub const GEN_PARAMS: usize = 2;

/// Binary opcodes the generator draws from.
///
/// `Div`/`Rem` are deliberately excluded — a generated divide-by-zero would
/// be a property of the *program*, not of an engine, and would drown real
/// disagreements in uninteresting `SimError`s. Everything here is total:
/// arithmetic wraps, shifts mask their amount, comparisons yield 0/1.
pub const GEN_OPS: [AluOp; 16] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Lt,
    AluOp::Le,
    AluOp::Gt,
    AluOp::Ge,
    AluOp::Eq,
    AluOp::Ne,
    AluOp::Min,
    AluOp::Max,
];

/// One statement in a [`Recipe`] genome.
///
/// Every operand is a *reference*: an index resolved **modulo the live
/// environment length** at materialization time. That makes any genome
/// well-formed by construction — removing a statement (shrinking) can change
/// which value a reference resolves to, but never dangles it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RStmt {
    /// A binary ALU op over two environment values; defines one value.
    Op {
        /// The opcode (drawn from [`GEN_OPS`]).
        op: AluOp,
        /// Left operand reference.
        a: usize,
        /// Right operand reference.
        b: usize,
    },
    /// `cond != 0 ? t : e`; defines one value.
    Select {
        /// Condition reference.
        c: usize,
        /// Value if the condition is nonzero.
        t: usize,
        /// Value if the condition is zero.
        e: usize,
    },
    /// A data-dependent diamond: `then_op(a, b)` on one side,
    /// `else_op(a, b)` on the other, merged into one defined value.
    If {
        /// Condition reference.
        c: usize,
        /// Opcode on the taken (nonzero) side.
        then_op: AluOp,
        /// Opcode on the not-taken side.
        else_op: AluOp,
        /// Left operand reference (both sides).
        a: usize,
        /// Right operand reference (both sides).
        b: usize,
    },
    /// A load from the read-only `data` array at a masked index; defines
    /// one value.
    Load {
        /// Index reference (masked with `DATA_LEN - 1`).
        addr: usize,
    },
    /// An atomic `out[slot] += v`. Defines nothing; commutative, so engine
    /// scheduling cannot change the final slot value.
    StoreAdd {
        /// Accumulator slot (taken modulo [`OUT_SLOTS`]).
        slot: usize,
        /// Value reference.
        v: usize,
    },
    /// A counted loop carrying two values chosen from the enclosing
    /// environment. The body sees *only* the induction variable and the two
    /// carried values (the IR scoping rule); it exports both carried values
    /// back to the parent.
    Loop {
        /// Trip count (1..=6 as generated; shrinking lowers it).
        trips: u8,
        /// References (in the enclosing environment) of the carried values.
        carry: [usize; 2],
        /// Body statements, materialized in the loop's own scope.
        body: Vec<RStmt>,
    },
}

/// A generated program genome: seed, entry arguments, initial memory
/// content, and a statement list.
///
/// A `Recipe` is deterministic two ways: [`Recipe::generate`] is a pure
/// function of `(seed, size)`, and [`Recipe::materialize`] is a pure
/// function of the genome — so a fuzzing run can be replayed from its seed
/// alone, and a shrunk witness re-materializes byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recipe {
    /// The seed this genome was generated from (0 for hand-built recipes).
    pub seed: u64,
    /// Entry arguments ([`GEN_PARAMS`] of them).
    pub args: Vec<Value>,
    /// Initial contents of the read-only `data` array ([`DATA_LEN`] words).
    pub data: Vec<Value>,
    /// Top-level statements.
    pub stmts: Vec<RStmt>,
}

/// A materialized [`Recipe`]: the executable program, its initial memory
/// image, and its entry arguments.
#[derive(Debug, Clone)]
pub struct GenCase {
    /// The structured program (already valid by construction).
    pub program: Program,
    /// Initial memory: `data` (read-only) and `out` (store_add-only).
    pub memory: MemoryImage,
    /// Entry arguments.
    pub args: Vec<Value>,
    /// The `out` accumulator array, for cross-engine comparison.
    pub out: ArrayRef,
}

/// A shrinking edit applicable to a [`Recipe`] — used by
/// [`Recipe::shrink_candidates`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum Edit {
    /// Remove the statement at this path (indices into nested `stmts`).
    Remove(Vec<usize>),
    /// Decrement the trip count of the loop at this path.
    Trim(Vec<usize>),
}

impl Recipe {
    /// Generates a genome from `seed` with roughly `size` top-level
    /// statements. Pure in its inputs; every seed is valid.
    pub fn generate(seed: u64, size: usize) -> Recipe {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF17E);
        let args = (0..GEN_PARAMS).map(|_| rng.gen_range(-64, 64)).collect();
        let data = (0..DATA_LEN).map(|_| rng.gen_range(-1_000, 1_000)).collect();
        let stmts = gen_block(&mut rng, size.max(1), 0);
        Recipe { seed, args, data, stmts }
    }

    /// Total statement count, counting loop bodies recursively.
    pub fn size(&self) -> usize {
        fn count(stmts: &[RStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    RStmt::Loop { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Builds the executable program, memory image, and arguments.
    ///
    /// The emitted program is structurally valid for every engine: loop
    /// bodies reference only their carried values, loads are masked into the
    /// read-only `data` array, and all writes are commutative `store_add`s
    /// into the `out` array — so engines may only disagree if one of them
    /// (or an injected fault) is broken.
    pub fn materialize(&self) -> GenCase {
        let mut mem = MemoryImage::new();
        let data = mem.alloc_init("data", &self.data);
        let out = mem.alloc("out", OUT_SLOTS);

        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", GEN_PARAMS);
        let mut env: Vec<Operand> = (0..GEN_PARAMS).map(|i| f.param(i)).collect();
        let mut labels = 0u32;
        emit_block(&mut f, &self.stmts, &mut env, data, out, &mut labels);
        // Fold the whole environment into the return value, so every defined
        // value has at least one consumer: generated programs have no dead
        // tokens (the tagged engines' token-leak sanitizer stays sound on
        // them) and any single corrupted value propagates to the result.
        let ret = fold(&mut f, &env);
        let program = pb.finish(f, [ret]);
        GenCase { program, memory: mem, args: self.args.clone(), out }
    }

    /// Enumerates every single-step shrink of this genome, in a fixed
    /// deterministic order: statement removals (outermost first, then
    /// left-to-right, then into loop bodies), followed by loop-trip
    /// decrements. A greedy driver that repeatedly takes the first still-
    /// failing candidate therefore converges to a deterministic local
    /// minimum — the same witness on every rerun.
    pub fn shrink_candidates(&self) -> Vec<Recipe> {
        let mut edits = Vec::new();
        collect_edits(&self.stmts, &mut Vec::new(), &mut edits);
        edits.into_iter().map(|e| self.apply(&e)).collect()
    }

    /// Applies one edit, returning the shrunk genome.
    fn apply(&self, edit: &Edit) -> Recipe {
        let mut next = self.clone();
        match edit {
            Edit::Remove(path) => {
                let (block, i) = descend(&mut next.stmts, path);
                block.remove(i);
            }
            Edit::Trim(path) => {
                let (block, i) = descend(&mut next.stmts, path);
                if let RStmt::Loop { trips, .. } = &mut block[i] {
                    *trips -= 1;
                } else {
                    unreachable!("Trim edits only target loops");
                }
            }
        }
        next
    }
}

/// Walks `path` (all but its last index descend into `Loop` bodies),
/// returning the statement list holding the target and the target's index.
fn descend<'a>(stmts: &'a mut Vec<RStmt>, path: &[usize]) -> (&'a mut Vec<RStmt>, usize) {
    let (&last, rest) = path.split_last().expect("edit paths are nonempty");
    let mut block = stmts;
    for &i in rest {
        match &mut block[i] {
            RStmt::Loop { body, .. } => block = body,
            _ => unreachable!("interior path steps traverse loops"),
        }
    }
    (block, last)
}

/// Enumerates shrinking edits for `stmts` in deterministic order: removals
/// at this level, then removals inside each loop body, then trip trims.
fn collect_edits(stmts: &[RStmt], path: &mut Vec<usize>, out: &mut Vec<Edit>) {
    for i in 0..stmts.len() {
        path.push(i);
        out.push(Edit::Remove(path.clone()));
        path.pop();
    }
    for (i, s) in stmts.iter().enumerate() {
        if let RStmt::Loop { body, .. } = s {
            path.push(i);
            collect_edits(body, path, out);
            path.pop();
        }
    }
    for (i, s) in stmts.iter().enumerate() {
        if let RStmt::Loop { trips, .. } = s {
            if *trips > 1 {
                path.push(i);
                out.push(Edit::Trim(path.clone()));
                path.pop();
            }
        }
    }
}

/// Generates one block of `n` statements at loop-nesting `depth`.
fn gen_block(rng: &mut SplitMix64, n: usize, depth: usize) -> Vec<RStmt> {
    let mut stmts = Vec::with_capacity(n);
    for _ in 0..n {
        stmts.push(gen_stmt(rng, depth));
    }
    stmts
}

/// Draws one statement. Loops only appear at `depth < 2`, keeping the
/// nesting within what every engine's default tag budget handles.
fn gen_stmt(rng: &mut SplitMix64, depth: usize) -> RStmt {
    let r = rng.gen_index(100);
    let op = |rng: &mut SplitMix64| GEN_OPS[rng.gen_index(GEN_OPS.len())];
    let rf = |rng: &mut SplitMix64| rng.gen_index(16);
    match r {
        0..=39 => RStmt::Op { op: op(rng), a: rf(rng), b: rf(rng) },
        40..=54 => RStmt::Load { addr: rf(rng) },
        55..=69 => RStmt::StoreAdd { slot: rng.gen_index(OUT_SLOTS), v: rf(rng) },
        70..=79 => RStmt::Select { c: rf(rng), t: rf(rng), e: rf(rng) },
        80..=89 => {
            RStmt::If { c: rf(rng), then_op: op(rng), else_op: op(rng), a: rf(rng), b: rf(rng) }
        }
        _ if depth < 2 => {
            let trips = rng.gen_range(1, 7) as u8;
            let carry = [rf(rng), rf(rng)];
            let body_len = 2 + rng.gen_index(3);
            RStmt::Loop { trips, carry, body: gen_block(rng, body_len, depth + 1) }
        }
        _ => RStmt::Op { op: op(rng), a: rf(rng), b: rf(rng) },
    }
}

/// Xor-folds every value in `env` into one operand (emitting `len - 1`
/// xors), guaranteeing each a consumer.
fn fold(f: &mut tyr_ir::build::FuncBuilder, env: &[Operand]) -> Operand {
    let mut acc = env[0];
    for &v in &env[1..] {
        acc = f.op(AluOp::Xor, acc, v);
    }
    acc
}

/// Emits `stmts` into the builder, growing `env` with each defined value.
fn emit_block(
    f: &mut tyr_ir::build::FuncBuilder,
    stmts: &[RStmt],
    env: &mut Vec<Operand>,
    data: ArrayRef,
    out: ArrayRef,
    labels: &mut u32,
) {
    for s in stmts {
        let resolve = |env: &[Operand], r: usize| env[r % env.len()];
        match s {
            RStmt::Op { op, a, b } => {
                let v = f.op(*op, resolve(env, *a), resolve(env, *b));
                env.push(v);
            }
            RStmt::Select { c, t, e } => {
                let v = f.select(resolve(env, *c), resolve(env, *t), resolve(env, *e));
                env.push(v);
            }
            RStmt::If { c, then_op, else_op, a, b } => {
                let (a, b) = (resolve(env, *a), resolve(env, *b));
                f.begin_if(resolve(env, *c));
                let t = f.op(*then_op, a, b);
                f.begin_else();
                let e = f.op(*else_op, a, b);
                let merged = f.end_if_vec(vec![(t, e)]);
                env.push(merged[0]);
            }
            RStmt::Load { addr } => {
                let idx = f.op(AluOp::And, resolve(env, *addr), (DATA_LEN - 1) as Value);
                let a = f.op(AluOp::Add, idx, data.base_const());
                let v = f.load(a);
                env.push(v);
            }
            RStmt::StoreAdd { slot, v } => {
                let addr = (out.base + slot % OUT_SLOTS) as Value;
                f.store_add(addr, resolve(env, *v));
            }
            RStmt::Loop { trips, carry, body } => {
                let label = format!("fuzz_loop_{}", *labels);
                *labels += 1;
                let inits = vec![Operand::Const(0), resolve(env, carry[0]), resolve(env, carry[1])];
                let carried = f.begin_loop_vec(&label, inits);
                let cond = f.op(AluOp::Lt, carried[0], *trips as Value);
                f.begin_body(cond);
                let mut inner = carried.clone();
                emit_block(f, body, &mut inner, data, out, labels);
                let i2 = f.op(AluOp::Add, carried[0], 1);
                // The whole body environment folds into the first carried
                // value: loop-carried dependences evolve and (as at top
                // level) no body value is left dead.
                let n0 = fold(f, &inner);
                let n1 = inner[(carry[0] + carry[1]) % inner.len()];
                let exits = f.end_loop_vec(vec![i2, n0, n1], vec![carried[1], carried[2]]);
                env.extend(exits);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // First outputs for seed 0 from the published SplitMix64 reference
        // implementation (Vigna's splitmix64.c).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
        assert_ne!(a.next_u64(), SplitMix64::new(43).next_u64(), "seeds decorrelate");
    }

    #[test]
    fn splitmix_ranges_are_in_bounds() {
        let mut rng = SplitMix64::new(9);
        let mut seen_hi = false;
        let mut seen_lo = false;
        for _ in 0..4096 {
            let i = rng.gen_index(7);
            assert!(i < 7);
            seen_lo |= i == 0;
            seen_hi |= i == 6;
            let r = rng.gen_range(-3, 4);
            assert!((-3..4).contains(&r));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "gen_index should cover both endpoints");
        // gen_bool tracks its probability roughly.
        let heads = (0..4096).filter(|_| rng.gen_bool(0.25)).count();
        assert!((700..1350).contains(&heads), "gen_bool(0.25) gave {heads}/4096");
    }

    #[test]
    fn dense_is_deterministic_and_small() {
        let a = dense_matrix(7, 8, 8);
        let b = dense_matrix(7, 8, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&v| v != 0 && v.abs() <= 9));
        let c = dense_matrix(8, 8, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    fn check_csr(m: &Csr) {
        assert_eq!(m.ptr.len(), m.rows + 1);
        assert_eq!(m.ptr[0], 0);
        assert_eq!(*m.ptr.last().unwrap() as usize, m.idx.len());
        assert_eq!(m.idx.len(), m.vals.len());
        for r in 0..m.rows {
            let (lo, hi) = (m.ptr[r] as usize, m.ptr[r + 1] as usize);
            assert!(lo <= hi);
            let row = &m.idx[lo..hi];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {r} not strictly sorted");
            }
            for &c in row {
                assert!((c as usize) < m.cols);
            }
        }
    }

    #[test]
    fn random_csr_is_well_formed() {
        let m = random_csr(1, 100, 80, 600);
        check_csr(&m);
        assert!(m.nnz() > 300 && m.nnz() < 1000, "nnz {} far from target", m.nnz());
    }

    #[test]
    fn banded_csr_is_well_formed_and_banded() {
        let m = banded_csr(2, 200, 10, 0.5);
        check_csr(&m);
        for r in 0..m.rows {
            let (lo, hi) = (m.ptr[r] as usize, m.ptr[r + 1] as usize);
            // Diagonal always present.
            assert!(m.idx[lo..hi].contains(&(r as Value)));
            for &c in &m.idx[lo..hi] {
                assert!((c - r as i64).unsigned_abs() <= 10);
            }
        }
    }

    #[test]
    fn sparse_vector_sorted_unique() {
        let (idx, vals) = sparse_vector(3, 1000, 50);
        assert_eq!(idx.len(), 50);
        assert_eq!(vals.len(), 50);
        for w in idx.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn watts_strogatz_forward_properties() {
        let g = watts_strogatz_forward(4, 300, 8, 0.1);
        check_csr(&g);
        // Forward edges only.
        for u in 0..g.rows {
            for &v in &g.idx[g.ptr[u] as usize..g.ptr[u + 1] as usize] {
                assert!((v as usize) > u);
            }
        }
        // Edge count ≈ n*k/2.
        let e = g.nnz();
        assert!(e > 300 * 3 && e < 300 * 5, "edges {e}");
        // Small-world graphs have triangles.
        let tri = super::super::oracle::count_triangles(&g);
        assert!(tri > 0, "ring lattice with k=8 must contain triangles");
    }

    #[test]
    fn recipe_generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(Recipe::generate(seed, 12), Recipe::generate(seed, 12));
        }
        assert_ne!(Recipe::generate(1, 12), Recipe::generate(2, 12));
    }

    #[test]
    fn recipes_materialize_to_valid_programs() {
        for seed in 0..50 {
            let case = Recipe::generate(seed, 16).materialize();
            tyr_ir::validate::validate(&case.program)
                .unwrap_or_else(|e| panic!("seed {seed}: invalid program: {e}"));
            let mut mem = case.memory.clone();
            tyr_ir::interp::run(&case.program, &mut mem, &case.args)
                .unwrap_or_else(|e| panic!("seed {seed}: oracle run failed: {e}"));
        }
    }

    #[test]
    fn materialization_is_pure() {
        let r = Recipe::generate(7, 16);
        let (a, b) = (r.materialize(), r.materialize());
        assert_eq!(
            tyr_ir::pretty::print_program(&a.program),
            tyr_ir::pretty::print_program(&b.program)
        );
        assert_eq!(a.args, b.args);
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller_and_valid() {
        let r = Recipe::generate(11, 16);
        let cands = r.shrink_candidates();
        assert!(!cands.is_empty());
        for (i, c) in cands.iter().enumerate() {
            let smaller = c.size() < r.size();
            let trimmed = c.size() == r.size() && *c != r;
            assert!(smaller || trimmed, "candidate {i} did not shrink");
            let case = c.materialize();
            tyr_ir::validate::validate(&case.program)
                .unwrap_or_else(|e| panic!("candidate {i}: invalid after shrink: {e}"));
        }
    }

    #[test]
    fn shrinking_reaches_the_empty_recipe() {
        // Greedy "always take the first candidate" terminates: every Remove
        // strictly shrinks and every Trim strictly lowers a trip count.
        let mut r = Recipe::generate(3, 10);
        let mut steps = 0;
        while let Some(next) = r.shrink_candidates().into_iter().next() {
            r = next;
            steps += 1;
            assert!(steps < 10_000, "shrinker failed to converge");
        }
        assert!(r.stmts.is_empty());
    }
}
