//! Seeded input generators.
//!
//! The paper's dense apps run on random inputs; its sparse apps use
//! SuiteSparse matrices (DNVS/trdheim for smv, a DIMACS10/M6 subset for
//! spmspv) and a navigable small-world graph for tc. Those external datasets
//! are substituted with seeded synthetic inputs that preserve the properties
//! the engines are sensitive to — nonzero *structure* (trip-count
//! irregularity and data-dependent control flow), not numeric content; see
//! DESIGN.md §2:
//!
//! * [`banded_csr`] — banded symmetric structure, like the trdheim FEM
//!   matrix;
//! * [`random_csr`] / [`sparse_vector`] — uniform random sparsity for the
//!   M6 substitute;
//! * [`watts_strogatz_forward`] — a small-world graph (high clustering,
//!   short paths) for triangle counting.
//!
//! All generators are deterministic in their seed.

use tyr_ir::Value;

/// SplitMix64 — the dependency-free seeded PRNG behind every generator.
///
/// The repository builds with no registry access, so `rand` is deliberately
/// not a dependency; SplitMix64 (Steele, Lea & Flood, OOPSLA '14 — the
/// `java.util.SplittableRandom` mixer) gives 64 bits of well-mixed output
/// per step from three shift-xor-multiply rounds, which is more than enough
/// statistical quality for input synthesis. Determinism per seed is part of
/// the public contract: figures and tests key on it.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Every seed, including 0, is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits of the next output).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses the widening-multiply range reduction (Lemire), which avoids the
    /// modulo bias of `next_u64() % n` without a rejection loop.
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "gen_index range must be nonempty");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.gen_index((hi - lo) as usize) as i64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A sparse matrix in compressed-sparse-row form (also used column-wise as
/// CSC by spmspv — the format is symmetric in interpretation).
#[derive(Debug, Clone)]
pub struct Csr {
    /// Number of rows (or columns for CSC usage).
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// `rows + 1` offsets into `idx`/`vals`.
    pub ptr: Vec<Value>,
    /// Column (row) indices, sorted within each row.
    pub idx: Vec<Value>,
    /// Nonzero values.
    pub vals: Vec<Value>,
}

impl Csr {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }
}

/// Small nonzero values keep products and long accumulations far from
/// overflow while still exercising real arithmetic.
fn small_val(rng: &mut SplitMix64) -> Value {
    let v = rng.gen_range(1, 10);
    if rng.gen_bool(0.5) {
        v
    } else {
        -v
    }
}

/// Dense `rows × cols` matrix with small random entries.
pub fn dense_matrix(seed: u64, rows: usize, cols: usize) -> Vec<Value> {
    let mut rng = SplitMix64::new(seed);
    (0..rows * cols).map(|_| small_val(&mut rng)).collect()
}

/// Dense vector of length `n` with small random entries.
pub fn dense_vector(seed: u64, n: usize) -> Vec<Value> {
    dense_matrix(seed, n, 1)
}

/// Uniform random CSR: ~`nnz` nonzeros spread evenly over the rows, sorted
/// unique column indices per row.
pub fn random_csr(seed: u64, rows: usize, cols: usize, nnz: usize) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let per_row = (nnz as f64 / rows as f64).max(0.0);
    let mut ptr = Vec::with_capacity(rows + 1);
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    ptr.push(0);
    for _ in 0..rows {
        // Poisson-ish row lengths around the mean, clamped to the width.
        let lo = per_row * 0.5;
        let hi = per_row * 1.5 + 1.0;
        let k = (rng.gen_f64(lo, hi) as usize).min(cols);
        let mut row: Vec<Value> = Vec::with_capacity(k);
        while row.len() < k {
            let c = rng.gen_index(cols) as Value;
            if let Err(pos) = row.binary_search(&c) {
                row.insert(pos, c);
            }
        }
        for c in row {
            idx.push(c);
            vals.push(small_val(&mut rng));
        }
        ptr.push(idx.len() as Value);
    }
    Csr { rows, cols, ptr, idx, vals }
}

/// Banded symmetric-structure CSR (the trdheim substitute): row `i` has
/// nonzeros at a `density` fraction of the columns in `[i-band, i+band]`,
/// always including the diagonal.
pub fn banded_csr(seed: u64, n: usize, band: usize, density: f64) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let mut ptr = Vec::with_capacity(n + 1);
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    ptr.push(0);
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n - 1);
        for c in lo..=hi {
            if c == i || rng.gen_bool(density) {
                idx.push(c as Value);
                vals.push(small_val(&mut rng));
            }
        }
        ptr.push(idx.len() as Value);
    }
    Csr { rows: n, cols: n, ptr, idx, vals }
}

/// A sparse vector: `nnz` sorted unique indices in `0..n` with small values.
pub fn sparse_vector(seed: u64, n: usize, nnz: usize) -> (Vec<Value>, Vec<Value>) {
    let mut rng = SplitMix64::new(seed);
    let nnz = nnz.min(n);
    let mut idxs: Vec<Value> = Vec::with_capacity(nnz);
    while idxs.len() < nnz {
        let i = rng.gen_index(n) as Value;
        if let Err(pos) = idxs.binary_search(&i) {
            idxs.insert(pos, i);
        }
    }
    let vals = (0..nnz).map(|_| small_val(&mut rng)).collect();
    (idxs, vals)
}

/// Watts–Strogatz small-world graph, returned as a *forward* adjacency CSR:
/// row `u` lists only neighbors `v > u`, sorted — the form the triangle
/// counting kernel intersects. `k` is the (even) ring degree; `p` the
/// rewiring probability.
pub fn watts_strogatz_forward(seed: u64, n: usize, k: usize, p: f64) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let k = k.max(2) & !1; // even, >= 2
                           // Adjacency sets via sorted vecs per node.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let add = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
        if a == b {
            return;
        }
        if let Err(pos) = adj[a].binary_search(&b) {
            adj[a].insert(pos, b);
        }
        if let Err(pos) = adj[b].binary_search(&a) {
            adj[b].insert(pos, a);
        }
    };
    // Ring lattice.
    for u in 0..n {
        for d in 1..=k / 2 {
            add(&mut adj, u, (u + d) % n);
        }
    }
    // Rewire each lattice edge with probability p.
    for u in 0..n {
        for d in 1..=k / 2 {
            if rng.gen_bool(p) {
                let v = (u + d) % n;
                // Remove (u, v), add (u, w) for random w.
                if let Ok(pos) = adj[u].binary_search(&v) {
                    adj[u].remove(pos);
                    if let Ok(pos2) = adj[v].binary_search(&u) {
                        adj[v].remove(pos2);
                    }
                    let mut w = rng.gen_index(n);
                    let mut guard = 0;
                    while (w == u || adj[u].binary_search(&w).is_ok()) && guard < 32 {
                        w = rng.gen_index(n);
                        guard += 1;
                    }
                    if w != u && adj[u].binary_search(&w).is_err() {
                        add(&mut adj, u, w);
                    } else {
                        add(&mut adj, u, v); // give up, restore
                    }
                }
            }
        }
    }
    // Forward CSR.
    let mut ptr = Vec::with_capacity(n + 1);
    let mut idx = Vec::new();
    ptr.push(0);
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if v > u {
                idx.push(v as Value);
            }
        }
        ptr.push(idx.len() as Value);
    }
    let vals = vec![1; idx.len()];
    Csr { rows: n, cols: n, ptr, idx, vals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // First outputs for seed 0 from the published SplitMix64 reference
        // implementation (Vigna's splitmix64.c).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
        assert_ne!(a.next_u64(), SplitMix64::new(43).next_u64(), "seeds decorrelate");
    }

    #[test]
    fn splitmix_ranges_are_in_bounds() {
        let mut rng = SplitMix64::new(9);
        let mut seen_hi = false;
        let mut seen_lo = false;
        for _ in 0..4096 {
            let i = rng.gen_index(7);
            assert!(i < 7);
            seen_lo |= i == 0;
            seen_hi |= i == 6;
            let r = rng.gen_range(-3, 4);
            assert!((-3..4).contains(&r));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "gen_index should cover both endpoints");
        // gen_bool tracks its probability roughly.
        let heads = (0..4096).filter(|_| rng.gen_bool(0.25)).count();
        assert!((700..1350).contains(&heads), "gen_bool(0.25) gave {heads}/4096");
    }

    #[test]
    fn dense_is_deterministic_and_small() {
        let a = dense_matrix(7, 8, 8);
        let b = dense_matrix(7, 8, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&v| v != 0 && v.abs() <= 9));
        let c = dense_matrix(8, 8, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    fn check_csr(m: &Csr) {
        assert_eq!(m.ptr.len(), m.rows + 1);
        assert_eq!(m.ptr[0], 0);
        assert_eq!(*m.ptr.last().unwrap() as usize, m.idx.len());
        assert_eq!(m.idx.len(), m.vals.len());
        for r in 0..m.rows {
            let (lo, hi) = (m.ptr[r] as usize, m.ptr[r + 1] as usize);
            assert!(lo <= hi);
            let row = &m.idx[lo..hi];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {r} not strictly sorted");
            }
            for &c in row {
                assert!((c as usize) < m.cols);
            }
        }
    }

    #[test]
    fn random_csr_is_well_formed() {
        let m = random_csr(1, 100, 80, 600);
        check_csr(&m);
        assert!(m.nnz() > 300 && m.nnz() < 1000, "nnz {} far from target", m.nnz());
    }

    #[test]
    fn banded_csr_is_well_formed_and_banded() {
        let m = banded_csr(2, 200, 10, 0.5);
        check_csr(&m);
        for r in 0..m.rows {
            let (lo, hi) = (m.ptr[r] as usize, m.ptr[r + 1] as usize);
            // Diagonal always present.
            assert!(m.idx[lo..hi].contains(&(r as Value)));
            for &c in &m.idx[lo..hi] {
                assert!((c - r as i64).unsigned_abs() <= 10);
            }
        }
    }

    #[test]
    fn sparse_vector_sorted_unique() {
        let (idx, vals) = sparse_vector(3, 1000, 50);
        assert_eq!(idx.len(), 50);
        assert_eq!(vals.len(), 50);
        for w in idx.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn watts_strogatz_forward_properties() {
        let g = watts_strogatz_forward(4, 300, 8, 0.1);
        check_csr(&g);
        // Forward edges only.
        for u in 0..g.rows {
            for &v in &g.idx[g.ptr[u] as usize..g.ptr[u + 1] as usize] {
                assert!((v as usize) > u);
            }
        }
        // Edge count ≈ n*k/2.
        let e = g.nnz();
        assert!(e > 300 * 3 && e < 300 * 5, "edges {e}");
        // Small-world graphs have triangles.
        let tri = super::super::oracle::count_triangles(&g);
        assert!(tri > 0, "ring lattice with k=8 must contain triangles");
    }
}
