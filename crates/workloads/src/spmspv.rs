//! Sparse matrix × sparse vector (Table II). The matrix is read
//! column-wise (CSC); each nonzero of the sparse vector scales one matrix
//! column, scattered into a dense accumulator with atomic adds
//! (`store_add`) — the scatter pattern UDIR would serialize with memory
//! ordering, modeled here as single-cycle fetch-adds (DESIGN.md §2).
//!
//! The paper uses a DIMACS10/M6 subset; we substitute a seeded uniform
//! random sparse matrix of matching shape.

use tyr_ir::build::ProgramBuilder;
use tyr_ir::{MemoryImage, Operand, NO_OPERANDS};

use crate::gen::{self, Csr};
use crate::oracle;
use crate::workload::Workload;

/// Builds spmspv from an explicit CSC matrix and a seeded sparse vector of
/// `vnnz` nonzeros.
pub fn build_from(m: &Csr, vnnz: usize, seed: u64) -> Workload {
    let (vidx, vval) = gen::sparse_vector(seed.wrapping_add(13), m.rows, vnnz);

    let mut mem = MemoryImage::new();
    let ptr_ref = mem.alloc_init("colptr", &m.ptr);
    let idx_ref = mem.alloc_init("rowidx", &m.idx);
    let val_ref = mem.alloc_init("vals", &m.vals);
    let vidx_ref = mem.alloc_init("vidx", &vidx);
    let vval_ref = mem.alloc_init("vval", &vval);
    let y_ref = mem.alloc("y", m.cols);

    let mut pb = ProgramBuilder::new();
    let mut f = pb.func("main", 0);
    let [t] = f.begin_loop("spmspv_vec", [0]);
    let c = f.lt(t, vidx.len() as i64);
    f.begin_body(c);
    let jaddr = f.add(t, vidx_ref.base_const());
    let j = f.load(jaddr);
    let vvaddr = f.add(t, vval_ref.base_const());
    let vv = f.load(vvaddr);
    let paddr = f.add(j, ptr_ref.base_const());
    let lo = f.load(paddr);
    let paddr1 = f.add(paddr, 1);
    let hi = f.load(paddr1);
    let [k, hic, vvc] = f.begin_loop("spmspv_col", [lo, hi, vv]);
    let ck = f.lt(k, hic);
    f.begin_body(ck);
    let raddr = f.add(k, idx_ref.base_const());
    let row = f.load(raddr);
    let maddr = f.add(k, val_ref.base_const());
    let mv = f.load(maddr);
    let prod = f.mul(mv, vvc);
    let yaddr = f.add(row, y_ref.base_const());
    f.store_add(yaddr, prod);
    let k2 = f.add(k, 1);
    f.end_loop([k2, hic, vvc], NO_OPERANDS);
    let t2 = f.add(t, 1);
    f.end_loop([t2], NO_OPERANDS);
    let program = pb.finish(f, [Operand::Const(0)]);

    let mut w = Workload::new(
        "spmspv",
        format!(
            "size: {}x{}, matrix non-zeros: {}, vector non-zeros: {}",
            m.rows,
            m.cols,
            m.nnz(),
            vidx.len()
        ),
        program,
        mem,
        vec![],
    );
    w.expect("y", y_ref, oracle::spmspv(m, &vidx, &vval));
    w
}

/// Builds spmspv on a seeded random sparse `n×n` matrix with ~`nnz`
/// nonzeros and a sparse vector of `vnnz` nonzeros.
pub fn build(n: usize, nnz: usize, vnnz: usize, seed: u64) -> Workload {
    let m = gen::random_csr(seed, n, n, nnz);
    build_from(&m, vnnz, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_ir::{interp, validate::validate};

    #[test]
    fn validates_and_matches_oracle_under_vn() {
        let w = build(40, 160, 9, 21);
        validate(&w.program).unwrap();
        let mut mem = w.memory.clone();
        interp::run(&w.program, &mut mem, &w.args).unwrap();
        w.check(&mem).unwrap();
    }
}
