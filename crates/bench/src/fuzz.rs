//! `repro fuzz` / `repro chaos` — the differential fuzzer and the
//! fault-injection chaos harness.
//!
//! **Fuzzing** (`repro fuzz`): seeded random structured programs from
//! [`tyr_workloads::gen::Recipe`] run on all five systems and the reference
//! interpreter (the oracle). Two sweeps per invocation:
//!
//! 1. *Differential*: unfaulted runs. Any engine whose return value or
//!    `out`-array contents disagree with the oracle — or that errors,
//!    deadlocks, or times out — is a finding; the recipe is shrunk to a
//!    minimal witness and printed.
//! 2. *Chaos*: every fault class from the plan (default `all`) is injected
//!    into a fault-capable engine (rotating over TYR / unordered / ordered
//!    by seed) and the outcome is attributed per class. "Detect" classes
//!    must produce an observable failure *somewhere* in the sweep; the
//!    `mem-delay` class is special — the dataflow engines are
//!    latency-insensitive by design, so a delayed response must be
//!    **absorbed** (the run still completes correctly), and anything else
//!    is an engine bug.
//!
//! Every run is armed with a deterministic cycle-budget watchdog (plus the
//! sweep's shared [`CancelToken`] when `--deadline-secs` is given), so a
//! wedged engine surfaces as an attributed `TimedOut` verdict instead of
//! hanging the sweep. All reporting is in seed order with no wall-clock
//! content: the same seed produces a byte-identical report and witness.
//! Per-sweep wall-clock latency histograms (p50/p90/p99 over job
//! durations) are printed to **stderr** only, so the stdout determinism
//! contract survives the instrumentation.
//!
//! **Chaos on a real kernel** (`repro chaos <kernel> <engine>`): runs one
//! suite workload on one fault-capable engine under a fault plan and prints
//! the full fault log, the outcome, and the per-run classification — the
//! single-run microscope to `repro fuzz`'s sweep.

use std::time::Duration;

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_ir::{interp, pretty, Value};
use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
use tyr_sim::seqdf::{SeqDataflowConfig, SeqDataflowEngine};
use tyr_sim::seqvn::{SeqVnConfig, SeqVnEngine};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_sim::{CancelToken, FaultKind, FaultPlan, MemConfig, Outcome, RunResult, Watchdog};
use tyr_stats::locality::WorkingSet;
use tyr_stats::shard::{ShardCrossings, ShardSpec};
use tyr_verify::{analyze_footprint, analyze_live_state, verify_shards, ShardBudget};
use tyr_workloads::gen::{GenCase, Recipe};
use tyr_workloads::{by_name, APP_NAMES};

use crate::figures::Ctx;
use crate::{pool, System};

/// Deterministic cycle budget armed on every fuzz run. Generated programs
/// finish in well under 100k cycles on every engine; a run that reaches the
/// budget is wedged (e.g. by a stuck node) and is reported as `TimedOut`.
pub const FUZZ_CYCLE_BUDGET: u64 = 1_000_000;

/// Cycle budget for `repro chaos` runs. Suite kernels finish in well under
/// ten million cycles at every scale, but a stuck or tag-starved run spins
/// quiescently until the watchdog fires — so the scale config's effectively
/// unlimited `max_cycles` (2e9) would stall the CLI for minutes on a wedge.
pub const CHAOS_CYCLE_BUDGET: u64 = 10_000_000;

/// Minimum strikes a fault class needs before the "detected at least once"
/// gate is enforced. Detection is probabilistic per strike (a duplicated
/// token is tolerated ~4-in-5 times), so tiny sweeps would fail the gate by
/// chance; the 25-seed `--quick` sweep clears this for every class.
pub const DETECT_GATE_MIN_STRIKES: usize = 8;

/// Top-level statements per generated program.
pub const FUZZ_RECIPE_SIZE: usize = 16;

/// Engines that accept a [`FaultPlan`]; the chaos sweep rotates over these.
pub const FAULT_TARGETS: [System; 3] = [System::Tyr, System::Unordered, System::Ordered];

/// Whether `sys` can inject `kind` at all. The ordered machine is untagged,
/// so tag-space exhaustion does not apply to it.
pub fn supports(sys: System, kind: FaultKind) -> bool {
    match sys {
        System::Tyr | System::Unordered => true,
        System::Ordered => kind != FaultKind::TagExhaust,
        System::SeqVn | System::SeqDf => false,
    }
}

/// What one engine run looked like next to the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Completed with the oracle's return value and `out` contents.
    Agree,
    /// Completed, but with different results (the detail names the first
    /// diverging value).
    WrongAnswer(String),
    /// The engine returned a `SimError` (sanitizer trip, ALU fault, ...).
    EngineError(String),
    /// The engine deadlocked.
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
    },
    /// A watchdog ended the run.
    TimedOut(String),
}

impl Verdict {
    /// One-line rendering for reports.
    pub fn describe(&self) -> String {
        match self {
            Verdict::Agree => "agree".into(),
            Verdict::WrongAnswer(d) => format!("WRONG ANSWER ({d})"),
            Verdict::EngineError(e) => format!("engine error ({e})"),
            Verdict::Deadlock { cycle } => format!("deadlock @ cycle {cycle}"),
            Verdict::TimedOut(cause) => format!("timed out ({cause})"),
        }
    }

    /// Whether the run matched the oracle.
    pub fn is_agree(&self) -> bool {
        *self == Verdict::Agree
    }
}

/// The oracle's view of one generated case: the reference interpreter's
/// return values and final `out`-array contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleResult {
    /// Entry-function return values.
    pub returns: Vec<Value>,
    /// Final contents of the `out` accumulator array.
    pub out: Vec<Value>,
}

/// Runs the reference interpreter on `case`.
///
/// # Errors
///
/// Returns a message if the interpreter itself faults — which means the
/// *generator* is broken, not an engine, and is reported as such.
pub fn oracle(case: &GenCase) -> Result<OracleResult, String> {
    let mut mem = case.memory.clone();
    let r = interp::run(&case.program, &mut mem, &case.args)
        .map_err(|e| format!("oracle (reference interpreter) faulted: {e}"))?;
    Ok(OracleResult { returns: r.returns, out: mem.slice(case.out).to_vec() })
}

/// Runs `case` on `sys` (optionally faulted, always watchdogged) and judges
/// the result against `oracle`. Never panics: every failure mode comes back
/// as a [`Verdict`]. Returns the verdict and the run's fault log.
///
/// `event_driven` selects the tagged/ordered engines' core (event-driven or
/// ticked); the verdict must be identical either way — `--ticked` sweeps
/// exist precisely to cross-check that.
pub fn run_engine(
    case: &GenCase,
    sys: System,
    faults: Option<FaultPlan>,
    dog: Watchdog,
    event_driven: bool,
    mem: &MemConfig,
    oracle: &OracleResult,
) -> (Verdict, Vec<tyr_sim::FaultRecord>) {
    let res: Result<RunResult, String> = (|| {
        let r = match sys {
            System::SeqVn => {
                let c = SeqVnConfig {
                    args: case.args.clone(),
                    max_cycles: u64::MAX,
                    mem: mem.clone(),
                    watchdog: dog,
                };
                SeqVnEngine::new(&case.program, case.memory.clone(), c).run()
            }
            System::SeqDf => {
                let c = SeqDataflowConfig {
                    issue_width: 64,
                    args: case.args.clone(),
                    max_cycles: u64::MAX,
                    mem: mem.clone(),
                    watchdog: dog,
                };
                SeqDataflowEngine::new(&case.program, case.memory.clone(), c).run()
            }
            System::Ordered => {
                let dfg = lower_ordered(&case.program).map_err(|e| format!("lowering: {e}"))?;
                let c = OrderedConfig {
                    issue_width: 64,
                    args: case.args.clone(),
                    max_cycles: u64::MAX,
                    mem: mem.clone(),
                    faults,
                    watchdog: dog,
                    event_driven,
                    ..OrderedConfig::default()
                };
                OrderedEngine::new(&dfg, case.memory.clone(), c).run()
            }
            System::Unordered => {
                let dfg = lower_tagged(&case.program, TaggingDiscipline::UnorderedUnbounded)
                    .map_err(|e| format!("lowering: {e}"))?;
                let c = TaggedConfig {
                    issue_width: 64,
                    tag_policy: TagPolicy::GlobalUnbounded,
                    args: case.args.clone(),
                    max_cycles: u64::MAX,
                    mem: mem.clone(),
                    check_token_leaks: true,
                    faults,
                    watchdog: dog,
                    event_driven,
                    ..TaggedConfig::default()
                };
                TaggedEngine::new(&dfg, case.memory.clone(), c).run()
            }
            System::Tyr => {
                let dfg = lower_tagged(&case.program, TaggingDiscipline::Tyr)
                    .map_err(|e| format!("lowering: {e}"))?;
                let c = TaggedConfig {
                    issue_width: 64,
                    tag_policy: TagPolicy::local_with(64, Vec::new()),
                    args: case.args.clone(),
                    max_cycles: u64::MAX,
                    mem: mem.clone(),
                    check_token_leaks: true,
                    faults,
                    watchdog: dog,
                    event_driven,
                    ..TaggedConfig::default()
                };
                TaggedEngine::new(&dfg, case.memory.clone(), c).run()
            }
        };
        r.map_err(|e| e.to_string())
    })();
    judge(case, oracle, res)
}

/// Classifies a raw engine result against the oracle.
fn judge(
    case: &GenCase,
    oracle: &OracleResult,
    res: Result<RunResult, String>,
) -> (Verdict, Vec<tyr_sim::FaultRecord>) {
    let r = match res {
        Ok(r) => r,
        Err(e) => return (Verdict::EngineError(e), Vec::new()),
    };
    let faults = r.faults.clone();
    let v = match &r.outcome {
        Outcome::Deadlock { cycle, .. } => Verdict::Deadlock { cycle: *cycle },
        Outcome::TimedOut { cause, .. } => Verdict::TimedOut(cause.to_string()),
        Outcome::Completed { .. } => {
            if r.returns != oracle.returns {
                Verdict::WrongAnswer(format!(
                    "returns {:?}, oracle {:?}",
                    r.returns, oracle.returns
                ))
            } else {
                let got = r.memory().slice(case.out);
                match got.iter().zip(&oracle.out).position(|(g, w)| g != w) {
                    Some(i) => Verdict::WrongAnswer(format!(
                        "out[{i}] = {}, oracle {}",
                        got[i], oracle.out[i]
                    )),
                    None => Verdict::Agree,
                }
            }
        }
    };
    (v, faults)
}

/// Checks the W-pass soundness contract on one generated recipe: every
/// static working-set bound (W001 live state per block and total, W002
/// footprint lines) must dominate what the TYR engine and its attached
/// reuse tracker actually observe. Returns a description of the first
/// violated bound, or `None` when every bound is sound.
///
/// Lowering errors, engine faults, and incomplete runs return `None`: they
/// are sweep-1 differential findings, not soundness violations, and
/// treating them as violations would make the shrinker chase the wrong
/// predicate.
pub fn wbound_violation(recipe: &Recipe, dog: Watchdog) -> Option<String> {
    let case = recipe.materialize();
    let Ok(dfg) = lower_tagged(&case.program, TaggingDiscipline::Tyr) else { return None };
    let policy = TagPolicy::local(64);
    let mut ws = WorkingSet::new();
    let c = TaggedConfig {
        issue_width: 64,
        tag_policy: policy.clone(),
        args: case.args.clone(),
        max_cycles: u64::MAX,
        watchdog: dog,
        ..TaggedConfig::default()
    };
    let r = match TaggedEngine::with_probe(&dfg, case.memory.clone(), c, &mut ws).run() {
        Ok(r) => r,
        Err(_) => return None,
    };
    if !r.is_complete() {
        return None;
    }
    let dynamic = ws.report(r.final_cycle());
    let live = analyze_live_state(&dfg, &policy);
    if let Some(t) = live.total() {
        if t < r.max_store_peak() {
            return Some(format!(
                "W001 total: static bound {t} < observed peak {}",
                r.max_store_peak()
            ));
        }
    }
    for (name, peak) in &r.store_peaks {
        if let Some(b) = live.for_block(name) {
            if b < *peak {
                return Some(format!("W001 '{name}': static bound {b} < observed peak {peak}"));
            }
        }
    }
    let fp = analyze_footprint(&dfg, &case.memory, &case.args);
    if let Some(l) = fp.total_lines() {
        if l < dynamic.distinct_lines {
            return Some(format!(
                "W002: static bound {l} line(s) < observed {} line(s)",
                dynamic.distinct_lines
            ));
        }
    }
    None
}

/// Shard count and partition seed the fuzz sweep certifies every generated
/// program against. Fixed so a seed's witness is reproducible.
pub const FUZZ_SHARDS: usize = 4;
/// Partition seed for [`shard_violation`].
pub const FUZZ_SHARD_SEED: u64 = 5;

/// Checks the P-pass soundness contract on one generated recipe: the
/// certified shard plan must be internally consistent (every undecided
/// memory pair actually co-located, every live cut edge derivable — no
/// P003 error), every per-shard static in-flight bound must dominate the
/// crossing tracker's observed peak, and no runtime cross-shard word
/// conflict may contradict a P001 disjointness claim. Returns a description
/// of the first violation, or `None` when the certificate held.
///
/// P001 *collision* errors are not violations: a generated program with a
/// provable cross-block race is the analysis working, not the plan lying —
/// and such a pair is never claimed disjoint, so the dynamic side stays
/// consistent. Lowering errors, engine faults, and incomplete runs return
/// `None`, as in [`wbound_violation`].
pub fn shard_violation(recipe: &Recipe, dog: Watchdog) -> Option<String> {
    let case = recipe.materialize();
    let Ok(dfg) = lower_tagged(&case.program, TaggingDiscipline::Tyr) else { return None };
    let policy = TagPolicy::local(64);
    let (cert, report) = verify_shards(
        "fuzz",
        &dfg,
        FUZZ_SHARDS,
        FUZZ_SHARD_SEED,
        Some(ShardBudget::Tagged(&policy)),
        Some((&case.memory, &case.args)),
    );
    let claims = cert.mem.as_ref().expect("memory context was supplied");
    for &(a, b) in &claims.undecided {
        if cert.plan.shard_of(a) != cert.plan.shard_of(b) {
            return Some(format!("P001: undecided pair {a}+{b} was split across shards"));
        }
    }
    if report.diags.iter().any(|d| {
        d.severity == tyr_verify::Severity::Error && d.code == tyr_verify::Code::ShardProgress
    }) {
        return Some("P003: a live cut edge is not derivable from the source frontier".into());
    }

    let mut sc = ShardCrossings::new(ShardSpec {
        shards: cert.plan.shards as u32,
        node_shard: cert.node_shard.clone(),
        boundary: cert.boundary.clone(),
        plain_store: cert.plain_store.clone(),
        node_block: dfg.nodes.iter().map(|n| n.block.0).collect(),
    });
    let c = TaggedConfig {
        issue_width: 64,
        tag_policy: policy,
        args: case.args.clone(),
        max_cycles: u64::MAX,
        watchdog: dog,
        ..TaggedConfig::default()
    };
    let r = match TaggedEngine::with_probe(&dfg, case.memory.clone(), c, &mut sc).run() {
        Ok(r) => r,
        Err(_) => return None,
    };
    if !r.is_complete() {
        return None;
    }
    let observed = sc.report();
    for f in &observed.per_shard {
        if let Some(b) = cert.shard_inflight.get(f.shard as usize).copied().flatten() {
            if b < f.peak_inflight {
                return Some(format!(
                    "P004 shard {}: static in-flight bound {b} < observed peak {}",
                    f.shard, f.peak_inflight
                ));
            }
        }
    }
    let shard_of = |b: u32| cert.plan.shard_of(tyr_dfg::BlockId(b));
    for c in observed.cross_shard_conflicts(shard_of) {
        let pair = (tyr_dfg::BlockId(c.block_a), tyr_dfg::BlockId(c.block_b));
        if claims.disjoint.contains(&pair) {
            return Some(format!(
                "P001: claimed-disjoint pair cb{}+cb{} both touched word {} at runtime",
                c.block_a, c.block_b, c.addr
            ));
        }
    }
    None
}

/// Greedy deterministic shrinking: repeatedly replace the recipe with its
/// first still-`failing` shrink candidate until no candidate fails. Because
/// [`Recipe::shrink_candidates`] enumerates edits in a fixed order and each
/// edit strictly reduces `(size, total trips)`, this terminates and lands on
/// the same local minimum on every rerun.
pub fn shrink(recipe: &Recipe, failing: impl Fn(&Recipe) -> bool) -> Recipe {
    let mut cur = recipe.clone();
    'outer: loop {
        for cand in cur.shrink_candidates() {
            if failing(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        return cur;
    }
}

/// Fuzz-sweep options (the `repro fuzz` CLI surface).
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// Number of seeds to sweep.
    pub seeds: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Fault-plan text (`FaultPlan::parse` grammar); `None` means `all`.
    pub faults: Option<String>,
    /// Optional wall-clock deadline for the whole sweep; when it passes, a
    /// shared [`CancelToken`] gracefully winds down every in-flight run
    /// (they come back as attributed `TimedOut(cancelled)` verdicts) and
    /// the sweep reports itself incomplete.
    pub deadline: Option<Duration>,
    /// Run the engines' event-driven core (default) or force ticked
    /// execution (`--ticked`). The report is byte-identical either way —
    /// diffing the two is the cheapest whole-campaign identity check.
    pub event_driven: bool,
    /// Memory model for every engine. The cache hierarchy only shapes
    /// *timing*, never values, so a `cached` sweep must produce the same
    /// memory images and return values as an ideal one — running the
    /// differential oracle under `--mem cached` checks exactly that.
    pub mem: MemConfig,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            seeds: 100,
            jobs: 1,
            faults: None,
            deadline: None,
            event_driven: true,
            mem: MemConfig::default(),
        }
    }
}

/// One engine's verdict on one unfaulted seed.
#[derive(Debug, Clone)]
struct DiffFinding {
    seed: u64,
    system: System,
    verdict: Verdict,
}

/// One faulted run's attribution.
#[derive(Debug, Clone)]
struct ChaosRun {
    seed: u64,
    system: System,
    kind: FaultKind,
    injected: usize,
    verdict: Verdict,
}

/// How a faulted run is scored, given its class's expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosScore {
    /// The fault produced an observable failure (wrong answer, sanitizer
    /// error, deadlock, or watchdog trip) — the detection paths work.
    Detected,
    /// `mem-delay` only: the run completed correctly despite the delayed
    /// responses — the latency-insensitivity contract held.
    Absorbed,
    /// A "detect"-class fault struck but perturbed only dead values; the
    /// run is attributed in the report (never silent), and the class gate
    /// requires a detection elsewhere in the sweep.
    Tolerated,
    /// No strike landed inside the window (e.g. `mem-flip` on a program
    /// with no loads); nothing was injected.
    NotStruck,
    /// `mem-delay` produced a failure — the engine is *not* latency-
    /// insensitive. Always fatal.
    Misbehaved,
}

fn score(kind: FaultKind, injected: usize, verdict: &Verdict) -> ChaosScore {
    if injected == 0 {
        return ChaosScore::NotStruck;
    }
    match (kind, verdict.is_agree()) {
        (FaultKind::MemDelay, true) => ChaosScore::Absorbed,
        (FaultKind::MemDelay, false) => ChaosScore::Misbehaved,
        (_, true) => ChaosScore::Tolerated,
        (_, false) => ChaosScore::Detected,
    }
}

/// Renders a shrunk witness. Pure in its inputs, so a rerun of the same
/// seed reproduces it byte-for-byte.
pub fn render_witness(seed: u64, original: &Recipe, shrunk: &Recipe, findings: &str) -> String {
    let case = shrunk.materialize();
    format!(
        "== fuzz witness: seed {seed} ==\n\
         disagreement: {findings}\n\
         args: {:?}\n\
         shrunk {} -> {} statements; program:\n{}",
        case.args,
        original.size(),
        shrunk.size(),
        pretty::print_program(&case.program)
    )
}

/// Runs the full fuzz sweep and prints the report.
///
/// # Errors
///
/// Returns a summary message (for a nonzero exit) if any engine disagreed
/// with the oracle on an unfaulted run, a fault class was never injected or
/// never detected, `mem-delay` was not absorbed, or the sweep was cancelled
/// before completing.
pub fn run(opts: &FuzzOpts) -> Result<(), String> {
    let plan_text = opts.faults.as_deref().unwrap_or("all");
    // Parse once for validation and class listing; per-run plans re-parse
    // with their own seeds.
    let template = FaultPlan::parse(plan_text, 0)?;
    println!(
        "== fuzz: {} seeds, faults '{plan_text}', cycle budget {FUZZ_CYCLE_BUDGET} ==",
        opts.seeds
    );

    let cancel = CancelToken::new();
    let _deadline_guard = opts.deadline.map(|d| spawn_deadline(d, cancel.clone()));
    let dog = |cancel: &CancelToken| {
        Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET).with_cancel(cancel.clone())
    };

    // Sweep 1: unfaulted differential runs, all five systems per seed.
    type SeedResult = (u64, Result<Vec<(System, Verdict)>, String>);
    let seeds: Vec<(String, u64)> =
        (0..opts.seeds).map(|s| (format!("fuzz seed {s}"), s)).collect();
    let diff_timed = pool::parallel_map_labeled_timed(opts.jobs, seeds, |seed| {
        let case = Recipe::generate(seed, FUZZ_RECIPE_SIZE).materialize();
        let ora = match oracle(&case) {
            Ok(o) => o,
            Err(e) => return (seed, Err(e)),
        };
        let verdicts = System::ALL
            .map(|sys| {
                let (v, _) =
                    run_engine(&case, sys, None, dog(&cancel), opts.event_driven, &opts.mem, &ora);
                (sys, v)
            })
            .to_vec();
        (seed, Ok(verdicts))
    });
    // Wall-clock dispersion goes to stderr: stdout stays byte-identical for
    // any --jobs (the determinism contract ci.sh relies on).
    let mut campaign_lat = pool::latency_histogram(&diff_timed);
    eprintln!("  [wall] differential sweep (us/seed): {campaign_lat}");
    let diff: Vec<SeedResult> = diff_timed.into_iter().map(|(r, _)| r).collect();

    let mut failures: Vec<String> = Vec::new();
    let mut findings: Vec<DiffFinding> = Vec::new();
    let mut cancelled = 0usize;
    for (seed, r) in &diff {
        match r {
            Err(e) => failures.push(format!("seed {seed}: {e}")),
            Ok(verdicts) => {
                for (sys, v) in verdicts {
                    if matches!(v, Verdict::TimedOut(c) if c.contains("cancelled")) {
                        cancelled += 1;
                    } else if !v.is_agree() {
                        findings.push(DiffFinding {
                            seed: *seed,
                            system: *sys,
                            verdict: v.clone(),
                        });
                    }
                }
            }
        }
    }
    println!(
        "  differential: {} seeds x {} systems, {} disagreement(s)",
        opts.seeds,
        System::ALL.len(),
        findings.len()
    );

    // Shrink each disagreeing seed (serially — shrinking must be
    // deterministic and is rare) and print a witness.
    let mut witnessed = std::collections::BTreeSet::new();
    for f in &findings {
        println!("  {}: seed {} on {}", f.verdict.describe(), f.seed, f.system.label());
        if !witnessed.insert(f.seed) {
            continue;
        }
        let original = Recipe::generate(f.seed, FUZZ_RECIPE_SIZE);
        let disagrees = |r: &Recipe| {
            let case = r.materialize();
            match oracle(&case) {
                Err(_) => false,
                Ok(ora) => System::ALL.iter().any(|&sys| {
                    let d = Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET);
                    !run_engine(&case, sys, None, d, opts.event_driven, &opts.mem, &ora)
                        .0
                        .is_agree()
                }),
            }
        };
        let shrunk = shrink(&original, disagrees);
        let summary: Vec<String> = findings
            .iter()
            .filter(|g| g.seed == f.seed)
            .map(|g| format!("{}: {}", g.system.label(), g.verdict.describe()))
            .collect();
        let witness = render_witness(f.seed, &original, &shrunk, &summary.join("; "));
        println!("{witness}");
        failures.push(format!("seed {} disagreed unfaulted ({})", f.seed, summary.join("; ")));
    }

    // Sweep 1b: W-bound soundness — the static working-set bounds must
    // dominate the dynamic reuse tracker on every generated program, not
    // just the hand-written suite.
    let wseeds: Vec<(String, u64)> =
        (0..opts.seeds).map(|s| (format!("wbound seed {s}"), s)).collect();
    let wtimed = pool::parallel_map_labeled_timed(opts.jobs, wseeds, |seed| {
        let recipe = Recipe::generate(seed, FUZZ_RECIPE_SIZE);
        (seed, wbound_violation(&recipe, dog(&cancel)))
    });
    let wlat = pool::latency_histogram(&wtimed);
    eprintln!("  [wall] w-bound sweep (us/seed): {wlat}");
    campaign_lat.merge(&wlat);
    let wresults: Vec<(u64, Option<String>)> = wtimed.into_iter().map(|(r, _)| r).collect();
    let unsound: Vec<(u64, &str)> =
        wresults.iter().filter_map(|(s, v)| v.as_deref().map(|v| (*s, v))).collect();
    println!("  w-bounds: {} seeds, {} unsound static bound(s)", opts.seeds, unsound.len());
    for (seed, why) in unsound {
        let original = Recipe::generate(seed, FUZZ_RECIPE_SIZE);
        let fails = |r: &Recipe| {
            wbound_violation(r, Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET)).is_some()
        };
        let shrunk = shrink(&original, fails);
        println!("{}", render_witness(seed, &original, &shrunk, why));
        failures.push(format!("seed {seed}: unsound working-set bound ({why})"));
    }

    // Sweep 1c: shard soundness — the certified shard plan must hold up
    // against the dynamic crossing tracker on every generated program.
    let sseeds: Vec<(String, u64)> =
        (0..opts.seeds).map(|s| (format!("shard seed {s}"), s)).collect();
    let stimed = pool::parallel_map_labeled_timed(opts.jobs, sseeds, |seed| {
        let recipe = Recipe::generate(seed, FUZZ_RECIPE_SIZE);
        (seed, shard_violation(&recipe, dog(&cancel)))
    });
    let slat = pool::latency_histogram(&stimed);
    eprintln!("  [wall] shard sweep (us/seed): {slat}");
    campaign_lat.merge(&slat);
    let sresults: Vec<(u64, Option<String>)> = stimed.into_iter().map(|(r, _)| r).collect();
    let broken: Vec<(u64, &str)> =
        sresults.iter().filter_map(|(s, v)| v.as_deref().map(|v| (*s, v))).collect();
    println!("  shard-bounds: {} seeds, {} violated certificate(s)", opts.seeds, broken.len());
    for (seed, why) in broken {
        let original = Recipe::generate(seed, FUZZ_RECIPE_SIZE);
        let fails = |r: &Recipe| {
            shard_violation(r, Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET)).is_some()
        };
        let shrunk = shrink(&original, fails);
        println!("{}", render_witness(seed, &original, &shrunk, why));
        failures.push(format!("seed {seed}: violated shard certificate ({why})"));
    }

    // Sweep 2: chaos — every plan class against a rotating fault target.
    // Seeds whose oracle failed in sweep 1 (already reported) are skipped.
    let bad_seeds: std::collections::BTreeSet<u64> =
        diff.iter().filter(|(_, r)| r.is_err()).map(|(s, _)| *s).collect();
    let jobs2: Vec<(String, (u64, FaultKind))> = (0..opts.seeds)
        .filter(|s| !bad_seeds.contains(s))
        .flat_map(|seed| {
            let target = FAULT_TARGETS[(seed % FAULT_TARGETS.len() as u64) as usize];
            template
                .specs
                .iter()
                .filter(move |s| supports(target, s.kind))
                .map(move |s| {
                    (
                        format!("chaos seed {seed} {} on {}", s.kind.label(), target.label()),
                        (seed, s.kind),
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let chaos_timed = pool::parallel_map_labeled_timed(opts.jobs, jobs2, |(seed, kind)| {
        let target = FAULT_TARGETS[(seed % FAULT_TARGETS.len() as u64) as usize];
        let case = Recipe::generate(seed, FUZZ_RECIPE_SIZE).materialize();
        let ora = oracle(&case).expect("oracle-failing seeds were filtered out");
        let count = template.specs.iter().find(|s| s.kind == kind).map_or(1, |s| s.count);
        let plan = FaultPlan::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(kind.index() as u64))
            .with(kind, count)
            .between(template.window.0, template.window.1);
        let (verdict, records) =
            run_engine(&case, target, Some(plan), dog(&cancel), opts.event_driven, &opts.mem, &ora);
        ChaosRun { seed, system: target, kind, injected: records.len(), verdict }
    });
    let chaos_lat = pool::latency_histogram(&chaos_timed);
    eprintln!("  [wall] chaos sweep (us/run): {chaos_lat}");
    campaign_lat.merge(&chaos_lat);
    eprintln!("  [wall] campaign total (us/job): {campaign_lat}");
    let chaos: Vec<ChaosRun> = chaos_timed.into_iter().map(|(r, _)| r).collect();

    // Attribute per class.
    println!("  chaos: {} faulted runs across {} classes", chaos.len(), template.specs.len());
    let mut class_fail = Vec::new();
    for spec in &template.specs {
        let kind = spec.kind;
        let runs: Vec<&ChaosRun> = chaos.iter().filter(|r| r.kind == kind).collect();
        let mut n = [0usize; 5]; // detected, absorbed, tolerated, not-struck, misbehaved
        for r in &runs {
            match score(kind, r.injected, &r.verdict) {
                ChaosScore::Detected => n[0] += 1,
                ChaosScore::Absorbed => n[1] += 1,
                ChaosScore::Tolerated => n[2] += 1,
                ChaosScore::NotStruck => n[3] += 1,
                ChaosScore::Misbehaved => n[4] += 1,
            }
        }
        let injected: usize = runs.iter().map(|r| r.injected).sum();
        println!(
            "    {:<10} {injected:>4} injected: {} detected, {} absorbed, {} tolerated, {} unstruck, {} misbehaved",
            kind.label(), n[0], n[1], n[2], n[3], n[4]
        );
        for r in runs
            .iter()
            .filter(|r| matches!(score(kind, r.injected, &r.verdict), ChaosScore::Misbehaved))
        {
            println!(
                "      MISBEHAVED: seed {} on {}: {} ({} injected)",
                r.seed,
                r.system.label(),
                r.verdict.describe(),
                r.injected
            );
        }
        if injected == 0 {
            class_fail.push(format!("class '{}' never injected", kind.label()));
        } else if kind == FaultKind::MemDelay {
            if n[4] > 0 {
                class_fail.push(format!(
                    "mem-delay not absorbed in {} run(s) — engines must be latency-insensitive",
                    n[4]
                ));
            }
        } else if n[0] == 0 {
            // Some classes (dup especially) are detected only ~1-in-5 strikes:
            // the duplicate often lands on an already-consumed port and is
            // merely tolerated. Zero detections in a handful of strikes is a
            // coin flip, not evidence of a broken detection path — only
            // enforce the gate once the sample is large enough to mean it.
            if injected >= DETECT_GATE_MIN_STRIKES {
                class_fail.push(format!(
                    "class '{}' was injected {injected} time(s) but never detected",
                    kind.label()
                ));
            } else {
                println!(
                    "      note: '{}' struck only {injected}x with no detection; \
                     gate needs >= {DETECT_GATE_MIN_STRIKES} strikes (run more seeds)",
                    kind.label()
                );
            }
        }
    }
    failures.extend(class_fail);
    if cancelled > 0 {
        failures.push(format!("sweep cancelled by deadline; {cancelled} run(s) wound down"));
    }

    if failures.is_empty() {
        println!(
            "  fuzz: OK ({} seeds; no unfaulted disagreement, every static W bound sound, \
             every shard certificate held, every fault class attributed)",
            opts.seeds
        );
        Ok(())
    } else {
        Err(format!("fuzz found {} problem(s):\n  {}", failures.len(), failures.join("\n  ")))
    }
}

/// Arms a background thread that cancels `token` after `d`. The thread is
/// detached; it holds only its token clone.
fn spawn_deadline(d: Duration, token: CancelToken) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        std::thread::sleep(d);
        token.cancel();
    })
}

/// Runs one suite kernel on one fault-capable engine under `plan_text`
/// (default `all`) and prints the fault log and classification.
///
/// # Errors
///
/// Returns a message on unknown kernels/engines, bad plan strings, or
/// simulation faults that are not attributable to the injected plan
/// (running chaos with an empty plan on a broken engine).
pub fn chaos(ctx: &Ctx, kernel: &str, engine: &str, plan_text: Option<&str>) -> Result<(), String> {
    let sys = match engine {
        "tyr" => System::Tyr,
        "unordered" => System::Unordered,
        "ordered" => System::Ordered,
        other => {
            return Err(format!(
                "engine '{other}' cannot inject faults (fault-capable: tyr unordered ordered)"
            ))
        }
    };
    let w = by_name(kernel, ctx.scale, ctx.seed)
        .ok_or_else(|| format!("unknown kernel '{kernel}' (known: {})", APP_NAMES.join(" ")))?;
    let text = plan_text.unwrap_or("all");
    let plan = FaultPlan::parse(text, ctx.seed)?;
    println!("== chaos: {kernel} on {}, plan '{text}' (seed {}) ==", sys.label(), ctx.seed);

    // The suite kernels run against their own oracle (`Workload::check`),
    // not the interpreter: chaos wants the production check path.
    let dog = Watchdog::none().with_cycle_budget(ctx.cfg.max_cycles.min(CHAOS_CYCLE_BUDGET));
    let res: Result<RunResult, String> = match sys {
        System::Ordered => {
            let dfg = lower_ordered(&w.program).map_err(|e| format!("lowering: {e}"))?;
            let c = OrderedConfig {
                issue_width: ctx.cfg.issue_width,
                queue_depth: ctx.cfg.queue_depth,
                args: w.args.clone(),
                max_cycles: u64::MAX,
                mem: ctx.cfg.mem.clone(),
                faults: Some(plan.clone()),
                watchdog: dog,
                event_driven: ctx.cfg.event_driven,
                ..OrderedConfig::default()
            };
            OrderedEngine::new(&dfg, w.memory.clone(), c).run().map_err(|e| e.to_string())
        }
        _ => {
            let discipline = if sys == System::Tyr {
                TaggingDiscipline::Tyr
            } else {
                TaggingDiscipline::UnorderedUnbounded
            };
            let policy = if sys == System::Tyr {
                TagPolicy::local_with(ctx.cfg.tags, ctx.cfg.tag_overrides.clone())
            } else {
                TagPolicy::GlobalUnbounded
            };
            let dfg = lower_tagged(&w.program, discipline).map_err(|e| format!("lowering: {e}"))?;
            let c = TaggedConfig {
                issue_width: ctx.cfg.issue_width,
                tag_policy: policy,
                args: w.args.clone(),
                max_cycles: u64::MAX,
                mem: ctx.cfg.mem.clone(),
                check_token_leaks: true,
                faults: Some(plan.clone()),
                watchdog: dog,
                event_driven: ctx.cfg.event_driven,
                ..TaggedConfig::default()
            };
            TaggedEngine::new(&dfg, w.memory.clone(), c).run().map_err(|e| e.to_string())
        }
    };

    match res {
        Err(e) => println!("  outcome: engine error: {e}\n  verdict: fault DETECTED (sanitizer)"),
        Ok(r) => {
            println!("  injected {} fault(s):", r.faults.len());
            for rec in &r.faults {
                println!("    {rec}");
            }
            println!("  outcome: {}", r.outcome);
            let verdict = if r.is_complete() {
                match w.check(r.memory()) {
                    Ok(()) => {
                        if r.faults.is_empty() {
                            "no fault struck; run correct".to_string()
                        } else if plan.specs.iter().all(|s| s.kind == FaultKind::MemDelay) {
                            "fault ABSORBED (latency-insensitive, output correct)".to_string()
                        } else {
                            "fault TOLERATED (struck dead values; output correct)".to_string()
                        }
                    }
                    Err(e) => format!("fault DETECTED (wrong answer: {e})"),
                }
            } else {
                "fault DETECTED (run did not complete)".to_string()
            };
            println!("  verdict: {verdict}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All five engines agree with the oracle on a spread of unfaulted
    /// seeds — the fuzzer's core invariant — in both execution modes.
    #[test]
    fn engines_agree_unfaulted() {
        for seed in 0..8 {
            let case = Recipe::generate(seed, 12).materialize();
            let ora = oracle(&case).expect("oracle runs");
            for sys in System::ALL {
                for event_driven in [true, false] {
                    let dog = Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET);
                    let (v, faults) = run_engine(
                        &case,
                        sys,
                        None,
                        dog,
                        event_driven,
                        &MemConfig::default(),
                        &ora,
                    );
                    assert!(faults.is_empty(), "no plan, no faults");
                    assert!(v.is_agree(), "seed {seed} on {}: {}", sys.label(), v.describe());
                }
            }
        }
    }

    /// The static working-set bounds are sound on a spread of generated
    /// programs — the fuzz sweep's W-leg invariant, in miniature.
    #[test]
    fn wbounds_sound_on_generated_programs() {
        for seed in 0..8 {
            let recipe = Recipe::generate(seed, 12);
            let dog = Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET);
            assert_eq!(wbound_violation(&recipe, dog), None, "seed {seed}");
        }
    }

    /// The shard certificates hold on a spread of generated programs — the
    /// fuzz sweep's shard leg invariant, in miniature.
    #[test]
    fn shard_certificates_hold_on_generated_programs() {
        for seed in 0..40 {
            let recipe = Recipe::generate(seed, 12);
            let dog = Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET);
            assert_eq!(shard_violation(&recipe, dog), None, "seed {seed}");
        }
    }

    /// Same seed, same witness bytes — the determinism contract.
    #[test]
    fn witness_is_byte_identical_across_reruns() {
        // A synthetic deterministic predicate: "still contains a store_add
        // anywhere" — stands in for a real disagreement without needing a
        // buggy engine.
        fn has_store(stmts: &[tyr_workloads::gen::RStmt]) -> bool {
            stmts.iter().any(|s| match s {
                tyr_workloads::gen::RStmt::StoreAdd { .. } => true,
                tyr_workloads::gen::RStmt::Loop { body, .. } => has_store(body),
                _ => false,
            })
        }
        let failing = |r: &Recipe| has_store(&r.stmts);
        let (seed, original) = (0..50)
            .map(|s| (s, Recipe::generate(s, 12)))
            .find(|(_, r)| failing(r))
            .expect("some seed in 0..50 contains a store_add");
        let a = shrink(&original, failing);
        let b = shrink(&original, failing);
        assert_eq!(a, b);
        let wa = render_witness(seed, &original, &a, "synthetic");
        let wb = render_witness(seed, &original, &b, "synthetic");
        assert_eq!(wa, wb, "witness must be byte-identical across reruns");
        // And the shrunk recipe is minimal for the predicate: one store_add
        // (possibly wrapped in the loop that held it) survives.
        assert!(a.size() <= 2, "not minimal: {wa}");
    }

    /// Shrinking a known disagreement converges to a minimal failing case.
    #[test]
    fn shrinker_converges_on_known_disagreement() {
        // The "disagreement" predicate: TYR under a token-drop plan fails
        // to match the oracle (drop starves a consumer -> deadlock/wrong
        // answer). Find a seed where the drop actually strikes and is
        // detected, then shrink under that predicate.
        let drop_fails = |r: &Recipe| {
            let case = r.materialize();
            let Ok(ora) = oracle(&case) else { return false };
            let plan = FaultPlan::single(99, FaultKind::TokenDrop);
            let dog = Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET);
            let (v, faults) =
                run_engine(&case, System::Tyr, Some(plan), dog, true, &MemConfig::default(), &ora);
            !faults.is_empty() && !v.is_agree()
        };
        let seed = (0..32)
            .map(|s| Recipe::generate(s, 12))
            .find(|r| drop_fails(r))
            .expect("some seed in 0..32 has a detectable token drop");
        let shrunk = shrink(&seed, drop_fails);
        assert!(drop_fails(&shrunk), "shrunk witness still fails");
        assert!(shrunk.size() <= seed.size());
        // Deterministic: shrinking twice gives the same witness.
        assert_eq!(shrunk, shrink(&seed, drop_fails));
    }

    /// Probe parity: the fault log length equals the injected count seen by
    /// a counting probe (checked engine-side; here we assert the log is
    /// nonempty for a plan that must strike and that records are ordered).
    #[test]
    fn fault_log_is_cycle_ordered() {
        for seed in 0..16 {
            let case = Recipe::generate(seed, 12).materialize();
            let ora = oracle(&case).expect("oracle runs");
            let plan = FaultPlan::new(seed).with(FaultKind::TokenCorrupt, 3);
            let dog = Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET);
            let (_, faults) = run_engine(
                &case,
                System::Unordered,
                Some(plan),
                dog,
                true,
                &MemConfig::default(),
                &ora,
            );
            for w in faults.windows(2) {
                assert!(w[0].cycle <= w[1].cycle, "fault log out of order");
            }
        }
    }

    /// A bounded-global run that wedges on tag starvation is normally
    /// reported as a deadlock once the machine quiesces; with a cycle
    /// budget below the quiescence point the watchdog fires first and the
    /// run is attributed as `TimedOut` instead of wedging the sweep. The
    /// attributed cycle must be identical whether the engine ticks through
    /// the quiescent spin or jumps over it.
    #[test]
    fn watchdog_times_out_a_wedged_bounded_global_run() {
        use tyr_sim::TimeoutCause;
        use tyr_workloads::dmv;

        let w = dmv::build(4, 4, 1);
        let lw = crate::LoweredWorkload::new(&w);
        let run = |watchdog: Watchdog, event_driven: bool| {
            let c = TaggedConfig {
                issue_width: 64,
                tag_policy: TagPolicy::GlobalBounded { tags: 2 },
                args: w.args.clone(),
                watchdog,
                event_driven,
                ..TaggedConfig::default()
            };
            TaggedEngine::new(&lw.tyr, w.memory.clone(), c).run().unwrap()
        };
        let free = run(Watchdog::none(), true);
        let ticked_free = run(Watchdog::none(), false);
        assert_eq!(free.outcome, ticked_free.outcome, "wedge attribution differs across modes");
        let Outcome::Deadlock { cycle, .. } = free.outcome else {
            panic!("expected the 2-tag bounded pool to wedge, got {:?}", free.outcome);
        };
        assert!(cycle > 1, "wedge must take more than one cycle");
        for event_driven in [true, false] {
            let timed = run(Watchdog::none().with_cycle_budget(cycle - 1), event_driven);
            match timed.outcome {
                Outcome::TimedOut {
                    cause: TimeoutCause::CycleBudget { budget },
                    cycle: at,
                    ..
                } => {
                    assert_eq!(budget, cycle - 1, "event_driven={event_driven}");
                    assert_eq!(at, cycle - 1, "budget must trip at its own cycle in both modes");
                }
                other => panic!("expected TimedOut(CycleBudget), got {other:?}"),
            }
        }
    }

    /// Every injected fault is emitted as a probe event: the count of
    /// `FaultInjected` events seen by a probe equals the length of the
    /// run's fault log.
    #[test]
    fn probe_fault_events_match_the_run_log() {
        use tyr_sim::{Probe, ProbeEvent};

        #[derive(Default)]
        struct FaultCounter {
            injected: usize,
        }
        impl Probe for FaultCounter {
            fn event(&mut self, _cycle: u64, ev: ProbeEvent) {
                if matches!(ev, ProbeEvent::FaultInjected { .. }) {
                    self.injected += 1;
                }
            }
        }

        let mut total = 0usize;
        for seed in [0u64, 7, 13, 29] {
            let case = Recipe::generate(seed, FUZZ_RECIPE_SIZE).materialize();
            let dfg = lower_tagged(&case.program, TaggingDiscipline::Tyr).unwrap();
            // Delay + stick only: both leave the run attributable (absorbed
            // or timed out) rather than erroring, so the fault log is
            // always reachable.
            let plan =
                FaultPlan::new(seed).with(FaultKind::MemDelay, 3).with(FaultKind::NodeStick, 1);
            let c = TaggedConfig {
                issue_width: 64,
                tag_policy: TagPolicy::local(64),
                args: case.args.clone(),
                faults: Some(plan),
                watchdog: Watchdog::none().with_cycle_budget(FUZZ_CYCLE_BUDGET),
                ..TaggedConfig::default()
            };
            let mut counter = FaultCounter::default();
            let r = TaggedEngine::with_probe(&dfg, case.memory.clone(), c, &mut counter)
                .run()
                .expect("delay/stick faults never produce a hard error");
            assert_eq!(
                counter.injected,
                r.faults.len(),
                "seed {seed}: probe saw {} FaultInjected events, log has {}",
                counter.injected,
                r.faults.len()
            );
            total += r.faults.len();
        }
        assert!(total > 0, "the sweep must inject at least one fault");
    }
}
