//! Shared experiment plumbing for the `repro` harness and the micro-benches:
//! a uniform way to run any workload on any of the five architectures of the
//! paper's evaluation (Sec. VI).

#![warn(missing_docs)]

pub mod bench_cmd;
pub mod figures;
pub mod fuzz;
pub mod locality;
pub mod micro;
pub mod pool;
pub mod shard;
pub mod timeline;
pub mod trace;
pub mod verify;

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_dfg::Dfg;
use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
use tyr_sim::seqdf::{SeqDataflowConfig, SeqDataflowEngine};
use tyr_sim::seqvn::{SeqVnConfig, SeqVnEngine};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_sim::{MemConfig, RunResult};
use tyr_workloads::Workload;

/// The compared architectures (Sec. VI, *Systems*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Sequential von Neumann.
    SeqVn,
    /// Sequential dataflow (WaveScalar/TRIPS-style).
    SeqDf,
    /// Ordered dataflow (FIFO-synchronized, RipTide-style).
    Ordered,
    /// Naïve unordered dataflow, unlimited global tags.
    Unordered,
    /// TYR: local tag spaces.
    Tyr,
}

impl System {
    /// All five systems, in the paper's presentation order.
    pub const ALL: [System; 5] =
        [System::SeqVn, System::SeqDf, System::Ordered, System::Unordered, System::Tyr];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            System::SeqVn => "seq-vN",
            System::SeqDf => "seq-dataflow",
            System::Ordered => "ordered",
            System::Unordered => "unordered",
            System::Tyr => "TYR",
        }
    }
}

/// Common run parameters (defaults match Sec. VI: 128-wide issue, 64 tags
/// per local tag space, FIFO depth 4).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Issue width for every system.
    pub issue_width: usize,
    /// TYR tags per concurrent block.
    pub tags: usize,
    /// TYR per-block tag overrides `(block name, tags)`.
    pub tag_overrides: Vec<(String, usize)>,
    /// Ordered-dataflow FIFO depth.
    pub queue_depth: usize,
    /// Memory model shared by all engines: ideal fixed latency (default 1)
    /// or a two-level cache hierarchy (`--mem cached:...`). Under `Ideal`,
    /// only the dataflow engines observe the latency, matching the
    /// pre-cache harness behaviour.
    pub mem: MemConfig,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Use the event-driven core in the tagged/ordered engines (skip idle
    /// cycles). Bit-identical to ticked execution; disable (`--ticked`) only
    /// to cross-check that claim.
    pub event_driven: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            issue_width: 128,
            tags: 64,
            tag_overrides: Vec::new(),
            queue_depth: 4,
            mem: MemConfig::ideal(1),
            max_cycles: 2_000_000_000,
            event_driven: true,
        }
    }
}

/// Lowers (as needed) and runs `w` on `system`, checking the output memory
/// against the workload's oracle on completion.
///
/// # Panics
///
/// Panics on lowering errors, simulation faults, or oracle mismatches —
/// an experiment must not silently produce wrong data.
pub fn run_system(w: &Workload, system: System, cfg: &RunConfig) -> RunResult {
    let r = match system {
        System::SeqVn => {
            let c = SeqVnConfig {
                args: w.args.clone(),
                max_cycles: cfg.max_cycles * 64,
                mem: cfg.mem.clone(),
                ..SeqVnConfig::default()
            };
            SeqVnEngine::new(&w.program, w.memory.clone(), c).run()
        }
        System::SeqDf => {
            let c = SeqDataflowConfig {
                issue_width: cfg.issue_width,
                args: w.args.clone(),
                max_cycles: cfg.max_cycles * 16,
                mem: cfg.mem.clone(),
                ..SeqDataflowConfig::default()
            };
            SeqDataflowEngine::new(&w.program, w.memory.clone(), c).run()
        }
        System::Ordered => {
            let dfg = lower_ordered(&w.program).expect("ordered lowering");
            let c = OrderedConfig {
                issue_width: cfg.issue_width,
                queue_depth: cfg.queue_depth,
                depth_overrides: Vec::new(),
                args: w.args.clone(),
                max_cycles: cfg.max_cycles * 16,
                mem: cfg.mem.clone(),
                event_driven: cfg.event_driven,
                ..OrderedConfig::default()
            };
            OrderedEngine::new(&dfg, w.memory.clone(), c).run()
        }
        System::Unordered => {
            let dfg =
                lower_tagged(&w.program, TaggingDiscipline::UnorderedUnbounded).expect("lowering");
            let c = TaggedConfig {
                issue_width: cfg.issue_width,
                tag_policy: TagPolicy::GlobalUnbounded,
                args: w.args.clone(),
                max_cycles: cfg.max_cycles,
                mem: cfg.mem.clone(),
                event_driven: cfg.event_driven,
                ..TaggedConfig::default()
            };
            TaggedEngine::new(&dfg, w.memory.clone(), c).run()
        }
        System::Tyr => {
            let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("lowering");
            let c = TaggedConfig {
                issue_width: cfg.issue_width,
                tag_policy: TagPolicy::local_with(cfg.tags, cfg.tag_overrides.clone()),
                args: w.args.clone(),
                max_cycles: cfg.max_cycles,
                mem: cfg.mem.clone(),
                event_driven: cfg.event_driven,
                ..TaggedConfig::default()
            };
            TaggedEngine::new(&dfg, w.memory.clone(), c).run()
        }
    };
    let r = r.unwrap_or_else(|e| panic!("{} on {}: {e}", system.label(), w.name));
    if r.is_complete() {
        w.check(r.memory()).unwrap_or_else(|e| panic!("{} on {}: {e}", system.label(), w.name));
    }
    r
}

/// Pre-lowered graphs for a workload, when the same graph is reused across
/// many engine configurations (tag/width sweeps).
pub struct LoweredWorkload<'w> {
    /// The source workload.
    pub workload: &'w Workload,
    /// TYR elaboration (also used for bounded-global policies).
    pub tyr: Dfg,
    /// Naïve unordered elaboration.
    pub unordered: Dfg,
}

impl<'w> LoweredWorkload<'w> {
    /// Lowers both tagged elaborations.
    ///
    /// # Panics
    ///
    /// Panics on lowering errors.
    pub fn new(workload: &'w Workload) -> Self {
        LoweredWorkload {
            workload,
            tyr: lower_tagged(&workload.program, TaggingDiscipline::Tyr).expect("tyr lowering"),
            unordered: lower_tagged(&workload.program, TaggingDiscipline::UnorderedUnbounded)
                .expect("unordered lowering"),
        }
    }

    /// Runs the TYR graph under an arbitrary tag policy.
    ///
    /// # Panics
    ///
    /// Panics on simulation faults or oracle mismatches.
    pub fn run_tyr(&self, policy: TagPolicy, issue_width: usize) -> RunResult {
        let c = TaggedConfig {
            issue_width,
            tag_policy: policy,
            args: self.workload.args.clone(),
            max_cycles: 2_000_000_000,
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&self.tyr, self.workload.memory.clone(), c)
            .run()
            .unwrap_or_else(|e| panic!("tyr on {}: {e}", self.workload.name));
        if r.is_complete() {
            self.workload.check(r.memory()).unwrap_or_else(|e| panic!("{e}"));
        }
        r
    }

    /// Runs the unordered graph under a tag policy (unbounded or bounded).
    ///
    /// # Panics
    ///
    /// Panics on simulation faults or oracle mismatches.
    pub fn run_unordered(&self, policy: TagPolicy, issue_width: usize) -> RunResult {
        let graph = match &policy {
            // Bounded pools need the barrier/free elaboration to recycle tags.
            TagPolicy::GlobalBounded { .. } => &self.tyr,
            _ => &self.unordered,
        };
        let c = TaggedConfig {
            issue_width,
            tag_policy: policy,
            args: self.workload.args.clone(),
            max_cycles: 2_000_000_000,
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(graph, self.workload.memory.clone(), c)
            .run()
            .unwrap_or_else(|e| panic!("unordered on {}: {e}", self.workload.name));
        if r.is_complete() {
            self.workload.check(r.memory()).unwrap_or_else(|e| panic!("{e}"));
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyr_workloads::{by_name, Scale};

    #[test]
    fn run_system_smoke_all_systems() {
        let w = by_name("dmv", Scale::Tiny, 5).unwrap();
        let cfg = RunConfig::default();
        let mut cycles = Vec::new();
        for sys in System::ALL {
            let r = run_system(&w, sys, &cfg);
            assert!(r.is_complete(), "{}", sys.label());
            cycles.push((sys.label(), r.cycles()));
        }
        // Parallelism ordering: vN is the slowest; TYR and unordered are the
        // fastest.
        let get = |l: &str| cycles.iter().find(|(n, _)| *n == l).unwrap().1;
        assert!(get("seq-vN") > get("TYR"));
        assert!(get("seq-vN") > get("unordered"));
        assert!(get("ordered") > get("unordered"));
    }
}
