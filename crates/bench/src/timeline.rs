//! `repro timeline <kernel> <engine>` — run one kernel on one engine with
//! the cycle-windowed telemetry sink attached and show *when* the cycles
//! went, not just where.
//!
//! Three sinks ride on the same run (via the `(A, B)` probe combinator):
//!
//! * a [`Timeline`], whose report is rendered as per-window sparklines, an
//!   open-stall heatmap by reason, and a per-node firing-gap histogram;
//! * a [`StreamProbe`], which writes one JSONL record per probe event
//!   (schema `tyr-events/v1`) to `--events FILE` or an in-memory buffer;
//! * a [`CountingProbe`], the independent witness: the emitted JSONL is
//!   re-parsed with [`stream::validate`] and must contain exactly as many
//!   event records as the counter saw, or the command fails.
//!
//! On a wedged run (the Fig. 11 configuration, `repro timeline dmv
//! tagged-global-bounded`) the command exits cleanly and prints the tail
//! attribution: which stall reason's open intervals dominate the final
//! window and how many trailing windows fired nothing — the tag-starved
//! wedge as a stall-dominated tail.

use std::io::Write;
use std::path::Path;

use tyr_sim::RunResult;
use tyr_stats::probe::CountingProbe;
use tyr_stats::{stream, StreamProbe, Timeline, TimelineConfig};
use tyr_workloads::{by_name, Workload, APP_NAMES};

use crate::figures::Ctx;
use crate::trace;

/// Render width (columns) for the sparkline and heatmap rows.
const RENDER_WIDTH: usize = 64;

/// Runs `w` on `engine` with the timeline, streaming, and counting sinks
/// attached, writing JSONL records to `sink` as the run executes. Returns
/// the result (timeline report attached), the independent event count, and
/// the sink back.
fn run_streamed<W: Write>(
    ctx: &Ctx,
    w: &Workload,
    engine: &str,
    tcfg: TimelineConfig,
    sink: W,
) -> Result<(RunResult, u64, W), String> {
    let mut tl = Timeline::new(tcfg);
    let mut counting = CountingProbe::default();
    let mut stream = StreamProbe::new(sink);
    let r = trace::run_probed(ctx, w, engine, ((&mut tl, &mut counting), &mut stream))?;
    let final_cycle = r.final_cycle();
    let r = r.with_timeline(tl.report(final_cycle));
    let sink = stream.finish()?;
    Ok((r, counting.events, sink))
}

/// One triple-sinked timeline run streamed into an in-memory buffer:
/// returns the result, the
/// independent event count, and the complete JSONL document. Used by the
/// determinism and golden tests, which want the document without touching
/// disk.
///
/// # Errors
///
/// Returns a message on unknown engine names, lowering errors, or
/// simulation faults.
pub fn collect(
    ctx: &Ctx,
    w: &Workload,
    engine: &str,
    tcfg: TimelineConfig,
) -> Result<(RunResult, u64, String), String> {
    let (r, counted, buf) = run_streamed(ctx, w, engine, tcfg, Vec::new())?;
    let text = String::from_utf8(buf).map_err(|e| format!("emitted JSONL not UTF-8: {e}"))?;
    Ok((r, counted, text))
}

/// Runs `kernel` on `engine` with the full timeline stack, prints the
/// windowed report, writes the per-window CSV (to `out` and/or the `--csv`
/// directory) and the JSONL event stream (to `events`, when given), and
/// verifies the stream against the independent event counter.
///
/// A deadlocked or timed-out run is a *successful* timeline (that tail is
/// the point); only infrastructure problems — unknown names, simulation
/// faults, oracle mismatches on completed runs, I/O failures, an invalid or
/// miscounted stream — are errors.
///
/// # Errors
///
/// Returns a message on any of the infrastructure problems above.
pub fn run(
    ctx: &Ctx,
    kernel: &str,
    engine: &str,
    window: Option<u64>,
    out: Option<&Path>,
    events: Option<&Path>,
) -> Result<(), String> {
    let w = by_name(kernel, ctx.scale, ctx.seed)
        .ok_or_else(|| format!("unknown kernel '{kernel}' (known: {})", APP_NAMES.join(" ")))?;
    let mut tcfg = TimelineConfig::default();
    if let Some(win) = window {
        if win == 0 {
            return Err("--window must be at least 1 cycle".into());
        }
        tcfg.window = win;
    }
    println!(
        "== timeline: {kernel} on {engine} ({} scale, {}-cycle windows) ==",
        ctx.scale_label(),
        tcfg.window
    );

    let (r, counted, text) = match events {
        Some(path) => {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| format!("mkdir {parent:?}: {e}"))?;
                }
            }
            let file = std::fs::File::create(path)
                .map_err(|e| format!("create {}: {e}", path.display()))?;
            let (r, counted, _) =
                run_streamed(ctx, &w, engine, tcfg, std::io::BufWriter::new(file))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("re-reading {}: {e}", path.display()))?;
            (r, counted, text)
        }
        None => collect(ctx, &w, engine, tcfg)?,
    };
    if r.is_complete() {
        w.check(r.memory()).map_err(|e| format!("oracle mismatch: {e}"))?;
    }

    // The stream must re-parse, and its record count must agree with the
    // independent counter riding the same run.
    let summary = stream::validate(&text).map_err(|e| format!("emitted JSONL invalid: {e}"))?;
    if summary.events != counted {
        return Err(format!(
            "JSONL stream holds {} event record(s) but the counting probe saw {counted}",
            summary.events
        ));
    }

    let report = r.timeline.as_ref().expect("timeline sink was attached");
    println!("  outcome: {}", r.outcome);
    println!("{}", report.render(RENDER_WIDTH));
    if !r.is_complete() {
        if let Some((reason, open, tail)) = report.tail_attribution() {
            println!(
                "  wedge attribution: {open} open '{}' stall(s) dominate the final window; \
                 {tail} trailing window(s) fired nothing",
                reason.label()
            );
        }
    }

    let table = report.to_csv();
    if let Some(p) = out {
        table.write_to(p).map_err(|e| format!("write {}: {e}", p.display()))?;
        println!("  [csv] wrote {} ({} windows)", p.display(), table.len());
    }
    ctx.emit_csv(&format!("timeline_{kernel}_{engine}"), &table);

    match events {
        Some(path) => println!(
            "  [events] wrote {} ({} records, verified against the counting probe)",
            path.display(),
            summary.events
        ),
        None => println!(
            "  [events] {} streamed record(s) verified against the counting probe \
             (use --events FILE to keep them)",
            summary.events
        ),
    }
    Ok(())
}
