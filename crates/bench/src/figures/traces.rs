//! State-over-time trace figures: Fig. 2 (spmspm, all systems), Fig. 9
//! (dmv across TYR tag-space sizes), Fig. 16 (spmspm across tag widths),
//! Fig. 18 (dmm with per-region tag tuning).

use tyr_sim::tagged::TagPolicy;
use tyr_stats::ascii::{line_chart, Series};
use tyr_stats::csv::CsvTable;
use tyr_workloads::by_name;

use crate::figures::{trace_points, Ctx};
use crate::{pool, run_system, LoweredWorkload, System};

/// Fig. 2: live state over time for spmspm on every system (log-y). The
/// unordered trace balloons by orders of magnitude and then drains; TYR
/// finishes at nearly the same time with bounded state.
pub fn fig02(ctx: &Ctx) {
    println!("== Fig. 2: live state over time, spmspm ({} scale) ==", ctx.scale_label());
    let w = by_name("spmspm", ctx.scale, ctx.seed).expect("spmspm");
    let mut series = Vec::new();
    let mut csv = CsvTable::new(["system", "cycle", "live_tokens"]);
    for sys in System::ALL {
        let r = run_system(&w, sys, &ctx.cfg);
        println!(
            "  {:<14} cycles={:<12} peak_live={:<12} mean_live={:.1}",
            sys.label(),
            r.cycles(),
            r.peak_live(),
            r.mean_live()
        );
        for (c, v) in trace_points(&r.live) {
            csv.push_row([sys.label().to_string(), c.to_string(), v.to_string()]);
        }
        series.push(Series::new(sys.label(), trace_points(&r.live)));
    }
    println!("{}", line_chart("live tokens (log) vs cycles", &series, 100, 24, true));
    ctx.emit_csv("fig02_spmspm_traces", &csv);
}

/// Fig. 9: dmv live state as TYR's tag-space size varies (2, 8, 64,
/// unlimited). With unlimited tags TYR behaves identically to naïve
/// unordered dataflow.
pub fn fig09(ctx: &Ctx) {
    println!("== Fig. 9: dmv across TYR tag-space sizes ({} scale) ==", ctx.scale_label());
    let w = by_name("dmv", ctx.scale, ctx.seed).expect("dmv");
    let lw = LoweredWorkload::new(&w);
    let mut series = Vec::new();
    let mut csv = CsvTable::new(["tags", "cycle", "live_tokens"]);

    let mut run_case = |label: String, policy: TagPolicy| {
        let r = lw.run_tyr(policy, ctx.cfg.issue_width);
        println!("  tags={:<10} cycles={:<12} peak_live={:<12}", label, r.cycles(), r.peak_live());
        for (c, v) in trace_points(&r.live) {
            csv.push_row([label.clone(), c.to_string(), v.to_string()]);
        }
        series.push(Series::new(format!("t={label}"), trace_points(&r.live)));
        r
    };

    for tags in [2usize, 8, 64] {
        run_case(tags.to_string(), TagPolicy::local(tags));
    }
    let unlimited = run_case("unlimited".into(), TagPolicy::GlobalUnbounded);

    // Cross-check the Fig. 9d claim: unlimited-tag TYR ≈ naïve unordered.
    let naive = lw.run_unordered(TagPolicy::GlobalUnbounded, ctx.cfg.issue_width);
    println!(
        "  (naïve unordered: cycles={}, peak_live={}; unlimited-tag TYR tracks it modulo tag-management overhead: cycles={}, peak_live={})",
        naive.cycles(),
        naive.peak_live(),
        unlimited.cycles(),
        unlimited.peak_live(),
    );
    println!("{}", line_chart("live tokens (log) vs cycles", &series, 100, 24, true));
    ctx.emit_csv("fig09_dmv_tag_sizes", &csv);
}

/// Fig. 16: TYR live-state traces on spmspm across tag widths 2–512.
/// Execution time improves with more tags until parallelism saturates
/// (around t = issue width / 2).
pub fn fig16(ctx: &Ctx) {
    println!("== Fig. 16: TYR tag-width sweep on spmspm ({} scale) ==", ctx.scale_label());
    let w = by_name("spmspm", ctx.scale, ctx.seed).expect("spmspm");
    let lw = LoweredWorkload::new(&w);
    let mut series = Vec::new();
    let mut csv = CsvTable::new(["tags", "cycles", "peak_live", "mean_live"]);
    let mut trace_csv = CsvTable::new(["tags", "cycle", "live_tokens"]);
    // Each tag configuration is an independent run; sweep them on the
    // worker pool (submission-ordered results keep the output identical).
    let tag_counts = [2usize, 8, 32, 64, 128, 512];
    let runs = pool::parallel_map(ctx.jobs, tag_counts.to_vec(), |tags| {
        lw.run_tyr(TagPolicy::local(tags), ctx.cfg.issue_width)
    });
    for (tags, r) in tag_counts.into_iter().zip(runs) {
        println!(
            "  t={:<5} cycles={:<12} peak_live={:<12} mean_live={:.1}",
            tags,
            r.cycles(),
            r.peak_live(),
            r.mean_live()
        );
        csv.push_row([
            tags.to_string(),
            r.cycles().to_string(),
            r.peak_live().to_string(),
            format!("{:.2}", r.mean_live()),
        ]);
        for (c, v) in trace_points(&r.live) {
            trace_csv.push_row([tags.to_string(), c.to_string(), v.to_string()]);
        }
        series.push(Series::new(format!("t={tags}"), trace_points(&r.live)));
    }
    println!("{}", line_chart("live tokens (log) vs cycles", &series, 100, 24, true));
    ctx.emit_csv("fig16_tag_sweep", &csv);
    ctx.emit_csv("fig16_tag_sweep_traces", &trace_csv);
}

/// Fig. 18: per-region tag tuning on dmm. Shrinking only the outermost
/// loop's tag space (64 → 8) cuts peak state with minimal slowdown — the
/// paper reports −28.5% peak state.
pub fn fig18(ctx: &Ctx) {
    println!("== Fig. 18: per-region tag tuning on dmm ({} scale) ==", ctx.scale_label());
    let w = by_name("dmm", ctx.scale, ctx.seed).expect("dmm");
    let lw = LoweredWorkload::new(&w);
    let base = lw.run_tyr(TagPolicy::local(ctx.cfg.tags), ctx.cfg.issue_width);
    let tuned = lw.run_tyr(
        TagPolicy::local_with(ctx.cfg.tags, vec![("dmm_i".into(), 8)]),
        ctx.cfg.issue_width,
    );
    let dstate = 100.0 * (1.0 - tuned.peak_live() as f64 / base.peak_live() as f64);
    let dtime = 100.0 * (tuned.cycles() as f64 / base.cycles() as f64 - 1.0);
    println!(
        "  baseline  (t={} everywhere):    cycles={:<12} peak_live={}",
        ctx.cfg.tags,
        base.cycles(),
        base.peak_live()
    );
    println!(
        "  tuned     (outer loop t=8):     cycles={:<12} peak_live={}",
        tuned.cycles(),
        tuned.peak_live()
    );
    println!(
        "  => peak state reduced by {dstate:.1}% at a {dtime:+.1}% execution-time cost (paper: −28.5%, minimal slowdown)"
    );
    let series = vec![
        Series::new("t=64 everywhere", trace_points(&base.live)),
        Series::new("outer t=8", trace_points(&tuned.live)),
    ];
    println!("{}", line_chart("live tokens (log) vs cycles", &series, 100, 20, true));
    let mut csv = CsvTable::new(["config", "cycles", "peak_live"]);
    csv.push_row(["baseline".into(), base.cycles().to_string(), base.peak_live().to_string()]);
    csv.push_row(["tuned".into(), tuned.cycles().to_string(), tuned.peak_live().to_string()]);
    ctx.emit_csv("fig18_region_tuning", &csv);
}
