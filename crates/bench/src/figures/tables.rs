//! Table I (the TYR ISA, as implemented) and Table II (applications and
//! input sizes).

use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
use tyr_stats::csv::CsvTable;
use tyr_workloads::suite;

use crate::figures::Ctx;

/// Table I: the instruction set, printed from the implementation so it
/// cannot drift from the code.
pub fn table1(_ctx: &Ctx) {
    println!("== Table I: TYR's instruction set (as implemented in tyr-dfg) ==");
    println!("  {:<22} Instruction(s)", "Category");
    println!("  {:<22} add sub mul div rem and or xor shl shr lt le gt ge eq ne min max not neg mov select", "Arithmetic");
    println!("  {:<22} load, store, store-add (atomic fetch-add)", "Memory");
    println!("  {:<22} steer, join, merge", "Control flow");
    println!(
        "  {:<22} allocate (external/tail/call), free, changeTag, changeTagDyn, extractTag",
        "Token synchronization"
    );
    println!("  {:<22} source, sink, const; cmerge (ordered baseline only)", "Linkage");
}

/// Table II: the applications with their parameters at the selected scale,
/// plus static graph statistics from the TYR lowering.
pub fn table2(ctx: &Ctx) {
    println!("== Table II: applications and input sizes ({} scale) ==", ctx.scale_label());
    let mut csv = CsvTable::new(["app", "parameters", "tyr_nodes", "concurrent_blocks"]);
    println!("  {:<8} {:<48} {:>10} {:>8}", "app", "parameters", "TYR nodes", "blocks");
    for w in suite(ctx.scale, ctx.seed) {
        let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("lowering");
        println!("  {:<8} {:<48} {:>10} {:>8}", w.name, w.params, dfg.len(), dfg.blocks.len());
        csv.push_row([
            w.name.clone(),
            w.params.clone(),
            dfg.len().to_string(),
            dfg.blocks.len().to_string(),
        ]);
    }
    ctx.emit_csv("table2_apps", &csv);
}
