//! Fig. 11 (deadlock under a bounded global tag space) and the Sec. VIII
//! k-bounding ablation.

use tyr_sim::tagged::TagPolicy;
use tyr_sim::Outcome;
use tyr_stats::csv::CsvTable;
use tyr_workloads::{by_name, dmv, Scale};

use crate::figures::Ctx;
use crate::LoweredWorkload;

/// Fig. 11: naïve unordered dataflow with a small global tag pool deadlocks
/// on dmv — every tag is grabbed by an eager outer-loop iteration, so no
/// inner loop can finish. The same sweep shows the pool size needed to
/// complete growing with input size, while TYR completes with 2 tags per
/// block at every size.
pub fn fig11(ctx: &Ctx) {
    println!("== Fig. 11: bounded global tag space deadlocks (unordered dataflow) ==");
    let sizes: &[usize] = match ctx.scale {
        Scale::Tiny => &[4, 6, 8],
        _ => &[4, 8, 12, 16, 24, 32],
    };
    let mut csv = CsvTable::new(["matrix_size", "global_tags_needed", "tyr_tags_needed"]);
    println!("  {:>12} {:>22} {:>18}", "dmv size", "global tags to finish", "TYR tags/block");
    for &n in sizes {
        let w = dmv::build(n, n, ctx.seed);
        let lw = LoweredWorkload::new(&w);
        // Demonstrate the deadlock and report it at pool size 8.
        if n == sizes[0] {
            let r = lw.run_unordered(TagPolicy::GlobalBounded { tags: 2 }, ctx.cfg.issue_width);
            if matches!(r.outcome, Outcome::Deadlock { .. }) {
                // `Outcome`'s Display renders the summary line plus the
                // wedged-allocate list — the same text `RunResult::cycles`
                // panics with.
                println!("  example deadlock ({n}x{n}, 2 global tags): {}", r.outcome);
            }
        }
        // Smallest global pool that completes (linear scan over doublings).
        let mut needed = None;
        let mut tags = 1usize;
        while tags <= 65_536 {
            let r = lw.run_unordered(TagPolicy::GlobalBounded { tags }, ctx.cfg.issue_width);
            if r.is_complete() {
                needed = Some(tags);
                break;
            }
            tags *= 2;
        }
        // TYR always completes with 2 tags per block (Theorem 1).
        let tyr = lw.run_tyr(TagPolicy::local(2), ctx.cfg.issue_width);
        assert!(tyr.is_complete(), "TYR with 2 tags must complete (Theorem 1)");
        let needed_str = needed.map(|t| format!("<= {t}")).unwrap_or_else(|| "> 65536".to_string());
        println!("  {:>9}x{:<3} {:>22} {:>18}", n, n, needed_str, 2);
        csv.push_row([
            n.to_string(),
            needed.map(|t| t.to_string()).unwrap_or_else(|| "inf".into()),
            "2".to_string(),
        ]);
    }
    println!("  => the global pool must grow with the input; TYR's local spaces do not.");
    ctx.emit_csv("fig11_deadlock", &csv);
}

/// Sec. VIII ablation: the ISA tax of token synchronization. TYR executes
/// extra `allocate`/`free`/`changeTag`/`join` instructions that compete for
/// issue slots; a microarchitecture with dedicated tag-management hardware
/// (Monsoon-style block-boundary matching, as Sec. VIII envisions) removes
/// that tax. This quantifies how much of the TYR-vs-unordered gap it
/// explains.
pub fn ablation_isatax(ctx: &Ctx) {
    use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
    use tyr_sim::tagged::{TaggedConfig, TaggedEngine};
    println!("== Ablation: the token-synchronization ISA tax ==");
    let mut csv = CsvTable::new(["app", "config", "cycles", "dyn_instrs"]);
    println!(
        "  {:>8} {:>16} {:>16} {:>16} {:>10}",
        "app", "unordered", "TYR (taxed)", "TYR (free sync)", "tax"
    );
    for app in ["dmv", "dmm", "smv", "spmspm", "tc"] {
        let w = by_name(app, ctx.scale, ctx.seed).expect("app");
        let lw = LoweredWorkload::new(&w);
        let un = lw.run_unordered(TagPolicy::GlobalUnbounded, ctx.cfg.issue_width);
        let run_tyr = |free_sync: bool| {
            let cfg = TaggedConfig {
                issue_width: ctx.cfg.issue_width,
                tag_policy: TagPolicy::local(ctx.cfg.tags),
                args: w.args.clone(),
                free_token_sync: free_sync,
                ..TaggedConfig::default()
            };
            let r = TaggedEngine::new(
                &lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("lowering"),
                w.memory.clone(),
                cfg,
            )
            .run()
            .expect("tyr run");
            assert!(r.is_complete());
            w.check(r.memory()).expect("oracle");
            r
        };
        let taxed = run_tyr(false);
        let free = run_tyr(true);
        let tax = 100.0 * (taxed.cycles() as f64 / free.cycles() as f64 - 1.0);
        println!(
            "  {:>8} {:>16} {:>16} {:>16} {:>9.1}%",
            app,
            un.cycles(),
            taxed.cycles(),
            free.cycles(),
            tax
        );
        for (config, r) in [("unordered", &un), ("tyr_taxed", &taxed), ("tyr_free_sync", &free)] {
            csv.push_row([
                app.to_string(),
                config.to_string(),
                r.cycles().to_string(),
                r.dyn_instrs().to_string(),
            ]);
        }
    }
    println!("  => width-bound apps (spmspm, tc) recover much of the gap when tag management");
    println!("     is free; loop-nest apps (dmv, dmm) are *tag*-bound — their concurrency is");
    println!("     capped by the shared local tag space, so the ISA tax is not what separates");
    println!("     them from unordered. Raising --tags is the lever there (Fig. 17).");
    ctx.emit_csv("ablation_isatax", &csv);
}

/// Sec. II-C "Problem #2" quantified: the token-store size each design
/// needs. TYR's bounded local tag spaces keep every block's store small and
/// private (issue-queue sized); naïve unordered dataflow needs one large
/// associative store whose peak grows with the program's run-ahead.
pub fn ablation_storesize(ctx: &Ctx) {
    println!("== Ablation: token-store sizing (per-block peaks) ==");
    let mut csv = CsvTable::new(["app", "config", "max_block_store", "total_peak"]);
    println!("  {:>8} {:>24} {:>24}", "app", "TYR max block store", "unordered store peak");
    for app in ["dmv", "dmm", "smv", "spmspm", "tc"] {
        let w = by_name(app, ctx.scale, ctx.seed).expect("app");
        let lw = LoweredWorkload::new(&w);
        let tyr = lw.run_tyr(TagPolicy::local(ctx.cfg.tags), ctx.cfg.issue_width);
        let un = lw.run_unordered(TagPolicy::GlobalUnbounded, ctx.cfg.issue_width);
        // Unordered has a single global (associative) store; its required
        // capacity is the overall live-token peak.
        println!("  {:>8} {:>24} {:>24}", app, tyr.max_store_peak(), un.peak_live());
        csv.push_row([
            app.to_string(),
            "tyr".into(),
            tyr.max_store_peak().to_string(),
            tyr.peak_live().to_string(),
        ]);
        csv.push_row([
            app.to_string(),
            "unordered".into(),
            un.max_store_peak().to_string(),
            un.peak_live().to_string(),
        ]);
    }
    println!("  => every TYR block's private store fits an issue-queue-sized structure;");
    println!("     the unordered design needs one big associative store (and its required");
    println!("     size grows with the input - see ablation-explosion).");
    ctx.emit_csv("ablation_storesize", &csv);
}

/// Sec. VIII ablation: TTDA-style k-bounding is a bounded tag budget without
/// local-space structure. On a single affine loop nest it can complete with
/// a modest pool, but on irregular nested programs the FCFS pool deadlocks
/// while TYR (2 tags per block) always finishes.
pub fn ablation_kbound(ctx: &Ctx) {
    println!("== Sec. VIII ablation: k-bounded global pool vs TYR local tag spaces ==");
    let k = 8;
    let mut csv = CsvTable::new(["app", "kbound_outcome", "tyr_outcome"]);
    println!("  {:>8} {:>26} {:>22}", "app", format!("global pool (k={k})"), "TYR (2 tags/block)");
    // A single (non-nested) affine loop first: this is TTDA's home turf, and
    // k-bounding works there — the pool recycles tag-by-tag with no
    // cross-level competition.
    let single = {
        use tyr_ir::build::ProgramBuilder;
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        let [i, acc] = f.begin_loop("affine", [0, 0]);
        let c = f.lt(i, 200);
        f.begin_body(c);
        let acc2 = f.add(acc, i);
        let i2 = f.add(i, 1);
        let [out] = f.end_loop([i2, acc2], [acc]);
        pb.finish(f, [out])
    };
    let single_w = tyr_workloads::Workload::new(
        "affine1",
        "single loop",
        single,
        tyr_ir::MemoryImage::new(),
        vec![],
    );
    let apps = ["dmv", "smv", "spmspm", "tc"];
    let mut rows: Vec<tyr_workloads::Workload> = vec![single_w];
    rows.extend(apps.iter().map(|app| by_name(app, Scale::Tiny, ctx.seed).expect("app")));
    for w in &rows {
        let lw = LoweredWorkload::new(w);
        let kb = lw.run_unordered(TagPolicy::GlobalBounded { tags: k }, ctx.cfg.issue_width);
        let tyr = lw.run_tyr(TagPolicy::local(2), ctx.cfg.issue_width);
        let kb_str = match &kb.outcome {
            Outcome::Completed { cycles, .. } => format!("completed ({cycles} cyc)"),
            Outcome::Deadlock { cycle, .. } => format!("DEADLOCK @ {cycle}"),
            Outcome::TimedOut { cycle, .. } => format!("TIMEOUT @ {cycle}"),
        };
        let tyr_str = match &tyr.outcome {
            Outcome::Completed { cycles, .. } => format!("completed ({cycles} cyc)"),
            Outcome::Deadlock { cycle, .. } => format!("DEADLOCK @ {cycle}"),
            Outcome::TimedOut { cycle, .. } => format!("TIMEOUT @ {cycle}"),
        };
        println!("  {:>8} {kb_str:>26} {tyr_str:>22}", w.name);
        csv.push_row([w.name.clone(), kb_str, tyr_str]);
        assert!(tyr.is_complete(), "TYR must always complete");
    }
    println!("  => k-bounding suffices for a single affine loop (TTDA's target) but deadlocks");
    println!("     the moment loops nest; TYR's local spaces generalize it (Sec. VIII).");
    ctx.emit_csv("ablation_kbound", &csv);
}
