//! Whole-suite comparison figures: Fig. 12 (execution time), Fig. 13 (IPC
//! CDFs), Fig. 14 (peak/mean live state).
//!
//! The shared `(app, system)` sweep fans out over the [`crate::pool`]
//! worker pool; each figure is rendered to a `String` by a pure
//! `render_*` function so the determinism tests can assert that parallel
//! and serial sweeps produce byte-identical tables.

use std::collections::HashMap;
use std::fmt::Write as _;

use tyr_stats::ascii::{bar_chart, line_chart, Series};
use tyr_stats::csv::CsvTable;
use tyr_stats::{IpcHistogram, Summary};
use tyr_workloads::{suite, APP_NAMES};

use crate::figures::Ctx;
use crate::{pool, run_system, System};

/// The shared full-suite sweep used by Figs. 12–14: every app on every
/// system.
pub struct SuiteResults {
    /// `(app, system) -> result`.
    pub runs: HashMap<(String, System), tyr_sim::RunResult>,
}

/// Runs the whole suite on every system (the expensive part, shared by
/// Figs. 12–14), fanning the `(app, system)` grid out over `ctx.jobs`
/// workers. Every cell is independent — the workload and config are shared
/// read-only — and results are keyed, so worker scheduling cannot affect
/// the figures.
pub fn run_suite(ctx: &Ctx) -> SuiteResults {
    let workloads = suite(ctx.scale, ctx.seed);
    let grid: Vec<(String, (&tyr_workloads::Workload, System))> = workloads
        .iter()
        .flat_map(|w| System::ALL.map(|sys| (format!("{} on {}", w.name, sys.label()), (w, sys))))
        .collect();
    let runs = pool::parallel_map_labeled(ctx.jobs, grid, |(w, sys)| {
        eprintln!("  running {} on {} ...", w.name, sys.label());
        ((w.name.clone(), sys), run_system(w, sys, &ctx.cfg))
    });
    SuiteResults { runs: runs.into_iter().collect() }
}

/// Fig. 12: execution time for every app on every system, plus the gmean
/// speedups of TYR over each baseline (paper: 68× vs vN, 22.7× vs
/// sequential dataflow, 21.7× vs ordered, 0.77× vs unordered).
pub fn fig12(ctx: &Ctx, results: &SuiteResults) {
    let (out, csv) = render_fig12(ctx, results);
    print!("{out}");
    ctx.emit_csv("fig12_exec_time", &csv);
}

/// Renders Fig. 12 without printing; used by `fig12` and the determinism
/// tests.
pub fn render_fig12(ctx: &Ctx, results: &SuiteResults) -> (String, CsvTable) {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig. 12: execution time (cycles) ({} scale) ==", ctx.scale_label());
    let mut csv = CsvTable::new(["app", "system", "cycles", "dyn_instrs"]);
    let _ = writeln!(
        out,
        "  {:<8} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "app",
        System::SeqVn.label(),
        System::SeqDf.label(),
        System::Ordered.label(),
        System::Unordered.label(),
        System::Tyr.label()
    );
    for app in APP_NAMES {
        let mut row = format!("  {app:<8}");
        for sys in System::ALL {
            let r = &results.runs[&(app.to_string(), sys)];
            row.push_str(&format!(" {:>14}", r.cycles()));
            csv.push_row([
                app.to_string(),
                sys.label().to_string(),
                r.cycles().to_string(),
                r.dyn_instrs().to_string(),
            ]);
        }
        let _ = writeln!(out, "{row}");
    }
    // Gmean speedups of TYR vs each baseline.
    let _ = writeln!(out, "\n  gmean speedup of TYR vs each system (paper values in parens):");
    let paper = [("seq-vN", 68.0), ("seq-dataflow", 22.7), ("ordered", 21.7), ("unordered", 0.77)];
    for (sys, paper_x) in
        [System::SeqVn, System::SeqDf, System::Ordered, System::Unordered].iter().zip(paper)
    {
        let mut s = Summary::new();
        for app in APP_NAMES {
            let base = results.runs[&(app.to_string(), *sys)].cycles();
            let tyr = results.runs[&(app.to_string(), System::Tyr)].cycles();
            s.push(base as f64 / tyr as f64);
        }
        let _ = writeln!(
            out,
            "    vs {:<14} {:>8.2}x   (paper: {}x)",
            paper_x.0,
            s.gmean().unwrap(),
            paper_x.1
        );
    }
    // Bar chart of per-app cycles for a visual check.
    let rows: Vec<(String, f64)> = APP_NAMES
        .iter()
        .flat_map(|app| {
            System::ALL.iter().map(move |sys| {
                (
                    format!("{app}/{}", sys.label()),
                    results.runs[&(app.to_string(), *sys)].cycles() as f64,
                )
            })
        })
        .collect();
    let _ = writeln!(out, "\n{}", bar_chart("execution time (log scale)", &rows, 60, true));
    (out, csv)
}

/// Fig. 13: CDF of per-cycle IPC for each system, aggregated across all
/// apps. Unordered is nearly the ideal `_]`; TYR tracks it closely; the
/// sequential/ordered systems rarely exceed ten.
pub fn fig13(ctx: &Ctx, results: &SuiteResults) {
    let (out, csv) = render_fig13(ctx, results);
    print!("{out}");
    ctx.emit_csv("fig13_ipc_cdf", &csv);
}

/// Renders Fig. 13 without printing.
pub fn render_fig13(ctx: &Ctx, results: &SuiteResults) -> (String, CsvTable) {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig. 13: IPC CDFs across all apps ({} scale) ==", ctx.scale_label());
    let mut series = Vec::new();
    let mut csv = CsvTable::new(["system", "ipc", "cum_prob"]);
    for sys in System::ALL {
        let mut merged = IpcHistogram::new();
        for app in APP_NAMES {
            merged.merge(&results.runs[&(app.to_string(), sys)].ipc);
        }
        let cdf = merged.cdf();
        let _ = writeln!(
            out,
            "  {:<14} mean IPC={:<8.2} p50={:<6} p90={:<6} max={}",
            sys.label(),
            merged.mean(),
            cdf.quantile(0.5).unwrap_or(0.0),
            cdf.quantile(0.9).unwrap_or(0.0),
            merged.max_value()
        );
        for &(v, p) in cdf.points() {
            csv.push_row([sys.label().to_string(), v.to_string(), format!("{p:.6}")]);
        }
        series.push(Series::new(sys.label(), cdf.points().to_vec()));
    }
    let _ =
        writeln!(out, "{}", line_chart("cumulative probability vs IPC", &series, 100, 20, false));
    (out, csv)
}

/// Fig. 14: peak (and mean) live tokens per app per system, log scale.
/// TYR sits orders of magnitude below unordered while staying fast.
pub fn fig14(ctx: &Ctx, results: &SuiteResults) {
    let (out, csv) = render_fig14(ctx, results);
    print!("{out}");
    ctx.emit_csv("fig14_live_state", &csv);
}

/// Renders Fig. 14 without printing.
pub fn render_fig14(ctx: &Ctx, results: &SuiteResults) -> (String, CsvTable) {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 14: live state (peak / mean tokens) ({} scale) ==",
        ctx.scale_label()
    );
    let mut csv = CsvTable::new(["app", "system", "peak_live", "mean_live"]);
    let _ = writeln!(
        out,
        "  {:<8} {:>20} {:>20} {:>20} {:>20} {:>20}",
        "app",
        System::SeqVn.label(),
        System::SeqDf.label(),
        System::Ordered.label(),
        System::Unordered.label(),
        System::Tyr.label()
    );
    for app in APP_NAMES {
        let mut row = format!("  {app:<8}");
        for sys in System::ALL {
            let r = &results.runs[&(app.to_string(), sys)];
            row.push_str(&format!(" {:>12}/{:<7.0}", r.peak_live(), r.mean_live()));
            csv.push_row([
                app.to_string(),
                sys.label().to_string(),
                r.peak_live().to_string(),
                format!("{:.2}", r.mean_live()),
            ]);
        }
        let _ = writeln!(out, "{row}");
    }
    // State-reduction gmeans (paper: 572.8× less than unordered; 98.4×,
    // 136×, 23× more than vN / seq-dataflow / ordered).
    let ratio = |a: System, b: System| {
        let mut s = Summary::new();
        for app in APP_NAMES {
            let x = results.runs[&(app.to_string(), a)].peak_live().max(1) as f64;
            let y = results.runs[&(app.to_string(), b)].peak_live().max(1) as f64;
            s.push(x / y);
        }
        s.gmean().unwrap()
    };
    let _ = writeln!(out, "\n  gmean peak-state ratios (paper values in parens):");
    let _ = writeln!(
        out,
        "    unordered / TYR: {:>10.1}x  (paper: 572.8x)",
        ratio(System::Unordered, System::Tyr)
    );
    let _ = writeln!(
        out,
        "    TYR / seq-vN:    {:>10.1}x  (paper: 98.4x)",
        ratio(System::Tyr, System::SeqVn)
    );
    let _ = writeln!(
        out,
        "    TYR / seq-df:    {:>10.1}x  (paper: 136x)",
        ratio(System::Tyr, System::SeqDf)
    );
    let _ = writeln!(
        out,
        "    TYR / ordered:   {:>10.1}x  (paper: 23x)",
        ratio(System::Tyr, System::Ordered)
    );
    let rows: Vec<(String, f64)> = APP_NAMES
        .iter()
        .flat_map(|app| {
            System::ALL.iter().map(move |sys| {
                (
                    format!("{app}/{}", sys.label()),
                    results.runs[&(app.to_string(), *sys)].peak_live() as f64,
                )
            })
        })
        .collect();
    let _ = writeln!(out, "\n{}", bar_chart("peak live tokens (log scale)", &rows, 60, true));
    (out, csv)
}
