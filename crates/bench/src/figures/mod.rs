//! One module per table/figure of the paper's evaluation (Sec. VII).
//!
//! Every entry point takes a [`Ctx`] and prints the figure's data as text
//! (tables + ASCII charts), optionally dumping the raw series as CSV. See
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
//! paper-vs-measured results.

pub mod deadlock;
pub mod locality;
pub mod perf;
pub mod scaling;
pub mod tables;
pub mod traces;

use std::path::PathBuf;

use tyr_stats::csv::CsvTable;
use tyr_workloads::Scale;

use crate::RunConfig;

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Input scale for the workloads.
    pub scale: Scale,
    /// Input generation seed.
    pub seed: u64,
    /// Engine parameters.
    pub cfg: RunConfig,
    /// If set, raw figure data is written as CSV under this directory.
    pub csv_dir: Option<PathBuf>,
    /// Worker threads for experiment sweeps (`--jobs` / `REPRO_JOBS`;
    /// results are collected in submission order, so any value prints the
    /// same tables as `jobs = 1`).
    pub jobs: usize,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            scale: Scale::Small,
            seed: 1,
            cfg: RunConfig::default(),
            csv_dir: None,
            jobs: crate::pool::default_jobs(),
        }
    }
}

impl Ctx {
    /// Writes a CSV table if `--csv` was given.
    pub fn emit_csv(&self, name: &str, table: &CsvTable) {
        if let Some(dir) = &self.csv_dir {
            let path = dir.join(format!("{name}.csv"));
            match table.write_to(&path) {
                Ok(()) => println!("  [csv] wrote {}", path.display()),
                Err(e) => eprintln!("  [csv] failed to write {}: {e}", path.display()),
            }
        }
    }

    /// Scale label for titles.
    pub fn scale_label(&self) -> &'static str {
        match self.scale {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }
}

/// Downsamples a trace into `(cycle, live)` points for charting/CSV.
pub(crate) fn trace_points(trace: &tyr_stats::Trace) -> Vec<(f64, f64)> {
    trace.points().into_iter().map(|(c, v)| (c as f64, v as f64)).collect()
}
