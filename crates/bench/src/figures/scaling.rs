//! Scalability figures: Fig. 15 (issue-width sweep on dmv) and Fig. 17
//! (issue width × tag count on spmspv).

use tyr_sim::tagged::TagPolicy;
use tyr_stats::ascii::{line_chart, Series};
use tyr_stats::csv::CsvTable;
use tyr_workloads::{dmv, spmspv, Scale};

use crate::figures::Ctx;
use crate::{pool, run_system, LoweredWorkload, RunConfig, System};

/// Fig. 15: execution time (top) and peak state (bottom) across issue
/// widths 16–512 for dmv. TYR and unordered scale with width; sequential
/// and ordered dataflow see negligible gains; live state is insensitive to
/// width.
pub fn fig15(ctx: &Ctx) {
    // Paper caption: dmv on 512×512 inputs. Scale down in Small mode.
    let n = match ctx.scale {
        Scale::Tiny => 16,
        Scale::Small => 96,
        Scale::Paper => 512,
    };
    println!("== Fig. 15: issue-width scaling on dmv {n}x{n} ==");
    let w = dmv::build(n, n, ctx.seed);
    let widths = [16usize, 32, 64, 128, 256, 512];
    // Fan the (system, width) grid out over the worker pool; results come
    // back in submission order, so the rendering below is byte-identical
    // to the serial nested loop it replaces.
    let grid: Vec<(System, usize)> =
        System::ALL.iter().flat_map(|&sys| widths.iter().map(move |&width| (sys, width))).collect();
    let runs = pool::parallel_map(ctx.jobs, grid, |(sys, width)| {
        let cfg = RunConfig { issue_width: width, ..ctx.cfg.clone() };
        run_system(&w, sys, &cfg)
    });
    let mut runs = runs.into_iter();
    let mut time_series: Vec<Series> = Vec::new();
    let mut state_series: Vec<Series> = Vec::new();
    let mut csv = CsvTable::new(["system", "issue_width", "cycles", "peak_live"]);
    for sys in System::ALL {
        let mut tpts = Vec::new();
        let mut spts = Vec::new();
        for &width in &widths {
            let r = runs.next().expect("one result per grid cell");
            tpts.push((width as f64, r.cycles() as f64));
            spts.push((width as f64, r.peak_live() as f64));
            csv.push_row([
                sys.label().to_string(),
                width.to_string(),
                r.cycles().to_string(),
                r.peak_live().to_string(),
            ]);
        }
        println!(
            "  {:<14} cycles {:>9} -> {:<9} peak_live {:>9} -> {:<9} (w=16 -> w=512)",
            sys.label(),
            tpts[0].1,
            tpts[widths.len() - 1].1,
            spts[0].1,
            spts[widths.len() - 1].1
        );
        time_series.push(Series::new(sys.label(), tpts));
        state_series.push(Series::new(sys.label(), spts));
    }
    println!("{}", line_chart("execution time (log) vs issue width", &time_series, 90, 18, true));
    println!(
        "{}",
        line_chart("peak live tokens (log) vs issue width", &state_series, 90, 18, true)
    );
    ctx.emit_csv("fig15_width_scaling", &csv);
}

/// Theorem 2 demonstrated: peak live state versus input size on dmv. Naïve
/// unordered dataflow's state grows without bound as inputs grow (the
/// "parallelism explosion"); TYR's stays pinned at its `T·N·M`-style bound
/// regardless of input.
pub fn ablation_explosion(ctx: &Ctx) {
    println!("== Ablation: peak live state vs input size (dmv, Theorem 2) ==");
    let sizes: &[usize] = match ctx.scale {
        Scale::Tiny => &[16, 32, 64],
        _ => &[64, 128, 256, 512],
    };
    let mut csv = CsvTable::new(["size", "unordered_peak", "tyr_peak", "ratio"]);
    println!(
        "  {:>10} {:>18} {:>18} {:>8}",
        "dmv size", "unordered peak", "TYR peak (t=64)", "ratio"
    );
    let mut first_tyr = 0u64;
    for &n in sizes {
        let w = dmv::build(n, n, ctx.seed);
        let lw = LoweredWorkload::new(&w);
        let un = lw.run_unordered(TagPolicy::GlobalUnbounded, ctx.cfg.issue_width);
        let ty = lw.run_tyr(TagPolicy::local(ctx.cfg.tags), ctx.cfg.issue_width);
        if first_tyr == 0 {
            first_tyr = ty.peak_live();
        }
        let ratio = un.peak_live() as f64 / ty.peak_live() as f64;
        println!(
            "  {:>7}x{:<3} {:>18} {:>18} {:>7.1}x",
            n,
            n,
            un.peak_live(),
            ty.peak_live(),
            ratio
        );
        csv.push_row([
            n.to_string(),
            un.peak_live().to_string(),
            ty.peak_live().to_string(),
            format!("{ratio:.2}"),
        ]);
    }
    println!("  => unordered grows with the input; TYR stays near its tag bound.");
    ctx.emit_csv("ablation_explosion", &csv);
}

/// Fig. 5b extended into an experiment: out-of-order vN across window
/// sizes. OoO recovers intra-window ILP quickly but plateaus far below the
/// dataflow systems — "reordering is limited to a small region of the vN
/// execution order".
pub fn ablation_ooo(ctx: &Ctx) {
    use tyr_sim::ooo::{OooConfig, OooEngine};
    let n = match ctx.scale {
        Scale::Tiny => 12,
        _ => 64,
    };
    println!("== Ablation: out-of-order vN window sweep on dmv {n}x{n} (Fig. 5b) ==");
    let w = dmv::build(n, n, ctx.seed);
    let lw = LoweredWorkload::new(&w);
    let mut csv = CsvTable::new(["window", "cycles", "mean_ipc", "peak_live"]);
    println!("  {:>8} {:>12} {:>10} {:>12}", "window", "cycles", "mean IPC", "peak live");
    let vn = run_system(&w, System::SeqVn, &ctx.cfg);
    println!(
        "  {:>8} {:>12} {:>10.2} {:>12}   (vN baseline)",
        "-",
        vn.cycles(),
        1.0,
        vn.peak_live()
    );
    for window in [4usize, 16, 64, 256, 1024] {
        let cfg =
            OooConfig { window, issue_width: 8, args: w.args.clone(), ..OooConfig::default() };
        let r = OooEngine::new(&w.program, w.memory.clone(), cfg).run().expect("ooo run");
        w.check(r.memory()).expect("ooo result");
        println!("  {:>8} {:>12} {:>10.2} {:>12}", window, r.cycles(), r.ipc.mean(), r.peak_live());
        csv.push_row([
            window.to_string(),
            r.cycles().to_string(),
            format!("{:.2}", r.ipc.mean()),
            r.peak_live().to_string(),
        ]);
    }
    let tyr = lw.run_tyr(TagPolicy::local(ctx.cfg.tags), ctx.cfg.issue_width);
    println!(
        "  {:>8} {:>12} {:>10.2} {:>12}   (TYR, t={}, w={})",
        "-",
        tyr.cycles(),
        tyr.ipc.mean(),
        tyr.peak_live(),
        ctx.cfg.tags,
        ctx.cfg.issue_width
    );
    println!("  => OoO plateaus once the window covers one loop body; TYR keeps scaling.");
    ctx.emit_csv("ablation_ooo", &csv);
}

/// Sec. II-C's motivation for tagged dataflow, quantified: sweep memory
/// latency and watch ordered dataflow stall (a slow load blocks every later
/// instance of the same instruction) while TYR's tags let other iterations
/// proceed.
pub fn ablation_latency(ctx: &Ctx) {
    use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
    use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
    use tyr_sim::tagged::{TaggedConfig, TaggedEngine};
    println!("== Ablation: memory-latency tolerance (smv) ==");
    let scale = if ctx.scale == Scale::Tiny { Scale::Tiny } else { Scale::Small };
    let w = tyr_workloads::by_name("smv", scale, ctx.seed).expect("smv");
    let tyr_dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("lowering");
    let ord_dfg = lower_ordered(&w.program).expect("lowering");
    let mut csv = CsvTable::new(["mem_latency", "tyr4_cycles", "tyr64_cycles", "ordered_cycles"]);
    println!("  {:>12} {:>14} {:>14} {:>14}", "mem latency", "TYR (t=4)", "TYR (t=64)", "ordered");
    let run_tyr = |tags: usize, lat: u64| {
        let tcfg = TaggedConfig {
            issue_width: ctx.cfg.issue_width,
            tag_policy: TagPolicy::local(tags),
            args: w.args.clone(),
            mem: tyr_sim::MemConfig::ideal(lat),
            ..TaggedConfig::default()
        };
        let r = TaggedEngine::new(&tyr_dfg, w.memory.clone(), tcfg).run().expect("tyr");
        w.check(r.memory()).expect("oracle");
        r
    };
    for lat in [1u64, 4, 16, 64] {
        let t4 = run_tyr(4, lat);
        let t64 = run_tyr(64, lat);
        let ocfg = OrderedConfig {
            issue_width: ctx.cfg.issue_width,
            queue_depth: ctx.cfg.queue_depth,
            args: w.args.clone(),
            mem: tyr_sim::MemConfig::ideal(lat),
            ..OrderedConfig::default()
        };
        let or = OrderedEngine::new(&ord_dfg, w.memory.clone(), ocfg).run().expect("ordered");
        w.check(or.memory()).expect("oracle");
        println!("  {:>12} {:>14} {:>14} {:>14}", lat, t4.cycles(), t64.cycles(), or.cycles());
        csv.push_row([
            lat.to_string(),
            t4.cycles().to_string(),
            t64.cycles().to_string(),
            or.cycles().to_string(),
        ]);
    }
    println!("  => more tags = more iterations in flight = more latency hidden; the tag");
    println!("     count is a latency-tolerance knob the FIFO machine does not have.");
    ctx.emit_csv("ablation_latency", &csv);
}

/// Fig. 17: spmspv IPC and peak state over the (issue width × tags) grid,
/// and the proportional-scaling line tags = width/2. Performance needs
/// *both* enough width and enough tags; peak state grows with tags but not
/// width.
pub fn fig17(ctx: &Ctx) {
    // Paper: spmspv on a 128×128 matrix.
    let (n, nnz, vnnz) = match ctx.scale {
        Scale::Tiny => (48, 160, 8),
        _ => (128, 512, 32),
    };
    println!("== Fig. 17: width x tags grid on spmspv ({n}x{n}, {nnz} nnz) ==");
    let w = spmspv::build(n, nnz, vnnz, ctx.seed);
    let lw = LoweredWorkload::new(&w);
    let widths = [16usize, 32, 64, 128, 256];
    let tag_counts = [2usize, 4, 8, 16, 32, 64, 128];

    // Fan the (width, tags) grid out over the worker pool (submission
    // order preserved, so the tables below match a serial sweep byte for
    // byte).
    let cells: Vec<(usize, usize)> = widths
        .iter()
        .flat_map(|&width| tag_counts.iter().map(move |&tags| (width, tags)))
        .collect();
    let runs = pool::parallel_map(ctx.jobs, cells.clone(), |(width, tags)| {
        lw.run_tyr(TagPolicy::local(tags), width)
    });
    let grid: Vec<(usize, usize, tyr_sim::RunResult)> =
        cells.into_iter().zip(runs).map(|((w2, t), r)| (w2, t, r)).collect();

    let mut csv = CsvTable::new(["issue_width", "tags", "mean_ipc", "cycles", "peak_live"]);
    println!("  (a) mean IPC:");
    print!("  {:>8}", "w\\t");
    for t in tag_counts {
        print!(" {t:>8}");
    }
    println!();
    let mut it = grid.iter();
    for &width in &widths {
        print!("  {width:>8}");
        for &tags in &tag_counts {
            let (_, _, r) = it.next().expect("one result per cell");
            print!(" {:>8.1}", r.ipc.mean());
            csv.push_row([
                width.to_string(),
                tags.to_string(),
                format!("{:.2}", r.ipc.mean()),
                r.cycles().to_string(),
                r.peak_live().to_string(),
            ]);
        }
        println!();
    }
    println!("  (b) peak live tokens:");
    print!("  {:>8}", "w\\t");
    for t in tag_counts {
        print!(" {t:>8}");
    }
    println!();
    for &width in &widths {
        print!("  {width:>8}");
        for &tags in &tag_counts {
            let r = &grid.iter().find(|(w2, t2, _)| *w2 == width && *t2 == tags).unwrap().2;
            print!(" {:>8}", r.peak_live());
        }
        println!();
    }

    // (c) Proportional scaling: tags = width / 2.
    println!("  (c) tags scaled with width (t = w/2):");
    let mut ipc_pts = Vec::new();
    let mut state_pts = Vec::new();
    let mut csv_c = CsvTable::new(["issue_width", "tags", "mean_ipc", "peak_live"]);
    let prop_runs = pool::parallel_map(ctx.jobs, widths.to_vec(), |width| {
        lw.run_tyr(TagPolicy::local((width / 2).max(2)), width)
    });
    for (&width, r) in widths.iter().zip(&prop_runs) {
        let tags = (width / 2).max(2);
        println!(
            "    w={width:<4} t={tags:<4} mean IPC={:<8.1} peak_live={}",
            r.ipc.mean(),
            r.peak_live()
        );
        ipc_pts.push((width as f64, r.ipc.mean()));
        state_pts.push((width as f64, r.peak_live() as f64));
        csv_c.push_row([
            width.to_string(),
            tags.to_string(),
            format!("{:.2}", r.ipc.mean()),
            r.peak_live().to_string(),
        ]);
    }
    let series = vec![Series::new("mean IPC", ipc_pts), Series::new("peak live", state_pts)];
    println!("{}", line_chart("IPC and peak state vs width (t = w/2)", &series, 80, 16, false));
    ctx.emit_csv("fig17_grid", &csv);
    ctx.emit_csv("fig17_proportional", &csv_c);
}
