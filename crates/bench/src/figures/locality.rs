//! `repro figure locality` — the headline cache experiment: measured
//! locality under the two-level cache model (extension; companion to the
//! paper's Fig. 9 working-set and Fig. 11 wedging discussion).
//!
//! The paper's central locality claim is that *taming* parallelism — local
//! tag spaces instead of one global pool — keeps each block's working set
//! dense and reused. The W-pass bounds that statically and `repro locality`
//! counts distinct lines dynamically; this figure finally prices it: the
//! same kernel runs on TYR (tagged-local), on the same tagged fabric with
//! one bounded global pool, and on ordered dataflow, across a sweep of L1
//! sizes with everything else fixed. The global pool lets far-apart
//! iterations interleave, so its access stream blends tiles and rows that
//! the local policy keeps together — visible as a strictly higher L1 miss
//! rate at the same cache size.
//!
//! Small global pools wedge these kernels (Fig. 11), so the bounded-global
//! leg self-tunes: it scans pool sizes in doublings and uses the smallest
//! power of two that completes at *every* sweep point — the most
//! constrained global machine that still finishes, i.e. the fairest
//! possible locality opponent.

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_sim::{CacheConfig, MemConfig, RunResult, SimError};
use tyr_stats::ascii::{line_chart, Series};
use tyr_stats::csv::CsvTable;
use tyr_workloads::by_name;

use crate::figures::Ctx;
use crate::pool;

/// The compared kernels: the suite's dense row-walk and the blocked matmul
/// built for exactly this experiment.
const KERNELS: [&str; 2] = ["dmv", "dgemmb"];

/// Swept L1 capacities (bytes); L2 and everything else stay at defaults.
const L1_SIZES: [u64; 5] = [1024, 2048, 4096, 8192, 16384];

/// First bounded-global pool size tried; the scan doubles from here until
/// the kernel completes at every sweep point (Fig. 11: the required pool
/// grows with the input, so no fixed constant can be correct).
const GLOBAL_POOL_START: usize = 256;

/// Scan ceiling — effectively an unbounded pool for every suite input.
const GLOBAL_POOL_MAX: usize = 1 << 20;

/// The three compared engines, in report order.
const ENGINES: [&str; 3] = ["tagged-local", "tagged-global-bounded", "ordered"];

/// Cache model for one sweep point: only the L1 capacity moves.
fn mem_at(l1_bytes: u64) -> MemConfig {
    MemConfig::Cached(CacheConfig { l1_bytes, ..CacheConfig::default() })
}

/// One grid cell. Returns the result even if it wedged, and the raw
/// [`SimError`] on engine faults — the bounded-global scan needs to observe
/// both deadlocks *and* token leaks (an undersized global pool on a deep
/// nest can deliver its returns while stranding tokens mid-machine);
/// [`checked`] enforces clean completion.
fn run_cell(
    ctx: &Ctx,
    kernel: &str,
    engine: &str,
    pool: usize,
    l1_bytes: u64,
) -> Result<RunResult, SimError> {
    let w = by_name(kernel, ctx.scale, ctx.seed).expect("known kernel");
    match engine {
        "ordered" => {
            let dfg = lower_ordered(&w.program).expect("ordered lowering");
            let c = OrderedConfig {
                issue_width: ctx.cfg.issue_width,
                queue_depth: ctx.cfg.queue_depth,
                args: w.args.clone(),
                max_cycles: ctx.cfg.max_cycles * 16,
                mem: mem_at(l1_bytes),
                event_driven: ctx.cfg.event_driven,
                ..OrderedConfig::default()
            };
            OrderedEngine::new(&dfg, w.memory.clone(), c).run()
        }
        _ => {
            let policy = match engine {
                "tagged-local" => TagPolicy::local(ctx.cfg.tags),
                _ => TagPolicy::GlobalBounded { tags: pool },
            };
            let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("lowering");
            let c = TaggedConfig {
                issue_width: ctx.cfg.issue_width,
                tag_policy: policy,
                args: w.args.clone(),
                max_cycles: ctx.cfg.max_cycles * 16,
                mem: mem_at(l1_bytes),
                event_driven: ctx.cfg.event_driven,
                ..TaggedConfig::default()
            };
            TaggedEngine::new(&dfg, w.memory.clone(), c).run()
        }
    }
}

/// Asserts a cell completed and produced the oracle's memory image.
fn checked(ctx: &Ctx, kernel: &str, engine: &str, l1: u64, r: RunResult) -> RunResult {
    assert!(r.is_complete(), "{engine} on {kernel} (l1 {l1}): {:?}", r.outcome);
    let w = by_name(kernel, ctx.scale, ctx.seed).expect("known kernel");
    w.check(r.memory()).unwrap_or_else(|e| panic!("{engine} on {kernel}: {e}"));
    r
}

/// The bounded-global sweep for one kernel: smallest power-of-two pool
/// (from [`GLOBAL_POOL_START`]) whose runs complete cleanly at every L1
/// size. An undersized pool either wedges (Fig. 11) or leaks tokens
/// ([`SimError::TokenLeak`]); both mean "too small", so the scan doubles
/// past them. Returns the pool and its results, in [`L1_SIZES`] order.
fn bounded_global_sweep(ctx: &Ctx, kernel: &str) -> (usize, Vec<RunResult>) {
    let mut pool_size = GLOBAL_POOL_START;
    loop {
        let runs = pool::parallel_map(ctx.jobs, L1_SIZES.to_vec(), |l1| {
            match run_cell(ctx, kernel, "tagged-global-bounded", pool_size, l1) {
                Ok(r) => Some(r),
                Err(SimError::TokenLeak { .. }) => None,
                Err(e) => panic!("tagged-global-bounded on {kernel} (l1 {l1}): {e}"),
            }
        });
        if runs.iter().all(|r| r.as_ref().is_some_and(RunResult::is_complete)) {
            let runs = L1_SIZES
                .iter()
                .zip(runs)
                .map(|(&l1, r)| {
                    checked(ctx, kernel, "tagged-global-bounded", l1, r.expect("checked above"))
                })
                .collect();
            return (pool_size, runs);
        }
        assert!(
            pool_size < GLOBAL_POOL_MAX,
            "{kernel}: no bounded global pool up to {GLOBAL_POOL_MAX} completes"
        );
        println!("  [{kernel}] global pool of {pool_size} wedges or leaks (Fig. 11); doubling");
        pool_size *= 2;
    }
}

/// Runs the full (kernel × engine × L1 size) grid and prints per-kernel
/// tables, miss-rate and cycle charts, and one combined CSV
/// (`figure_locality.csv` under `--csv`).
pub fn figure_locality(ctx: &Ctx) {
    println!("== figure locality: L1 miss rate vs cache size ({} scale) ==", ctx.scale_label());
    println!(
        "   engines: tagged-local (TYR, {} tags/block), tagged-global-bounded (smallest \
         completing pool), ordered",
        ctx.cfg.tags
    );
    let mut csv = CsvTable::new([
        "kernel",
        "system",
        "l1_bytes",
        "cycles",
        "l1_hits",
        "l1_misses",
        "l1_miss_rate",
        "l2_misses",
        "mshr_stalls",
    ]);
    for &kernel in &KERNELS {
        // The local and ordered legs sweep in one parallel grid; the
        // bounded-global leg runs its own pool-size scan.
        let grid: Vec<(&str, u64)> = ["tagged-local", "ordered"]
            .iter()
            .flat_map(|&e| L1_SIZES.iter().map(move |&s| (e, s)))
            .collect();
        let fixed = pool::parallel_map(ctx.jobs, grid.clone(), |(e, s)| {
            let r = run_cell(ctx, kernel, e, 0, s)
                .unwrap_or_else(|err| panic!("{e} on {kernel} (l1 {s}): {err}"));
            checked(ctx, kernel, e, s, r)
        });
        let (pool_size, bounded) = bounded_global_sweep(ctx, kernel);
        let by_engine = |engine: &str| -> Vec<&RunResult> {
            match engine {
                "tagged-global-bounded" => bounded.iter().collect(),
                _ => grid
                    .iter()
                    .zip(&fixed)
                    .filter(|((e, _), _)| *e == engine)
                    .map(|(_, r)| r)
                    .collect(),
            }
        };

        println!("\n  -- {kernel} (global pool: {pool_size} tags) --");
        println!(
            "  {:<24} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "system", "l1", "cycles", "l1_miss%", "l2_miss", "mshr_stall"
        );
        let mut miss_series: Vec<Series> = Vec::new();
        let mut cycle_series: Vec<Series> = Vec::new();
        for &engine in &ENGINES {
            let mut mpts = Vec::new();
            let mut cpts = Vec::new();
            for (&l1, r) in L1_SIZES.iter().zip(by_engine(engine)) {
                let st = r.mem_stats.expect("cached run reports stats");
                println!(
                    "  {:<24} {:>8} {:>12} {:>9.2}% {:>10} {:>10}",
                    engine,
                    l1,
                    r.cycles(),
                    st.l1.miss_rate() * 100.0,
                    st.l2.misses,
                    st.mshr_stalls
                );
                mpts.push((l1 as f64, st.l1.miss_rate() * 100.0));
                cpts.push((l1 as f64, r.cycles() as f64));
                csv.push_row([
                    kernel.to_string(),
                    engine.to_string(),
                    l1.to_string(),
                    r.cycles().to_string(),
                    st.l1.hits.to_string(),
                    st.l1.misses.to_string(),
                    format!("{:.6}", st.l1.miss_rate()),
                    st.l2.misses.to_string(),
                    st.mshr_stalls.to_string(),
                ]);
            }
            miss_series.push(Series::new(engine, mpts));
            cycle_series.push(Series::new(engine, cpts));
        }
        println!(
            "{}",
            line_chart(
                &format!("{kernel}: L1 miss rate (%) vs L1 bytes"),
                &miss_series,
                80,
                14,
                false
            )
        );
        println!(
            "{}",
            line_chart(&format!("{kernel}: cycles vs L1 bytes"), &cycle_series, 80, 14, false)
        );
    }
    println!("\n  => local tag spaces keep each block's lines hot; one shared pool interleaves");
    println!("     distant iterations and pays for it in L1 misses at the same cache size.");
    ctx.emit_csv("figure_locality", &csv);
}
