//! `repro trace <kernel> <engine>` — run one kernel on one engine with the
//! full probe stack attached and explain where the cycles went.
//!
//! Two sinks ride on the same run (via the `(A, B)` probe combinator):
//!
//! * a [`NodeProfiler`], whose report is printed as ranked hot-node and
//!   stall-attribution tables plus a per-block stall heatmap;
//! * a [`ChromeTrace`], whose JSON is written to disk and can be opened
//!   directly in Perfetto / `chrome://tracing` (blocks are processes, nodes
//!   are threads, attributed stalls are async slices).
//!
//! The emitted JSON is validated before the command reports success: it must
//! parse, be structurally well-formed, and contain at least one event of
//! every taxonomy kind the selected engine is specified to emit — the same
//! gate `ci.sh` runs on one kernel per engine family.

use std::path::{Path, PathBuf};

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_sim::ooo::{OooConfig, OooEngine};
use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
use tyr_sim::seqdf::{SeqDataflowConfig, SeqDataflowEngine};
use tyr_sim::seqvn::{SeqVnConfig, SeqVnEngine};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_sim::RunResult;
use tyr_stats::probe::{ChromeTrace, EventKind, Probe};
use tyr_stats::{NodeProfiler, StallReason};
use tyr_workloads::{by_name, Workload, APP_NAMES};

use crate::figures::Ctx;

/// Engine names the trace subcommand accepts.
pub const ENGINE_NAMES: [&str; 7] =
    ["tyr", "tagged-global-bounded", "unordered", "ordered", "seqdf", "seqvn", "ooo"];

/// Pool size for `tagged-global-bounded` — the Fig. 11 configuration: a
/// small FCFS global pool that wedges nested loop programs at every scale,
/// so the trace shows the deadlock's tag-starvation attribution.
pub const BOUNDED_POOL: usize = 8;

/// The event kinds engine `engine` is specified to emit on any non-trivial
/// kernel; the emitted trace must contain at least one of each.
///
/// `tagged-global-bounded` additionally emits `tag-freed`/`block-exit` on
/// runs that make progress before wedging, but a pathological input could
/// wedge before the first `free`, so those are not required.
pub fn expected_kinds(engine: &str) -> &'static [EventKind] {
    match engine {
        "tyr" => &[
            EventKind::Fired,
            EventKind::MemAccess,
            EventKind::Produced,
            EventKind::Consumed,
            EventKind::TagAllocated,
            EventKind::TagFreed,
            EventKind::TagChanged,
            EventKind::BlockEnter,
            EventKind::BlockExit,
            EventKind::StallBegin,
            EventKind::StallEnd,
        ],
        "tagged-global-bounded" => &[
            EventKind::Fired,
            EventKind::MemAccess,
            EventKind::Produced,
            EventKind::Consumed,
            EventKind::TagAllocated,
            EventKind::BlockEnter,
            EventKind::StallBegin,
        ],
        "unordered" => &[
            EventKind::Fired,
            EventKind::MemAccess,
            EventKind::Produced,
            EventKind::Consumed,
            EventKind::TagAllocated,
            EventKind::BlockEnter,
            EventKind::StallBegin,
            EventKind::StallEnd,
        ],
        "ordered" => &[
            EventKind::Fired,
            EventKind::MemAccess,
            EventKind::Produced,
            EventKind::Consumed,
            EventKind::StallBegin,
            EventKind::StallEnd,
        ],
        "seqdf" => {
            &[EventKind::Fired, EventKind::Produced, EventKind::Consumed, EventKind::MemAccess]
        }
        "seqvn" | "ooo" => &[EventKind::Fired, EventKind::MemAccess],
        _ => &[],
    }
}

/// Runs `kernel` on `engine` with the profiler and Chrome-trace sinks
/// attached, prints the profile, writes the trace JSON (to `out`, or to
/// `trace_<kernel>_<engine>.json` under `--csv`'s directory / the working
/// directory), and validates the emitted JSON.
///
/// # Errors
///
/// Returns a message on unknown kernel/engine names, simulation faults,
/// oracle mismatches, I/O failures, or a trace that fails validation.
pub fn run(ctx: &Ctx, kernel: &str, engine: &str, out: Option<&Path>) -> Result<(), String> {
    let w = by_name(kernel, ctx.scale, ctx.seed)
        .ok_or_else(|| format!("unknown kernel '{kernel}' (known: {})", APP_NAMES.join(" ")))?;
    if !ENGINE_NAMES.contains(&engine) {
        return Err(format!("unknown engine '{engine}' (known: {})", ENGINE_NAMES.join(" ")));
    }
    println!("== trace: {kernel} on {engine} ({} scale) ==", ctx.scale_label());

    let mut prof = NodeProfiler::new();
    let mut chrome = ChromeTrace::new();
    let r = run_probed(ctx, &w, engine, (&mut prof, &mut chrome))?;
    if r.is_complete() {
        w.check(r.memory()).map_err(|e| format!("oracle mismatch: {e}"))?;
    }
    finish(ctx, &w, engine, out, r, prof, chrome)
}

/// Lowers (as needed) and runs `w` on `engine` with `probe` attached,
/// under the harness configuration in `ctx`. Shared by `repro trace` and
/// `repro locality`; the caller owns oracle checking and reporting.
///
/// # Errors
///
/// Returns a message on unknown engine names, lowering errors, or
/// simulation faults.
pub fn run_probed<P: Probe>(
    ctx: &Ctx,
    w: &Workload,
    engine: &str,
    probe: P,
) -> Result<RunResult, String> {
    if !ENGINE_NAMES.contains(&engine) {
        return Err(format!("unknown engine '{engine}' (known: {})", ENGINE_NAMES.join(" ")));
    }
    let cfg = &ctx.cfg;
    let res = match engine {
        "tyr" | "tagged-global-bounded" => {
            // Both use the TYR elaboration: bounded global pools need
            // the barrier/free structure to recycle tags at all.
            let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr)
                .map_err(|e| format!("lowering: {e}"))?;
            let policy = if engine == "tyr" {
                TagPolicy::local_with(cfg.tags, cfg.tag_overrides.clone())
            } else {
                TagPolicy::GlobalBounded { tags: BOUNDED_POOL }
            };
            let c = TaggedConfig {
                issue_width: cfg.issue_width,
                tag_policy: policy,
                args: w.args.clone(),
                max_cycles: cfg.max_cycles,
                mem: cfg.mem.clone(),
                event_driven: cfg.event_driven,
                ..TaggedConfig::default()
            };
            TaggedEngine::with_probe(&dfg, w.memory.clone(), c, probe).run()
        }
        "unordered" => {
            let dfg = lower_tagged(&w.program, TaggingDiscipline::UnorderedUnbounded)
                .map_err(|e| format!("lowering: {e}"))?;
            let c = TaggedConfig {
                issue_width: cfg.issue_width,
                tag_policy: TagPolicy::GlobalUnbounded,
                args: w.args.clone(),
                max_cycles: cfg.max_cycles,
                mem: cfg.mem.clone(),
                event_driven: cfg.event_driven,
                ..TaggedConfig::default()
            };
            TaggedEngine::with_probe(&dfg, w.memory.clone(), c, probe).run()
        }
        "ordered" => {
            let dfg = lower_ordered(&w.program).map_err(|e| format!("lowering: {e}"))?;
            let c = OrderedConfig {
                issue_width: cfg.issue_width,
                queue_depth: cfg.queue_depth,
                depth_overrides: Vec::new(),
                args: w.args.clone(),
                max_cycles: cfg.max_cycles * 16,
                mem: cfg.mem.clone(),
                event_driven: cfg.event_driven,
                ..OrderedConfig::default()
            };
            OrderedEngine::with_probe(&dfg, w.memory.clone(), c, probe).run()
        }
        "seqdf" => {
            let c = SeqDataflowConfig {
                issue_width: cfg.issue_width,
                args: w.args.clone(),
                max_cycles: cfg.max_cycles * 16,
                mem: cfg.mem.clone(),
                ..SeqDataflowConfig::default()
            };
            SeqDataflowEngine::with_probe(&w.program, w.memory.clone(), c, probe).run()
        }
        "seqvn" => {
            let c = SeqVnConfig {
                args: w.args.clone(),
                max_cycles: cfg.max_cycles * 64,
                mem: cfg.mem.clone(),
                ..SeqVnConfig::default()
            };
            SeqVnEngine::with_probe(&w.program, w.memory.clone(), c, probe).run()
        }
        "ooo" => {
            let c = OooConfig {
                args: w.args.clone(),
                max_instrs: cfg.max_cycles * 64,
                mem: cfg.mem.clone(),
                ..OooConfig::default()
            };
            OooEngine::with_probe(&w.program, w.memory.clone(), c, probe).run()
        }
        _ => unreachable!("validated above"),
    };
    res.map_err(|e| format!("{engine} on {}: {e}", w.name))
}

/// Prints the profile, writes and validates the Chrome trace.
fn finish(
    ctx: &Ctx,
    w: &Workload,
    engine: &str,
    out: Option<&Path>,
    r: RunResult,
    prof: NodeProfiler,
    chrome: ChromeTrace,
) -> Result<(), String> {
    let kernel = &w.name;
    let final_cycle = r.final_cycle();
    let r = r.with_profile(prof.report(final_cycle));
    let report = r.profile.as_ref().expect("just attached");
    println!("  outcome: {}", r.outcome);
    println!("{}", report.render(10, 48));
    if !r.is_complete() {
        let starved = report
            .nodes
            .iter()
            .max_by_key(|n| n.stall_cycles[StallReason::TagStarved.index()])
            .filter(|n| n.stall_cycles[StallReason::TagStarved.index()] > 0);
        if let Some(n) = starved {
            println!(
                "  deadlock attribution: '{}' (block '{}') spent {} cycles tag-starved",
                n.label,
                n.block,
                n.stall_cycles[StallReason::TagStarved.index()]
            );
        }
    }

    ctx.emit_csv(&format!("profile_{kernel}_{engine}"), &report.to_csv());

    let json = chrome.render(r.final_cycle());
    let path: PathBuf = match out {
        Some(p) => p.to_path_buf(),
        None => {
            let name = format!("trace_{kernel}_{engine}.json");
            match &ctx.csv_dir {
                Some(dir) => dir.join(name),
                None => PathBuf::from(name),
            }
        }
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    std::fs::write(&path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;

    let kinds = ChromeTrace::validate(&json).map_err(|e| format!("emitted trace invalid: {e}"))?;
    for k in expected_kinds(engine) {
        if kinds.get(k.name()).copied().unwrap_or(0) == 0 {
            return Err(format!(
                "trace is missing '{}' events ({engine} must emit them); got {kinds:?}",
                k.name()
            ));
        }
    }
    let total: u64 = kinds.values().sum();
    let present = kinds.values().filter(|&&c| c > 0).count();
    println!(
        "  [trace] wrote {} ({total} events, {present} kinds; open in Perfetto / chrome://tracing)",
        path.display(),
    );
    Ok(())
}
