//! `repro bench` — the persisted performance baseline.
//!
//! Runs the full `(kernel, system)` suite grid, records wall-time together
//! with the simulated `cycles` and `dyn_instrs` of every cell, and writes a
//! schema-stable `BENCH_suite.json`. The committed copy is the repo's perf
//! trajectory: future changes to the engines re-run `repro bench` and diff
//! against it.
//!
//! Schema (`tyr-bench-suite/v1`):
//!
//! ```json
//! {
//!   "schema": "tyr-bench-suite/v1",
//!   "scale": "tiny", "seed": 1,
//!   "issue_width": 128, "tags": 64, "jobs": 2,
//!   "total_wall_ms": 123.4,
//!   "entries": [
//!     {"kernel": "dmv", "system": "seq-vN",
//!      "cycles": 1538, "dyn_instrs": 1537, "wall_ms": 0.8},
//!     ...
//!   ]
//! }
//! ```
//!
//! `entries` holds exactly one object per (kernel, system) pair —
//! 7 kernels × 5 systems — in kernel-major, paper-presentation order.
//! `cycles` and `dyn_instrs` are deterministic (they come from the
//! simulators, whose results are oracle-checked); the `*_wall_ms` fields
//! are the only machine-dependent values.
//!
//! Each cell is run [`WALL_REPS`] times into a log-bucketed
//! [`LogHistogram`] of whole microseconds; `wall_ms` is the median rep, and
//! the optional `wall_p50_ms`/`wall_p99_ms` fields expose the dispersion.
//! The optional `skipped_cycles` field records how many of the cell's
//! cycles the event-driven core jumped over instead of ticking (always 0
//! for the sequential engines and for `--ticked` runs); it is a wall-clock
//! diagnostic and never affects `cycles`/`dyn_instrs`. The schema stays
//! `tyr-bench-suite/v1`: [`validate`] accepts baselines with or without
//! the optional fields, so committed baselines from before they existed
//! keep validating.
//!
//! [`validate`] is the schema gate `ci.sh` runs against both the emitted
//! file and the committed baseline.

use std::path::Path;
use std::time::Instant;

use tyr_stats::json::{self, Json};
use tyr_stats::LogHistogram;
use tyr_workloads::{suite, APP_NAMES};

use crate::figures::Ctx;
use crate::{pool, run_system, System};

/// The schema identifier written to and required of every baseline file.
pub const SCHEMA: &str = "tyr-bench-suite/v1";

/// Wall-clock repetitions per grid cell. The simulated `cycles` and
/// `dyn_instrs` are deterministic, so only the first rep's result is kept;
/// the extra reps exist purely to give the per-cell latency histogram
/// something to disperse over.
pub const WALL_REPS: usize = 3;

/// Runs the suite benchmark and writes the baseline to `out`.
///
/// The emitted document is validated with [`validate`] before it is
/// written, so a schema violation can never reach disk (or CI).
///
/// # Errors
///
/// Returns a message if self-validation fails or the file cannot be
/// written. Simulation faults and oracle mismatches panic, as everywhere
/// else in the harness — a perf baseline over wrong results is worthless.
pub fn run(ctx: &Ctx, out: &Path) -> Result<(), String> {
    eprintln!(
        "benchmarking the {} suite on all five systems ({} jobs)...",
        ctx.scale_label(),
        ctx.jobs
    );
    let workloads = suite(ctx.scale, ctx.seed);
    let grid: Vec<(String, (&tyr_workloads::Workload, System))> = workloads
        .iter()
        .flat_map(|w| System::ALL.map(|sys| (format!("{} on {}", w.name, sys.label()), (w, sys))))
        .collect();
    let t0 = Instant::now();
    let cells = pool::parallel_map_labeled(ctx.jobs, grid, |(w, sys)| {
        let mut wall = LogHistogram::new();
        let mut result = None;
        for _ in 0..WALL_REPS {
            let start = Instant::now();
            let r = run_system(w, sys, &ctx.cfg);
            wall.record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            result.get_or_insert(r);
        }
        let r = result.expect("WALL_REPS >= 1");
        let (p50, _, p99) = wall.percentiles();
        Json::Obj(vec![
            ("kernel".into(), json::str(&w.name)),
            ("system".into(), json::str(sys.label())),
            ("cycles".into(), json::num(r.cycles())),
            ("dyn_instrs".into(), json::num(r.dyn_instrs())),
            ("wall_ms".into(), Json::Num(round3(p50 as f64 / 1e3))),
            ("wall_p50_ms".into(), Json::Num(round3(p50 as f64 / 1e3))),
            ("wall_p99_ms".into(), Json::Num(round3(p99 as f64 / 1e3))),
            ("skipped_cycles".into(), json::num(r.skipped_cycles)),
        ])
    });
    let total_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let doc = Json::Obj(vec![
        ("schema".into(), json::str(SCHEMA)),
        ("scale".into(), json::str(ctx.scale_label())),
        ("seed".into(), json::num(ctx.seed)),
        ("issue_width".into(), json::num(ctx.cfg.issue_width as u64)),
        ("tags".into(), json::num(ctx.cfg.tags as u64)),
        ("jobs".into(), json::num(ctx.jobs as u64)),
        ("total_wall_ms".into(), Json::Num(round3(total_wall_ms))),
        ("entries".into(), Json::Arr(cells)),
    ]);
    validate(&doc).map_err(|e| format!("self-validation of the emitted baseline failed: {e}"))?;
    std::fs::write(out, doc.render() + "\n")
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} ({} entries, {:.1} ms total wall, schema {SCHEMA})",
        out.display(),
        APP_NAMES.len() * System::ALL.len(),
        total_wall_ms
    );
    // A short human-readable digest so a bench run is useful on its own.
    for app in APP_NAMES {
        let find = |sys: System| {
            doc.get("entries")
                .and_then(Json::as_arr)
                .and_then(|es| {
                    es.iter().find(|e| {
                        e.get("kernel").and_then(Json::as_str) == Some(app)
                            && e.get("system").and_then(Json::as_str) == Some(sys.label())
                    })
                })
                .and_then(|e| e.get("cycles"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        println!(
            "  {:<8} TYR {:>12} cycles   unordered {:>12}   ordered {:>12}",
            app,
            find(System::Tyr),
            find(System::Unordered),
            find(System::Ordered)
        );
    }
    // Skip-rate digest: how much of the suite's simulated time the
    // event-driven core jumped over instead of ticking.
    let entries = doc.get("entries").and_then(Json::as_arr).expect("validated above");
    let sum = |key: &str| -> f64 {
        entries.iter().filter_map(|e| e.get(key).and_then(Json::as_f64)).sum()
    };
    let (cycles, skipped) = (sum("cycles"), sum("skipped_cycles"));
    if cycles > 0.0 {
        println!(
            "  event core skipped {skipped:.0} of {cycles:.0} simulated cycles ({:.1}%)",
            100.0 * skipped / cycles
        );
    }
    Ok(())
}

/// Validates a baseline file on disk (the `repro bench-check` command —
/// the CI gate for both the freshly emitted file and the committed
/// baseline).
///
/// # Errors
///
/// Returns a message naming the first schema violation.
pub fn check_file(path: &Path) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    validate(&doc)?;
    println!("{}: schema {SCHEMA} ok", path.display());
    Ok(())
}

/// Checks a document against the `tyr-bench-suite/v1` schema: the schema
/// tag, the header fields, exactly one entry per (kernel, system) pair,
/// and per-entry field sanity (positive counts, `dyn_instrs` within the
/// issue-width envelope, entry wall-times within the total, and — when the
/// optional `wall_p50_ms`/`wall_p99_ms` percentiles are present — that they
/// are non-negative with `p50 <= p99`).
///
/// # Errors
///
/// Returns a message naming the first violation.
pub fn validate(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("missing or wrong \"schema\" (want {SCHEMA:?})"));
    }
    let req_num = |key: &str| {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric \"{key}\""))
    };
    let issue_width = req_num("issue_width")?;
    req_num("seed")?;
    req_num("tags")?;
    req_num("jobs")?;
    let total_wall = req_num("total_wall_ms")?;
    if total_wall < 0.0 {
        return Err("negative total_wall_ms".into());
    }
    if doc.get("scale").and_then(Json::as_str).is_none() {
        return Err("missing \"scale\"".into());
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing \"entries\" array".to_string())?;

    let mut seen: Vec<(String, String)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let kernel = e
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entry {i}: missing \"kernel\""))?;
        let system = e
            .get("system")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entry {i}: missing \"system\""))?;
        if !APP_NAMES.contains(&kernel) {
            return Err(format!("entry {i}: unknown kernel {kernel:?}"));
        }
        if !System::ALL.iter().any(|s| s.label() == system) {
            return Err(format!("entry {i}: unknown system {system:?}"));
        }
        let field = |key: &str| {
            e.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {i} ({kernel}/{system}): missing \"{key}\""))
        };
        let cycles = field("cycles")?;
        let dyn_instrs = field("dyn_instrs")?;
        let wall = field("wall_ms")?;
        if cycles <= 0.0 || dyn_instrs <= 0.0 {
            return Err(format!("entry {i} ({kernel}/{system}): non-positive cycles/dyn_instrs"));
        }
        if dyn_instrs > cycles * issue_width {
            return Err(format!(
                "entry {i} ({kernel}/{system}): dyn_instrs {dyn_instrs} exceeds \
                 cycles x issue_width = {}",
                cycles * issue_width
            ));
        }
        if wall < 0.0 || wall > total_wall {
            return Err(format!(
                "entry {i} ({kernel}/{system}): wall_ms {wall} outside [0, total_wall_ms]"
            ));
        }
        // The wall-clock percentiles are optional (schema still v1, so
        // baselines committed before they existed keep validating), but
        // when present they must be sane.
        let opt_field = |key: &str| -> Result<Option<f64>, String> {
            match e.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("entry {i} ({kernel}/{system}): non-numeric \"{key}\"")),
            }
        };
        let p50 = opt_field("wall_p50_ms")?;
        let p99 = opt_field("wall_p99_ms")?;
        for (key, v) in [("wall_p50_ms", p50), ("wall_p99_ms", p99)] {
            if v.is_some_and(|v| v < 0.0) {
                return Err(format!("entry {i} ({kernel}/{system}): negative \"{key}\""));
            }
        }
        if let (Some(p50), Some(p99)) = (p50, p99) {
            if p50 > p99 {
                return Err(format!(
                    "entry {i} ({kernel}/{system}): wall_p50_ms {p50} exceeds wall_p99_ms {p99}"
                ));
            }
        }
        // `skipped_cycles` is likewise optional (pre-event-core baselines
        // keep validating); when present it is a subset of the run's cycles.
        if let Some(skipped) = opt_field("skipped_cycles")? {
            if skipped < 0.0 {
                return Err(format!("entry {i} ({kernel}/{system}): negative \"skipped_cycles\""));
            }
            if skipped > cycles {
                return Err(format!(
                    "entry {i} ({kernel}/{system}): skipped_cycles {skipped} exceeds cycles {cycles}"
                ));
            }
        }
        let key = (kernel.to_string(), system.to_string());
        if seen.contains(&key) {
            return Err(format!("duplicate entry for ({kernel}, {system})"));
        }
        seen.push(key);
    }
    for app in APP_NAMES {
        for sys in System::ALL {
            if !seen.iter().any(|(k, s)| k == app && s == sys.label()) {
                return Err(format!("missing entry for ({app}, {})", sys.label()));
            }
        }
    }
    Ok(())
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_doc() -> Json {
        let entries = APP_NAMES
            .iter()
            .flat_map(|app| {
                System::ALL.iter().map(move |sys| {
                    Json::Obj(vec![
                        ("kernel".into(), json::str(*app)),
                        ("system".into(), json::str(sys.label())),
                        ("cycles".into(), json::num(100)),
                        ("dyn_instrs".into(), json::num(99)),
                        ("wall_ms".into(), Json::Num(1.5)),
                    ])
                })
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), json::str(SCHEMA)),
            ("scale".into(), json::str("tiny")),
            ("seed".into(), json::num(1)),
            ("issue_width".into(), json::num(128)),
            ("tags".into(), json::num(64)),
            ("jobs".into(), json::num(2)),
            ("total_wall_ms".into(), Json::Num(50.0)),
            ("entries".into(), Json::Arr(entries)),
        ])
    }

    fn set(doc: &mut Json, key: &str, v: Json) {
        let Json::Obj(pairs) = doc else { unreachable!() };
        if let Some(p) = pairs.iter_mut().find(|(k, _)| k == key) {
            p.1 = v;
        }
    }

    #[test]
    fn well_formed_doc_validates() {
        validate(&minimal_doc()).unwrap();
    }

    #[test]
    fn wrong_schema_tag_rejected() {
        let mut d = minimal_doc();
        set(&mut d, "schema", json::str("tyr-bench-suite/v0"));
        assert!(validate(&d).unwrap_err().contains("schema"));
    }

    #[test]
    fn missing_pair_rejected() {
        let mut d = minimal_doc();
        let Json::Obj(pairs) = &mut d else { unreachable!() };
        let entries = pairs.iter_mut().find(|(k, _)| k == "entries").unwrap();
        let Json::Arr(es) = &mut entries.1 else { unreachable!() };
        es.pop();
        assert!(validate(&d).unwrap_err().contains("missing entry"));
    }

    #[test]
    fn duplicate_pair_rejected() {
        let mut d = minimal_doc();
        let Json::Obj(pairs) = &mut d else { unreachable!() };
        let entries = pairs.iter_mut().find(|(k, _)| k == "entries").unwrap();
        let Json::Arr(es) = &mut entries.1 else { unreachable!() };
        let dup = es[0].clone();
        es.push(dup);
        assert!(validate(&d).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn issue_width_envelope_enforced() {
        let mut d = minimal_doc();
        set(&mut d, "issue_width", json::num(0));
        // Now every entry's dyn_instrs (99) exceeds cycles * 0.
        assert!(validate(&d).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn wall_time_outside_total_rejected() {
        let mut d = minimal_doc();
        set(&mut d, "total_wall_ms", Json::Num(0.1));
        assert!(validate(&d).unwrap_err().contains("outside"));
    }

    #[test]
    fn round_trip_through_text_still_validates() {
        let d = minimal_doc();
        let text = d.render();
        validate(&Json::parse(&text).unwrap()).unwrap();
    }

    fn set_entry0(doc: &mut Json, key: &str, v: Json) {
        let Json::Obj(pairs) = doc else { unreachable!() };
        let entries = pairs.iter_mut().find(|(k, _)| k == "entries").unwrap();
        let Json::Arr(es) = &mut entries.1 else { unreachable!() };
        let Json::Obj(e0) = &mut es[0] else { unreachable!() };
        e0.push((key.into(), v));
    }

    #[test]
    fn percentile_fields_are_optional_but_checked() {
        // minimal_doc has no percentile fields at all: the pre-percentile
        // baseline shape must keep validating.
        validate(&minimal_doc()).unwrap();

        let mut with_both = minimal_doc();
        set_entry0(&mut with_both, "wall_p50_ms", Json::Num(1.2));
        set_entry0(&mut with_both, "wall_p99_ms", Json::Num(2.4));
        validate(&with_both).unwrap();

        let mut only_p50 = minimal_doc();
        set_entry0(&mut only_p50, "wall_p50_ms", Json::Num(1.2));
        validate(&only_p50).unwrap();

        let mut inverted = minimal_doc();
        set_entry0(&mut inverted, "wall_p50_ms", Json::Num(3.0));
        set_entry0(&mut inverted, "wall_p99_ms", Json::Num(1.0));
        assert!(validate(&inverted).unwrap_err().contains("exceeds wall_p99_ms"));

        let mut negative = minimal_doc();
        set_entry0(&mut negative, "wall_p99_ms", Json::Num(-0.5));
        assert!(validate(&negative).unwrap_err().contains("negative"));

        let mut stringy = minimal_doc();
        set_entry0(&mut stringy, "wall_p50_ms", json::str("fast"));
        assert!(validate(&stringy).unwrap_err().contains("non-numeric"));
    }

    #[test]
    fn skipped_cycles_is_optional_but_bounded_by_cycles() {
        // Absent (pre-event-core baselines): still valid.
        validate(&minimal_doc()).unwrap();

        // Present and within [0, cycles]: valid (entry cycles are 100).
        let mut ok = minimal_doc();
        set_entry0(&mut ok, "skipped_cycles", json::num(40));
        validate(&ok).unwrap();

        let mut negative = minimal_doc();
        set_entry0(&mut negative, "skipped_cycles", Json::Num(-1.0));
        assert!(validate(&negative).unwrap_err().contains("negative"));

        let mut too_many = minimal_doc();
        set_entry0(&mut too_many, "skipped_cycles", json::num(101));
        assert!(validate(&too_many).unwrap_err().contains("exceeds cycles"));

        let mut stringy = minimal_doc();
        set_entry0(&mut stringy, "skipped_cycles", json::str("many"));
        assert!(validate(&stringy).unwrap_err().contains("non-numeric"));
    }
}
