//! A hand-rolled scoped worker pool for experiment sweeps.
//!
//! The paper's evaluation is a grid of independent `(kernel, system,
//! config)` simulations — coarse-grained dataflow at the job level, with no
//! shared mutable state between cells. This module fans such grids out over
//! `std::thread::scope` workers (the workspace builds offline, so no rayon)
//! while keeping the harness's output contract: **results come back in
//! submission order**, so a parallel sweep renders byte-identical tables to
//! a serial one.
//!
//! Design: jobs and result slots live in two index-aligned vectors of
//! `Mutex<Option<_>>`; workers claim indices from one shared atomic
//! counter, run the (`Sync`) job function, and deposit each result in the
//! slot of its job's index. There is no channel, no work stealing, and no
//! ordering dependence on which worker finishes first. A panicking job
//! propagates out of [`parallel_map`] when the scope joins, like the serial
//! loop it replaces.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tyr_stats::LogHistogram;

/// The worker count used when the caller does not pass `--jobs`: the
/// `REPRO_JOBS` environment variable if set and positive, otherwise the
/// machine's available parallelism, otherwise 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("REPRO_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("ignoring invalid REPRO_JOBS='{v}' (want a positive integer)");
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item on up to `jobs` worker threads and returns the
/// results **in submission order** (index `i` of the output is `f` applied
/// to index `i` of the input, regardless of completion order).
///
/// `jobs <= 1` (or a single item) runs serially on the caller's thread with
/// no pool at all, making `--jobs 1` an exact serial-execution baseline.
///
/// # Panics
///
/// If a job panics, the panic propagates to the caller (after the other
/// workers finish their current items), with the payload prefixed by the
/// job's index (`"job <i>/<n>: ..."`). Callers with meaningful cell names
/// should use [`parallel_map_labeled`] instead.
pub fn parallel_map<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let labeled = items.into_iter().enumerate().map(|(i, x)| (format!("job {i}/{n}"), x)).collect();
    parallel_map_labeled(jobs, labeled, f)
}

/// [`parallel_map`] over `(label, item)` pairs: a panicking job's payload is
/// re-raised with the submission label prefixed (`"<label>: <payload>"`), so
/// a sweep abort names the kernel×system cell that died instead of just
/// "a scoped thread panicked". Non-string payloads are labeled as
/// `<non-string panic payload>`.
///
/// # Panics
///
/// If a job panics, the panic propagates to the caller with the prefixed
/// payload (after the other workers finish their current items).
pub fn parallel_map_labeled<I, T, F>(jobs: usize, items: Vec<(String, I)>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let run_one = |label: &str, item: I| -> T {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
            Ok(out) => out,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                std::panic::resume_unwind(Box::new(format!("{label}: {msg}")));
            }
        }
    };
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(|(label, item)| run_one(&label, item)).collect();
    }
    let tasks: Vec<Mutex<Option<(String, I)>>> =
        items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let (label, item) =
                        tasks[i].lock().expect("task mutex").take().expect("claimed once");
                    let out = run_one(&label, item);
                    *slots[i].lock().expect("slot mutex") = Some(out);
                })
            })
            .collect();
        // Join explicitly so a job's panic propagates with its original
        // (labeled) payload (scope's implicit join would replace it with a
        // generic "a scoped thread panicked").
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot mutex").expect("every slot filled"))
        .collect()
}

/// [`parallel_map_labeled`] that also wall-clocks each job: output index `i`
/// is `(f(item_i), elapsed_i)`. The timing wraps only the job body (not
/// queue wait), so histograms over the durations measure per-cell work, not
/// pool contention.
///
/// # Panics
///
/// Propagates job panics exactly like [`parallel_map_labeled`].
pub fn parallel_map_labeled_timed<I, T, F>(
    jobs: usize,
    items: Vec<(String, I)>,
    f: F,
) -> Vec<(T, Duration)>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    parallel_map_labeled(jobs, items, |item| {
        let start = Instant::now();
        let out = f(item);
        (out, start.elapsed())
    })
}

/// Folds the durations of a timed sweep into a log-bucketed histogram of
/// whole microseconds (sub-microsecond jobs record as 0).
pub fn latency_histogram<T>(timed: &[(T, Duration)]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for (_, d) in timed {
        h.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Jobs deliberately finish out of order (later items are cheaper);
        // the output must still align index-for-index with the input.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(8, items.clone(), |i| {
            std::thread::sleep(std::time::Duration::from_micros(200 * (64 - i)));
            i * i
        });
        assert_eq!(out, items.iter().map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let serial = parallel_map(1, items.clone(), |i| i.wrapping_mul(0x9e37).rotate_left(7));
        let parallel = parallel_map(4, items, |i| i.wrapping_mul(0x9e37).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(parallel_map(16, vec![1, 2, 3], |i| i + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(4, Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "job 3 failed")]
    fn worker_panic_propagates() {
        parallel_map(2, (0..8).collect::<Vec<_>>(), |i| {
            if i == 3 {
                panic!("job 3 failed");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "job 3/8: job 3 failed")]
    fn worker_panic_carries_index_label() {
        parallel_map(2, (0..8).collect::<Vec<_>>(), |i| {
            if i == 3 {
                panic!("job 3 failed");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "dmv on TYR: boom")]
    fn labeled_panic_names_the_cell() {
        let items: Vec<(String, u64)> = (0..4).map(|i| ("dmv on TYR".to_string(), i)).collect();
        parallel_map_labeled(2, items, |i| {
            if i == 1 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "cell a: <non-string panic payload>")]
    fn labeled_panic_tolerates_non_string_payloads() {
        parallel_map_labeled(1, vec![("cell a".to_string(), 0u64)], |_| {
            std::panic::panic_any(42u64);
            #[allow(unreachable_code)]
            0u64
        });
    }

    #[test]
    fn labeled_results_keep_submission_order() {
        let items: Vec<(String, u64)> = (0..32).map(|i| (format!("cell {i}"), i)).collect();
        let out = parallel_map_labeled(8, items, |i| i * 3);
        assert_eq!(out, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn timed_map_keeps_order_and_measures_work() {
        let items: Vec<(String, u64)> = (0..8).map(|i| (format!("cell {i}"), i)).collect();
        let out = parallel_map_labeled_timed(4, items, |i| {
            std::thread::sleep(Duration::from_millis(2));
            i + 100
        });
        assert_eq!(out.iter().map(|(v, _)| *v).collect::<Vec<_>>(), (100..108).collect::<Vec<_>>());
        assert!(out.iter().all(|(_, d)| *d >= Duration::from_millis(2)));
        let h = latency_histogram(&out);
        assert_eq!(h.count(), 8);
        assert!(h.min() >= 2_000, "sleeps of 2 ms record as >= 2000 us, got {}", h.min());
    }
}
