//! `repro` — regenerates every table and figure of the TYR paper's
//! evaluation (Sec. VII).
//!
//! ```text
//! repro [--scale tiny|small|paper] [--seed N] [--width N] [--tags N]
//!       [--queue N] [--mem MODEL] [--csv DIR] <command>...
//!
//! commands:
//!   verify table1 table2 fig2 fig9 fig11 fig12 fig13 fig14 fig15 fig16
//!   fig17 fig18 ablation-kbound all
//! ```
//!
//! Default scale is `small` (seconds per figure); `--scale paper` restores
//! the Table II input sizes (50M–1B dynamic instructions per app — budget
//! hours, and tens of GB of RAM for the unordered baseline's token store).

use std::path::PathBuf;
use std::process::ExitCode;

use tyr_bench::figures::{deadlock, locality as figlocality, perf, scaling, tables, traces, Ctx};
use tyr_bench::{bench_cmd, fuzz, locality, shard, timeline, trace, verify};
use tyr_sim::MemConfig;
use tyr_workloads::Scale;

const USAGE: &str = "usage: repro [--scale tiny|small|paper] [--seed N] [--width N] [--tags N] [--queue N] [--mem MODEL] [--jobs N] [--csv DIR] [--out FILE] <command>...
commands: verify table1 table2 fig2 fig9 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 ablation-kbound ablation-explosion ablation-ooo ablation-isatax ablation-latency ablation-storesize all
          trace <kernel> <engine>   (engines: tyr tagged-global-bounded unordered ordered seqdf seqvn ooo)
          timeline <kernel> <engine> [--window N] [--events FILE]
                                    (cycle-windowed telemetry: per-window firings, token/tag traffic,
                                     open stalls by reason, memory lines; --window sets the window size
                                     in cycles (default 64, auto-coarsens), --events streams every probe
                                     event as tyr-events/v1 JSONL, --out writes the per-window CSV;
                                     a wedged run prints its stall-dominated tail and still exits 0)
          locality <kernel> <engine>
                                    (dynamic working-set/reuse report next to the static W-pass bounds;
                                     nonzero exit if any static bound is below the observation)
          shard <kernel> <engine> [--shards K]
                                    (certified K-shard plan (P001-P004) next to the dynamic crossing
                                     tracker; engines: tyr|tagged tagged-global-bounded unordered ordered;
                                     nonzero exit on P-errors, a beaten bound, or a contradicted claim)
          figure locality           (headline cache experiment: L1 miss rate + cycles for tagged-local vs
                                     tagged-global-bounded vs ordered on dmv and blocked dgemm across L1 sizes;
                                     --csv DIR writes figure_locality.csv)
          bench [--quick]           (suite perf baseline -> BENCH_suite.json, or --out FILE; --quick forces tiny scale)
          bench-check <file>        (validate a baseline file against the tyr-bench-suite/v1 schema)
          fuzz [--seeds N] [--faults PLAN] [--deadline-secs N] [--quick]
                                    (differential fuzz all five engines vs the oracle; --quick = 25 seeds;
                                     PLAN e.g. 'drop,corrupt:2@100..5000' or 'all'; nonzero exit on any finding)
          chaos <kernel> <engine> [--faults PLAN]
                                    (inject a fault plan into one run and print the attributed log;
                                     engines: tyr unordered ordered)
options:  --mem MODEL memory model: 'ideal[:LAT]' (default ideal:1) or a two-level cache
                      'cached[:k=v,...]' with keys l1/l2/line (bytes, k/m suffixes ok),
                      assoc1/assoc2, lat1/lat2/mem (cycles), mshr (outstanding misses),
                      e.g. --mem cached:l1=4k,l2=64k,mshr=8; --mem-latency N = --mem ideal:N
          --jobs N    worker threads for sweeps (default: REPRO_JOBS or available cores; output is identical for any N)
          --ticked    disable the event-driven core (tick every idle cycle); stats are bit-identical
                      either way -- use to cross-check that claim, at a wall-clock cost";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = Ctx::default();
    let mut cmds: Vec<String> = Vec::new();
    let mut trace_out: Option<PathBuf> = None;
    let mut quick = false;
    let mut fuzz_seeds: Option<u64> = None;
    let mut fuzz_faults: Option<String> = None;
    let mut fuzz_deadline: Option<u64> = None;
    let mut shard_count: usize = shard::DEFAULT_SHARDS;
    let mut timeline_window: Option<u64> = None;
    let mut events_out: Option<PathBuf> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut opt_value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => {
                ctx.scale = match opt_value("--scale").as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => {
                        eprintln!("unknown scale '{other}'\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--seed" => ctx.seed = opt_value("--seed").parse().expect("numeric seed"),
            "--width" => ctx.cfg.issue_width = opt_value("--width").parse().expect("numeric width"),
            "--tags" => ctx.cfg.tags = opt_value("--tags").parse().expect("numeric tags"),
            "--queue" => {
                ctx.cfg.queue_depth = opt_value("--queue").parse().expect("numeric queue depth")
            }
            "--mem-latency" => {
                ctx.cfg.mem =
                    MemConfig::ideal(opt_value("--mem-latency").parse().expect("numeric latency"))
            }
            "--mem" => {
                ctx.cfg.mem = match MemConfig::parse(&opt_value("--mem")) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => {
                ctx.jobs = opt_value("--jobs").parse().expect("numeric job count");
                if ctx.jobs == 0 {
                    eprintln!("--jobs must be at least 1\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
            "--quick" => quick = true,
            "--ticked" => ctx.cfg.event_driven = false,
            "--seeds" => {
                fuzz_seeds = Some(opt_value("--seeds").parse().expect("numeric seed count"))
            }
            "--faults" => fuzz_faults = Some(opt_value("--faults")),
            "--shards" => shard_count = opt_value("--shards").parse().expect("numeric shard count"),
            "--deadline-secs" => {
                fuzz_deadline =
                    Some(opt_value("--deadline-secs").parse().expect("numeric deadline"))
            }
            "--csv" => ctx.csv_dir = Some(PathBuf::from(opt_value("--csv"))),
            "--out" => trace_out = Some(PathBuf::from(opt_value("--out"))),
            "--window" => {
                timeline_window = Some(opt_value("--window").parse().expect("numeric window size"))
            }
            "--events" => events_out = Some(PathBuf::from(opt_value("--events"))),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
            cmd => cmds.push(cmd.to_string()),
        }
    }
    if cmds.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if cmds.iter().any(|c| c == "all") {
        cmds = [
            "verify",
            "table1",
            "table2",
            "fig2",
            "fig9",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "ablation-kbound",
            "ablation-explosion",
            "ablation-ooo",
            "ablation-isatax",
            "ablation-latency",
            "ablation-storesize",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    // Figs. 12–14 share one expensive suite sweep.
    let needs_suite = cmds.iter().any(|c| matches!(c.as_str(), "fig12" | "fig13" | "fig14"));
    let suite_results = if needs_suite {
        eprintln!("running the full suite on all five systems (shared by fig12/13/14)...");
        Some(perf::run_suite(&ctx))
    } else {
        None
    };

    let mut i = 0;
    while i < cmds.len() {
        let cmd = &cmds[i];
        match cmd.as_str() {
            // `trace` consumes the two following positional arguments.
            "trace" => {
                let (Some(kernel), Some(engine)) = (cmds.get(i + 1), cmds.get(i + 2)) else {
                    eprintln!("trace needs <kernel> and <engine>\n{USAGE}");
                    return ExitCode::from(2);
                };
                if let Err(e) = trace::run(&ctx, kernel, engine, trace_out.as_deref()) {
                    eprintln!("trace failed: {e}");
                    return ExitCode::FAILURE;
                }
                i += 2;
            }
            // `timeline` consumes the two following positional arguments.
            "timeline" => {
                let (Some(kernel), Some(engine)) = (cmds.get(i + 1), cmds.get(i + 2)) else {
                    eprintln!("timeline needs <kernel> and <engine>\n{USAGE}");
                    return ExitCode::from(2);
                };
                if let Err(e) = timeline::run(
                    &ctx,
                    kernel,
                    engine,
                    timeline_window,
                    trace_out.as_deref(),
                    events_out.as_deref(),
                ) {
                    eprintln!("timeline failed: {e}");
                    return ExitCode::FAILURE;
                }
                i += 2;
            }
            // `locality` consumes the two following positional arguments.
            "locality" => {
                let (Some(kernel), Some(engine)) = (cmds.get(i + 1), cmds.get(i + 2)) else {
                    eprintln!("locality needs <kernel> and <engine>\n{USAGE}");
                    return ExitCode::from(2);
                };
                if let Err(e) = locality::run(&ctx, kernel, engine) {
                    eprintln!("locality failed: {e}");
                    return ExitCode::FAILURE;
                }
                i += 2;
            }
            // `shard` consumes the two following positional arguments.
            "shard" => {
                let (Some(kernel), Some(engine)) = (cmds.get(i + 1), cmds.get(i + 2)) else {
                    eprintln!("shard needs <kernel> and <engine>\n{USAGE}");
                    return ExitCode::from(2);
                };
                if let Err(e) = shard::run(&ctx, kernel, engine, shard_count) {
                    eprintln!("shard failed: {e}");
                    return ExitCode::FAILURE;
                }
                i += 2;
            }
            "verify" => {
                if !verify::run(&ctx) {
                    return ExitCode::FAILURE;
                }
            }
            // `figure` consumes the following positional argument.
            "figure" => {
                let Some(name) = cmds.get(i + 1) else {
                    eprintln!("figure needs a <name> (available: locality)\n{USAGE}");
                    return ExitCode::from(2);
                };
                match name.as_str() {
                    "locality" => figlocality::figure_locality(&ctx),
                    other => {
                        eprintln!("unknown figure '{other}' (available: locality)\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
                i += 1;
            }
            "bench" => {
                let mut bctx = ctx.clone();
                if quick {
                    bctx.scale = Scale::Tiny;
                }
                let out = trace_out.clone().unwrap_or_else(|| PathBuf::from("BENCH_suite.json"));
                if let Err(e) = bench_cmd::run(&bctx, &out) {
                    eprintln!("bench failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            // `bench-check` consumes the following positional argument.
            "bench-check" => {
                let Some(file) = cmds.get(i + 1) else {
                    eprintln!("bench-check needs a <file>\n{USAGE}");
                    return ExitCode::from(2);
                };
                if let Err(e) = bench_cmd::check_file(std::path::Path::new(file)) {
                    eprintln!("bench-check failed: {e}");
                    return ExitCode::FAILURE;
                }
                i += 1;
            }
            "fuzz" => {
                let opts = fuzz::FuzzOpts {
                    seeds: fuzz_seeds.unwrap_or(if quick { 25 } else { 100 }),
                    jobs: ctx.jobs,
                    faults: fuzz_faults.clone(),
                    deadline: fuzz_deadline.map(std::time::Duration::from_secs),
                    event_driven: ctx.cfg.event_driven,
                    mem: ctx.cfg.mem.clone(),
                };
                if let Err(e) = fuzz::run(&opts) {
                    eprintln!("fuzz failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            // `chaos` consumes the two following positional arguments.
            "chaos" => {
                let (Some(kernel), Some(engine)) = (cmds.get(i + 1), cmds.get(i + 2)) else {
                    eprintln!("chaos needs <kernel> and <engine>\n{USAGE}");
                    return ExitCode::from(2);
                };
                if let Err(e) = fuzz::chaos(&ctx, kernel, engine, fuzz_faults.as_deref()) {
                    eprintln!("chaos failed: {e}");
                    return ExitCode::FAILURE;
                }
                i += 2;
            }
            "table1" => tables::table1(&ctx),
            "table2" => tables::table2(&ctx),
            "fig2" => traces::fig02(&ctx),
            "fig9" => traces::fig09(&ctx),
            "fig11" => deadlock::fig11(&ctx),
            "fig12" => perf::fig12(&ctx, suite_results.as_ref().unwrap()),
            "fig13" => perf::fig13(&ctx, suite_results.as_ref().unwrap()),
            "fig14" => perf::fig14(&ctx, suite_results.as_ref().unwrap()),
            "fig15" => scaling::fig15(&ctx),
            "fig16" => traces::fig16(&ctx),
            "fig17" => scaling::fig17(&ctx),
            "fig18" => traces::fig18(&ctx),
            "ablation-kbound" => deadlock::ablation_kbound(&ctx),
            "ablation-explosion" => scaling::ablation_explosion(&ctx),
            "ablation-ooo" => scaling::ablation_ooo(&ctx),
            "ablation-isatax" => deadlock::ablation_isatax(&ctx),
            "ablation-latency" => scaling::ablation_latency(&ctx),
            "ablation-storesize" => deadlock::ablation_storesize(&ctx),
            other => {
                eprintln!("unknown command '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        println!();
        i += 1;
    }
    ExitCode::SUCCESS
}
