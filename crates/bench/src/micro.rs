//! A tiny, dependency-free micro-benchmark harness.
//!
//! Criterion needs registry access the build environment does not have, so
//! the `cargo bench` targets run on this harness instead: each benchmark is
//! warmed briefly, then timed in batches for a fixed measurement window, and
//! the per-iteration mean/min wall times are printed in a stable one-line
//! format. That is enough to spot engine-throughput regressions at a glance,
//! which is all these benches are for; statistical rigor beyond min/mean is
//! out of scope.
//!
//! Usage from a `harness = false` bench target:
//!
//! ```no_run
//! let mut b = tyr_bench::micro::Harness::from_args("figures");
//! b.bench("fig02_spmspm_all_systems", || { /* work */ });
//! b.finish();
//! ```

use std::time::{Duration, Instant};

/// Default time spent warming each benchmark before measurement.
const WARM_UP: Duration = Duration::from_millis(200);
/// Default measurement window per benchmark.
const MEASURE: Duration = Duration::from_secs(1);

/// A benchmark suite: runs each registered closure and prints a report line.
pub struct Harness {
    suite: &'static str,
    /// Substring filter from the command line (cargo forwards trailing args).
    filter: Option<String>,
    ran: usize,
    skipped: usize,
}

impl Harness {
    /// A harness whose filter comes from the process arguments, matching
    /// cargo's bench-filter convention: the first non-flag argument is a
    /// substring filter; flags (`--bench`, `--exact`, …) are ignored.
    pub fn from_args(suite: &'static str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { suite, filter, ran: 0, skipped: 0 }
    }

    /// Runs one benchmark (unless filtered out) and prints its timing line.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                self.skipped += 1;
                return;
            }
        }
        self.ran += 1;

        // Warm-up: also sizes the measurement batches so that `Instant::now`
        // overhead stays negligible for sub-microsecond bodies.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let batch = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 20) as u64;

        let mut total_iters: u64 = 0;
        let mut min_batch = Duration::MAX;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            let batch_start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            min_batch = min_batch.min(batch_start.elapsed());
            total_iters += batch;
        }
        let elapsed = start.elapsed();

        let mean_ns = elapsed.as_nanos() as f64 / total_iters as f64;
        let min_ns = min_batch.as_nanos() as f64 / batch as f64;
        println!(
            "{}/{:<40} {:>10} iters   mean {:>14}   min {:>14}",
            self.suite,
            name,
            total_iters,
            fmt_ns(mean_ns),
            fmt_ns(min_ns),
        );
    }

    /// Prints the suite summary. Call once after the last benchmark.
    pub fn finish(self) {
        println!("{}: {} benchmark(s) run, {} filtered out", self.suite, self.ran, self.skipped);
    }
}

/// Renders nanoseconds with an adaptive unit, aligned for table output.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_units() {
        assert!(fmt_ns(12.3).contains("ns"));
        assert!(fmt_ns(12_300.0).contains("µs"));
        assert!(fmt_ns(12_300_000.0).contains("ms"));
        assert!(fmt_ns(12_300_000_000.0).contains("s/iter"));
    }
}
