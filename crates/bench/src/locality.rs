//! `repro locality <kernel> <engine>` — the locality story for one run,
//! dynamic and static side by side.
//!
//! The dynamic half attaches the [`WorkingSet`] reuse tracker (plus the
//! node profiler, so the working set rides on the standard `ProfileReport`
//! surface) and prints exact peak/mean live lines, per-block footprints,
//! and the LRU reuse-distance CDF. The static half runs the W-pass of
//! `tyr-verify` on the same lowering and prints its bounds next to the
//! observations. Every static bound must dominate the matching dynamic
//! value — a violation means the W-pass is unsound and the command exits
//! nonzero, the same gate `repro verify` runs across the whole suite.

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_sim::tagged::TagPolicy;
use tyr_stats::locality::WorkingSet;
use tyr_stats::NodeProfiler;
use tyr_verify::{analyze_footprint, analyze_live_state};
use tyr_workloads::{by_name, APP_NAMES};

use crate::figures::Ctx;
use crate::trace::{self, BOUNDED_POOL, ENGINE_NAMES};

/// Runs `kernel` on `engine` with the reuse tracker attached, prints the
/// dynamic working-set report and the static W-pass bounds, and checks
/// that every static bound dominates its dynamic observation.
///
/// # Errors
///
/// Returns a message on unknown kernel/engine names, simulation faults,
/// oracle mismatches, or an unsound static bound.
pub fn run(ctx: &Ctx, kernel: &str, engine: &str) -> Result<(), String> {
    let w = by_name(kernel, ctx.scale, ctx.seed)
        .ok_or_else(|| format!("unknown kernel '{kernel}' (known: {})", APP_NAMES.join(" ")))?;
    if !ENGINE_NAMES.contains(&engine) {
        return Err(format!("unknown engine '{engine}' (known: {})", ENGINE_NAMES.join(" ")));
    }
    println!("== locality: {kernel} on {engine} ({} scale) ==", ctx.scale_label());

    let mut prof = NodeProfiler::new();
    let mut ws = WorkingSet::new();
    let r = trace::run_probed(ctx, &w, engine, (&mut prof, &mut ws))?;
    if r.is_complete() {
        w.check(r.memory()).map_err(|e| format!("oracle mismatch: {e}"))?;
    }
    let final_cycle = r.final_cycle();
    let r = r.with_profile(prof.report(final_cycle).with_working_set(ws.report(final_cycle)));
    let dynamic = r.profile.as_ref().and_then(|p| p.working_set.as_ref()).expect("just attached");

    println!("  outcome: {}", r.outcome);
    if let Some(st) = r.mem_stats {
        // Under `--mem cached:...` the same run also exercises the cache
        // hierarchy; its line counts are the cross-validation target for
        // the static bounds below.
        println!(
            "  cache: L1 {}/{} hits ({:.2}% miss, peak {} lines), L2 {}/{} hits \
             ({:.2}% miss, peak {} lines), {} mshr stalls",
            st.l1.hits,
            st.l1.hits + st.l1.misses,
            st.l1.miss_rate() * 100.0,
            st.l1.peak_lines,
            st.l2.hits,
            st.l2.hits + st.l2.misses,
            st.l2.miss_rate() * 100.0,
            st.l2.peak_lines,
            st.mshr_stalls
        );
    }
    print!("{}", dynamic.render(48));
    if dynamic.accesses() != r.mem_loads + r.mem_stores {
        return Err(format!(
            "probe saw {} accesses but the engine counted {} loads + {} stores",
            dynamic.accesses(),
            r.mem_loads,
            r.mem_stores
        ));
    }

    // Static side: the W-pass bounds for the elaboration this engine ran
    // (the sequential engines execute the program directly, but they issue
    // the same architectural accesses as the TYR lowering, so its footprint
    // bound applies to them too).
    println!("static bounds (W-pass)");
    let (dfg, policy) = match engine {
        "ordered" => (lower_ordered(&w.program).map_err(|e| e.to_string())?, None),
        "tagged-global-bounded" => (
            lower_tagged(&w.program, TaggingDiscipline::Tyr).map_err(|e| e.to_string())?,
            Some(TagPolicy::GlobalBounded { tags: BOUNDED_POOL }),
        ),
        "unordered" => (
            lower_tagged(&w.program, TaggingDiscipline::UnorderedUnbounded)
                .map_err(|e| e.to_string())?,
            Some(TagPolicy::GlobalUnbounded),
        ),
        // tyr + the sequential engines: the TYR elaboration under the
        // harness policy.
        _ => (
            lower_tagged(&w.program, TaggingDiscipline::Tyr).map_err(|e| e.to_string())?,
            Some(TagPolicy::local_with(ctx.cfg.tags, ctx.cfg.tag_overrides.clone())),
        ),
    };

    let mut violations = 0usize;
    let mut leg = |what: &str, static_bound: Option<u64>, observed: u64| {
        let (mark, rendered) = match static_bound {
            Some(b) if b >= observed => ("ok  ", b.to_string()),
            Some(b) => {
                violations += 1;
                ("FAIL", b.to_string())
            }
            None => ("ok  ", "unbounded".to_string()),
        };
        println!("  {mark} {what}: static <= {rendered}, observed {observed}");
    };

    let fp = analyze_footprint(&dfg, &w.memory, &w.args);
    leg("footprint (lines, W002)", fp.total_lines(), dynamic.distinct_lines);
    // A provenance-free access makes the whole-graph footprint input-scaled
    // ("unbounded" above, which trivially dominates). Name those blocks
    // explicitly instead of hiding them behind the one-line verdict — the
    // cached-model cross-validation must know which blocks contributed no
    // static bound rather than silently skipping them.
    for b in fp.per_block.iter().filter(|b| !b.unbounded.is_empty()) {
        let reads = b.unbounded.iter().filter(|a| !a.write).count();
        let writes = b.unbounded.len() - reads;
        println!(
            "  note block '{}': {} provenance-free access(es) ({reads} read, {writes} write); \
             its static footprint covers only the remaining accesses ({} lines)",
            b.name,
            b.unbounded.len(),
            b.lines
        );
    }

    if let Some(policy) = &policy {
        let live = analyze_live_state(&dfg, policy);
        if engine == "tyr" || engine == "tagged-global-bounded" || engine == "unordered" {
            // The tagged engine reports per-block peak token-store occupancy;
            // W001 must dominate it block by block and in total.
            leg("peak live state (tokens, W001)", live.total(), r.max_store_peak());
            for (name, peak) in &r.store_peaks {
                leg(&format!("peak live state in '{name}'"), live.for_block(name), *peak);
            }
        } else {
            let total = match live.total() {
                Some(t) => t.to_string(),
                None => "unbounded".to_string(),
            };
            println!("  note peak live state (tokens, W001) <= {total} on the TYR elaboration");
        }
    }

    if violations > 0 {
        return Err(format!("{violations} static bound(s) below the dynamic observation"));
    }
    println!("  all static bounds dominate the dynamic observations");
    Ok(())
}
