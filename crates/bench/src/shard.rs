//! `repro shard <kernel> <engine> [--shards K]` — the shard story for one
//! run, static and dynamic side by side.
//!
//! The static half computes a shard plan for the engine's lowering
//! (`tyr-verify`'s seeded partitioner) and certifies it with the P-pass:
//! cross-shard memory disjointness (P001), per-shard tag budgets (P002),
//! progress summaries over the cut (P003), and static traffic bounds
//! (P004). The dynamic half runs the same lowering with the
//! [`ShardCrossings`] tracker attached and prints the observed cut traffic
//! next to the static estimates.
//!
//! Three gates, any failure exiting nonzero — the same battery `repro
//! verify` runs across the suite:
//!
//! 1. the P-report must be free of errors (an unsafe cut is useless);
//! 2. every per-shard static in-flight bound must dominate the observed
//!    peak boundary occupancy;
//! 3. no runtime word conflict between blocks in *different* shards may
//!    contradict a P001 "proven disjoint" claim.

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_dfg::BlockId;
use tyr_sim::ordered::ChannelCapacity;
use tyr_sim::tagged::TagPolicy;
use tyr_stats::shard::{ShardCrossings, ShardSpec};
use tyr_verify::{verify_shards, ShardBudget, ShardCertificate};
use tyr_workloads::{by_name, APP_NAMES};

use crate::figures::Ctx;
use crate::trace::{self, BOUNDED_POOL};

/// Default shard count when `--shards` is not given.
pub const DEFAULT_SHARDS: usize = 4;

/// Engines the shard subcommand accepts (canonical names). The sequential
/// engines have no graph to cut, so they are rejected with a pointer here.
pub const SHARD_ENGINES: [&str; 4] = ["tyr", "tagged-global-bounded", "unordered", "ordered"];

/// Resolves user-facing engine aliases (`tagged`, `tagged-global`) to the
/// canonical engine names of [`trace::ENGINE_NAMES`].
fn canonical_engine(engine: &str) -> Result<&'static str, String> {
    match engine {
        "tyr" | "tagged" => Ok("tyr"),
        "tagged-global" | "tagged-global-bounded" => Ok("tagged-global-bounded"),
        "unordered" => Ok("unordered"),
        "ordered" => Ok("ordered"),
        "seqdf" | "seqvn" | "ooo" => Err(format!(
            "engine '{engine}' executes the program sequentially: there is no graph to \
             shard (known: {})",
            SHARD_ENGINES.join(" ")
        )),
        other => Err(format!("unknown engine '{other}' (known: {})", SHARD_ENGINES.join(" "))),
    }
}

/// Runs `kernel` on `engine` with the crossing tracker attached, prints the
/// certified shard plan, the P-report, and the dynamic observations, and
/// checks the static claims against them.
///
/// # Errors
///
/// Returns a message on unknown kernel/engine names, lowering errors,
/// simulation faults, oracle mismatches, a P-report with errors, an unsound
/// static bound, or a contradicted disjointness claim.
pub fn run(ctx: &Ctx, kernel: &str, engine: &str, shards: usize) -> Result<(), String> {
    let w = by_name(kernel, ctx.scale, ctx.seed)
        .ok_or_else(|| format!("unknown kernel '{kernel}' (known: {})", APP_NAMES.join(" ")))?;
    let engine = canonical_engine(engine)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    println!("== shard: {kernel} on {engine} ({} scale, {shards} shard(s)) ==", ctx.scale_label());

    // Static side: plan + certificate for the lowering this engine runs.
    let title = format!("{kernel}/{engine}/shard");
    let tyr_policy = TagPolicy::local_with(ctx.cfg.tags, ctx.cfg.tag_overrides.clone());
    let global_policy = TagPolicy::GlobalBounded { tags: BOUNDED_POOL };
    let caps = ChannelCapacity::uniform(ctx.cfg.queue_depth);
    let (dfg, budget) = match engine {
        "tyr" => (
            lower_tagged(&w.program, TaggingDiscipline::Tyr).map_err(|e| e.to_string())?,
            ShardBudget::Tagged(&tyr_policy),
        ),
        "tagged-global-bounded" => (
            lower_tagged(&w.program, TaggingDiscipline::Tyr).map_err(|e| e.to_string())?,
            ShardBudget::Tagged(&global_policy),
        ),
        "unordered" => (
            lower_tagged(&w.program, TaggingDiscipline::UnorderedUnbounded)
                .map_err(|e| e.to_string())?,
            ShardBudget::Tagged(&TagPolicy::GlobalUnbounded),
        ),
        _ => (lower_ordered(&w.program).map_err(|e| e.to_string())?, ShardBudget::Ordered(&caps)),
    };
    let (cert, report) =
        verify_shards(&title, &dfg, shards, ctx.seed, Some(budget), Some((&w.memory, &w.args)));
    print!("{}", cert.plan.render(&dfg));
    println!("{}", report.render());

    // Dynamic side: the same lowering is what run_probed executes (the
    // lowering is deterministic, so node ids line up), with the crossing
    // tracker folding the probe stream through the certificate's tables.
    let mut sc = ShardCrossings::new(spec_of(&dfg, &cert));
    let r = trace::run_probed(ctx, &w, engine, &mut sc)?;
    if r.is_complete() {
        w.check(r.memory()).map_err(|e| format!("oracle mismatch: {e}"))?;
    }
    println!("  outcome: {}", r.outcome);
    let observed = sc.report();
    print!("{}", observed.render());

    // The gates.
    let mut violations = 0usize;
    let mut leg = |what: &str, ok: bool| {
        println!("  {} {what}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            violations += 1;
        }
    };

    leg("P-report free of errors", report.errors() == 0);
    for f in &observed.per_shard {
        let bound = cert.shard_inflight.get(f.shard as usize).copied().flatten();
        let (ok, rendered) = match bound {
            Some(b) => (b >= f.peak_inflight, b.to_string()),
            None => (true, "unbounded".to_string()),
        };
        leg(
            &format!(
                "shard {}: static boundary in-flight <= {rendered}, observed peak {}",
                f.shard, f.peak_inflight
            ),
            ok,
        );
    }
    let claims = cert.mem.as_ref().expect("memory context was supplied");
    let shard_of = |b: u32| cert.plan.shard_of(BlockId(b));
    let contradicted: Vec<String> = observed
        .cross_shard_conflicts(shard_of)
        .filter(|c| claims.disjoint.contains(&(BlockId(c.block_a), BlockId(c.block_b))))
        .map(|c| format!("cb{}+cb{} at word {}", c.block_a, c.block_b, c.addr))
        .collect();
    leg(
        &format!("P001 disjointness claims uncontradicted ({} claim(s))", claims.disjoint.len()),
        contradicted.is_empty(),
    );
    for c in &contradicted {
        println!("       contradicted: {c}");
    }
    if observed.untracked_blocks {
        println!("  note: some blocks exceeded the conflict tracker's id range (untracked)");
    }

    if violations > 0 {
        return Err(format!("{violations} shard gate(s) failed"));
    }
    println!("  plan certified and uncontradicted by the run");
    Ok(())
}

/// Adapts a [`ShardCertificate`] into the plain-vector [`ShardSpec`] the
/// tracker consumes (`tyr-stats` does not depend on `tyr-verify`).
fn spec_of(dfg: &tyr_dfg::Dfg, cert: &ShardCertificate) -> ShardSpec {
    ShardSpec {
        shards: cert.plan.shards as u32,
        node_shard: cert.node_shard.clone(),
        boundary: cert.boundary.clone(),
        plain_store: cert.plain_store.clone(),
        node_block: dfg.nodes.iter().map(|n| n.block.0).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parallel_map;
    use tyr_workloads::Scale;

    #[test]
    fn aliases_resolve_and_sequential_engines_are_rejected() {
        assert_eq!(canonical_engine("tagged").unwrap(), "tyr");
        assert_eq!(canonical_engine("tagged-global").unwrap(), "tagged-global-bounded");
        assert_eq!(canonical_engine("ordered").unwrap(), "ordered");
        assert!(canonical_engine("seqvn").unwrap_err().contains("sequentially"));
        assert!(canonical_engine("bogus").unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn shard_gate_passes_on_dmv_for_every_engine_family() {
        let ctx = Ctx { scale: Scale::Tiny, ..Ctx::default() };
        for engine in ["tagged", "tagged-global", "unordered", "ordered"] {
            run(&ctx, "dmv", engine, DEFAULT_SHARDS).unwrap_or_else(|e| panic!("{engine}: {e}"));
        }
    }

    /// The plan and certificate are pure functions of (graph, k, seed):
    /// computing them from worker threads (as a `--jobs` sweep would) yields
    /// byte-identical plans.
    #[test]
    fn plans_are_deterministic_across_worker_threads() {
        let ctx = Ctx { scale: Scale::Tiny, ..Ctx::default() };
        let w = by_name("dmv", ctx.scale, ctx.seed).unwrap();
        let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
        let policy = TagPolicy::local_with(ctx.cfg.tags, ctx.cfg.tag_overrides.clone());
        let render = |_: usize| {
            let (cert, report) = verify_shards(
                "det",
                &dfg,
                DEFAULT_SHARDS,
                ctx.seed,
                Some(ShardBudget::Tagged(&policy)),
                Some((&w.memory, &w.args)),
            );
            format!("{}{}", cert.plan.render(&dfg), report.render())
        };
        let reference = render(0);
        for out in parallel_map(4, (0..8).collect(), render) {
            assert_eq!(out, reference);
        }
    }
}
