//! The `repro verify` subcommand: the full static-analysis and
//! translation-validation battery over the paper's kernel suite (Table II).
//!
//! For every app, every tagged elaboration is checked by the `tyr-verify`
//! static passes — structure, free-barrier coverage, lifecycle lints, tag
//! demand against the policy the harness would actually run with, and
//! memory races against the actual memory image — then every lowering is
//! replayed against the reference interpreter (translation validation).
//!
//! The *ordered* lowering of every app is checked too: the channel-
//! occupancy pass computes per-edge minimum FIFO depths and checks them
//! against the capacity the harness would run with (`--queue`).
//!
//! Finally the static verdicts are *cross-validated* against the engines'
//! dynamic detectors:
//!
//! * Fig. 11 — the static tag-demand pass must predict from graph shape
//!   alone that dmv under a bounded global pool can deadlock, the dynamic
//!   detector must confirm it on a real run, and the same pair must agree
//!   that TYR's local spaces with the Theorem-1 minimum of 2 tags are safe
//!   and complete.
//! * Ordered FIFOs — for every kernel's ordered lowering, a configuration
//!   the occupancy pass calls safe (no O001) must complete in the ordered
//!   engine, and a configuration it calls doomed (a live edge under its
//!   static minimum) must trip the engine's back-pressure deadlock
//!   detector, with a stall witness naming the starved edge.

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_dfg::NodeKind;
use tyr_sim::ordered::{ChannelCapacity, OrderedConfig, OrderedEngine};
use tyr_sim::tagged::TagPolicy;
use tyr_stats::locality::WorkingSet;
use tyr_verify::{
    analyze_footprint, analyze_live_state, analyze_tag_demand, check_channel_capacity,
    check_tag_policy, compare_elaborations, predict_global, validate_translations, verify_ordered,
    verify_with, Code, GlobalPrediction, Report,
};
use tyr_workloads::{dmv, suite, Scale};

use crate::figures::Ctx;
use crate::{trace, LoweredWorkload};

/// Prints `report` — one `ok` line when empty, the full rendering when it
/// has findings — and folds its counts into the running totals.
fn account(report: &Report, errors: &mut usize, warnings: &mut usize) {
    *errors += report.errors();
    *warnings += report.warnings();
    if report.diags.is_empty() {
        println!("  verify {:<40} ok", report.title);
    } else {
        println!("{}", report.render());
    }
}

/// Runs the whole battery; returns `false` if any pass reported an error
/// (the subcommand then exits nonzero).
pub fn run(ctx: &Ctx) -> bool {
    println!("== repro verify: static analysis + translation validation ==");
    let mut errors = 0usize;
    let mut warnings = 0usize;

    // The policies each elaboration is meant to run under in the harness.
    let tyr_policy = TagPolicy::local_with(ctx.cfg.tags, ctx.cfg.tag_overrides.clone());
    let lowerings: &[(TaggingDiscipline, &str, Option<&TagPolicy>)] = &[
        (TaggingDiscipline::Tyr, "tyr", Some(&tyr_policy)),
        // Bounded-global runs reuse the barriered graph; its demand under a
        // global pool is checked separately in the Fig. 11 cross-validation
        // below, so no policy here.
        (TaggingDiscipline::UnorderedBounded, "unordered-bounded", None),
        (
            TaggingDiscipline::UnorderedUnbounded,
            "unordered-unbounded",
            Some(&TagPolicy::GlobalUnbounded),
        ),
    ];

    for w in &suite(ctx.scale, ctx.seed) {
        for &(discipline, label, policy) in lowerings {
            let title = format!("{}/{label}", w.name);
            let report = match lower_tagged(&w.program, discipline) {
                Ok(dfg) => verify_with(&title, &dfg, policy, Some((&w.memory, &w.args))),
                Err(e) => {
                    let mut r = Report::new(&title);
                    r.push(tyr_verify::Diagnostic::global(
                        Code::TvFault,
                        format!("lowering failed: {e}"),
                    ));
                    r
                }
            };
            account(&report, &mut errors, &mut warnings);
        }
        let title = format!("{}/ordered", w.name);
        let report = match lower_ordered(&w.program) {
            Ok(dfg) => verify_ordered(
                &title,
                &dfg,
                &ChannelCapacity::uniform(ctx.cfg.queue_depth),
                Some((&w.memory, &w.args)),
            ),
            Err(e) => {
                let mut r = Report::new(&title);
                r.push(tyr_verify::Diagnostic::global(
                    Code::TvFault,
                    format!("lowering failed: {e}"),
                ));
                r
            }
        };
        account(&report, &mut errors, &mut warnings);
        let tv = validate_translations(&w.name, &w.program, &w.memory, &w.args);
        account(&tv, &mut errors, &mut warnings);
    }

    errors += fig11_cross_validation(ctx);
    errors += ordered_cross_validation(ctx);
    errors += workingset_cross_validation(ctx);
    errors += shard_cross_validation(ctx);

    println!("verify: {errors} error(s), {warnings} warning(s) across the suite");
    errors == 0
}

/// The Fig. 11 deadlock, predicted statically and confirmed dynamically.
///
/// Returns the number of cross-validation failures (0 on agreement).
fn fig11_cross_validation(ctx: &Ctx) -> usize {
    println!("-- Fig. 11 cross-validation: static prediction vs. dynamic detector --");
    let mut failures = 0usize;
    let mut check = |what: &str, ok: bool| {
        println!("  {} {what}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // A small dmv instance: nested loops, so inner-loop allocates happen
    // inside an outer allocated context — the shape behind Fig. 11.
    let w = dmv::build(8, 8, ctx.seed);
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("tyr lowering");
    let demand = analyze_tag_demand(&dfg);

    // Static side: a global pool of 8 is predicted to deadlock because
    // allocates nest; the policy checker reports it as T003.
    let pool = 8usize;
    let prediction = predict_global(&demand, pool);
    check(
        "static: nested allocates make a bounded global pool unsafe",
        prediction == GlobalPrediction::DeadlockNested,
    );
    let diags = check_tag_policy(&dfg, &TagPolicy::GlobalBounded { tags: pool });
    check(
        "static: check_tag_policy(GlobalBounded{8}) reports T003",
        diags.iter().any(|d| d.code == Code::NestedGlobalAlloc),
    );

    // Dynamic side: the same graph under the same pool really deadlocks.
    let lw = LoweredWorkload::new(&w);
    let r = lw.run_unordered(TagPolicy::GlobalBounded { tags: pool }, ctx.cfg.issue_width);
    check("dynamic: GlobalBounded{8} deadlocks on dmv", !r.is_complete());

    // And the safe configuration agrees in both worlds: TYR local spaces
    // at the Theorem-1 minimum are statically clean and dynamically
    // complete.
    let local = TagPolicy::local(2);
    check("static: check_tag_policy(Local(2)) is clean", check_tag_policy(&dfg, &local).is_empty());
    let r = lw.run_tyr(local, ctx.cfg.issue_width);
    check("dynamic: Local(2) completes (Theorem 1)", r.is_complete());

    failures
}

/// The W-pass bounds against the dynamic reuse tracker, three legs:
///
/// 1. **W003 headline** — on dmv, the statically predicted peak live state
///    under TYR's local tag spaces must be *strictly* below the bound under
///    a bounded global pool: the paper's locality claim, provable from
///    graph shape.
/// 2. **W001 soundness** — for every Table II kernel on the tyr engine,
///    the per-block and total static live-state bounds must dominate the
///    engine's observed peak token-store occupancies.
/// 3. **W002 soundness** — for every engine family on dmv, the static
///    footprint bound (in lines) must dominate the distinct lines the
///    reuse tracker observed.
///
/// Returns the number of violations (0 when every bound is sound).
fn workingset_cross_validation(ctx: &Ctx) -> usize {
    println!("-- working-set cross-validation: static W bounds vs. dynamic reuse tracker --");
    let mut failures = 0usize;
    let mut check = |what: &str, ok: bool| {
        println!("  {} {what}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // Leg 1: the W003 verdict on dmv.
    let w = dmv::build(8, 8, ctx.seed);
    let caps = ChannelCapacity::uniform(ctx.cfg.queue_depth);
    match compare_elaborations(&w.program, &TagPolicy::local(2), trace::BOUNDED_POOL, &caps) {
        Ok((bounds, _)) => check(
            "W003: dmv local(2) live-state bound strictly below GlobalBounded{8}",
            bounds.local_shrinks(),
        ),
        Err(e) => check(&format!("W003: dmv lowering failed: {e}"), false),
    }

    // Leg 2: W001 + W002 per kernel on the tyr engine (the policy the
    // harness runs with, so the static and dynamic sides see the same
    // configuration).
    let policy = TagPolicy::local_with(ctx.cfg.tags, ctx.cfg.tag_overrides.clone());
    for w in &suite(Scale::Tiny, ctx.seed) {
        let dfg = match lower_tagged(&w.program, TaggingDiscipline::Tyr) {
            Ok(d) => d,
            Err(e) => {
                check(&format!("{}: tyr lowering failed: {e}", w.name), false);
                continue;
            }
        };
        let mut ws = WorkingSet::new();
        let r = match trace::run_probed(ctx, w, "tyr", &mut ws) {
            Ok(r) => r,
            Err(e) => {
                check(&format!("{}: {e}", w.name), false);
                continue;
            }
        };
        let dynamic = ws.report(r.final_cycle());
        let live = analyze_live_state(&dfg, &policy);
        let total_ok = live.total().is_none_or(|t| t >= r.max_store_peak());
        let blocks_ok = r
            .store_peaks
            .iter()
            .all(|(name, peak)| live.for_block(name).is_none_or(|b| b >= *peak));
        check(&format!("W001: {} static live-state bounds dominate engine peaks", w.name), {
            total_ok && blocks_ok && r.is_complete()
        });
        let fp = analyze_footprint(&dfg, &w.memory, &w.args);
        check(
            &format!("W002: {} static footprint dominates observed lines", w.name),
            fp.total_lines().is_none_or(|l| l >= dynamic.distinct_lines),
        );
    }

    // Leg 3: the W002 bound holds for every engine family on dmv — the
    // sequential engines issue the same architectural accesses, so the
    // TYR lowering's footprint bound applies across the board.
    let w = dmv::build(8, 8, ctx.seed);
    let tyr_dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("tyr lowering");
    let fp = analyze_footprint(&tyr_dfg, &w.memory, &w.args);
    for engine in ["tyr", "unordered", "ordered", "seqdf", "seqvn", "ooo"] {
        let mut ws = WorkingSet::new();
        let observed = match trace::run_probed(ctx, &w, engine, &mut ws) {
            Ok(r) => ws.report(r.final_cycle()).distinct_lines,
            Err(e) => {
                check(&format!("W002: dmv on {engine}: {e}"), false);
                continue;
            }
        };
        check(
            &format!("W002: dmv footprint bound holds on {engine}"),
            fp.total_lines().is_none_or(|l| l >= observed),
        );
    }

    failures
}

/// The P-pass certificates against the dynamic crossing tracker: for every
/// Table II kernel's TYR elaboration, a 4-shard plan must certify clean
/// (no P-errors, a P003 progress summary present), and a real run with the
/// [`ShardCrossings`](tyr_stats::shard::ShardCrossings) tracker attached
/// must stay within every static bound — per-shard boundary in-flight
/// peaks under the P004 bounds, and no runtime cross-shard word conflict
/// contradicting a P001 disjointness claim.
///
/// Returns the number of violations (0 when every certificate held).
fn shard_cross_validation(ctx: &Ctx) -> usize {
    use tyr_dfg::BlockId;
    use tyr_stats::shard::{ShardCrossings, ShardSpec};
    use tyr_verify::{verify_shards, ShardBudget};

    println!("-- shard cross-validation: P-pass certificates vs. dynamic crossing tracker --");
    let mut failures = 0usize;
    let mut check = |what: &str, ok: bool| {
        println!("  {} {what}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    let policy = TagPolicy::local_with(ctx.cfg.tags, ctx.cfg.tag_overrides.clone());
    for w in &suite(Scale::Tiny, ctx.seed) {
        let dfg = match lower_tagged(&w.program, TaggingDiscipline::Tyr) {
            Ok(d) => d,
            Err(e) => {
                check(&format!("{}: tyr lowering failed: {e}", w.name), false);
                continue;
            }
        };
        let (cert, report) = verify_shards(
            format!("{}/shard", w.name),
            &dfg,
            crate::shard::DEFAULT_SHARDS,
            ctx.seed,
            Some(ShardBudget::Tagged(&policy)),
            Some((&w.memory, &w.args)),
        );
        check(&format!("P001-P004: {} 4-shard plan certifies clean", w.name), report.errors() == 0);
        check(
            &format!("P003: {} progress summary present", w.name),
            report.has(tyr_verify::Code::ShardProgress),
        );

        let mut sc = ShardCrossings::new(ShardSpec {
            shards: cert.plan.shards as u32,
            node_shard: cert.node_shard.clone(),
            boundary: cert.boundary.clone(),
            plain_store: cert.plain_store.clone(),
            node_block: dfg.nodes.iter().map(|n| n.block.0).collect(),
        });
        let r = match trace::run_probed(ctx, w, "tyr", &mut sc) {
            Ok(r) => r,
            Err(e) => {
                check(&format!("{}: {e}", w.name), false);
                continue;
            }
        };
        let observed = sc.report();
        let bounds_ok = r.is_complete()
            && observed.per_shard.iter().all(|f| {
                cert.shard_inflight
                    .get(f.shard as usize)
                    .copied()
                    .flatten()
                    .is_none_or(|b| b >= f.peak_inflight)
            });
        check(&format!("P004: {} static crossing bounds dominate peaks", w.name), bounds_ok);
        let claims = cert.mem.as_ref().expect("memory context was supplied");
        let shard_of = |b: u32| cert.plan.shard_of(BlockId(b));
        let contradicted = observed
            .cross_shard_conflicts(shard_of)
            .any(|c| claims.disjoint.contains(&(BlockId(c.block_a), BlockId(c.block_b))));
        check(&format!("P001: {} disjointness claims uncontradicted", w.name), !contradicted);
    }
    failures
}

/// Every kernel's ordered lowering, static occupancy verdict vs. the
/// engine's back-pressure deadlock detector.
///
/// Three configurations per kernel (always at `Scale::Tiny`, so the
/// dynamic legs stay fast regardless of `--scale`):
///
/// 1. the harness depth (`--queue`, default 4) — predicted safe, must
///    complete;
/// 2. uniform depth 1, the static minimum of every live edge — still
///    predicted safe, must complete (back-pressure throttles but cannot
///    wedge a loop whose edges all hold one token);
/// 3. a victim edge (a loop-carry `CMerge`'s control input) squeezed to
///    capacity 0 — O001, and the engine must deadlock with a stall
///    witness naming a back-pressured producer.
///
/// Returns the number of disagreements (0 when static and dynamic worlds
/// agree everywhere).
fn ordered_cross_validation(ctx: &Ctx) -> usize {
    println!("-- ordered-FIFO cross-validation: static occupancy vs. back-pressure detector --");
    let mut failures = 0usize;

    for w in &suite(Scale::Tiny, ctx.seed) {
        let dfg = match lower_ordered(&w.program) {
            Ok(d) => d,
            Err(e) => {
                println!("  FAIL {}: ordered lowering failed: {e}", w.name);
                failures += 1;
                continue;
            }
        };
        let victim = dfg
            .nodes
            .iter()
            .position(
                |n| matches!(&n.kind, NodeKind::CMerge { initial_ctl } if !initial_ctl.is_empty()),
            )
            .map(|i| i as u32);

        // (leg label, uniform depth, per-edge overrides)
        let mut legs = vec![
            (format!("uniform depth {}", ctx.cfg.queue_depth), ctx.cfg.queue_depth, Vec::new()),
            ("uniform depth 1 (the static minimum)".to_string(), 1, Vec::new()),
        ];
        match victim {
            Some(cm) => legs.push((
                format!("victim: edge into n{cm}.i0 at capacity 0"),
                ctx.cfg.queue_depth,
                vec![((cm, 0u16), 0usize)],
            )),
            // Every Table II kernel loops, so a missing loop-carry CMerge
            // means the lowering changed shape under this analysis' feet.
            None => {
                println!("  FAIL {}: no loop-carry CMerge to squeeze", w.name);
                failures += 1;
            }
        }

        for (label, depth, overrides) in legs {
            let mut caps = ChannelCapacity::uniform(depth);
            for &((n, p), c) in &overrides {
                caps = caps.with_override(n, p, c);
            }
            let predicts_deadlock = check_channel_capacity(&dfg, &caps)
                .iter()
                .any(|d| d.code == Code::ChannelBelowMinimum);
            let cfg = OrderedConfig {
                issue_width: ctx.cfg.issue_width,
                queue_depth: depth,
                depth_overrides: overrides,
                args: w.args.clone(),
                max_cycles: 200_000_000,
                mem: ctx.cfg.mem.clone(),
                ..OrderedConfig::default()
            };
            let (completed, witness) = match OrderedEngine::new(&dfg, w.memory.clone(), cfg).run() {
                Ok(r) => {
                    let witness = match &r.outcome {
                        tyr_sim::Outcome::Deadlock { pending_allocates, .. } => {
                            pending_allocates.clone()
                        }
                        _ => Vec::new(),
                    };
                    (r.is_complete(), witness)
                }
                Err(e) => {
                    println!("  FAIL {}: {label}: engine fault: {e}", w.name);
                    failures += 1;
                    continue;
                }
            };
            let agree = if completed {
                !predicts_deadlock
            } else {
                predicts_deadlock && !witness.is_empty()
            };
            println!(
                "  {} {}: {label}: static says {}, engine {}",
                if agree { "ok  " } else { "FAIL" },
                w.name,
                if predicts_deadlock { "deadlock (O001)" } else { "safe" },
                if completed {
                    "completed".to_string()
                } else {
                    format!("deadlocked ({} stalled)", witness.len())
                },
            );
            if !agree {
                failures += 1;
            }
        }
    }
    failures
}
