//! The `repro verify` subcommand: the full static-analysis and
//! translation-validation battery over the paper's kernel suite (Table II).
//!
//! For every app, every tagged elaboration is checked by the `tyr-verify`
//! static passes — structure, free-barrier coverage, lifecycle lints, tag
//! demand against the policy the harness would actually run with, and
//! memory races against the actual memory image — then every lowering is
//! replayed against the reference interpreter (translation validation).
//!
//! Finally the Fig. 11 deadlock is *cross-validated*: the static
//! tag-demand pass must predict from graph shape alone that dmv under a
//! bounded global pool can deadlock, the dynamic detector must confirm it
//! on a real run, and the same pair must agree that TYR's local spaces
//! with the Theorem-1 minimum of 2 tags are safe and complete.

use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
use tyr_sim::tagged::TagPolicy;
use tyr_verify::{
    analyze_tag_demand, check_tag_policy, predict_global, validate_translations, verify_with, Code,
    GlobalPrediction, Report,
};
use tyr_workloads::{dmv, suite};

use crate::figures::Ctx;
use crate::LoweredWorkload;

/// Prints `report` — one `ok` line when empty, the full rendering when it
/// has findings — and folds its counts into the running totals.
fn account(report: &Report, errors: &mut usize, warnings: &mut usize) {
    *errors += report.errors();
    *warnings += report.warnings();
    if report.diags.is_empty() {
        println!("  verify {:<40} ok", report.title);
    } else {
        println!("{}", report.render());
    }
}

/// Runs the whole battery; returns `false` if any pass reported an error
/// (the subcommand then exits nonzero).
pub fn run(ctx: &Ctx) -> bool {
    println!("== repro verify: static analysis + translation validation ==");
    let mut errors = 0usize;
    let mut warnings = 0usize;

    // The policies each elaboration is meant to run under in the harness.
    let tyr_policy = TagPolicy::local_with(ctx.cfg.tags, ctx.cfg.tag_overrides.clone());
    let lowerings: &[(TaggingDiscipline, &str, Option<&TagPolicy>)] = &[
        (TaggingDiscipline::Tyr, "tyr", Some(&tyr_policy)),
        // Bounded-global runs reuse the barriered graph; its demand under a
        // global pool is checked separately in the Fig. 11 cross-validation
        // below, so no policy here.
        (TaggingDiscipline::UnorderedBounded, "unordered-bounded", None),
        (
            TaggingDiscipline::UnorderedUnbounded,
            "unordered-unbounded",
            Some(&TagPolicy::GlobalUnbounded),
        ),
    ];

    for w in &suite(ctx.scale, ctx.seed) {
        for &(discipline, label, policy) in lowerings {
            let title = format!("{}/{label}", w.name);
            let report = match lower_tagged(&w.program, discipline) {
                Ok(dfg) => verify_with(&title, &dfg, policy, Some((&w.memory, &w.args))),
                Err(e) => {
                    let mut r = Report::new(&title);
                    r.push(tyr_verify::Diagnostic::global(
                        Code::TvFault,
                        format!("lowering failed: {e}"),
                    ));
                    r
                }
            };
            account(&report, &mut errors, &mut warnings);
        }
        let tv = validate_translations(&w.name, &w.program, &w.memory, &w.args);
        account(&tv, &mut errors, &mut warnings);
    }

    errors += fig11_cross_validation(ctx);

    println!("verify: {errors} error(s), {warnings} warning(s) across the suite");
    errors == 0
}

/// The Fig. 11 deadlock, predicted statically and confirmed dynamically.
///
/// Returns the number of cross-validation failures (0 on agreement).
fn fig11_cross_validation(ctx: &Ctx) -> usize {
    println!("-- Fig. 11 cross-validation: static prediction vs. dynamic detector --");
    let mut failures = 0usize;
    let mut check = |what: &str, ok: bool| {
        println!("  {} {what}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // A small dmv instance: nested loops, so inner-loop allocates happen
    // inside an outer allocated context — the shape behind Fig. 11.
    let w = dmv::build(8, 8, ctx.seed);
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).expect("tyr lowering");
    let demand = analyze_tag_demand(&dfg);

    // Static side: a global pool of 8 is predicted to deadlock because
    // allocates nest; the policy checker reports it as T003.
    let pool = 8usize;
    let prediction = predict_global(&demand, pool);
    check(
        "static: nested allocates make a bounded global pool unsafe",
        prediction == GlobalPrediction::DeadlockNested,
    );
    let diags = check_tag_policy(&dfg, &TagPolicy::GlobalBounded { tags: pool });
    check(
        "static: check_tag_policy(GlobalBounded{8}) reports T003",
        diags.iter().any(|d| d.code == Code::NestedGlobalAlloc),
    );

    // Dynamic side: the same graph under the same pool really deadlocks.
    let lw = LoweredWorkload::new(&w);
    let r = lw.run_unordered(TagPolicy::GlobalBounded { tags: pool }, ctx.cfg.issue_width);
    check("dynamic: GlobalBounded{8} deadlocks on dmv", !r.is_complete());

    // And the safe configuration agrees in both worlds: TYR local spaces
    // at the Theorem-1 minimum are statically clean and dynamically
    // complete.
    let local = TagPolicy::local(2);
    check("static: check_tag_policy(Local(2)) is clean", check_tag_policy(&dfg, &local).is_empty());
    let r = lw.run_tyr(local, ctx.cfg.issue_width);
    check("dynamic: Local(2) completes (Theorem 1)", r.is_complete());

    failures
}
