//! The pool's determinism contract, end to end: a parallel suite sweep
//! must render byte-identical fig12/13/14 tables to a serial one, because
//! `--jobs` is a wall-time knob and must never be a results knob.

use tyr_bench::figures::{perf, Ctx};
use tyr_bench::System;
use tyr_workloads::{Scale, APP_NAMES};

fn ctx(jobs: usize) -> Ctx {
    Ctx { scale: Scale::Tiny, jobs, ..Ctx::default() }
}

#[test]
fn parallel_suite_sweep_renders_identical_figures() {
    let serial_ctx = ctx(1);
    let parallel_ctx = ctx(4);
    let serial = perf::run_suite(&serial_ctx);
    let parallel = perf::run_suite(&parallel_ctx);

    let (fig12_s, csv12_s) = perf::render_fig12(&serial_ctx, &serial);
    let (fig12_p, csv12_p) = perf::render_fig12(&parallel_ctx, &parallel);
    assert_eq!(fig12_s, fig12_p, "fig12 tables must be byte-identical");
    assert_eq!(csv12_s.render(), csv12_p.render(), "fig12 CSV must be byte-identical");

    let (fig13_s, csv13_s) = perf::render_fig13(&serial_ctx, &serial);
    let (fig13_p, csv13_p) = perf::render_fig13(&parallel_ctx, &parallel);
    assert_eq!(fig13_s, fig13_p, "fig13 tables must be byte-identical");
    assert_eq!(csv13_s.render(), csv13_p.render());

    let (fig14_s, csv14_s) = perf::render_fig14(&serial_ctx, &serial);
    let (fig14_p, csv14_p) = perf::render_fig14(&parallel_ctx, &parallel);
    assert_eq!(fig14_s, fig14_p, "fig14 tables must be byte-identical");
    assert_eq!(csv14_s.render(), csv14_p.render());
}

#[test]
fn parallel_suite_results_match_serial_cell_for_cell() {
    // Below the rendered tables: every simulated statistic of every
    // (kernel, system) cell must agree exactly.
    let serial = perf::run_suite(&ctx(1));
    let parallel = perf::run_suite(&ctx(3));
    assert_eq!(serial.runs.len(), APP_NAMES.len() * System::ALL.len());
    assert_eq!(serial.runs.len(), parallel.runs.len());
    for (key, s) in &serial.runs {
        let p = &parallel.runs[key];
        assert_eq!(s.cycles(), p.cycles(), "{key:?}");
        assert_eq!(s.dyn_instrs(), p.dyn_instrs(), "{key:?}");
        assert_eq!(s.peak_live(), p.peak_live(), "{key:?}");
        assert_eq!(s.returns, p.returns, "{key:?}");
    }
}
