//! End-to-end acceptance tests for `repro trace`: every engine family's
//! emitted Chrome-trace JSON must round-trip through validation with at
//! least one event of each kind that engine is specified to emit, and the
//! Fig. 11 bounded-global deadlock must be attributed to tag starvation on
//! a wedged allocate.

use tyr_bench::figures::Ctx;
use tyr_bench::trace::{self, expected_kinds, BOUNDED_POOL, ENGINE_NAMES};
use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_stats::probe::ChromeTrace;
use tyr_stats::{NodeProfiler, StallReason};
use tyr_workloads::{by_name, Scale};

fn tiny_ctx() -> Ctx {
    Ctx { scale: Scale::Tiny, ..Ctx::default() }
}

/// The same gate `ci.sh` runs, but over every engine name in one sweep: the
/// subcommand succeeds, the file it writes parses, and the per-engine
/// taxonomy coverage table is satisfied.
#[test]
fn every_engine_trace_round_trips() {
    let ctx = tiny_ctx();
    let dir = std::env::temp_dir().join(format!("tyr_trace_test_{}", std::process::id()));
    for engine in ENGINE_NAMES {
        let path = dir.join(format!("{engine}.json"));
        trace::run(&ctx, "dmv", engine, Some(&path)).unwrap_or_else(|e| panic!("{engine}: {e}"));
        let json = std::fs::read_to_string(&path).unwrap();
        let kinds = ChromeTrace::validate(&json).unwrap_or_else(|e| panic!("{engine}: {e}"));
        assert!(!expected_kinds(engine).is_empty(), "{engine} has no coverage spec");
        for k in expected_kinds(engine) {
            assert!(
                kinds.get(k.name()).copied().unwrap_or(0) > 0,
                "{engine} trace is missing '{}' events",
                k.name()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fig. 11 with the profiler attached: a small FCFS global pool wedges dmv,
/// and the stall-attribution table pins the deadlock on an allocate that
/// spent the tail of the run tag-starved.
#[test]
fn fig11_deadlock_is_attributed_to_tag_starvation() {
    let w = by_name("dmv", Scale::Tiny, 7).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
    let mut prof = NodeProfiler::new();
    let c = TaggedConfig {
        tag_policy: TagPolicy::GlobalBounded { tags: BOUNDED_POOL },
        args: w.args.clone(),
        ..TaggedConfig::default()
    };
    let r = TaggedEngine::with_probe(&dfg, w.memory.clone(), c, &mut prof).run().unwrap();
    assert!(!r.is_complete(), "a pool of {BOUNDED_POOL} global tags must wedge dmv (Fig. 11)");
    let report = prof.report(r.final_cycle());
    let starved = report
        .nodes
        .iter()
        .max_by_key(|n| n.stall_cycles[StallReason::TagStarved.index()])
        .unwrap();
    assert!(
        starved.stall_cycles[StallReason::TagStarved.index()] > 0,
        "deadlocked run must show tag-starved cycles"
    );
    assert!(
        starved.label.contains("alloc"),
        "the dominant starved node should be a wedged allocate, got '{}'",
        starved.label
    );
    assert!(!starved.block.is_empty(), "starved node must carry its block name");
}

#[test]
fn trace_rejects_unknown_names() {
    let ctx = tiny_ctx();
    let err = trace::run(&ctx, "nope", "tyr", None).unwrap_err();
    assert!(err.contains("unknown kernel"), "{err}");
    let err = trace::run(&ctx, "dmv", "nope", None).unwrap_err();
    assert!(err.contains("unknown engine"), "{err}");
}
