//! Cache-model invariance suite: the two-level hierarchy decides *when*
//! results arrive, never *what* they are.
//!
//! Three gates:
//! 1. **Architectural equivalence** — every suite kernel (plus the cache
//!    extensions) on all five systems produces the identical memory image,
//!    returns, and access counts under ideal and cached memory.
//! 2. **Degenerate bit-identity** — a cache with 1-cycle L1 and zero L2/
//!    DRAM penalty and an MSHR table deep enough to never fill is exactly
//!    `ideal:1`: same cycles, live trace, IPC histogram, everything.
//! 3. **Probe parity** — the `mem-miss` JSONL event count equals
//!    `RunResult::mem_misses` on every engine, so the streaming telemetry
//!    and the summary stats can never drift apart.

use tyr_bench::figures::Ctx;
use tyr_bench::{run_system, timeline, RunConfig, System};
use tyr_sim::MemConfig;
use tyr_stats::TimelineConfig;
use tyr_workloads::{by_name, Scale, APP_NAMES, CACHE_NAMES};

/// Workload seed; fixed for reproducible failures.
const SEED: u64 = 3;

/// A cache tight enough that even tiny-scale kernels miss in it.
const TIGHT_CACHE: &str = "cached:l1=512,l2=4k,mshr=4";

fn cfg_with(mem: &str) -> RunConfig {
    RunConfig { mem: MemConfig::parse(mem).expect("valid model"), ..RunConfig::default() }
}

#[test]
fn cached_memory_never_changes_architectural_results() {
    for name in APP_NAMES.iter().chain(CACHE_NAMES.iter()) {
        let w = by_name(name, Scale::Tiny, SEED).unwrap();
        for sys in System::ALL {
            // run_system checks each completed run against the oracle; the
            // cross-check below pins cached ≡ ideal exactly, not just
            // oracle-correct.
            let ideal = run_system(&w, sys, &RunConfig::default());
            let cached = run_system(&w, sys, &cfg_with(TIGHT_CACHE));
            let what = format!("{name} on {}", sys.label());
            assert!(ideal.is_complete(), "{what}: ideal run: {:?}", ideal.outcome);
            assert!(cached.is_complete(), "{what}: cached run: {:?}", cached.outcome);
            assert_eq!(ideal.memory(), cached.memory(), "{what}: memory image");
            assert_eq!(ideal.returns, cached.returns, "{what}: returns");
            assert_eq!(ideal.mem_loads, cached.mem_loads, "{what}: load count");
            assert_eq!(ideal.mem_stores, cached.mem_stores, "{what}: store count");
            assert!(ideal.mem_stats.is_none(), "{what}: ideal runs report no cache stats");
            let st = cached.mem_stats.expect("cached runs report stats");
            assert_eq!(
                st.l1.hits + st.l1.misses,
                cached.mem_loads + cached.mem_stores,
                "{what}: every architectural access goes through the cache"
            );
            assert!(st.l1.misses > 0, "{what}: {TIGHT_CACHE} must actually miss");
        }
    }
}

#[test]
fn degenerate_cache_is_bit_identical_to_ideal() {
    // 1-cycle L1, zero L2/DRAM penalty, MSHRs never full: the hierarchy
    // still counts hits and misses but every access completes next cycle,
    // exactly like ideal:1. Core timing stats must not budge.
    let degenerate = "cached:lat1=1,lat2=0,mem=0,mshr=4096";
    for name in APP_NAMES {
        let w = by_name(name, Scale::Tiny, SEED).unwrap();
        for sys in System::ALL {
            let ideal = run_system(&w, sys, &RunConfig::default());
            let cached = run_system(&w, sys, &cfg_with(degenerate));
            let what = format!("{name} on {}", sys.label());
            assert_eq!(ideal.outcome, cached.outcome, "{what}: outcome (incl. cycles)");
            assert_eq!(ideal.live, cached.live, "{what}: live-token trace");
            assert_eq!(ideal.ipc, cached.ipc, "{what}: IPC histogram");
            assert_eq!(ideal.returns, cached.returns, "{what}: returns");
            assert_eq!(ideal.store_peaks, cached.store_peaks, "{what}: store peaks");
            assert_eq!(ideal.memory(), cached.memory(), "{what}: memory image");
            assert_eq!(cached.mshr_stalls(), 0, "{what}: 4096 MSHRs never fill");
        }
    }
}

#[test]
fn mem_miss_probe_count_matches_summary_stats() {
    // One engine per family, all five families: the streamed mem-miss
    // events and the RunResult counter are the same measurement.
    for engine in ["tyr", "ordered", "seqdf", "seqvn", "ooo"] {
        let mut ctx = Ctx { scale: Scale::Tiny, seed: SEED, jobs: 1, ..Ctx::default() };
        ctx.cfg.mem = MemConfig::parse(TIGHT_CACHE).unwrap();
        let w = by_name("dmv", ctx.scale, ctx.seed).unwrap();
        let (r, _counted, jsonl) = timeline::collect(&ctx, &w, engine, TimelineConfig::default())
            .unwrap_or_else(|e| panic!("{engine}: {e}"));
        let streamed = jsonl.lines().filter(|l| l.contains("\"k\":\"mem-miss\"")).count() as u64;
        assert!(r.mem_misses() > 0, "{engine}: the tight cache must miss");
        assert_eq!(streamed, r.mem_misses(), "{engine}: mem-miss events vs mem_misses()");
        assert_eq!(
            r.mem_hits() + r.mem_misses(),
            r.mem_loads + r.mem_stores,
            "{engine}: hits + misses covers every access"
        );
    }
}
