//! End-to-end acceptance tests for `repro timeline`: the windowed CSV is
//! byte-identical for any `--jobs`, golden snapshots pin the dmv timelines
//! under the healthy (`tyr`) and wedging (`tagged-global-bounded`, Fig. 11)
//! policies, the streamed JSONL re-parses with exactly as many event
//! records as the independent counting probe saw, the `ooo` engine's
//! non-monotonic issue cycles conserve fires through the windowed sink, and
//! the Fig. 11 wedge is attributed to open tag-starved stalls in the tail.
//!
//! Regenerate the snapshots with
//! `TYR_BLESS=1 cargo test -p tyr-bench --test timeline_cmd` and review the
//! diff.

use std::path::PathBuf;

use tyr_bench::figures::Ctx;
use tyr_bench::timeline;
use tyr_stats::{stream, StallReason, TimelineConfig};
use tyr_workloads::{by_name, Scale};

/// Seed for the workloads; must stay fixed or the snapshots change.
const SEED: u64 = 7;

fn tiny_ctx(jobs: usize) -> Ctx {
    Ctx { scale: Scale::Tiny, seed: SEED, jobs, ..Ctx::default() }
}

fn golden(name: &str, actual: &str) {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"));
    if std::env::var_os("TYR_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); regenerate with TYR_BLESS=1", path.display())
    });
    assert_eq!(
        actual, expected,
        "timeline output for '{name}' drifted from its golden snapshot; \
         if intentional, regenerate with TYR_BLESS=1 and review the diff"
    );
}

/// One timeline run: the per-window CSV text and the JSONL document, with
/// the stream-vs-counter parity already asserted.
fn run_once(jobs: usize, engine: &str) -> (String, String) {
    let ctx = tiny_ctx(jobs);
    let w = by_name("dmv", ctx.scale, ctx.seed).unwrap();
    let (r, counted, jsonl) = timeline::collect(&ctx, &w, engine, TimelineConfig::default())
        .unwrap_or_else(|e| panic!("{engine}: {e}"));
    let summary = stream::validate(&jsonl).unwrap_or_else(|e| panic!("{engine}: {e}"));
    assert_eq!(
        summary.events, counted,
        "{engine}: JSONL record count disagrees with the counting probe"
    );
    let csv = r.timeline.expect("timeline attached").to_csv().render();
    (csv, jsonl)
}

#[test]
fn timeline_is_byte_identical_across_jobs() {
    // The timeline stack is a single probed run: the jobs knob (which fans
    // out *sweeps*) must not leak into its output in any form.
    let (csv1, jsonl1) = run_once(1, "tyr");
    let (csv4, jsonl4) = run_once(4, "tyr");
    assert_eq!(csv1, csv4, "timeline CSV differs between --jobs 1 and --jobs 4");
    assert_eq!(jsonl1, jsonl4, "JSONL stream differs between --jobs 1 and --jobs 4");
}

#[test]
fn golden_dmv_timelines() {
    // The healthy local-tag run and the Fig. 11 wedge, pinned window by
    // window. Simulated cycles are deterministic, so the CSVs are stable
    // across hosts.
    for engine in ["tyr", "tagged-global-bounded"] {
        let (csv, _) = run_once(1, engine);
        golden(&format!("timeline_dmv_{engine}"), &csv);
    }
}

#[test]
fn ooo_issue_cycles_conserve_fires_through_the_windowed_sink() {
    // The ooo engine emits events with non-monotonic cycles (probe.rs
    // documents the caveat); the windowed sink buckets by absolute cycle,
    // so every fired event must land in exactly one window regardless of
    // arrival order.
    let ctx = tiny_ctx(1);
    let w = by_name("dmv", ctx.scale, ctx.seed).unwrap();
    let (r, _, jsonl) = timeline::collect(&ctx, &w, "ooo", TimelineConfig::default()).unwrap();
    let summary = stream::validate(&jsonl).unwrap();
    let report = r.timeline.expect("timeline attached");
    let windowed_fires: u64 = report.windows.iter().map(|w| w.fires).sum();
    let streamed_fires = summary.kinds.get("fired").copied().unwrap_or(0);
    assert!(streamed_fires > 0, "dmv on ooo must fire");
    assert_eq!(
        windowed_fires, streamed_fires,
        "out-of-order issue cycles lost or duplicated fires in the windowed sink"
    );
}

#[test]
fn fig11_wedge_shows_a_tag_starved_tail() {
    let ctx = tiny_ctx(1);
    let w = by_name("dmv", ctx.scale, ctx.seed).unwrap();
    let (r, _, _) =
        timeline::collect(&ctx, &w, "tagged-global-bounded", TimelineConfig::default()).unwrap();
    assert!(!r.is_complete(), "the bounded global pool must wedge dmv (Fig. 11)");
    let report = r.timeline.as_ref().expect("timeline attached");
    let (reason, open, _tail) =
        report.tail_attribution().expect("a wedged run must have a stall-dominated tail");
    assert_eq!(reason, StallReason::TagStarved, "the wedge is tag starvation");
    assert!(open > 0, "open tag-starved stalls must persist to the final window");
    let last = report.windows.last().unwrap();
    assert!(
        last.open_stalls[StallReason::TagStarved.index()] > 0,
        "the final window must carry the open tag-starved intervals"
    );
    // And the full command path (render, CSV, stream check) exits cleanly
    // on the wedge — the acceptance criterion for `repro timeline dmv
    // tagged-global-bounded`.
    timeline::run(&ctx, "dmv", "tagged-global-bounded", None, None, None).unwrap();
}

#[test]
fn timeline_rejects_unknown_names_and_zero_window() {
    let ctx = tiny_ctx(1);
    let err = timeline::run(&ctx, "nope", "tyr", None, None, None).unwrap_err();
    assert!(err.contains("unknown kernel"), "{err}");
    let err = timeline::run(&ctx, "dmv", "nope", None, None, None).unwrap_err();
    assert!(err.contains("unknown engine"), "{err}");
    let err = timeline::run(&ctx, "dmv", "tyr", Some(0), None, None).unwrap_err();
    assert!(err.contains("--window"), "{err}");
}
