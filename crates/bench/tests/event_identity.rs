//! Ticked-vs-event-driven identity suite: for every engine with an event
//! core (one kernel per engine family, the full latency spread), the
//! event-driven run must be *bit-identical* to the ticked run — same
//! outcome, cycle-by-cycle live trace, IPC histogram, returns, store
//! peaks, memory image, load/store counts, and a byte-identical probe
//! event stream (`tyr-events/v1` JSONL). The only permitted difference is
//! the `skipped_cycles` wall-clock diagnostic. The engines without an
//! event core (seqdf, seqvn, ooo) must always report zero skipped cycles.
//!
//! The sweep covers ideal memory at three latencies *and* the two-level
//! cache model: the jump clamp on outstanding MSHR fills must keep the
//! event core exact under variable-latency misses too.

use tyr_bench::figures::Ctx;
use tyr_bench::timeline;
use tyr_sim::{MemConfig, RunResult};
use tyr_stats::TimelineConfig;
use tyr_workloads::{by_name, Scale};

/// Workload seed; any value works, fixed for reproducible failures.
const SEED: u64 = 7;

/// The memory models swept: the historical ideal latencies plus a small
/// cache (tight enough that dmv at tiny scale actually misses).
fn mem_sweep() -> Vec<MemConfig> {
    vec![
        MemConfig::ideal(1),
        MemConfig::ideal(4),
        MemConfig::ideal(200),
        MemConfig::parse("cached:l1=512,l2=4k,mshr=4").unwrap(),
    ]
}

/// One probed run: the result plus its JSONL event stream.
fn run_mode(engine: &str, mem: &MemConfig, event_driven: bool) -> (RunResult, String) {
    let mut ctx = Ctx { scale: Scale::Tiny, seed: SEED, jobs: 1, ..Ctx::default() };
    ctx.cfg.mem = mem.clone();
    ctx.cfg.event_driven = event_driven;
    let w = by_name("dmv", ctx.scale, ctx.seed).unwrap();
    let (r, counted, jsonl) = timeline::collect(&ctx, &w, engine, TimelineConfig::default())
        .unwrap_or_else(|e| panic!("{engine} mem {} event={event_driven}: {e}", mem.label()));
    assert!(counted > 0, "{engine}: the run must emit probe events");
    (r, jsonl)
}

/// Field-by-field identity check; `skipped_cycles` is the one exception.
fn assert_identical(engine: &str, mem: &MemConfig, event: &RunResult, ticked: &RunResult) {
    let what = format!("{engine} at mem {}", mem.label());
    assert_eq!(event.outcome, ticked.outcome, "{what}: outcome");
    assert_eq!(event.live, ticked.live, "{what}: live-token trace");
    assert_eq!(event.ipc, ticked.ipc, "{what}: IPC histogram");
    assert_eq!(event.returns, ticked.returns, "{what}: returns");
    assert_eq!(event.store_peaks, ticked.store_peaks, "{what}: store peaks");
    assert_eq!(event.mem_loads, ticked.mem_loads, "{what}: load count");
    assert_eq!(event.mem_stores, ticked.mem_stores, "{what}: store count");
    assert_eq!(event.mem_stats, ticked.mem_stats, "{what}: cache stats");
    assert_eq!(event.memory(), ticked.memory(), "{what}: final memory");
    assert_eq!(event.faults, ticked.faults, "{what}: fault log");
    assert_eq!(ticked.skipped_cycles, 0, "{what}: a ticked run never skips");
}

#[test]
fn event_and_ticked_runs_are_bit_identical_per_engine() {
    // One representative per engine family with an event core: the two
    // tagged elaborations, the wedging bounded-global policy (a deadlock
    // must attribute identically), and the ordered machine.
    for engine in ["tyr", "unordered", "tagged-global-bounded", "ordered"] {
        for mem in mem_sweep() {
            let (event, event_jsonl) = run_mode(engine, &mem, true);
            let (ticked, ticked_jsonl) = run_mode(engine, &mem, false);
            assert_identical(engine, &mem, &event, &ticked);
            assert_eq!(
                event_jsonl,
                ticked_jsonl,
                "{engine} at mem {}: probe event streams must be byte-identical",
                mem.label()
            );
            // The windowed telemetry is derived from the same events and
            // final cycle, so it must render identically too.
            let csv = |r: &RunResult| r.timeline.as_ref().unwrap().to_csv().render();
            assert_eq!(csv(&event), csv(&ticked), "{engine} at mem {}: timeline CSV", mem.label());
        }
    }
}

#[test]
fn high_latency_serial_runs_actually_skip() {
    // The identity above would hold trivially if the jump never fired;
    // pin that the event core earns its keep where it matters — a serial
    // dependence chain at high memory latency idles most cycles.
    let (event, _) = run_mode("ordered", &MemConfig::ideal(200), true);
    assert!(
        event.skipped_cycles > event.cycles() / 2,
        "ordered dmv at latency 200 skipped only {} of {} cycles",
        event.skipped_cycles,
        event.cycles()
    );
}

#[test]
fn engines_without_an_event_core_report_zero_skips() {
    for engine in ["seqdf", "seqvn", "ooo"] {
        let (r, _) = run_mode(engine, &MemConfig::ideal(1), true);
        assert_eq!(r.skipped_cycles, 0, "{engine} has no event core");
    }
}
