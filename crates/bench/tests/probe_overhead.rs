//! Guard for the probe layer's zero-cost claim: an engine instantiated with
//! the default `NoProbe` must run a dmv kernel no slower than the same
//! engine with a counting sink attached (which pays one call per emitted
//! event) or a windowed `Timeline` sink attached (which additionally folds
//! every event into per-window counters), and the whole timing loop must
//! stay comfortably inside a debug-build wall-clock budget.

use std::time::{Duration, Instant};

use tyr_dfg::lower::{lower_tagged, TaggingDiscipline};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_stats::probe::CountingProbe;
use tyr_stats::Timeline;
use tyr_workloads::{by_name, Scale};

fn cfg() -> TaggedConfig {
    TaggedConfig { tag_policy: TagPolicy::local(64), ..TaggedConfig::default() }
}

#[test]
fn noop_probe_adds_no_measurable_overhead_on_dmv() {
    let w = by_name("dmv", Scale::Tiny, 7).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();

    // Warm up caches and the allocator before timing anything.
    let warm = TaggedEngine::new(&dfg, w.memory.clone(), cfg()).run().unwrap();
    assert!(warm.is_complete());

    let reps = 30;
    let mut noop: Vec<Duration> = Vec::with_capacity(reps);
    let mut counting: Vec<Duration> = Vec::with_capacity(reps);
    let mut events = 0u64;
    // Interleave the two variants so drift (thermal, scheduler) hits both
    // populations equally.
    for _ in 0..reps {
        let t = Instant::now();
        let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg()).run().unwrap();
        noop.push(t.elapsed());
        assert!(r.is_complete());

        let t = Instant::now();
        let mut probe = CountingProbe::default();
        let r = TaggedEngine::with_probe(&dfg, w.memory.clone(), cfg(), &mut probe).run().unwrap();
        counting.push(t.elapsed());
        assert!(r.is_complete());
        events = probe.events;
    }
    assert!(events > 0, "counting sink saw no events");

    let median = |v: &mut Vec<Duration>| {
        v.sort();
        v[v.len() / 2]
    };
    let noop_med = median(&mut noop);
    let counting_med = median(&mut counting);

    // The counting sink does strictly more work per event than a compiled-out
    // no-op, so the no-op median must not exceed it beyond timer noise.
    let budget = counting_med.mul_f64(1.25) + Duration::from_millis(2);
    assert!(
        noop_med <= budget,
        "NoProbe dmv run (median {noop_med:?} over {reps} reps) is slower than the \
         counting-probe run ({counting_med:?}) — probe emission is no longer \
         compiling out of the hot loops",
    );

    // Absolute wall-clock bound in the golden.rs style: many instrumented
    // repetitions must stay far inside a budget even in a debug build.
    let total: Duration = noop.iter().chain(counting.iter()).sum();
    assert!(
        total.as_secs_f64() < 30.0,
        "{reps}x2 instrumented dmv runs took {total:?} — the probe layer has \
         regressed the tagged engine's throughput",
    );
}

#[test]
fn noop_probe_is_no_slower_than_the_timeline_sink_on_dmv() {
    let w = by_name("dmv", Scale::Tiny, 7).unwrap();
    let dfg = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();

    let warm = TaggedEngine::new(&dfg, w.memory.clone(), cfg()).run().unwrap();
    assert!(warm.is_complete());

    let reps = 30;
    let mut noop: Vec<Duration> = Vec::with_capacity(reps);
    let mut timed: Vec<Duration> = Vec::with_capacity(reps);
    let mut final_cycle = 0;
    let mut last_timeline = None;
    // Interleaved for the same drift-cancellation reason as above.
    for _ in 0..reps {
        let t = Instant::now();
        let r = TaggedEngine::new(&dfg, w.memory.clone(), cfg()).run().unwrap();
        noop.push(t.elapsed());
        assert!(r.is_complete());

        let t = Instant::now();
        let mut tl = Timeline::default();
        let r = TaggedEngine::with_probe(&dfg, w.memory.clone(), cfg(), &mut tl).run().unwrap();
        timed.push(t.elapsed());
        assert!(r.is_complete());
        final_cycle = r.final_cycle();
        last_timeline = Some(tl);
    }
    // The sink must have observed the run, not just been carried along.
    let report = last_timeline.unwrap().report(final_cycle);
    assert!(!report.windows.is_empty(), "timeline produced no windows");
    assert!(report.windows.iter().map(|w| w.fires).sum::<u64>() > 0, "timeline saw no fires");

    let median = |v: &mut Vec<Duration>| {
        v.sort();
        v[v.len() / 2]
    };
    let noop_med = median(&mut noop);
    let timeline_med = median(&mut timed);

    // The timeline sink does strictly more work per event than a
    // compiled-out no-op, so the no-op median must not exceed it beyond
    // timer noise: the NoProbe side shows no regression from the windowed
    // sink existing.
    let budget = timeline_med.mul_f64(1.25) + Duration::from_millis(2);
    assert!(
        noop_med <= budget,
        "NoProbe dmv run (median {noop_med:?} over {reps} reps) is slower than the \
         timeline-probe run ({timeline_med:?}) — probe emission is no longer \
         compiling out of the hot loops",
    );

    let total: Duration = noop.iter().chain(timed.iter()).sum();
    assert!(
        total.as_secs_f64() < 30.0,
        "{reps}x2 timeline-instrumented dmv runs took {total:?} — the windowed sink \
         is too heavy for an always-on profile",
    );
}
