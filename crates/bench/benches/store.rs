//! Micro-bench pairs for the tagged engine's hot-path data structures:
//! SipHash vs FxHash on the sparse token store's churn pattern, and
//! per-token `Vec` allocation vs the pooled [`ValueSlab`] on token
//! turnover. Run with `cargo bench -p tyr-bench --bench store`; each pair
//! isolates one substitution the engine made, so the win (or a regression)
//! is measurable in-repo without profiling a whole simulation.

use std::collections::HashMap;

use tyr_bench::micro::Harness;
use tyr_ir::Value;
use tyr_sim::fxhash::FxHashMap;
use tyr_sim::slab::ValueSlab;

/// Ports per token set (a typical wired-input count).
const PORTS: usize = 3;
/// Tags alive at once during churn (a realistic unordered working set).
const LIVE: u64 = 512;
/// Total tag lifetimes simulated per iteration.
const TURNOVER: u64 = 4096;

/// The sparse store's life cycle for one tag, generic over the hasher:
/// first token inserts the slot, later tokens set more ports, match reads
/// every port, consumption clears the slot. Tags are engine-style
/// monotonically increasing integers.
fn churn<S: std::hash::BuildHasher + Default>() -> Value {
    let mut map: HashMap<u64, (u64, [Value; PORTS]), S> = HashMap::default();
    let mut sum: Value = 0;
    for tag in 0..TURNOVER {
        let slot = map.entry(tag).or_insert((0, [0; PORTS]));
        for port in 0..PORTS {
            slot.0 |= 1 << port;
            slot.1[port] = tag as Value + port as Value;
        }
        if tag >= LIVE {
            let dead = tag - LIVE;
            if let Some((present, vals)) = map.get(&dead) {
                std::hint::black_box(present);
                for v in vals {
                    sum = sum.wrapping_add(*v);
                }
            }
            map.remove(&dead);
        }
    }
    sum
}

fn main() {
    let mut b = Harness::from_args("store");

    b.bench("sparse_store_churn/siphash", churn::<std::collections::hash_map::RandomState>);
    b.bench("sparse_store_churn/fxhash", churn::<tyr_sim::fxhash::FxBuildHasher>);

    // Token-set turnover: the old store allocated a fresh `vec![0; PORTS]`
    // per tag lifetime; the slab recycles rows through its free list.
    b.bench("token_turnover/alloc", || {
        let mut live: Vec<Vec<Value>> = Vec::new();
        let mut sum: Value = 0;
        for tag in 0..TURNOVER {
            let mut vals = vec![0; PORTS];
            for (port, v) in vals.iter_mut().enumerate() {
                *v = tag as Value + port as Value;
            }
            live.push(vals);
            if live.len() > LIVE as usize {
                let vals = live.swap_remove(0);
                sum = sum.wrapping_add(vals.iter().sum::<Value>());
            }
        }
        sum
    });
    b.bench("token_turnover/slab", || {
        let mut slab = ValueSlab::new(PORTS);
        let mut live: Vec<u32> = Vec::new();
        let mut sum: Value = 0;
        for tag in 0..TURNOVER {
            let row = slab.acquire();
            for port in 0..PORTS {
                slab.set(row, port as u16, tag as Value + port as Value);
            }
            live.push(row);
            if live.len() > LIVE as usize {
                let row = live.swap_remove(0);
                for port in 0..PORTS {
                    sum = sum.wrapping_add(slab.get(row, port as u16));
                }
                slab.release(row);
            }
        }
        sum
    });

    // The combined effect, closest to the engine's actual Store::Sparse:
    // fx-hashed map of (present, slab row) vs SipHash map of (present, Vec).
    b.bench("combined/siphash_vec", || {
        let mut map: HashMap<u64, (u64, Vec<Value>)> = HashMap::new();
        let mut sum: Value = 0;
        for tag in 0..TURNOVER {
            let slot = map.entry(tag).or_insert_with(|| (0, vec![0; PORTS]));
            slot.0 = 0b111;
            slot.1[0] = tag as Value;
            if tag >= LIVE {
                if let Some((_, vals)) = map.remove(&(tag - LIVE)) {
                    sum = sum.wrapping_add(vals[0]);
                }
            }
        }
        sum
    });
    b.bench("combined/fxhash_slab", || {
        let mut map: FxHashMap<u64, (u64, u32)> = FxHashMap::default();
        let mut slab = ValueSlab::new(PORTS);
        let mut sum: Value = 0;
        for tag in 0..TURNOVER {
            let slot = map.entry(tag).or_insert_with(|| (0, slab.acquire()));
            slot.0 = 0b111;
            let row = slot.1;
            slab.set(row, 0, tag as Value);
            if tag >= LIVE {
                if let Some((_, row)) = map.remove(&(tag - LIVE)) {
                    sum = sum.wrapping_add(slab.get(row, 0));
                    slab.release(row);
                }
            }
        }
        sum
    });

    b.finish();
}
