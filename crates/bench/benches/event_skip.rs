//! Event-core benches: wall-clock of the event-driven core against forced
//! ticked execution on idle-heavy configurations — a serial sparse kernel
//! at high memory latency, where nearly every cycle is a quiescent wait on
//! an outstanding load. The two rows of each pair simulate bit-identical
//! runs (the identity suite pins that); the ratio between them is the
//! clock-jump payoff the event core exists for.

use std::hint::black_box;

use tyr_bench::micro::Harness;
use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_workloads::{by_name, Scale};

/// Memory latency for the idle-heavy rows; deep enough that a serial
/// dependence chain spends >99% of its cycles waiting.
const HIGH_LATENCY: u64 = 200;

fn main() {
    let mut h = Harness::from_args("event_skip");

    for app in ["dmv", "spmspv"] {
        let Some(w) = by_name(app, Scale::Tiny, 7) else { continue };
        let tyr = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
        let ord = lower_ordered(&w.program).unwrap();

        // Tagged engine, tag-starved serial schedule: local(2) leaves at
        // most two iterations in flight, so the load latency is exposed.
        for (label, event_driven) in [("event", true), ("ticked", false)] {
            h.bench(&format!("event_skip/tagged_local2_lat{HIGH_LATENCY}/{app}/{label}"), || {
                let cfg = TaggedConfig {
                    tag_policy: TagPolicy::local(2),
                    mem: tyr_sim::MemConfig::ideal(HIGH_LATENCY),
                    event_driven,
                    ..TaggedConfig::default()
                };
                black_box(TaggedEngine::new(&tyr, w.memory.clone(), cfg).run().unwrap())
            });
        }

        // Ordered engine: the FIFO depth bounds in-flight loads, so high
        // latency idles the whole fabric between releases.
        for (label, event_driven) in [("event", true), ("ticked", false)] {
            h.bench(&format!("event_skip/ordered_lat{HIGH_LATENCY}/{app}/{label}"), || {
                let cfg = OrderedConfig {
                    mem: tyr_sim::MemConfig::ideal(HIGH_LATENCY),
                    event_driven,
                    ..OrderedConfig::default()
                };
                black_box(OrderedEngine::new(&ord, w.memory.clone(), cfg).run().unwrap())
            });
        }
    }

    // Low-latency control: at mem_latency 1 nothing queues and the jump
    // never fires, so the two modes must cost the same — any spread here
    // is pure event-core overhead on the hot path.
    {
        let w = by_name("dmv", Scale::Tiny, 7).unwrap();
        let tyr = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
        for (label, event_driven) in [("event", true), ("ticked", false)] {
            h.bench(&format!("event_skip/tagged_local64_lat1/dmv/{label}"), || {
                let cfg = TaggedConfig {
                    tag_policy: TagPolicy::local(64),
                    event_driven,
                    ..TaggedConfig::default()
                };
                black_box(TaggedEngine::new(&tyr, w.memory.clone(), cfg).run().unwrap())
            });
        }
    }

    h.finish();
}
