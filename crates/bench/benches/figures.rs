//! Criterion benches, one per table/figure of the paper's evaluation.
//!
//! Each bench measures the figure's *simulation core* (the engine runs that
//! dominate its cost) at `Tiny` scale, so `cargo bench` finishes in minutes
//! and its output stays readable; the `repro` binary regenerates the
//! rendered figures at full fidelity. Bench names mirror the figure numbers
//! so a regression in any experiment's cost is visible at a glance.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tyr_bench::figures::{perf, Ctx};
use tyr_bench::{run_system, LoweredWorkload, RunConfig, System};
use tyr_sim::tagged::TagPolicy;
use tyr_workloads::{by_name, dmv, Scale};

fn tiny_ctx() -> Ctx {
    Ctx { scale: Scale::Tiny, ..Ctx::default() }
}

/// Tables I/II: lowering every app and reading static graph statistics.
fn bench_tables(c: &mut Criterion) {
    c.bench_function("table2_lower_all_apps", |b| {
        b.iter(|| {
            for w in tyr_workloads::suite(Scale::Tiny, 1) {
                let dfg = tyr_dfg::lower::lower_tagged(
                    &w.program,
                    tyr_dfg::lower::TaggingDiscipline::Tyr,
                )
                .unwrap();
                black_box((dfg.len(), dfg.blocks.len()));
            }
        })
    });
}

/// Fig. 2: spmspm trace collection on all five systems.
fn bench_fig02(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let w = by_name("spmspm", Scale::Tiny, ctx.seed).unwrap();
    c.bench_function("fig02_spmspm_all_systems", |b| {
        b.iter(|| {
            for sys in System::ALL {
                black_box(run_system(&w, sys, &ctx.cfg));
            }
        })
    });
}

/// Fig. 9 / Fig. 16: tag-space sweeps on the tagged engine.
fn bench_tag_sweeps(c: &mut Criterion) {
    let w = by_name("spmspm", Scale::Tiny, 1).unwrap();
    let lw = LoweredWorkload::new(&w);
    c.bench_function("fig09_16_tag_sweep", |b| {
        b.iter(|| {
            for tags in [2usize, 8, 64] {
                black_box(lw.run_tyr(TagPolicy::local(tags), 128));
            }
        })
    });
}

/// Fig. 11: the bounded-global deadlock run (deadlocks are cheap — that is
/// rather the point).
fn bench_fig11(c: &mut Criterion) {
    let w = dmv::build(8, 8, 1);
    let lw = LoweredWorkload::new(&w);
    c.bench_function("fig11_bounded_deadlock", |b| {
        b.iter(|| {
            let r = lw.run_unordered(TagPolicy::GlobalBounded { tags: 2 }, 128);
            debug_assert!(!r.is_complete());
            black_box(r)
        })
    });
}

/// Figs. 12–14: the shared full-suite sweep.
fn bench_suite_sweep(c: &mut Criterion) {
    let ctx = tiny_ctx();
    c.bench_function("fig12_13_14_suite_sweep", |b| b.iter(|| perf::run_suite(black_box(&ctx))));
}

/// Fig. 15: issue-width sweep on the tagged engines.
fn bench_fig15(c: &mut Criterion) {
    let w = dmv::build(12, 12, 1);
    let lw = LoweredWorkload::new(&w);
    c.bench_function("fig15_width_sweep", |b| {
        b.iter(|| {
            for width in [16usize, 128, 512] {
                black_box(lw.run_tyr(TagPolicy::local(64), width));
                black_box(lw.run_unordered(TagPolicy::GlobalUnbounded, width));
            }
        })
    });
}

/// Fig. 17: one row of the width × tags grid.
fn bench_fig17(c: &mut Criterion) {
    let w = by_name("spmspv", Scale::Tiny, 1).unwrap();
    let lw = LoweredWorkload::new(&w);
    c.bench_function("fig17_grid_row", |b| {
        b.iter(|| {
            for tags in [2usize, 8, 32, 128] {
                black_box(lw.run_tyr(TagPolicy::local(tags), 128));
            }
        })
    });
}

/// Fig. 18: per-region tag tuning pair.
fn bench_fig18(c: &mut Criterion) {
    let w = by_name("dmm", Scale::Tiny, 1).unwrap();
    let lw = LoweredWorkload::new(&w);
    c.bench_function("fig18_region_tuning_pair", |b| {
        b.iter(|| {
            black_box(lw.run_tyr(TagPolicy::local(64), 128));
            black_box(
                lw.run_tyr(TagPolicy::local_with(64, vec![("dmm_i".into(), 8)]), 128),
            );
        })
    });
}

/// The headline comparison in one bench: TYR vs unordered vs vN on spmspm.
fn bench_headline(c: &mut Criterion) {
    let w = by_name("spmspm", Scale::Tiny, 1).unwrap();
    let lw = LoweredWorkload::new(&w);
    let cfg = RunConfig::default();
    c.bench_function("headline_tyr_spmspm", |b| {
        b.iter(|| black_box(lw.run_tyr(TagPolicy::local(64), 128)))
    });
    c.bench_function("headline_unordered_spmspm", |b| {
        b.iter(|| black_box(lw.run_unordered(TagPolicy::GlobalUnbounded, 128)))
    });
    c.bench_function("headline_seqvn_spmspm", |b| {
        b.iter(|| black_box(run_system(&w, System::SeqVn, &cfg)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = figures;
    config = config();
    targets = bench_tables, bench_fig02, bench_tag_sweeps, bench_fig11,
              bench_suite_sweep, bench_fig15, bench_fig17, bench_fig18,
              bench_headline
}
criterion_main!(figures);
