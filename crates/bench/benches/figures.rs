//! Micro-benches, one per table/figure of the paper's evaluation.
//!
//! Each bench measures the figure's *simulation core* (the engine runs that
//! dominate its cost) at `Tiny` scale, so `cargo bench` finishes in minutes
//! and its output stays readable; the `repro` binary regenerates the
//! rendered figures at full fidelity. Bench names mirror the figure numbers
//! so a regression in any experiment's cost is visible at a glance.

use std::hint::black_box;

use tyr_bench::figures::{perf, Ctx};
use tyr_bench::micro::Harness;
use tyr_bench::{run_system, LoweredWorkload, RunConfig, System};
use tyr_sim::tagged::TagPolicy;
use tyr_workloads::{by_name, dmv, Scale};

fn tiny_ctx() -> Ctx {
    Ctx { scale: Scale::Tiny, ..Ctx::default() }
}

fn main() {
    let mut h = Harness::from_args("figures");

    // Tables I/II: lowering every app and reading static graph statistics.
    h.bench("table2_lower_all_apps", || {
        for w in tyr_workloads::suite(Scale::Tiny, 1) {
            let dfg =
                tyr_dfg::lower::lower_tagged(&w.program, tyr_dfg::lower::TaggingDiscipline::Tyr)
                    .unwrap();
            black_box((dfg.len(), dfg.blocks.len()));
        }
    });

    // Fig. 2: spmspm trace collection on all five systems.
    let ctx = tiny_ctx();
    let w = by_name("spmspm", Scale::Tiny, ctx.seed).unwrap();
    h.bench("fig02_spmspm_all_systems", || {
        for sys in System::ALL {
            black_box(run_system(&w, sys, &ctx.cfg));
        }
    });

    // Fig. 9 / Fig. 16: tag-space sweeps on the tagged engine.
    let w = by_name("spmspm", Scale::Tiny, 1).unwrap();
    let lw = LoweredWorkload::new(&w);
    h.bench("fig09_16_tag_sweep", || {
        for tags in [2usize, 8, 64] {
            black_box(lw.run_tyr(TagPolicy::local(tags), 128));
        }
    });

    // Fig. 11: the bounded-global deadlock run (deadlocks are cheap — that
    // is rather the point). The deadlock is asserted unconditionally: a pool
    // of 2 global tags can never finish dmv, and a completing run here means
    // the bench is no longer measuring what Fig. 11 shows.
    let w = dmv::build(8, 8, 1);
    let lw = LoweredWorkload::new(&w);
    h.bench("fig11_bounded_deadlock", || {
        let r = lw.run_unordered(TagPolicy::GlobalBounded { tags: 2 }, 128);
        assert!(!r.is_complete(), "Fig. 11 bench must deadlock; got {:?}", r.outcome);
        black_box(r)
    });

    // Figs. 12–14: the shared full-suite sweep.
    let ctx = tiny_ctx();
    h.bench("fig12_13_14_suite_sweep", || perf::run_suite(black_box(&ctx)));

    // Fig. 15: issue-width sweep on the tagged engines.
    let w = dmv::build(12, 12, 1);
    let lw = LoweredWorkload::new(&w);
    h.bench("fig15_width_sweep", || {
        for width in [16usize, 128, 512] {
            black_box(lw.run_tyr(TagPolicy::local(64), width));
            black_box(lw.run_unordered(TagPolicy::GlobalUnbounded, width));
        }
    });

    // Fig. 17: one row of the width × tags grid.
    let w = by_name("spmspv", Scale::Tiny, 1).unwrap();
    let lw = LoweredWorkload::new(&w);
    h.bench("fig17_grid_row", || {
        for tags in [2usize, 8, 32, 128] {
            black_box(lw.run_tyr(TagPolicy::local(tags), 128));
        }
    });

    // Fig. 18: per-region tag tuning pair.
    let w = by_name("dmm", Scale::Tiny, 1).unwrap();
    let lw = LoweredWorkload::new(&w);
    h.bench("fig18_region_tuning_pair", || {
        black_box(lw.run_tyr(TagPolicy::local(64), 128));
        black_box(lw.run_tyr(TagPolicy::local_with(64, vec![("dmm_i".into(), 8)]), 128));
    });

    // The headline comparison: TYR vs unordered vs vN on spmspm.
    let w = by_name("spmspm", Scale::Tiny, 1).unwrap();
    let lw = LoweredWorkload::new(&w);
    let cfg = RunConfig::default();
    h.bench("headline_tyr_spmspm", || black_box(lw.run_tyr(TagPolicy::local(64), 128)));
    h.bench("headline_unordered_spmspm", || {
        black_box(lw.run_unordered(TagPolicy::GlobalUnbounded, 128))
    });
    h.bench("headline_seqvn_spmspm", || black_box(run_system(&w, System::SeqVn, &cfg)));

    h.finish();
}
