//! Engine-throughput benches: how fast each simulator core executes a fixed
//! workload (host-seconds per simulated program). These guard the
//! interpreter loops — the tagged engine's token store and ready queue, the
//! ordered engine's FIFO scan, and the two sequential engines.

use std::hint::black_box;

use tyr_bench::micro::Harness;
use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
use tyr_sim::seqdf::{SeqDataflowConfig, SeqDataflowEngine};
use tyr_sim::seqvn::{SeqVnConfig, SeqVnEngine};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_stats::probe::CountingProbe;
use tyr_workloads::{by_name, Scale};

fn main() {
    let mut h = Harness::from_args("engines");

    for app in ["dmv", "spmspm", "tc"] {
        let w = by_name(app, Scale::Tiny, 7).unwrap();
        let tyr = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
        let unord = lower_tagged(&w.program, TaggingDiscipline::UnorderedUnbounded).unwrap();
        let ord = lower_ordered(&w.program).unwrap();

        h.bench(&format!("engine_throughput/tagged_tyr/{app}"), || {
            let cfg = TaggedConfig { tag_policy: TagPolicy::local(64), ..TaggedConfig::default() };
            black_box(TaggedEngine::new(&tyr, w.memory.clone(), cfg).run().unwrap())
        });
        h.bench(&format!("engine_throughput/tagged_unordered/{app}"), || {
            let cfg =
                TaggedConfig { tag_policy: TagPolicy::GlobalUnbounded, ..TaggedConfig::default() };
            black_box(TaggedEngine::new(&unord, w.memory.clone(), cfg).run().unwrap())
        });
        h.bench(&format!("engine_throughput/ordered/{app}"), || {
            let cfg = OrderedConfig::default();
            black_box(OrderedEngine::new(&ord, w.memory.clone(), cfg).run().unwrap())
        });
        h.bench(&format!("engine_throughput/seqvn/{app}"), || {
            let cfg = SeqVnConfig::default();
            black_box(SeqVnEngine::new(&w.program, w.memory.clone(), cfg).run().unwrap())
        });
        h.bench(&format!("engine_throughput/seqdf/{app}"), || {
            let cfg = SeqDataflowConfig::default();
            black_box(SeqDataflowEngine::new(&w.program, w.memory.clone(), cfg).run().unwrap())
        });
    }

    // Probe overhead: the NoProbe default must compile all emission out of
    // the hot loops, so the no-op row should match the plain engine rows
    // above and beat the counting sink (which pays one call per event).
    {
        let w = by_name("dmv", Scale::Tiny, 7).unwrap();
        let tyr = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
        h.bench("probe_overhead/noop/dmv", || {
            let cfg = TaggedConfig { tag_policy: TagPolicy::local(64), ..TaggedConfig::default() };
            black_box(TaggedEngine::new(&tyr, w.memory.clone(), cfg).run().unwrap())
        });
        h.bench("probe_overhead/counting/dmv", || {
            let cfg = TaggedConfig { tag_policy: TagPolicy::local(64), ..TaggedConfig::default() };
            let mut probe = CountingProbe::default();
            let r =
                TaggedEngine::with_probe(&tyr, w.memory.clone(), cfg, &mut probe).run().unwrap();
            black_box(probe.events);
            black_box(r)
        });
    }

    for app in ["dmv", "spmspm", "tc"] {
        let w = by_name(app, Scale::Tiny, 7).unwrap();
        h.bench(&format!("lowering/tyr/{app}"), || {
            black_box(lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap())
        });
        h.bench(&format!("lowering/ordered/{app}"), || {
            black_box(lower_ordered(&w.program).unwrap())
        });
    }

    h.finish();
}
