//! Engine-throughput benches: how fast each simulator core executes a fixed
//! workload (host-seconds per simulated program). These guard the
//! interpreter loops — the tagged engine's token store and ready queue, the
//! ordered engine's FIFO scan, and the two sequential engines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tyr_dfg::lower::{lower_ordered, lower_tagged, TaggingDiscipline};
use tyr_sim::ordered::{OrderedConfig, OrderedEngine};
use tyr_sim::seqdf::{SeqDataflowConfig, SeqDataflowEngine};
use tyr_sim::seqvn::{SeqVnConfig, SeqVnEngine};
use tyr_sim::tagged::{TagPolicy, TaggedConfig, TaggedEngine};
use tyr_workloads::{by_name, Scale};

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for app in ["dmv", "spmspm", "tc"] {
        let w = by_name(app, Scale::Tiny, 7).unwrap();
        let tyr = lower_tagged(&w.program, TaggingDiscipline::Tyr).unwrap();
        let unord = lower_tagged(&w.program, TaggingDiscipline::UnorderedUnbounded).unwrap();
        let ord = lower_ordered(&w.program).unwrap();

        group.bench_with_input(BenchmarkId::new("tagged_tyr", app), &w, |b, w| {
            b.iter(|| {
                let cfg =
                    TaggedConfig { tag_policy: TagPolicy::local(64), ..TaggedConfig::default() };
                black_box(TaggedEngine::new(&tyr, w.memory.clone(), cfg).run().unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("tagged_unordered", app), &w, |b, w| {
            b.iter(|| {
                let cfg = TaggedConfig {
                    tag_policy: TagPolicy::GlobalUnbounded,
                    ..TaggedConfig::default()
                };
                black_box(TaggedEngine::new(&unord, w.memory.clone(), cfg).run().unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("ordered", app), &w, |b, w| {
            b.iter(|| {
                let cfg = OrderedConfig::default();
                black_box(OrderedEngine::new(&ord, w.memory.clone(), cfg).run().unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("seqvn", app), &w, |b, w| {
            b.iter(|| {
                let cfg = SeqVnConfig::default();
                black_box(SeqVnEngine::new(&w.program, w.memory.clone(), cfg).run().unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("seqdf", app), &w, |b, w| {
            b.iter(|| {
                let cfg = SeqDataflowConfig::default();
                black_box(
                    SeqDataflowEngine::new(&w.program, w.memory.clone(), cfg).run().unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowering");
    for app in ["dmv", "spmspm", "tc"] {
        let w = by_name(app, Scale::Tiny, 7).unwrap();
        group.bench_with_input(BenchmarkId::new("tyr", app), &w.program, |b, p| {
            b.iter(|| black_box(lower_tagged(p, TaggingDiscipline::Tyr).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("ordered", app), &w.program, |b, p| {
            b.iter(|| black_box(lower_ordered(p).unwrap()))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = engines;
    config = config();
    targets = bench_engine_throughput, bench_lowering
}
criterion_main!(engines);
